//! Offline stand-in for `crossbeam`.
//!
//! Provides the API subset the workspace's work-stealing executor uses:
//! `deque::{Worker, Stealer, Injector, Steal}` and `utils::Backoff`. The
//! deques here are mutex-protected `VecDeque`s rather than lock-free
//! Chase–Lev buffers — semantically identical (same LIFO-owner /
//! FIFO-thief discipline, same `Steal` protocol), slower under heavy
//! contention, which the tests and demos in this workspace do not
//! exercise at a scale where it matters.

/// Work-stealing deques (API subset of `crossbeam_deque`).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and may be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Whether this is `Empty`.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// Whether this is `Success`.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// Whether this is `Retry`.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// The stolen value, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// If this attempt did not succeed, try `f` next.
        pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
            match self {
                Steal::Success(_) | Steal::Retry => self,
                Steal::Empty => f(),
            }
        }
    }

    /// Folding steal attempts: first success wins; otherwise any retry
    /// makes the whole round a retry (mirrors crossbeam's impl).
    impl<T> FromIterator<Steal<T>> for Steal<T> {
        fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
            let mut retry = false;
            for s in iter {
                match s {
                    Steal::Success(_) => return s,
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if retry {
                Steal::Retry
            } else {
                Steal::Empty
            }
        }
    }

    #[derive(Debug)]
    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
    }

    /// Flavor of a worker deque: where the owner pops from.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    /// The owner's end of a work-stealing deque.
    #[derive(Debug)]
    pub struct Worker<T> {
        shared: Arc<Shared<T>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        fn with_flavor(flavor: Flavor) -> Self {
            Worker {
                shared: Arc::new(Shared {
                    queue: Mutex::new(VecDeque::new()),
                }),
                flavor,
            }
        }

        /// A FIFO worker deque (owner pops oldest first).
        pub fn new_fifo() -> Self {
            Self::with_flavor(Flavor::Fifo)
        }

        /// A LIFO worker deque (owner pops newest first).
        pub fn new_lifo() -> Self {
            Self::with_flavor(Flavor::Lifo)
        }

        /// Push a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.shared.queue.lock().unwrap().push_back(task);
        }

        /// Pop a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.shared.queue.lock().unwrap();
            match self.flavor {
                Flavor::Lifo => q.pop_back(),
                Flavor::Fifo => q.pop_front(),
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.queue.lock().unwrap().is_empty()
        }

        /// A handle other threads can steal from.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// A thief's handle onto another worker's deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steal one task from the victim's cold end.
        pub fn steal(&self) -> Steal<T> {
            match self.shared.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// A global FIFO injector queue shared by all workers.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task onto the global queue.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Steal one task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steal a batch into `dest` and pop one task for immediate use.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().unwrap();
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            // Move up to half the remainder (capped) to the destination,
            // like crossbeam's batched steal.
            let extra = (q.len() / 2).min(16);
            if extra > 0 {
                let mut dq = dest.shared.queue.lock().unwrap();
                for _ in 0..extra {
                    if let Some(t) = q.pop_front() {
                        dq.push_back(t);
                    }
                }
            }
            Steal::Success(first)
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }
}

/// Miscellaneous utilities (API subset of `crossbeam_utils`).
pub mod utils {
    use std::cell::Cell;

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Exponential backoff for spin loops.
    #[derive(Debug, Default)]
    pub struct Backoff {
        step: Cell<u32>,
    }

    impl Backoff {
        /// A fresh backoff.
        pub fn new() -> Self {
            Backoff::default()
        }

        /// Reset to the initial (busy-spin) state.
        pub fn reset(&self) {
            self.step.set(0);
        }

        /// Back off in a lock-free retry loop (spin only).
        pub fn spin(&self) {
            for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Back off while waiting for another thread to make progress
        /// (spin, then yield to the OS).
        pub fn snooze(&self) {
            if self.step.get() <= SPIN_LIMIT {
                for _ in 0..1u32 << self.step.get() {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if self.step.get() <= YIELD_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Whether backing off has saturated (caller should park).
        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn lifo_worker_pops_newest() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_oldest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batch_pop_moves_work() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // Some of the remainder moved to the local deque.
        assert!(!w.is_empty());
    }

    #[test]
    fn steal_collect_prefers_success() {
        let attempts = vec![Steal::Empty, Steal::Retry, Steal::Success(7)];
        let folded: Steal<i32> = attempts.into_iter().collect();
        assert_eq!(folded, Steal::Success(7));
        let folded: Steal<i32> = vec![Steal::Empty, Steal::Retry].into_iter().collect();
        assert!(folded.is_retry());
        let folded: Steal<i32> = vec![Steal::Empty, Steal::Empty].into_iter().collect();
        assert!(folded.is_empty());
    }

    #[test]
    fn cross_thread_stealing_works() {
        let w = Worker::new_lifo();
        for i in 0..100 {
            w.push(i);
        }
        let s = w.stealer();
        let stolen = std::thread::scope(|scope| {
            let h = scope.spawn(move || {
                let mut got = 0;
                while s.steal().success().is_some() {
                    got += 1;
                }
                got
            });
            h.join().unwrap()
        });
        let mut local = 0;
        while w.pop().is_some() {
            local += 1;
        }
        assert_eq!(stolen + local, 100);
    }
}
