//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). Performance characteristics are
//! std's, which is fine for this workspace: locks sit on cold paths or
//! coarse-grained test logs.

use std::sync::{self, TryLockError};

/// Non-poisoning mutex (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
