//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this reproduction has no network access to
//! crates.io, so this vendored crate provides the (small) API subset the
//! workspace actually uses: a seedable deterministic RNG
//! ([`rngs::StdRng`]) and uniform `random::<T>()` draws via [`RngExt`].
//!
//! The generator is SplitMix64 feeding xorshift-style mixing — not
//! cryptographic, but high-quality enough for sampling-noise emulation,
//! and — critically for the simulator — fully deterministic per seed on
//! every platform.

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build an RNG whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG word stream.
pub trait UniformSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Minimal word-stream interface every RNG here implements.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods available on every [`RngCore`], mirroring
/// `rand::Rng`/`rand::RngExt`.
pub trait RngExt: RngCore {
    /// A uniformly distributed value of `T` (for floats: in `[0, 1)`).
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `[low, high)`.
    fn random_range(&mut self, low: f64, high: f64) -> f64 {
        low + self.random::<f64>() * (high - low)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64). Stands in for
    /// `rand::rngs::StdRng`; statistical quality is ample for simulation
    /// noise and the stream is identical on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let mean: f64 = (0..10_000).map(|_| r.random::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
