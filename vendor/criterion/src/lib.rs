//! Offline stand-in for `criterion`.
//!
//! Implements the macro + builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `BenchmarkId`, `black_box`) with a simple
//! wall-clock measurement loop: warm up briefly, run `sample_size`
//! samples, report min/mean per-iteration time as plain text. No
//! statistics machinery, no HTML reports — enough to compare hot-path
//! timings run over run.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration measurement driver handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            iters_per_sample: 1,
            sample_size,
        }
    }

    /// Measure `f`, called repeatedly; the return value is black-boxed so
    /// the computation is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: aim for samples of >= ~1 ms each.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(1);
        self.iters_per_sample =
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64;

        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let per_iter = |d: &Duration| d.as_secs_f64() / self.iters_per_sample as f64;
        let min = self
            .samples
            .iter()
            .map(per_iter)
            .fold(f64::INFINITY, f64::min);
        let mean = self.samples.iter().map(per_iter).sum::<f64>() / self.samples.len() as f64;
        println!(
            "{label:<40} min {:>12} mean {:>12} ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(mean),
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/param`, like criterion's.
    pub fn new<N: Display, P: Display>(name: N, param: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// The benchmark harness configuration + runner.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; measurement time is derived from
    /// the sample size here.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility (no CLI parsing in the stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Print the closing summary (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Define a benchmark group; both the positional and the
/// `name/config/targets` forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = false;
        c.bench_function("t", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("x", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("us"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains(" s"));
    }
}
