//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro, range / tuple / `prop_map` / `prop_oneof!`
//! / `collection::vec` strategies, `prop_assert*!`, [`ProptestConfig`]
//! and [`TestCaseError`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering; inputs are small enough here to read directly.
//! * **Deterministic seeding.** The RNG seed derives from the test
//!   function's name, so failures reproduce exactly on every run and
//!   machine — no persistence files.

use std::fmt::Debug;
use std::ops::Range;

/// Configuration block accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case failed (or was rejected).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A hard failure with a message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError(msg.into())
    }

    /// A rejected (filtered-out) case; treated like a failure message
    /// here since the workspace does not use filters.
    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG driving generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a test name (FNV-1a over the bytes), so every
    /// run of the same test generates the same case sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// A `Vec` of strategies generates one value per element (mirrors real
/// proptest's `Strategy for Vec<S>`).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Combinator types returned by [`Strategy`] methods and macros.
pub mod strategy {
    use super::{Debug, Strategy, TestRng};

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Box a strategy for heterogeneous storage (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Uniform choice among several strategies of one value type.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V: Debug> Union<V> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector whose length is uniform in `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The fair-coin strategy type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A fair coin flip (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Assert a condition inside a property test; on failure the current case
/// errors out with the stringified condition (and optional message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
            stringify!($left),
            stringify!($right),
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs [$cfg] $($rest)*);
    };
    (@funcs [$cfg:expr] $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let result: $crate::TestCaseResult = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs [$crate::ProptestConfig::default()] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        Small(u8),
        Big(u64),
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let f = crate::Strategy::generate(&(1.0f64..2.0), &mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(
            xs in crate::collection::vec(0u32..100, 1..20),
            flag in crate::bool::ANY,
            pick in prop_oneof![
                (0u8..10).prop_map(Pick::Small),
                (0u64..10).prop_map(Pick::Big),
            ],
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < 100));
            let _ = flag;
            match pick {
                Pick::Small(v) => prop_assert!(v < 10),
                Pick::Big(v) => prop_assert!(v < 10),
            }
            #[allow(clippy::iter_count)]
            let n = xs.iter().count();
            prop_assert_eq!(xs.len(), n);
            prop_assert_ne!(xs.len(), xs.len() + 1);
        }
    }
}
