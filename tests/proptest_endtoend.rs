//! End-to-end property tests: randomly generated applications must run to
//! completion under every policy with physically sensible results.

use proptest::prelude::*;

use tahoe_repro::core::TahoeOptions;
use tahoe_repro::prelude::*;

/// A randomly shaped iterative application.
#[derive(Debug, Clone)]
struct RandApp {
    objects: Vec<u32>,                         // sizes in KB (1..=512)
    tasks_per_window: Vec<(u8, u8, u16, u16)>, // (read obj, write obj, lines, compute µs)
    windows: u8,
}

fn app_strategy() -> impl Strategy<Value = RandApp> {
    (
        proptest::collection::vec(1u32..512, 2..8),
        proptest::collection::vec((0u8..8, 0u8..8, 16u16..2048, 1u16..50), 1..6),
        2u8..6,
    )
        .prop_map(|(objects, tasks_per_window, windows)| RandApp {
            objects,
            tasks_per_window,
            windows,
        })
}

fn build(r: &RandApp) -> App {
    let mut b = AppBuilder::new("rand");
    let ids: Vec<_> = r
        .objects
        .iter()
        .enumerate()
        .map(|(i, &kb)| b.object(&format!("o{i}"), (kb as u64) << 10))
        .collect();
    let c = b.class("t");
    for w in 0..r.windows {
        for &(ro, wo, lines, us) in &r.tasks_per_window {
            let ro = ids[ro as usize % ids.len()];
            let wo = ids[wo as usize % ids.len()];
            let mut t = b.task(c).read_streaming(ro, lines as u64);
            if wo != ro {
                t = t.write_streaming(wo, lines as u64);
            }
            t.compute_us(us as f64).submit();
        }
        if w + 1 < r.windows {
            b.next_window();
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_policy_completes_and_is_ordered(r in app_strategy()) {
        let app = build(&r);
        let rt = Runtime::new(
            Platform::emulated_bw(0.5, (app.footprint() / 3).max(1 << 18), 4 * app.footprint())
                .unwrap(),
            RuntimeConfig::default(),
        );
        let d = rt.run(&app, &PolicyKind::DramOnly);
        let n = rt.run(&app, &PolicyKind::NvmOnly);
        prop_assert!(d.makespan_ns > 0.0);
        prop_assert!(n.makespan_ns >= d.makespan_ns - 1e-6, "NVM cannot beat DRAM");
        for policy in [
            PolicyKind::FirstTouch,
            PolicyKind::HwCache,
            PolicyKind::StaticOffline,
            PolicyKind::tahoe(),
        ] {
            let rep = rt.run(&app, &policy);
            prop_assert_eq!(rep.tasks as usize, app.graph.len(), "{}", rep.policy);
            prop_assert!(rep.makespan_ns.is_finite());
            prop_assert!(rep.makespan_ns >= d.makespan_ns * 0.999, "{}", rep.policy);
        }
    }

    #[test]
    fn tahoe_never_catastrophically_loses_to_nvm_only(r in app_strategy()) {
        let app = build(&r);
        let rt = Runtime::new(
            Platform::optane((app.footprint() / 3).max(1 << 18), 4 * app.footprint()),
            RuntimeConfig::default(),
        );
        let n = rt.run(&app, &PolicyKind::NvmOnly);
        for opts in [
            TahoeOptions::default(),
            TahoeOptions { initial_placement: false, ..TahoeOptions::default() },
            TahoeOptions { proactive: false, ..TahoeOptions::default() },
            TahoeOptions { local_search: false, ..TahoeOptions::default() },
        ] {
            let t = rt.run(&app, &PolicyKind::Tahoe(opts));
            prop_assert!(
                t.makespan_ns <= n.makespan_ns * 1.20,
                "{} lost badly: {} vs NVM {}",
                t.policy,
                t.makespan_ns,
                n.makespan_ns
            );
        }
    }

    #[test]
    fn migration_stats_are_internally_consistent(r in app_strategy()) {
        let app = build(&r);
        let rt = Runtime::new(
            Platform::emulated_bw(0.25, (app.footprint() / 4).max(1 << 18), 4 * app.footprint())
                .unwrap(),
            RuntimeConfig::default(),
        );
        let o = TahoeOptions {
            initial_placement: false,
            ..TahoeOptions::default()
        };
        let rep = rt.run(&app, &PolicyKind::Tahoe(o));
        prop_assert_eq!(rep.migrations.count, rep.migrations.promotions + rep.migrations.evictions);
        prop_assert!(rep.pct_overlap() >= -1e-9 && rep.pct_overlap() <= 100.0 + 1e-9);
        prop_assert!(rep.overhead.total_ns() >= 0.0);
        prop_assert!(rep.stall_ns >= 0.0);
    }
}
