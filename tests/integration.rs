//! Cross-crate integration tests: the whole pipeline, end to end.

use tahoe_repro::core::TahoeOptions;
use tahoe_repro::prelude::*;
use tahoe_repro::workloads::{all_workloads, cg, health, stream};

fn bw_platform(app: &App, frac: f64) -> Platform {
    Platform::emulated_bw(
        frac,
        (app.footprint() / 4).max(1 << 20),
        4 * app.footprint(),
    )
    .expect("valid bandwidth fraction")
}

#[test]
fn nvm_gap_exists_and_tahoe_recovers_part_of_it() {
    for app in [stream::app(Scale::Test), cg::app(Scale::Test)] {
        let rt = Runtime::new(bw_platform(&app, 0.25), RuntimeConfig::default());
        let d = rt.run(&app, &PolicyKind::DramOnly);
        let n = rt.run(&app, &PolicyKind::NvmOnly);
        let t = rt.run(&app, &PolicyKind::tahoe());
        assert!(
            n.makespan_ns > 1.3 * d.makespan_ns,
            "{}: no NVM gap to manage",
            app.name
        );
        assert!(
            t.makespan_ns <= n.makespan_ns * 1.02,
            "{}: tahoe must not lose to NVM-only ({} vs {})",
            app.name,
            t.makespan_ns,
            n.makespan_ns
        );
        assert!(
            t.gap_recovery(d.makespan_ns, n.makespan_ns) > 0.10,
            "{}: tahoe should recover part of the gap",
            app.name
        );
    }
}

#[test]
fn every_policy_is_bounded_by_dram_and_never_catastrophic() {
    let app = stream::app(Scale::Test);
    let rt = Runtime::new(bw_platform(&app, 0.5), RuntimeConfig::default());
    let d = rt.run(&app, &PolicyKind::DramOnly);
    let n = rt.run(&app, &PolicyKind::NvmOnly);
    for p in [
        PolicyKind::FirstTouch,
        PolicyKind::StaticOffline,
        PolicyKind::tahoe(),
    ] {
        let r = rt.run(&app, &p);
        assert!(
            r.makespan_ns >= d.makespan_ns * 0.999,
            "{}: nothing beats DRAM-only",
            r.policy
        );
        assert!(
            r.makespan_ns <= n.makespan_ns * 1.10,
            "{}: placement policies must not badly lose to NVM-only",
            r.policy
        );
    }
}

#[test]
fn latency_bound_workload_prefers_latency_platform_placement() {
    // On a latency-limited platform, health (pointer chasing) must show a
    // bigger NVM-only gap than stream shows; and Tahoe must help it.
    let h = health::app(Scale::Test);
    let s = stream::app(Scale::Test);
    let cfg = RuntimeConfig::default();
    let rt_h = Runtime::new(
        Platform::emulated_lat(8.0, (h.footprint() / 4).max(1 << 20), 4 * h.footprint()).unwrap(),
        cfg.clone(),
    );
    let rt_s = Runtime::new(
        Platform::emulated_lat(8.0, (s.footprint() / 4).max(1 << 20), 4 * s.footprint()).unwrap(),
        cfg,
    );
    let gap_h = rt_h.run(&h, &PolicyKind::NvmOnly).makespan_ns
        / rt_h.run(&h, &PolicyKind::DramOnly).makespan_ns;
    let gap_s = rt_s.run(&s, &PolicyKind::NvmOnly).makespan_ns
        / rt_s.run(&s, &PolicyKind::DramOnly).makespan_ns;
    assert!(
        gap_h > gap_s,
        "pointer chasing must be hurt more by latency ({gap_h:.2} vs {gap_s:.2})"
    );
    let d = rt_h.run(&h, &PolicyKind::DramOnly);
    let n = rt_h.run(&h, &PolicyKind::NvmOnly);
    let t = rt_h.run(&h, &PolicyKind::tahoe());
    assert!(t.gap_recovery(d.makespan_ns, n.makespan_ns) > 0.15);
}

#[test]
fn read_write_distinction_matters_on_optane() {
    // Across the suite the rw-aware model must be at least as good as the
    // blind one in aggregate (the journal paper's E10 claim).
    let mut aware_total = 0.0;
    let mut blind_total = 0.0;
    for app in all_workloads(Scale::Test) {
        let rt = Runtime::new(
            Platform::optane((app.footprint() / 4).max(1 << 20), 4 * app.footprint()),
            RuntimeConfig::default(),
        );
        let aware = rt.run(&app, &PolicyKind::tahoe());
        let blind = rt.run(
            &app,
            &PolicyKind::Tahoe(TahoeOptions {
                distinguish_rw: false,
                ..TahoeOptions::default()
            }),
        );
        aware_total += aware.makespan_ns;
        blind_total += blind.makespan_ns;
    }
    assert!(
        aware_total <= blind_total * 1.01,
        "rw-aware {aware_total} should not lose to blind {blind_total}"
    );
}

#[test]
fn migration_accounting_is_consistent() {
    let app = stream::app(Scale::Test);
    let rt = Runtime::new(bw_platform(&app, 0.25), RuntimeConfig::default());
    let o = TahoeOptions {
        initial_placement: false, // force migrations
        ..TahoeOptions::default()
    };
    let rep = rt.run(&app, &PolicyKind::Tahoe(o));
    assert_eq!(
        rep.migrations.count,
        rep.migrations.promotions + rep.migrations.evictions
    );
    if rep.migrations.count > 0 {
        assert!(rep.migrations.bytes > 0);
        assert!(rep.pct_overlap() >= 0.0 && rep.pct_overlap() <= 100.0);
    }
}

#[test]
fn runtime_overhead_stays_modest_across_suite() {
    // Test-scale windows are microseconds long, so fixed runtime costs
    // loom larger than at evaluation scale; the paper-comparable bound
    // (<5%) is asserted at Bench scale in the stream workload below.
    for app in all_workloads(Scale::Test) {
        let rt = Runtime::new(bw_platform(&app, 0.5), RuntimeConfig::default());
        let rep = rt.run(&app, &PolicyKind::tahoe());
        assert!(
            rep.overhead_pct() < 15.0,
            "{}: overhead {}%",
            app.name,
            rep.overhead_pct()
        );
    }
    let app = stream::app(Scale::Bench);
    let rt = Runtime::new(bw_platform(&app, 0.5), RuntimeConfig::default());
    let rep = rt.run(&app, &PolicyKind::tahoe());
    assert!(
        rep.overhead_pct() < 5.0,
        "bench-scale overhead {}%",
        rep.overhead_pct()
    );
}

#[test]
fn reports_are_deterministic_across_runs() {
    let app = cg::app(Scale::Test);
    let rt = Runtime::new(bw_platform(&app, 0.5), RuntimeConfig::default());
    for policy in [
        PolicyKind::tahoe(),
        PolicyKind::StaticOffline,
        PolicyKind::HwCache,
    ] {
        let a = rt.run(&app, &policy);
        let b = rt.run(&app, &policy);
        assert_eq!(a.makespan_ns, b.makespan_ns, "{}", a.policy);
        assert_eq!(a.migrations, b.migrations, "{}", a.policy);
        assert_eq!(a.stall_ns, b.stall_ns, "{}", a.policy);
    }
}

#[test]
fn worker_scaling_reduces_makespan() {
    let app = cg::app(Scale::Test);
    let mut last = f64::INFINITY;
    for workers in [1usize, 2, 4] {
        let rt = Runtime::new(
            bw_platform(&app, 0.5),
            RuntimeConfig::default().with_workers(workers),
        );
        let rep = rt.run(&app, &PolicyKind::DramOnly);
        assert!(
            rep.makespan_ns <= last * 1.001,
            "{workers} workers should not be slower than fewer"
        );
        last = rep.makespan_ns;
    }
}

#[test]
fn pinned_policy_places_exactly_the_requested_set() {
    let app = cg::app(Scale::Test);
    // Pin the matrix block-rows.
    let pins: Vec<_> = app
        .objects
        .iter()
        .enumerate()
        .filter(|(_, o)| o.name.starts_with('A'))
        .map(|(i, _)| tahoe_repro::hms::ObjectId(i as u32))
        .collect();
    let bytes: u64 = pins.iter().map(|p| app.objects[p.index()].size).sum();
    let rt = Runtime::new(
        Platform::emulated_bw(0.5, bytes, 4 * app.footprint()).unwrap(),
        RuntimeConfig::default(),
    );
    let rep = rt.run(&app, &PolicyKind::Pinned(pins.clone()));
    assert_eq!(rep.final_dram_objects, pins.len());
    assert_eq!(rep.migrations.count, 0);
}

#[test]
fn dram_size_monotonicity_for_tahoe() {
    // More DRAM must never make Tahoe meaningfully slower.
    let app = stream::app(Scale::Test);
    let foot = app.footprint();
    let mut last = f64::INFINITY;
    for denom in [16u64, 4, 2, 1] {
        let plat = Platform::emulated_bw(0.5, (foot / denom).max(1 << 20), 4 * foot).unwrap();
        let rt = Runtime::new(plat, RuntimeConfig::default());
        let rep = rt.run(&app, &PolicyKind::tahoe());
        assert!(
            rep.makespan_ns <= last * 1.05,
            "1/{denom} of footprint should not be slower than less DRAM"
        );
        last = rep.makespan_ns;
    }
}
