//! Real parallel execution of a Tahoe task graph.
//!
//! The timed experiments run on the virtual-time scheduler; this example
//! shows the *same* task graph executing on real OS threads through the
//! work-stealing executor, computing an actual numerical result
//! (a blocked dot-product pipeline) whose value proves the dependence
//! derivation ordered the computation correctly.
//!
//! ```sh
//! cargo run --release --example live_execution
//! ```
#![allow(clippy::needless_range_loop)]

use std::sync::atomic::{AtomicU64, Ordering};

use tahoe_repro::prelude::*;
use tahoe_repro::taskrt::wsexec::WsExecutor;
use tahoe_repro::taskrt::TaskClassId;

const BLOCKS: usize = 32;
const ELEMS: usize = 1 << 14; // per block

fn main() {
    // Graph: per-block `scale` (x_i *= 3), then per-block `dot`
    // (acc_i = x_i · y_i), then one reduction.
    let mut b = AppBuilder::new("live-dot");
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut accs = Vec::new();
    for i in 0..BLOCKS {
        xs.push(b.object(&format!("x{i}"), (ELEMS * 8) as u64));
        ys.push(b.object(&format!("y{i}"), (ELEMS * 8) as u64));
        accs.push(b.object(&format!("acc{i}"), 64));
    }
    let scale_c = b.class("scale");
    let dot_c = b.class("dot");
    let reduce_c = b.class("reduce");
    for i in 0..BLOCKS {
        b.task(scale_c)
            .update_streaming(xs[i], (ELEMS / 8) as u64)
            .compute_us(1.0)
            .submit();
    }
    for i in 0..BLOCKS {
        b.task(dot_c)
            .read_streaming(xs[i], (ELEMS / 8) as u64)
            .read_streaming(ys[i], (ELEMS / 8) as u64)
            .write_streaming(accs[i], 1)
            .compute_us(1.0)
            .submit();
    }
    let mut r = b.task(reduce_c).compute_us(1.0);
    for i in 0..BLOCKS {
        r = r.read_streaming(accs[i], 1);
    }
    r.submit();
    let app = b.build();

    // Real data: x = 1s, y = 2s. After scale, x = 3s; dot per block =
    // 3·2·ELEMS; total = 6·ELEMS·BLOCKS.
    let x: Vec<AtomicU64> = (0..BLOCKS * ELEMS).map(|_| AtomicU64::new(1)).collect();
    let y: Vec<AtomicU64> = (0..BLOCKS * ELEMS).map(|_| AtomicU64::new(2)).collect();
    let acc: Vec<AtomicU64> = (0..BLOCKS).map(|_| AtomicU64::new(0)).collect();
    let total = AtomicU64::new(0);

    let exec = WsExecutor::new(8);
    let stats = exec.run(&app.graph, |task| {
        let class = task.class;
        let block = task
            .accesses
            .first()
            .map(|a| (a.object.0 as usize) % BLOCKS)
            .unwrap_or(0);
        if class == TaskClassId(0) {
            // scale: x_i *= 3
            for e in &x[block * ELEMS..(block + 1) * ELEMS] {
                e.store(e.load(Ordering::Relaxed) * 3, Ordering::Relaxed);
            }
        } else if class == TaskClassId(1) {
            // dot: acc_i = x_i · y_i
            let mut sum = 0u64;
            for k in 0..ELEMS {
                sum += x[block * ELEMS + k].load(Ordering::Acquire)
                    * y[block * ELEMS + k].load(Ordering::Relaxed);
            }
            acc[block].store(sum, Ordering::Release);
        } else {
            // reduce
            let sum: u64 = acc.iter().map(|a| a.load(Ordering::Acquire)).sum();
            total.store(sum, Ordering::Release);
        }
    });

    let expect = 6 * (ELEMS as u64) * (BLOCKS as u64);
    let got = total.load(Ordering::Acquire);
    println!(
        "executed {} tasks on 8 threads in {:?} ({} steals)",
        stats.tasks_executed, stats.elapsed, stats.steals
    );
    println!("dot product = {got} (expected {expect})");
    assert_eq!(got, expect, "dependence ordering must make this exact");

    // And the same graph, timed on the virtual platform under Tahoe:
    let rt = Runtime::new(Platform::optane(1 << 20, 1 << 30), RuntimeConfig::default());
    let rep = rt.run(&app, &PolicyKind::tahoe());
    println!(
        "virtual-time run: {:.3} ms makespan, {} migrations",
        rep.makespan_ns / 1e6,
        rep.migrations.count
    );
}
