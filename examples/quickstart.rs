//! Quickstart: declare objects and tasks, run Tahoe against the bounds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tahoe_repro::prelude::*;

fn main() {
    // An iterative kernel: a hot streamed array, a cold history array,
    // and a pointer-chased index — the three behaviours the runtime must
    // tell apart.
    let mut b = AppBuilder::new("quickstart");
    let hot = b.object_chunkable("hot", 3 << 20);
    let cold = b.object("cold", 2 << 20);
    let index = b.object("index", 1 << 20);
    b.set_est_refs(hot, 3.2e6);
    // hot (3 MB) cannot fit the 2 MB DRAM whole: only chunked placement helps.
    b.set_est_refs(cold, 1.0e3);
    b.set_est_refs(index, 4.8e5);

    let sweep = b.class("sweep");
    let walk = b.class("walk");
    let iters = 10;
    for w in 0..iters {
        for _ in 0..4 {
            b.task(sweep)
                .update_streaming(hot, 8_000)
                .read_streaming(cold, 64)
                .compute_us(5.0)
                .submit();
            b.task(walk)
                .read_chasing(index, 1_200)
                .compute_us(2.0)
                .submit();
        }
        if w + 1 < iters {
            b.next_window();
        }
    }
    let app = b.build();

    // DRAM holds 2 MB of the 5 MB footprint; NVM is Optane-like.
    let platform = Platform::optane(2 << 20, 1 << 30);
    let cfg = RuntimeConfig {
        chunk_size: 1 << 20, // let the runtime split "hot" into 1 MB chunks
        ..RuntimeConfig::default()
    };
    let rt = Runtime::new(platform, cfg);

    println!(
        "app: {} ({} tasks, {} windows, {:.1} MB footprint)\n",
        app.name,
        app.graph.len(),
        app.windows(),
        app.footprint() as f64 / 1e6
    );
    println!(
        "{:<16} {:>12} {:>10} {:>8} {:>10} {:>9}",
        "policy", "makespan(ms)", "vs DRAM", "migr", "overlap%", "ovhd%"
    );

    let dram = rt.run(&app, &PolicyKind::DramOnly);
    let policies = [
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
        PolicyKind::FirstTouch,
        PolicyKind::HwCache,
        PolicyKind::StaticOffline,
        PolicyKind::tahoe(),
    ];
    for p in &policies {
        let r = rt.run(&app, p);
        println!(
            "{:<16} {:>12.3} {:>10.2} {:>8} {:>10.1} {:>9.2}",
            r.policy,
            r.makespan_ns / 1e6,
            r.slowdown_vs(dram.makespan_ns),
            r.migrations.count,
            r.pct_overlap(),
            r.overhead_pct(),
        );
    }

    let tahoe = rt.run(&app, &PolicyKind::tahoe());
    let nvm = rt.run(&app, &PolicyKind::NvmOnly);
    println!(
        "\nTahoe recovered {:.0}% of the DRAM↔NVM gap.",
        100.0 * tahoe.gap_recovery(dram.makespan_ns, nvm.makespan_ns)
    );
}
