//! Heat-diffusion pipeline across NVM technologies.
//!
//! Runs the 2-D Jacobi stencil workload on every NVM device preset and on
//! Quartz-style emulation points, printing the DRAM-normalized slowdowns
//! with and without the Tahoe runtime — the "which memory could we ship
//! with?" question an HPC operator would ask.
//!
//! ```sh
//! cargo run --release --example stencil_pipeline
//! ```

use tahoe_repro::hms::presets;
use tahoe_repro::prelude::*;
use tahoe_repro::workloads::stencil;

fn main() {
    let app = stencil::app(Scale::Bench);
    let dram_budget = app.footprint() / 4;
    println!(
        "stencil: {} tasks, {} windows, {:.1} MB footprint, DRAM budget {:.1} MB\n",
        app.graph.len(),
        app.windows(),
        app.footprint() as f64 / 1e6,
        dram_budget as f64 / 1e6
    );

    let nvm_cap = 4 * app.footprint();
    let devices = [
        presets::stt_ram(nvm_cap),
        presets::pcram(nvm_cap),
        presets::reram(nvm_cap),
        presets::optane_pmm(nvm_cap),
        presets::emulated_bw(0.5, nvm_cap).unwrap(),
        presets::emulated_lat(4.0, nvm_cap).unwrap(),
    ];

    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>10}",
        "NVM device", "NVM-only", "tahoe", "recovered%", "migrations"
    );
    let mut timeline = None;
    for nvm in devices {
        let dram = presets::dram(dram_budget);
        let copy = nvm.write_bw_gbps.min(dram.read_bw_gbps) * 0.8;
        let platform = Platform::new(dram, nvm.clone(), copy);
        let rt = Runtime::new(platform, RuntimeConfig::default());

        let d = rt.run(&app, &PolicyKind::DramOnly);
        let n = rt.run(&app, &PolicyKind::NvmOnly);
        let (t, trace) = rt.run_traced(&app, &PolicyKind::tahoe());
        if timeline.is_none() {
            timeline = Some(trace);
        }
        println!(
            "{:<18} {:>9.2}x {:>9.2}x {:>11.0}% {:>10}",
            nvm.name,
            n.slowdown_vs(d.makespan_ns),
            t.slowdown_vs(d.makespan_ns),
            100.0 * t.gap_recovery(d.makespan_ns, n.makespan_ns),
            t.migrations.count,
        );
    }
    if let Some(trace) = timeline {
        println!(
            "\nschedule timeline (first device, tahoe):\n{}",
            trace.render(64)
        );
    }
}
