//! Sparse-solver campaign: Cholesky and CG under shrinking DRAM budgets.
//!
//! A capacity-planning study: how little DRAM can a node ship with before
//! the solvers fall off a cliff, with and without runtime data
//! management?
//!
//! ```sh
//! cargo run --release --example solver_campaign
//! ```

use tahoe_repro::prelude::*;
use tahoe_repro::workloads::{cg, cholesky};

fn main() {
    for app in [cholesky::app(Scale::Bench), cg::app(Scale::Bench)] {
        let foot = app.footprint();
        println!(
            "\n=== {} ({} tasks, {:.1} MB footprint) ===",
            app.name,
            app.graph.len(),
            foot as f64 / 1e6
        );
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>8} {:>10}",
            "DRAM", "NVM-only", "static", "tahoe", "migr", "overlap%"
        );
        for frac in [2u64, 4, 8, 16] {
            let budget = (foot / frac).max(1 << 20);
            let platform = Platform::optane(budget, 4 * foot);
            let rt = Runtime::new(platform, RuntimeConfig::default());
            let d = rt.run(&app, &PolicyKind::DramOnly);
            let n = rt.run(&app, &PolicyKind::NvmOnly);
            let s = rt.run(&app, &PolicyKind::StaticOffline);
            let t = rt.run(&app, &PolicyKind::tahoe());
            println!(
                "1/{:<10} {:>9.2}x {:>9.2}x {:>9.2}x {:>8} {:>9.1}%",
                frac,
                n.slowdown_vs(d.makespan_ns),
                s.slowdown_vs(d.makespan_ns),
                t.slowdown_vs(d.makespan_ns),
                t.migrations.count,
                t.pct_overlap(),
            );
        }
    }
}
