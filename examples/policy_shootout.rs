//! Policy shootout: every workload × every policy, DRAM-normalized.
//!
//! The bird's-eye view of the reproduction — who wins where, and by how
//! much.
//!
//! ```sh
//! cargo run --release --example policy_shootout
//! ```

use tahoe_repro::prelude::*;
use tahoe_repro::workloads::all_workloads;

fn main() {
    let policies = [
        PolicyKind::NvmOnly,
        PolicyKind::FirstTouch,
        PolicyKind::HwCache,
        PolicyKind::StaticOffline,
        PolicyKind::tahoe(),
    ];
    println!(
        "{:<10} {:>9} {:>12} {:>9} {:>9} {:>8}   (slowdown vs DRAM-only, 1/2-BW NVM, DRAM = footprint/4)",
        "workload", "NVM-only", "first-touch", "hw-cache", "static", "tahoe"
    );
    let mut geo: Vec<f64> = vec![1.0; policies.len()];
    let mut n = 0u32;
    for app in all_workloads(Scale::Bench) {
        let budget = (app.footprint() / 4).max(1 << 20);
        let platform = Platform::emulated_bw(0.5, budget, 4 * app.footprint()).unwrap();
        let rt = Runtime::new(platform, RuntimeConfig::default());
        let dram = rt.run(&app, &PolicyKind::DramOnly);
        print!("{:<10}", app.name);
        for (i, p) in policies.iter().enumerate() {
            let r = rt.run(&app, p);
            let s = r.slowdown_vs(dram.makespan_ns);
            geo[i] *= s;
            let w = [9, 12, 9, 9, 8][i];
            print!(" {:>w$.2}", s, w = w);
        }
        println!();
        n += 1;
    }
    print!("{:<10}", "geomean");
    for (i, g) in geo.iter().enumerate() {
        let w = [9, 12, 9, 9, 8][i];
        print!(" {:>w$.2}", g.powf(1.0 / n as f64), w = w);
    }
    println!();
}
