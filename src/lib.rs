//! # tahoe-repro
//!
//! A from-scratch Rust reproduction of *"Runtime Data Management on
//! Non-Volatile Memory-Based Heterogeneous Memory for Task-Parallel
//! Programs"* (Wu, Ren, Li — SC 2018): a runtime that transparently
//! decides which data objects of a task-parallel program live in the
//! small/fast DRAM tier and which in the large/slow NVM tier, using
//! online sampled profiling, calibrated analytic models, knapsack
//! placement and proactive (overlapped) migration.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`hms`] (tahoe-hms) | two-tier memory substrate: device models, allocator, timing, migration channel |
//! | [`taskrt`] (tahoe-taskrt) | task graphs with derived dependences, virtual-time scheduler, real work-stealing executor |
//! | [`memprof`] (tahoe-memprof) | sampling-profiler emulation and platform calibration |
//! | [`perfmodel`] (tahoe-perfmodel) | sensitivity classification, benefit/cost equations, time prediction |
//! | [`placement`] (tahoe-placement) | knapsack solvers, local/global search, chunking |
//! | [`core`] (tahoe-core) | the Tahoe runtime and every baseline policy |
//! | [`workloads`] (tahoe-workloads) | ten task-parallel evaluation workloads |
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the reproduction results. The
//! experiment harness lives in `crates/bench` (`cargo run -p tahoe-bench
//! --release --bin exp -- all`).

pub use tahoe_core as core;
pub use tahoe_hms as hms;
pub use tahoe_memprof as memprof;
pub use tahoe_perfmodel as perfmodel;
pub use tahoe_placement as placement;
pub use tahoe_taskrt as taskrt;
pub use tahoe_workloads as workloads;

/// One-stop prelude for examples and downstream users.
pub mod prelude {
    pub use tahoe_core::prelude::*;
    pub use tahoe_workloads::Scale;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let p = Platform::optane(1 << 20, 1 << 30);
        let _rt = Runtime::new(p, RuntimeConfig::default());
    }
}
