//! Lock-free building blocks for [`crate::sync::SharedHms`]: the packed
//! per-object state word, the sharded slot table, and the per-shard
//! event-count parker.
//!
//! The parallel measured runtime showed *negative* scaling when every
//! pin/unpin funneled through one `Mutex+Condvar`: with short tasks the
//! lock hand-off and `notify_all` storms dominate the runtime's own
//! bookkeeping, which the paper requires to stay off the critical path.
//! The replacement makes the hot path a single CAS on a per-object
//! `AtomicU64` and reserves blocking for the two genuinely blocking
//! edges (worker needs a mid-move object; migrator waits for pins).
//!
//! # The packed state word
//!
//! ```text
//!  63            32 31     19  18   17   16  15            0
//! ┌────────────────┬─────────┬────┬────┬────┬───────────────┐
//! │   move epoch   │ (unused)│ WT │ PK │ MV │   pin count   │
//! └────────────────┴─────────┴────┴────┴────┴───────────────┘
//! ```
//!
//! * **pin count** — live pins; grows only while `MV` is clear.
//! * **MV (moving)** — a two-phase move is in flight; rejects pins.
//! * **PK (parked)** — the migrator is parked waiting for pins to
//!   drain; an unpin-to-zero must wake the shard.
//! * **WT (waiters)** — ≥1 worker is parked waiting for the move to
//!   end; the commit/abort must wake the shard.
//! * **move epoch** — bumped on every move completion; doubles as the
//!   ticket generation for ABA protection and introspection.
//!
//! All transitions are expressed as pure `word::*` functions over the
//! packed value so that the legality rules (no pin while moving, no
//! double begin, no completion with live pins) are property-testable
//! without threads; the atomic code CAS-loops those functions.

use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

use crate::object::ObjectId;

/// Pure transition algebra over the packed per-object state word.
pub mod word {
    /// Mask of the pin-count field (bits 0..=15).
    pub const PIN_MASK: u64 = 0xFFFF;
    /// A two-phase move is in flight.
    pub const MOVING: u64 = 1 << 16;
    /// The migrator is parked waiting for pins to drain.
    pub const PARKED: u64 = 1 << 17;
    /// At least one worker is parked waiting for the move to end.
    pub const WAITERS: u64 = 1 << 18;
    /// One increment of the move-epoch field (bits 32..=63).
    pub const EPOCH_ONE: u64 = 1 << 32;

    /// Why a transition is illegal from the given word.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WordError {
        /// Pin attempted while a move is in flight.
        Moving,
        /// Pin count would overflow its 16-bit field.
        PinOverflow,
        /// Unpin with no pins outstanding.
        NotPinned,
        /// Move begun while pins are live.
        Pinned(u32),
        /// Move begun while one is already in flight (double begin).
        AlreadyMoving,
        /// Move completed that was never begun (double commit/abort).
        NotMoving,
    }

    /// Live pins encoded in `w`.
    pub fn pins(w: u64) -> u32 {
        (w & PIN_MASK) as u32
    }

    /// Move epoch encoded in `w`.
    pub fn epoch(w: u64) -> u32 {
        (w >> 32) as u32
    }

    /// Whether a move is in flight.
    pub fn is_moving(w: u64) -> bool {
        w & MOVING != 0
    }

    /// Whether the migrator is parked on this object.
    pub fn is_parked(w: u64) -> bool {
        w & PARKED != 0
    }

    /// Whether workers are parked on this object.
    pub fn has_waiters(w: u64) -> bool {
        w & WAITERS != 0
    }

    /// Build a word from its fields (test/diagnostic constructor).
    pub fn pack(pins: u16, moving: bool, parked: bool, waiters: bool, epoch: u32) -> u64 {
        u64::from(pins)
            | if moving { MOVING } else { 0 }
            | if parked { PARKED } else { 0 }
            | if waiters { WAITERS } else { 0 }
            | (u64::from(epoch) << 32)
    }

    /// Split a word back into `(pins, moving, parked, waiters, epoch)`.
    pub fn unpack(w: u64) -> (u16, bool, bool, bool, u32) {
        (
            (w & PIN_MASK) as u16,
            is_moving(w),
            is_parked(w),
            has_waiters(w),
            epoch(w),
        )
    }

    /// Take one pin. Illegal while a move is in flight.
    pub fn pin(w: u64) -> Result<u64, WordError> {
        if is_moving(w) {
            return Err(WordError::Moving);
        }
        if w & PIN_MASK == PIN_MASK {
            return Err(WordError::PinOverflow);
        }
        Ok(w + 1)
    }

    /// Release one pin. Illegal with none outstanding.
    pub fn unpin(w: u64) -> Result<u64, WordError> {
        if w & PIN_MASK == 0 {
            return Err(WordError::NotPinned);
        }
        Ok(w - 1)
    }

    /// Claim the object for a two-phase move: requires zero pins and no
    /// move in flight; consumes any `PARKED` announcement (the claimant
    /// is the parked migrator itself).
    pub fn begin_move(w: u64) -> Result<u64, WordError> {
        if is_moving(w) {
            return Err(WordError::AlreadyMoving);
        }
        let p = pins(w);
        if p > 0 {
            return Err(WordError::Pinned(p));
        }
        Ok((w & !PARKED) | MOVING)
    }

    /// Complete (commit or abort) the in-flight move: clears the move
    /// and waiter bits and bumps the epoch. Illegal when no move is in
    /// flight or pins are live (pins cannot grow while `MOVING`, so live
    /// pins here mean state corruption).
    pub fn end_move(w: u64) -> Result<u64, WordError> {
        if !is_moving(w) {
            return Err(WordError::NotMoving);
        }
        if pins(w) > 0 {
            return Err(WordError::Pinned(pins(w)));
        }
        Ok((w & !(MOVING | PARKED | WAITERS)).wrapping_add(EPOCH_ONE))
    }

    /// Announce the migrator is parking on this word.
    pub fn set_parked(w: u64) -> u64 {
        w | PARKED
    }

    /// Announce a worker is parking on this word.
    pub fn set_waiters(w: u64) -> u64 {
        w | WAITERS
    }
}

/// Contention counters for the lock-free paths, folded into the obs
/// metrics of a parallel run (`hms.pin_cas_retries` etc.).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ContentionStats {
    /// Failed CAS attempts on pin/unpin/move transitions.
    pub pin_cas_retries: u64,
    /// Times any thread parked on a shard event-count.
    pub parks: u64,
    /// Times a state transition woke a shard with live waiters.
    pub unparks: u64,
    /// Times a worker found a needed object mid-move (the paper's
    /// exposed-migration edge).
    pub move_waits: u64,
}

/// Internal atomic counterparts of [`ContentionStats`].
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub pin_cas_retries: AtomicU64,
    pub parks: AtomicU64,
    pub unparks: AtomicU64,
    pub move_waits: AtomicU64,
}

impl Counters {
    pub fn snapshot(&self) -> ContentionStats {
        ContentionStats {
            pin_cas_retries: self.pin_cas_retries.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            unparks: self.unparks.load(Ordering::Relaxed),
            move_waits: self.move_waits.load(Ordering::Relaxed),
        }
    }
}

/// A per-shard event-count: blocked threads park here instead of on one
/// global condvar, so an unpin on shard A never wakes waiters of shard B.
///
/// The missed-wakeup protocol is the classic event-count: a waiter reads
/// the sequence number under the lock, re-checks its predicate, and only
/// then sleeps; a notifier bumps the sequence under the same lock, so
/// the state change it published (a SeqCst CAS on the slot word) is
/// either seen by the waiter's re-check or ordered before a wakeup. All
/// parks are additionally timed as a belt-and-braces backstop (and to
/// poll migration cancel flags).
#[derive(Debug, Default)]
pub(crate) struct Parker {
    seq: Mutex<u64>,
    cv: Condvar,
    waiters: AtomicU32,
}

impl Parker {
    /// Park the calling thread while `blocked()` holds, until notified
    /// or `timeout` elapses. `blocked` must load the guarding atomic
    /// with `SeqCst` to pair with the notifier's transition.
    pub fn park_while(&self, timeout: Duration, blocked: impl Fn() -> bool) {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut seq = self.seq.lock().unwrap_or_else(PoisonError::into_inner);
        let entered = *seq;
        while blocked() && *seq == entered {
            let (guard, timed_out) = self
                .cv
                .wait_timeout(seq, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            seq = guard;
            if timed_out.timed_out() {
                break;
            }
        }
        drop(seq);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wake every thread parked on this shard. Returns whether anyone
    /// was (possibly) woken; with no waiters this is a single load.
    pub fn notify(&self) -> bool {
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return false;
        }
        {
            let mut seq = self.seq.lock().unwrap_or_else(PoisonError::into_inner);
            *seq = seq.wrapping_add(1);
        }
        self.cv.notify_all();
        true
    }
}

/// log2 of the shard count.
pub(crate) const SHARD_BITS: u32 = 4;
/// Number of shards (power of two; objects stripe round-robin by id).
pub(crate) const NSHARDS: usize = 1 << SHARD_BITS;
const CHUNK_BITS: u32 = 6;
/// Slots per chunk.
const CHUNK: usize = 1 << CHUNK_BITS;
/// Chunks per shard (bounds the table at `NSHARDS·MAX_CHUNKS·CHUNK` =
/// 1Mi objects — far above any workload here).
const MAX_CHUNKS: usize = 1 << 10;

/// Tier encoding in [`Slot::tier`].
pub(crate) const TIER_DRAM: u32 = 0;
pub(crate) const TIER_NVM: u32 = 1;

/// Per-object entry of the sharded table: the CAS state word plus a
/// location cache so the pin hot path never touches the inner [`Mutex`].
///
/// The location fields (`ptr`, `len`, `tier`, `live`) are only written
/// under the slow-path inner lock (table sync, move commit) and
/// published by the subsequent `SeqCst` transition on `state`, which the
/// pinning CAS synchronizes with — a successful pin therefore reads a
/// consistent location.
#[derive(Debug)]
pub(crate) struct Slot {
    /// Packed state word; see [`word`].
    pub state: AtomicU64,
    /// Cached base pointer of the object's live bytes (null on byte-less
    /// substrates).
    pub ptr: AtomicPtr<u8>,
    /// Cached object size in bytes.
    pub len: AtomicU64,
    /// Cached residency tier ([`TIER_DRAM`]/[`TIER_NVM`]).
    pub tier: AtomicU32,
    /// Whether the object is live (0 after free, before alloc sync).
    pub live: AtomicU32,
    /// First wall-clock ns (f64 bits) a worker blocked needing the
    /// object during the current move; 0 = never.
    pub needed_at: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            state: AtomicU64::new(0),
            ptr: AtomicPtr::new(std::ptr::null_mut()),
            len: AtomicU64::new(0),
            tier: AtomicU32::new(TIER_DRAM),
            live: AtomicU32::new(0),
            needed_at: AtomicU64::new(0),
        }
    }
}

struct SlotChunk {
    slots: [Slot; CHUNK],
}

impl SlotChunk {
    fn boxed() -> Box<Self> {
        Box::new(SlotChunk {
            slots: std::array::from_fn(|_| Slot::empty()),
        })
    }
}

/// One shard: an append-only chunked slot array readers traverse
/// lock-free, a grow lock serializing (rare) insertions, and the parker
/// for every thread blocked on this shard's objects.
pub(crate) struct Shard {
    chunks: [AtomicPtr<SlotChunk>; MAX_CHUNKS],
    grow: Mutex<()>,
    pub parker: Parker,
}

impl Shard {
    fn new() -> Self {
        Shard {
            chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            grow: Mutex::new(()),
            parker: Parker::default(),
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        for chunk in &self.chunks {
            let p = chunk.swap(std::ptr::null_mut(), Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: chunks are only ever created via
                // `SlotChunk::boxed` and published once; we own the
                // shard exclusively in drop.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// The sharded object table: dense object ids stripe across
/// [`NSHARDS`] power-of-two shards (`shard = id & mask`), and within a
/// shard land in append-only chunks, so lookups are wait-free and
/// insertion only ever takes its own shard's grow lock.
pub(crate) struct ShardedTable {
    shards: Box<[Shard]>,
}

impl ShardedTable {
    pub fn new() -> Self {
        ShardedTable {
            shards: (0..NSHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// The shard that owns `id`.
    pub fn shard(&self, id: ObjectId) -> &Shard {
        &self.shards[id.0 as usize & (NSHARDS - 1)]
    }

    fn coords(id: ObjectId) -> (usize, usize, usize) {
        let shard = id.0 as usize & (NSHARDS - 1);
        let idx = id.0 as usize >> SHARD_BITS;
        (shard, idx >> CHUNK_BITS, idx & (CHUNK - 1))
    }

    /// Wait-free slot lookup; `None` until the id has been synced in.
    pub fn slot(&self, id: ObjectId) -> Option<&Slot> {
        let (shard, chunk, off) = Self::coords(id);
        if chunk >= MAX_CHUNKS {
            return None;
        }
        let p = self.shards[shard].chunks[chunk].load(Ordering::Acquire);
        if p.is_null() {
            return None;
        }
        // SAFETY: a non-null chunk pointer was published with Release by
        // `ensure_slot` and is never freed before the table drops.
        Some(unsafe { &(*p).slots[off] })
    }

    /// Slot for `id`, allocating its chunk under the shard's grow lock
    /// if needed. Panics past the (enormous) table capacity.
    pub fn ensure_slot(&self, id: ObjectId) -> &Slot {
        let (shard, chunk, off) = Self::coords(id);
        assert!(chunk < MAX_CHUNKS, "object table capacity exceeded");
        let cell = &self.shards[shard].chunks[chunk];
        let mut p = cell.load(Ordering::Acquire);
        if p.is_null() {
            let _g = self.shards[shard]
                .grow
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            p = cell.load(Ordering::Acquire);
            if p.is_null() {
                p = Box::into_raw(SlotChunk::boxed());
                cell.store(p, Ordering::Release);
            }
        }
        // SAFETY: non-null chunk pointers live until the table drops.
        unsafe { &(*p).slots[off] }
    }
}

#[cfg(test)]
mod tests {
    use super::word::*;
    use super::*;

    #[test]
    fn word_pack_unpack_round_trips() {
        for &(p, m, pk, wt, e) in &[
            (0u16, false, false, false, 0u32),
            (3, false, true, false, 7),
            (0, true, false, true, u32::MAX),
            (u16::MAX, false, false, false, 1),
        ] {
            let w = pack(p, m, pk, wt, e);
            assert_eq!(unpack(w), (p, m, pk, wt, e));
        }
    }

    #[test]
    fn word_rejects_illegal_transitions() {
        let moving = pack(0, true, false, false, 0);
        assert_eq!(pin(moving), Err(WordError::Moving));
        assert_eq!(begin_move(moving), Err(WordError::AlreadyMoving));
        let pinned = pack(2, false, false, false, 0);
        assert_eq!(begin_move(pinned), Err(WordError::Pinned(2)));
        assert_eq!(end_move(pinned), Err(WordError::NotMoving));
        assert_eq!(
            unpin(pack(0, false, false, false, 0)),
            Err(WordError::NotPinned)
        );
        assert_eq!(
            pin(pack(u16::MAX, false, false, false, 0)),
            Err(WordError::PinOverflow)
        );
    }

    #[test]
    fn word_move_cycle_bumps_epoch_and_clears_flags() {
        let w = pack(0, false, true, false, 4);
        let w = begin_move(w).unwrap();
        assert!(is_moving(w) && !is_parked(w));
        let w = set_waiters(w);
        let w = end_move(w).unwrap();
        assert_eq!(unpack(w), (0, false, false, false, 5));
    }

    #[test]
    fn parker_notify_without_waiters_is_free() {
        let p = Parker::default();
        assert!(!p.notify());
    }

    #[test]
    fn parker_wakes_a_parked_thread() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let p = Arc::new(Parker::default());
        let flag = Arc::new(AtomicBool::new(true));
        let (p2, f2) = (Arc::clone(&p), Arc::clone(&flag));
        let t = std::thread::spawn(move || {
            while f2.load(Ordering::SeqCst) {
                p2.park_while(Duration::from_secs(5), || f2.load(Ordering::SeqCst));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        flag.store(false, Ordering::SeqCst);
        p.notify();
        t.join().unwrap();
    }

    #[test]
    fn table_slots_are_stable_and_sharded() {
        let t = ShardedTable::new();
        assert!(t.slot(ObjectId(0)).is_none());
        let a = t.ensure_slot(ObjectId(0)) as *const Slot;
        let b = t.ensure_slot(ObjectId(NSHARDS as u32)) as *const Slot;
        assert_ne!(a, b, "same shard, distinct slots");
        assert_eq!(t.ensure_slot(ObjectId(0)) as *const Slot, a);
        assert_eq!(t.slot(ObjectId(0)).unwrap() as *const Slot, a);
        // Ids one apart land on different shards.
        let s0 = t.shard(ObjectId(0)) as *const Shard;
        let s1 = t.shard(ObjectId(1)) as *const Shard;
        assert_ne!(s0, s1);
    }
}
