//! Best-fit free-list allocator for one tier's address space.
//!
//! The paper's runtime manages the scarce DRAM tier with a user-level
//! allocation service ("bounds the memory allocation within the DRAM space
//! allowance"). This module is that service: a contiguous address space
//! `[0, capacity)` carved by a best-fit free list with eager coalescing.
//! It is deliberately a real allocator — capacity pressure, fallback and
//! fragmentation in the experiments come from here, not from a counter.

use std::collections::BTreeMap;

/// A best-fit, eagerly-coalescing free-list allocator over a virtual
/// address range `[0, capacity)`.
#[derive(Debug, Clone)]
pub struct TierAllocator {
    capacity: u64,
    /// Free blocks keyed by start address, value = length. Invariants:
    /// blocks are disjoint, sorted (by key), and never adjacent (adjacent
    /// blocks are coalesced on free).
    free: BTreeMap<u64, u64>,
    /// Live allocations keyed by start address, value = length.
    live: BTreeMap<u64, u64>,
    used: u64,
    /// Total number of successful allocations over the lifetime.
    pub alloc_count: u64,
    /// Total number of frees over the lifetime.
    pub free_count: u64,
}

impl TierAllocator {
    /// Create an allocator over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        TierAllocator {
            capacity,
            free,
            live: BTreeMap::new(),
            used: 0,
            alloc_count: 0,
            free_count: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free (may be fragmented).
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Size of the largest contiguous free block.
    pub fn largest_free_block(&self) -> u64 {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// External fragmentation in `[0, 1]`: `1 - largest_free/free_total`
    /// (0 when all free space is one block or there is no free space).
    pub fn fragmentation(&self) -> f64 {
        let total = self.free_bytes();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_block() as f64 / total as f64
    }

    /// Whether an allocation of `size` bytes would currently succeed.
    pub fn can_fit(&self, size: u64) -> bool {
        size > 0 && self.largest_free_block() >= size
    }

    /// Allocate `size` bytes; returns the block's start address.
    ///
    /// Best-fit: the smallest free block that fits is chosen, splitting
    /// from its low end. Returns `None` if no block fits (including
    /// `size == 0`, which is rejected).
    pub fn alloc(&mut self, size: u64) -> Option<u64> {
        if size == 0 {
            return None;
        }
        // Smallest block with len >= size; tie broken by lowest address
        // (iteration order is address order, and `<` keeps the first).
        let mut best: Option<(u64, u64)> = None;
        for (&addr, &len) in &self.free {
            if len >= size && best.is_none_or(|(_, blen)| len < blen) {
                best = Some((addr, len));
                if len == size {
                    break; // perfect fit cannot be beaten
                }
            }
        }
        let (addr, len) = best?;
        self.free.remove(&addr);
        if len > size {
            self.free.insert(addr + size, len - size);
        }
        self.live.insert(addr, size);
        self.used += size;
        self.alloc_count += 1;
        Some(addr)
    }

    /// Free the allocation starting at `addr`. Returns the block length,
    /// or `None` if `addr` is not a live allocation.
    pub fn free(&mut self, addr: u64) -> Option<u64> {
        let size = self.live.remove(&addr)?;
        self.used -= size;
        self.free_count += 1;
        // Coalesce with the predecessor if it abuts this block.
        let mut start = addr;
        let mut len = size;
        if let Some((&paddr, &plen)) = self.free.range(..addr).next_back() {
            if paddr + plen == addr {
                self.free.remove(&paddr);
                start = paddr;
                len += plen;
            }
        }
        // Coalesce with the successor if this block abuts it.
        if let Some((&naddr, &nlen)) = self.free.range(addr + size..).next() {
            if addr + size == naddr {
                self.free.remove(&naddr);
                len += nlen;
            }
        }
        self.free.insert(start, len);
        Some(size)
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Number of free blocks (a proxy for fragmentation).
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Check internal invariants; used by tests and property tests.
    ///
    /// Verifies: accounting adds up, free blocks are disjoint and
    /// non-adjacent, live blocks are disjoint from each other and from
    /// free blocks, and everything lies within `[0, capacity)`.
    pub fn check_invariants(&self) -> Result<(), String> {
        let free_total: u64 = self.free.values().sum();
        let live_total: u64 = self.live.values().sum();
        if free_total + live_total != self.capacity {
            return Err(format!(
                "accounting mismatch: free {free_total} + live {live_total} != cap {}",
                self.capacity
            ));
        }
        if live_total != self.used {
            return Err("used counter out of sync".into());
        }
        // Merge both maps into a single address-ordered sequence and check
        // for exact tiling of the address space.
        let mut blocks: Vec<(u64, u64, bool)> = self
            .free
            .iter()
            .map(|(&a, &l)| (a, l, true))
            .chain(self.live.iter().map(|(&a, &l)| (a, l, false)))
            .collect();
        blocks.sort_unstable();
        let mut cursor = 0;
        let mut prev_free = false;
        for (addr, len, is_free) in blocks {
            if addr != cursor {
                return Err(format!("gap or overlap at {addr} (cursor {cursor})"));
            }
            if len == 0 {
                return Err(format!("zero-length block at {addr}"));
            }
            if is_free && prev_free {
                return Err(format!("uncoalesced adjacent free blocks at {addr}"));
            }
            prev_free = is_free;
            cursor = addr + len;
        }
        if cursor != self.capacity {
            return Err(format!(
                "blocks end at {cursor}, capacity {}",
                self.capacity
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocator_is_empty() {
        let a = TierAllocator::new(1024);
        assert_eq!(a.used(), 0);
        assert_eq!(a.free_bytes(), 1024);
        assert_eq!(a.largest_free_block(), 1024);
        assert_eq!(a.fragmentation(), 0.0);
        a.check_invariants().unwrap();
    }

    #[test]
    fn alloc_free_round_trip() {
        let mut a = TierAllocator::new(1024);
        let p = a.alloc(100).unwrap();
        assert_eq!(a.used(), 100);
        a.check_invariants().unwrap();
        assert_eq!(a.free(p), Some(100));
        assert_eq!(a.used(), 0);
        assert_eq!(a.largest_free_block(), 1024);
        a.check_invariants().unwrap();
    }

    #[test]
    fn zero_size_alloc_rejected() {
        let mut a = TierAllocator::new(1024);
        assert_eq!(a.alloc(0), None);
    }

    #[test]
    fn oversize_alloc_rejected() {
        let mut a = TierAllocator::new(1024);
        assert_eq!(a.alloc(2048), None);
        assert_eq!(a.used(), 0);
    }

    #[test]
    fn double_free_rejected() {
        let mut a = TierAllocator::new(1024);
        let p = a.alloc(64).unwrap();
        assert!(a.free(p).is_some());
        assert!(a.free(p).is_none());
        a.check_invariants().unwrap();
    }

    #[test]
    fn best_fit_prefers_tightest_block() {
        let mut a = TierAllocator::new(1000);
        // Carve free blocks of sizes 100 and 50 separated by live blocks.
        let p1 = a.alloc(100).unwrap(); // [0,100)
        let _p2 = a.alloc(10).unwrap(); // [100,110)
        let p3 = a.alloc(50).unwrap(); // [110,160)
        let _p4 = a.alloc(840).unwrap(); // rest
        a.free(p1);
        a.free(p3);
        a.check_invariants().unwrap();
        // A 40-byte request must come from the 50-byte hole, not the 100.
        let q = a.alloc(40).unwrap();
        assert_eq!(q, 110);
        a.check_invariants().unwrap();
    }

    #[test]
    fn coalescing_restores_single_block() {
        let mut a = TierAllocator::new(300);
        let p1 = a.alloc(100).unwrap();
        let p2 = a.alloc(100).unwrap();
        let p3 = a.alloc(100).unwrap();
        // Free middle, then neighbours: ends as one block.
        a.free(p2);
        assert_eq!(a.free_blocks(), 1);
        a.free(p1);
        assert_eq!(a.free_blocks(), 1, "left coalesce failed");
        a.free(p3);
        assert_eq!(a.free_blocks(), 1, "right coalesce failed");
        assert_eq!(a.largest_free_block(), 300);
        a.check_invariants().unwrap();
    }

    #[test]
    fn fragmentation_visible_after_interleaved_frees() {
        let mut a = TierAllocator::new(400);
        let mut ptrs = Vec::new();
        for _ in 0..4 {
            ptrs.push(a.alloc(100).unwrap());
        }
        // Free blocks 0 and 2: 200 free bytes but largest block 100.
        a.free(ptrs[0]);
        a.free(ptrs[2]);
        assert_eq!(a.free_bytes(), 200);
        assert_eq!(a.largest_free_block(), 100);
        assert!(a.fragmentation() > 0.49);
        assert!(!a.can_fit(150));
        assert!(a.can_fit(100));
        a.check_invariants().unwrap();
    }

    #[test]
    fn exact_fill_leaves_no_free_block() {
        let mut a = TierAllocator::new(256);
        let _ = a.alloc(256).unwrap();
        assert_eq!(a.free_bytes(), 0);
        assert_eq!(a.free_blocks(), 0);
        assert_eq!(a.fragmentation(), 0.0);
        a.check_invariants().unwrap();
    }
}
