//! Data-object identities and metadata.
//!
//! The paper manages placement at the granularity of *data objects* —
//! application-level arrays and tiles allocated through the runtime's
//! `malloc`-style API — not pages. Objects may be *chunked* (split into
//! sub-objects) so that part of an object larger than DRAM can still be
//! placed, mirroring the paper's large-object decomposition.

use std::fmt;

/// Identifier of a target data object registered with the runtime.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Index form for dense tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Static metadata of a data object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectMeta {
    /// The object's id.
    pub id: ObjectId,
    /// Name given at allocation time (e.g. `"lhs"`, `"A[3][2]"`).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// If this object is a chunk of a larger one: the parent id and the
    /// chunk index within the parent.
    pub chunk_of: Option<(ObjectId, u32)>,
}

impl ObjectMeta {
    /// True if this object is a chunk produced by large-object
    /// decomposition.
    pub fn is_chunk(&self) -> bool {
        self.chunk_of.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", ObjectId(7)), "obj#7");
    }

    #[test]
    fn chunk_flag() {
        let plain = ObjectMeta {
            id: ObjectId(0),
            name: "a".into(),
            size: 64,
            chunk_of: None,
        };
        let chunk = ObjectMeta {
            id: ObjectId(1),
            name: "a[0]".into(),
            size: 32,
            chunk_of: Some((ObjectId(0), 0)),
        };
        assert!(!plain.is_chunk());
        assert!(chunk.is_chunk());
    }
}
