//! Device presets for the memory technologies the paper family tabulates.
//!
//! The numbers come from the published NVM characteristics table that both
//! the SC paper and its journal sibling reproduce (NVMDB survey for
//! STT-RAM/PCRAM/ReRAM; the UCSD Optane PMM characterization for Optane):
//!
//! | Device   | read lat | write lat | read BW    | write BW  |
//! |----------|---------:|----------:|-----------:|----------:|
//! | DRAM     | 10 ns    | 10 ns     | 10 GB/s    | 9 GB/s    |
//! | CXL      | 85 ns    | 85 ns     | 2.5 GB/s   | 2.5 GB/s  |
//! | STT-RAM  | 60 ns    | 80 ns     | 0.8 GB/s   | 0.6 GB/s  |
//! | PCRAM    | 100 ns   | 1000 ns   | 0.5 GB/s   | 0.3 GB/s  |
//! | ReRAM    | 300 ns   | 3000 ns   | 0.06 GB/s  | 0.005 GB/s|
//! | Optane   | 250 ns   | 150 ns    | 3.9 GB/s   | 1.3 GB/s  |
//!
//! PCRAM/ReRAM latencies are midpoints of the published ranges; the CXL
//! row is a DDR expander behind a narrow link (added latency from the
//! published ~70–90 ns round-trip characterizations, bandwidth scaled to
//! this table's single-channel DDR baseline). Presets take an explicit
//! capacity because the capacity ratio between DRAM and NVM is an
//! experimental variable, not a device property. See `TIERS.md` at the
//! repo root for how these fields feed the performance model.

use crate::error::HmsError;
use crate::tier::TierSpec;

/// DDR4-class DRAM: the fast tier reference point.
pub fn dram(capacity: u64) -> TierSpec {
    TierSpec {
        name: "DRAM".into(),
        read_lat_ns: 10.0,
        write_lat_ns: 10.0,
        read_bw_gbps: 10.0,
        write_bw_gbps: 9.0,
        capacity,
    }
}

/// CXL-attached DDR memory expander: a *middle* tier between DRAM and
/// NVM. Device latency is symmetric (it is ordinary DRAM behind a
/// serial link; the published characterizations put the added
/// round-trip at ~70–90 ns), and bandwidth is link-bound rather than
/// media-bound, so reads and writes see the same ceiling.
///
/// Relative to Optane this inverts both sensitivities: much lower read
/// latency (85 vs 250 ns) but lower read bandwidth (2.5 vs 3.9 GB/s) —
/// latency-bound data wants CXL while read-streaming data still prefers
/// Optane, which is exactly what makes a 3-tier plan beat both 2-tier
/// configurations on mixed workloads.
pub fn cxl(capacity: u64) -> TierSpec {
    TierSpec {
        name: "CXL".into(),
        read_lat_ns: 85.0,
        write_lat_ns: 85.0,
        read_bw_gbps: 2.5,
        write_bw_gbps: 2.5,
        capacity,
    }
}

/// STT-RAM per the ITRS'13 projection used in the paper's table.
pub fn stt_ram(capacity: u64) -> TierSpec {
    TierSpec {
        name: "STT-RAM".into(),
        read_lat_ns: 60.0,
        write_lat_ns: 80.0,
        read_bw_gbps: 0.8,
        write_bw_gbps: 0.6,
        capacity,
    }
}

/// Phase-change memory (PCRAM); write latency is strongly asymmetric.
pub fn pcram(capacity: u64) -> TierSpec {
    TierSpec {
        name: "PCRAM".into(),
        read_lat_ns: 100.0,
        write_lat_ns: 1000.0,
        read_bw_gbps: 0.5,
        write_bw_gbps: 0.3,
        capacity,
    }
}

/// Resistive RAM (ReRAM); the most bandwidth-starved candidate.
pub fn reram(capacity: u64) -> TierSpec {
    TierSpec {
        name: "ReRAM".into(),
        read_lat_ns: 300.0,
        write_lat_ns: 3000.0,
        read_bw_gbps: 0.06,
        write_bw_gbps: 0.005,
        capacity,
    }
}

/// Intel Optane DC PMM (App-Direct-mode NUMA-node view).
///
/// Note the *reversed* latency asymmetry (writes appear faster than reads
/// because of the iMC write buffering) and the read/write bandwidth gap —
/// this preset is what makes the read/write-distinction ablation (E10)
/// meaningful.
pub fn optane_pmm(capacity: u64) -> TierSpec {
    TierSpec {
        name: "Optane PMM".into(),
        read_lat_ns: 250.0,
        write_lat_ns: 150.0,
        read_bw_gbps: 3.9,
        write_bw_gbps: 1.3,
        capacity,
    }
}

/// Quartz-style emulated NVM: DRAM with bandwidth scaled to `bw_frac` of
/// DRAM's (latency unchanged). `emulated_bw(0.5, c)` is the paper's
/// "1/2 DRAM BW" configuration. Fails on a non-positive or non-finite
/// fraction.
pub fn emulated_bw(bw_frac: f64, capacity: u64) -> Result<TierSpec, HmsError> {
    let mut t = dram(capacity).scale_bandwidth(bw_frac)?;
    t.name = format!("NVM({}x BW)", bw_frac);
    Ok(t)
}

/// Quartz-style emulated NVM: DRAM with latency scaled by `lat_mult`
/// (bandwidth unchanged). `emulated_lat(4.0, c)` is "4x DRAM latency".
/// Fails on a non-positive or non-finite multiplier.
pub fn emulated_lat(lat_mult: f64, capacity: u64) -> Result<TierSpec, HmsError> {
    let mut t = dram(capacity).scale_latency(lat_mult)?;
    t.name = format!("NVM({}x LAT)", lat_mult);
    Ok(t)
}

/// NUMA-remote-node emulation as used for the paper's strong-scaling runs:
/// 60% of DRAM bandwidth and 1.89x DRAM latency. Infallible — the scale
/// factors are compile-time constants.
pub fn numa_remote(capacity: u64) -> TierSpec {
    let d = dram(capacity);
    TierSpec {
        name: "NVM(NUMA-remote)".into(),
        read_lat_ns: d.read_lat_ns * 1.89,
        write_lat_ns: d.write_lat_ns * 1.89,
        read_bw_gbps: d.read_bw_gbps * 0.6,
        write_bw_gbps: d.write_bw_gbps * 0.6,
        capacity,
    }
}

/// Every named device preset, for table-driven tests and sweeps.
pub fn all_nvm_presets(capacity: u64) -> Vec<TierSpec> {
    vec![
        stt_ram(capacity),
        pcram(capacity),
        reram(capacity),
        optane_pmm(capacity),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        let cap = 1 << 30;
        for spec in all_nvm_presets(cap).iter().chain([&dram(cap)]) {
            spec.validate().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(spec.capacity, cap);
        }
    }

    #[test]
    fn nvm_presets_are_slower_than_dram() {
        let cap = 1 << 30;
        let d = dram(cap);
        for spec in all_nvm_presets(cap) {
            assert!(
                spec.read_lat_ns > d.read_lat_ns,
                "{} read latency should exceed DRAM",
                spec.name
            );
            assert!(
                spec.read_bw_gbps < d.read_bw_gbps,
                "{} read bandwidth should be below DRAM",
                spec.name
            );
        }
    }

    #[test]
    fn cxl_sits_between_dram_and_optane_on_latency() {
        let c = cxl(1 << 30);
        c.validate().unwrap();
        let d = dram(1);
        let o = optane_pmm(1);
        assert!(d.read_lat_ns < c.read_lat_ns && c.read_lat_ns < o.read_lat_ns);
        // The inversion that makes the middle tier interesting: CXL wins
        // on latency, Optane wins on read bandwidth.
        assert!(c.read_bw_gbps < o.read_bw_gbps);
        assert!(c.write_bw_gbps > o.write_bw_gbps);
    }

    #[test]
    fn optane_write_latency_is_below_read() {
        let o = optane_pmm(1);
        assert!(o.write_lat_ns < o.read_lat_ns);
        assert!(o.write_bw_gbps < o.read_bw_gbps);
    }

    #[test]
    fn emulated_bw_halves_only_bandwidth() {
        let e = emulated_bw(0.5, 1 << 20).unwrap();
        let d = dram(1 << 20);
        assert!((e.read_bw_gbps - d.read_bw_gbps / 2.0).abs() < 1e-12);
        assert!((e.read_lat_ns - d.read_lat_ns).abs() < 1e-12);
    }

    #[test]
    fn emulated_lat_scales_only_latency() {
        let e = emulated_lat(8.0, 1 << 20).unwrap();
        let d = dram(1 << 20);
        assert!((e.read_lat_ns - 80.0).abs() < 1e-12);
        assert!((e.write_bw_gbps - d.write_bw_gbps).abs() < 1e-12);
    }

    #[test]
    fn emulated_presets_reject_bad_factors() {
        assert!(emulated_bw(0.0, 1 << 20).is_err());
        assert!(emulated_lat(f64::NAN, 1 << 20).is_err());
    }

    #[test]
    fn numa_remote_matches_published_point() {
        let e = numa_remote(1 << 20);
        assert!((e.read_bw_gbps - 6.0).abs() < 1e-9);
        assert!((e.read_lat_ns - 18.9).abs() < 1e-9);
    }
}
