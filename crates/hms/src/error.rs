//! Error type for heterogeneous-memory operations.

use crate::object::ObjectId;
use crate::tier::TierKind;
use std::fmt;

/// Errors produced by the HMS object manager and allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HmsError {
    /// The requested tier cannot hold the allocation (and fallback was not
    /// permitted or also failed).
    OutOfMemory {
        /// Tier that was asked for the bytes.
        tier: TierKind,
        /// Bytes requested.
        requested: u64,
        /// Largest contiguous free block currently available in that tier.
        largest_free: u64,
    },
    /// An operation referenced an object id that is not live.
    NoSuchObject(ObjectId),
    /// The object is already resident on the requested tier.
    AlreadyResident(ObjectId, TierKind),
    /// An allocation of zero bytes was requested.
    ZeroSizeAllocation,
    /// The object is pinned (tasks using it are in flight) and cannot be
    /// migrated or freed.
    Pinned(ObjectId),
    /// The object is mid-migration (a two-phase move was begun and not
    /// yet committed or aborted); it cannot be pinned, freed, or moved
    /// again until the in-flight move resolves.
    Moving(ObjectId),
    /// A tier specification failed validation (non-positive latency or
    /// bandwidth, zero capacity, non-finite scale factor, ...).
    InvalidSpec {
        /// Device name of the offending spec.
        name: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A memory-system configuration failed validation.
    InvalidConfig(String),
}

impl fmt::Display for HmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmsError::OutOfMemory {
                tier,
                requested,
                largest_free,
            } => write!(
                f,
                "out of memory on {tier}: requested {requested} B, largest free block {largest_free} B"
            ),
            HmsError::NoSuchObject(id) => write!(f, "no such object: {id:?}"),
            HmsError::AlreadyResident(id, tier) => {
                write!(f, "object {id:?} already resident on {tier}")
            }
            HmsError::ZeroSizeAllocation => write!(f, "zero-size allocation"),
            HmsError::Pinned(id) => write!(f, "object {id:?} is pinned by in-flight tasks"),
            HmsError::Moving(id) => write!(f, "object {id:?} is mid-migration"),
            HmsError::InvalidSpec { name, reason } => {
                write!(f, "invalid tier spec {name}: {reason}")
            }
            HmsError::InvalidConfig(reason) => write!(f, "invalid HMS configuration: {reason}"),
        }
    }
}

impl std::error::Error for HmsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HmsError::OutOfMemory {
            tier: TierKind::Dram,
            requested: 128,
            largest_free: 64,
        };
        let s = e.to_string();
        assert!(s.contains("DRAM") && s.contains("128") && s.contains("64"));
        assert!(HmsError::ZeroSizeAllocation.to_string().contains("zero"));
        let e = HmsError::InvalidSpec {
            name: "PCRAM".into(),
            reason: "latencies must be positive".into(),
        };
        assert!(e.to_string().contains("PCRAM") && e.to_string().contains("positive"));
        assert!(HmsError::InvalidConfig("copy bandwidth".into())
            .to_string()
            .contains("copy bandwidth"));
    }
}
