//! Thread-safe sharing of one [`Hms`] between task workers and the
//! background migration engine.
//!
//! The measured runtime's parallel mode has two kinds of threads touching
//! the object table concurrently:
//!
//! * **workers** pin a task's objects, resolve them to raw arena bytes,
//!   and run the traffic kernels *outside* any lock;
//! * **the migration thread** begins a two-phase move, performs the long
//!   throttled copy *outside* any lock, and commits the residency flip.
//!
//! [`SharedHms`] arbitrates them with one mutex over the object table and
//! a condition variable for the two blocking edges:
//!
//! * a worker that needs an object **mid-move** waits until the move
//!   commits (the executor must not run a task while its data is being
//!   copied) — the first such wait stamps the migration's `needed_at`,
//!   which is exactly the paper's exposed-vs-overlapped boundary;
//! * the migration thread that finds its object **pinned** waits until
//!   the pin count drains (never move bytes a task is touching).
//!
//! Deadlock-freedom: both waits happen while holding *no* pins and no
//! tickets (workers pin all-or-nothing under one lock acquisition; the
//! migrator owns at most one ticket and never waits while holding it), so
//! every wait is resolved by a thread that itself never blocks on the
//! waiter.
//!
//! Why this is a single mutex rather than sharding: the lock only covers
//! table bookkeeping (pin counts, residency flips, pointer resolution) —
//! microseconds — while the expensive parts (traffic kernels, throttled
//! copies) run lock-free on raw pointers whose stability is guaranteed by
//! the pin/mid-move discipline, not by the lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::{Duration, Instant};

use crate::backend::CopyOutcome;
use crate::error::HmsError;
use crate::memory::{Hms, MoveTicket};
use crate::migrate::MigrationRecord;
use crate::object::ObjectId;
use crate::tier::TierKind;
use crate::Ns;

/// Bookkeeping for one in-flight background migration.
#[derive(Debug)]
struct InFlight {
    /// Wall-clock ns (run epoch) the copy started.
    started_at: Ns,
    /// Wall-clock ns the request was issued to the engine.
    issued_at: Ns,
    /// First wall-clock ns a worker blocked needing the object, if any.
    needed_at: Option<Ns>,
}

#[derive(Debug)]
struct State {
    hms: Hms,
    inflight: HashMap<ObjectId, InFlight>,
}

/// One object pinned for a task and resolved to raw bytes.
///
/// Created and consumed on the same worker thread; the pointer stays
/// valid until the matching [`SharedHms::unpin_task`] because the pin
/// blocks moves and frees, and arenas never remap.
#[derive(Debug)]
pub struct PinnedObject {
    /// The pinned object.
    pub id: ObjectId,
    /// Tier the object resides on for the duration of the pin.
    pub tier: TierKind,
    ptr: *mut u8,
    len: u64,
}

impl PinnedObject {
    /// Raw base pointer of the object's live bytes.
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Object size in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the object is empty (it never is; allocation rejects 0).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The set of objects one task pinned, plus how long it had to wait for
/// in-flight migrations before it could start.
#[derive(Debug)]
pub struct TaskPins {
    /// One entry per requested object, in request order.
    pub objects: Vec<PinnedObject>,
    /// Wall-clock ns spent blocked on mid-move objects before pinning.
    pub waited_ns: Ns,
}

/// A begun background migration: ticket plus resolved raw pointers.
///
/// Produced by [`SharedHms::begin_move_blocking`] on the migration
/// thread, which copies `size` bytes from `src` to `dst` with the lock
/// released and then resolves via [`SharedHms::commit_move`] or
/// [`SharedHms::abort_move`].
#[derive(Debug)]
#[must_use = "resolve with commit_move or abort_move"]
pub struct StartedMove {
    ticket: MoveTicket,
    /// Source bytes (live until commit/abort).
    pub src: *const u8,
    /// Destination bytes (reserved until commit/abort).
    pub dst: *mut u8,
    /// Wall-clock ns the request was issued.
    pub issued_at: Ns,
    /// Wall-clock ns the move began (destination reserved).
    pub started_at: Ns,
}

impl StartedMove {
    /// Bytes to copy.
    pub fn size(&self) -> u64 {
        self.ticket.size()
    }

    /// The object being moved.
    pub fn object(&self) -> ObjectId {
        self.ticket.object()
    }
}

/// Callback invoked when a background migration actually starts:
/// `(object, pin count at start)`. Installed by sanitize mode to catch a
/// migrator copying bytes a task is using (the count is 0 whenever the
/// pin/mid-move discipline holds). Must not call back into the
/// [`SharedHms`] that invokes it.
pub type MoveObserver = Box<dyn Fn(ObjectId, u64) + Send + Sync>;

/// A [`Hms`] shareable across worker threads and one migration thread.
///
/// **Lock poisoning.** A worker that panics while holding the table
/// lock poisons it. Every mutation under the lock is complete before
/// any panic-capable call, so the table state is consistent at every
/// unlock point; the wrapper therefore *recovers* the guard instead of
/// cascading the panic into every other worker and the migration
/// thread, and counts the recovery ([`SharedHms::poisoned`]) the same
/// way the obs emitter degrades since PR 4.
pub struct SharedHms {
    state: Mutex<State>,
    changed: Condvar,
    epoch: Instant,
    /// Times a poisoned lock was recovered instead of panicking.
    poisoned: AtomicU64,
    /// Migration-start observer (sanitize mode), if installed.
    move_observer: Mutex<Option<MoveObserver>>,
}

impl std::fmt::Debug for SharedHms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedHms")
            .field("state", &self.state)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

/// How long a blocked migration re-checks its cancel flag while waiting
/// for pins to drain.
const CANCEL_POLL: Duration = Duration::from_millis(20);

impl SharedHms {
    /// Wrap an [`Hms`] (with its backend already installed and objects
    /// allocated) for shared use.
    pub fn new(hms: Hms) -> Self {
        SharedHms {
            state: Mutex::new(State {
                hms,
                inflight: HashMap::new(),
            }),
            changed: Condvar::new(),
            epoch: Instant::now(),
            poisoned: AtomicU64::new(0),
            move_observer: Mutex::new(None),
        }
    }

    /// Acquire the table lock, recovering (and counting) a poisoned
    /// guard instead of propagating the panic.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(e) => {
                self.poisoned.fetch_add(1, Ordering::Relaxed);
                e.into_inner()
            }
        }
    }

    /// Condvar wait with the same poison recovery as [`Self::lock_state`].
    fn wait_changed<'a>(&self, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        match self.changed.wait(guard) {
            Ok(guard) => guard,
            Err(e) => {
                self.poisoned.fetch_add(1, Ordering::Relaxed);
                e.into_inner()
            }
        }
    }

    /// Timed condvar wait with poison recovery.
    fn wait_changed_timeout<'a>(
        &self,
        guard: MutexGuard<'a, State>,
        dur: Duration,
    ) -> (MutexGuard<'a, State>, WaitTimeoutResult) {
        match self.changed.wait_timeout(guard, dur) {
            Ok(pair) => pair,
            Err(e) => {
                self.poisoned.fetch_add(1, Ordering::Relaxed);
                e.into_inner()
            }
        }
    }

    /// Times a poisoned lock was recovered (a worker panicked while
    /// holding it). Nonzero means a worker died, not that the table is
    /// inconsistent.
    pub fn poisoned(&self) -> u64 {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Install a migration-start observer (sanitize mode). The callback
    /// runs on the migration thread with no table lock held.
    pub fn set_move_observer(&self, obs: MoveObserver) {
        *self
            .move_observer
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(obs);
    }

    /// Whether a background migration of `id` is currently in flight
    /// (begun, not yet committed or aborted).
    pub fn is_mid_move(&self, id: ObjectId) -> bool {
        self.lock_state().inflight.contains_key(&id)
    }

    /// Every object currently mid-move, ascending.
    pub fn mid_move_objects(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.lock_state().inflight.keys().copied().collect();
        v.sort();
        v
    }

    /// Wall-clock ns since this wrapper was created — the time axis of
    /// every [`MigrationRecord`] it produces.
    pub fn now_ns(&self) -> Ns {
        self.epoch.elapsed().as_nanos() as f64
    }

    /// Run `f` with exclusive access to the underlying [`Hms`] (setup,
    /// final reporting).
    pub fn with<R>(&self, f: impl FnOnce(&mut Hms) -> R) -> R {
        let mut st = self.lock_state();
        f(&mut st.hms)
    }

    /// Unwrap the inner [`Hms`] (after all threads are joined).
    pub fn into_inner(self) -> Hms {
        self.state
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .hms
    }

    /// The executor's data-ready gate: block until none of `ids` is
    /// mid-move, stamping `needed_at` on every in-flight migration that
    /// made us wait. Returns wall-clock ns waited.
    pub fn wait_ready(&self, ids: &[ObjectId]) -> Ns {
        let t0 = self.now_ns();
        let mut st = self.lock_state();
        loop {
            let mut blocked = false;
            for id in ids {
                if let Some(inf) = st.inflight.get_mut(id) {
                    blocked = true;
                    if inf.needed_at.is_none() {
                        inf.needed_at = Some(self.now_ns());
                    }
                }
            }
            if !blocked {
                return self.now_ns() - t0;
            }
            st = self.wait_changed(st);
        }
    }

    /// Pin every object in `ids` for one task and resolve each to raw
    /// bytes, waiting out any in-flight migration of them first.
    ///
    /// All-or-nothing under a single lock acquisition: while waiting the
    /// task holds no pins, so it cannot deadlock against the migration
    /// thread waiting for pins to drain.
    pub fn pin_for_task(&self, ids: &[ObjectId]) -> Result<TaskPins, HmsError> {
        let t0 = self.now_ns();
        let mut st = self.lock_state();
        loop {
            let mut blocked = false;
            for id in ids {
                if let Some(inf) = st.inflight.get_mut(id) {
                    blocked = true;
                    if inf.needed_at.is_none() {
                        inf.needed_at = Some(self.now_ns());
                    }
                }
            }
            if !blocked {
                break;
            }
            st = self.wait_changed(st);
        }
        let mut objects = Vec::with_capacity(ids.len());
        for (i, id) in ids.iter().enumerate() {
            match st.hms.pin(*id) {
                Ok(()) => {}
                Err(e) => {
                    for done in &ids[..i] {
                        let _ = st.hms.unpin(*done);
                    }
                    return Err(e);
                }
            }
        }
        for id in ids {
            let (ptr, len, tier) = st.hms.object_ptr(*id)?.ok_or(HmsError::NoSuchObject(*id))?;
            objects.push(PinnedObject {
                id: *id,
                tier,
                ptr,
                len,
            });
        }
        Ok(TaskPins {
            objects,
            waited_ns: self.now_ns() - t0,
        })
    }

    /// Release the pins a task took with [`SharedHms::pin_for_task`] and
    /// wake anyone waiting (a migration blocked on the pin count).
    pub fn unpin_task(&self, ids: &[ObjectId]) {
        let mut st = self.lock_state();
        for id in ids {
            let _ = st.hms.unpin(*id);
        }
        drop(st);
        self.changed.notify_all();
    }

    /// Begin a background migration of `id` to `to`, waiting for its pin
    /// count to drain first.
    ///
    /// Returns `Ok(None)` when the move is moot (already resident, no
    /// destination space, byte-less substrate) or when `cancel` was set
    /// while waiting — the engine skips and moves on. Errors are real
    /// table inconsistencies.
    pub fn begin_move_blocking(
        &self,
        id: ObjectId,
        to: TierKind,
        cancel: &AtomicBool,
    ) -> Result<Option<StartedMove>, HmsError> {
        let issued_at = self.now_ns();
        let mut st = self.lock_state();
        loop {
            if cancel.load(Ordering::Relaxed) {
                return Ok(None);
            }
            match st.hms.begin_move(id, to) {
                Ok(ticket) => {
                    let Some((src, dst)) = st.hms.move_ptrs(&ticket) else {
                        st.hms.abort_move(ticket);
                        return Ok(None);
                    };
                    let started_at = self.now_ns();
                    let pins = u64::from(st.hms.pin_count(id).unwrap_or(0));
                    st.inflight.insert(
                        id,
                        InFlight {
                            started_at,
                            issued_at,
                            needed_at: None,
                        },
                    );
                    // Report the start with the table lock released so
                    // the observer cannot deadlock against it.
                    drop(st);
                    if let Some(obs) = self
                        .move_observer
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .as_ref()
                    {
                        obs(id, pins);
                    }
                    return Ok(Some(StartedMove {
                        ticket,
                        src,
                        dst,
                        issued_at,
                        started_at,
                    }));
                }
                Err(HmsError::Pinned(_)) => {
                    // Wait for unpins, polling the cancel flag.
                    let (guard, _) = self.wait_changed_timeout(st, CANCEL_POLL);
                    st = guard;
                }
                Err(HmsError::AlreadyResident(..)) | Err(HmsError::OutOfMemory { .. }) => {
                    return Ok(None)
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Commit a background migration whose bytes have been copied:
    /// flip residency, fold `outcome` into the backend stats, wake
    /// waiting workers, and return the wall-clock [`MigrationRecord`]
    /// (with `needed_at` stamped if any worker blocked on it).
    pub fn commit_move(&self, started: StartedMove, outcome: &CopyOutcome) -> MigrationRecord {
        let mut st = self.lock_state();
        let object = started.ticket.object();
        let (from, to, bytes) = (
            started.ticket.from(),
            started.ticket.to(),
            started.ticket.size(),
        );
        st.hms.commit_move(started.ticket, outcome);
        let inf = st
            .inflight
            .remove(&object)
            .expect("committed move must be in flight");
        drop(st);
        self.changed.notify_all();
        MigrationRecord {
            object,
            bytes,
            from,
            to,
            issued_at: inf.issued_at,
            start: inf.started_at,
            finish: self.now_ns(),
            needed_at: inf.needed_at,
        }
    }

    /// Abandon a begun migration (cancellation mid-copy): the object
    /// stays put, the destination reservation is released, and waiting
    /// workers are woken.
    pub fn abort_move(&self, started: StartedMove) {
        let mut st = self.lock_state();
        let object = started.ticket.object();
        st.hms.abort_move(started.ticket);
        st.inflight.remove(&object);
        drop(st);
        self.changed.notify_all();
    }
}

// SAFETY: `PinnedObject`/`StartedMove` carry raw pointers but are created
// and consumed on a single thread; they are deliberately !Send by default
// and we do not override that. `SharedHms` itself is Send + Sync because
// `Hms: Send` (the backend trait requires it) and all interior access
// goes through the mutex.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::HmsConfig;
    use crate::presets;
    use std::sync::Arc;

    // A minimal byte-backed test substrate (heap, not mmap — tahoe-realmem
    // sits above this crate).
    #[derive(Debug)]
    struct HeapBackend {
        dram: Vec<u8>,
        nvm: Vec<u8>,
        stats: crate::BackendStats,
    }

    impl HeapBackend {
        fn new(dram: usize, nvm: usize) -> Self {
            HeapBackend {
                dram: vec![0; dram],
                nvm: vec![0; nvm],
                stats: crate::BackendStats {
                    is_real: true,
                    ..Default::default()
                },
            }
        }
    }

    impl crate::TierBackend for HeapBackend {
        fn name(&self) -> &'static str {
            "heap-test"
        }

        fn data_ptr(&mut self, tier: TierKind, addr: u64, len: u64) -> Option<*mut u8> {
            let buf = match tier {
                TierKind::Dram => &mut self.dram,
                TierKind::Nvm => &mut self.nvm,
            };
            if addr.checked_add(len)? > buf.len() as u64 {
                return None;
            }
            // SAFETY: the range was just bounds-checked against the buffer.
            Some(unsafe { buf.as_mut_ptr().add(addr as usize) })
        }

        fn record_external_copy(
            &mut self,
            _object: u32,
            _from: TierKind,
            _to: TierKind,
            outcome: &CopyOutcome,
        ) {
            self.stats.copies += 1;
            self.stats.copied_bytes += outcome.bytes;
            self.stats.copy_wall_ns += outcome.wall_ns;
        }

        fn stats(&self) -> crate::BackendStats {
            self.stats
        }
    }

    fn shared(dram: u64, nvm: u64) -> SharedHms {
        let config = HmsConfig::new(presets::dram(dram), presets::optane_pmm(nvm), 5.0).unwrap();
        let mut hms = Hms::new(config);
        hms.set_backend(Box::new(HeapBackend::new(dram as usize, nvm as usize)));
        SharedHms::new(hms)
    }

    #[test]
    fn pin_resolves_bytes_and_blocks_migration() {
        let sh = shared(1 << 16, 1 << 18);
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        let pins = sh.pin_for_task(&[id]).unwrap();
        assert_eq!(pins.objects.len(), 1);
        assert_eq!(pins.objects[0].tier, TierKind::Nvm);
        assert_eq!(pins.objects[0].len(), 4096);
        // A pinned object rejects begin_move outright on the plain Hms.
        sh.with(|h| {
            assert_eq!(
                h.begin_move(id, TierKind::Dram).unwrap_err(),
                HmsError::Pinned(id)
            )
        });
        sh.unpin_task(&[id]);
        sh.with(|h| assert_eq!(h.pin_count(id).unwrap(), 0));
    }

    #[test]
    fn background_move_carries_bytes_and_records_overlap() {
        let sh = Arc::new(shared(1 << 16, 1 << 18));
        let id = sh.with(|h| h.alloc_object("x", 8192, TierKind::Nvm, false).unwrap());
        // Fill through a pin so the copy has recognizable contents.
        let pins = sh.pin_for_task(&[id]).unwrap();
        // SAFETY: the pin guarantees 8192 exclusive writable bytes.
        unsafe { pins.objects[0].as_ptr().write_bytes(0xCD, 8192) };
        sh.unpin_task(&[id]);

        let cancel = AtomicBool::new(false);
        let sm = sh
            .begin_move_blocking(id, TierKind::Dram, &cancel)
            .unwrap()
            .expect("move must start");
        // Mid-move, pins must wait — emulate a worker on another thread.
        let sh2 = Arc::clone(&sh);
        let waiter = std::thread::spawn(move || {
            let pins = sh2.pin_for_task(&[id]).unwrap();
            let tier = pins.objects[0].tier;
            // SAFETY: the pin guarantees the object's bytes are readable.
            let first = unsafe { *pins.objects[0].as_ptr() };
            sh2.unpin_task(&[id]);
            (tier, first, pins.waited_ns)
        });
        // Give the waiter time to block, then finish the copy.
        std::thread::sleep(Duration::from_millis(20));
        // SAFETY: `begin_move_blocking` resolved both disjoint ranges and
        // fenced the object until commit.
        unsafe { std::ptr::copy_nonoverlapping(sm.src, sm.dst, sm.size() as usize) };
        let rec = sh.commit_move(
            sm,
            &CopyOutcome {
                bytes: 8192,
                wall_ns: 100.0,
                throttle_ns: 0.0,
                chunks: 1,
            },
        );
        let (tier, first, waited) = waiter.join().unwrap();
        assert_eq!(tier, TierKind::Dram, "waiter must see post-move residency");
        assert_eq!(first, 0xCD, "bytes must have physically moved");
        assert!(waited > 0.0, "waiter must have measured its block");
        assert_eq!(rec.object, id);
        assert!(rec.needed_at.is_some(), "blocked pin must stamp needed_at");
        assert!(rec.finish >= rec.start && rec.start >= rec.issued_at);
        let stats = sh.with(|h| h.backend_stats());
        assert_eq!(stats.copies, 1);
        assert_eq!(stats.copied_bytes, 8192);
    }

    #[test]
    fn begin_move_waits_for_pins_and_honors_cancel() {
        let sh = shared(1 << 16, 1 << 18);
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        let _pins = sh.pin_for_task(&[id]).unwrap();
        let cancel = AtomicBool::new(true);
        // Pinned + cancelled: returns None instead of waiting forever.
        assert!(sh
            .begin_move_blocking(id, TierKind::Dram, &cancel)
            .unwrap()
            .is_none());
    }

    #[test]
    fn aborted_move_leaves_object_in_place() {
        let sh = shared(1 << 16, 1 << 18);
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        let cancel = AtomicBool::new(false);
        let sm = sh
            .begin_move_blocking(id, TierKind::Dram, &cancel)
            .unwrap()
            .unwrap();
        sh.abort_move(sm);
        sh.with(|h| {
            assert_eq!(h.tier_of(id).unwrap(), TierKind::Nvm);
            assert!(!h.is_moving(id).unwrap());
            assert_eq!(h.used(TierKind::Dram), 0, "reservation released");
        });
    }

    #[test]
    fn moot_moves_are_skipped() {
        let sh = shared(1 << 12, 1 << 18);
        let cancel = AtomicBool::new(false);
        let there = sh.with(|h| h.alloc_object("d", 1024, TierKind::Dram, false).unwrap());
        assert!(sh
            .begin_move_blocking(there, TierKind::Dram, &cancel)
            .unwrap()
            .is_none());
        let big = sh.with(|h| {
            h.alloc_object("big", 1 << 14, TierKind::Nvm, false)
                .unwrap()
        });
        // 16 KiB cannot fit the 4 KiB DRAM tier: skipped, not an error.
        assert!(sh
            .begin_move_blocking(big, TierKind::Dram, &cancel)
            .unwrap()
            .is_none());
    }

    #[test]
    fn wait_ready_returns_immediately_when_nothing_inflight() {
        let sh = shared(1 << 16, 1 << 18);
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        let waited = sh.wait_ready(&[id]);
        assert!(waited < 1e9, "no in-flight move, no real wait");
    }

    #[test]
    fn mid_move_introspection_tracks_inflight_set() {
        let sh = shared(1 << 16, 1 << 18);
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        assert!(!sh.is_mid_move(id));
        assert!(sh.mid_move_objects().is_empty());
        let cancel = AtomicBool::new(false);
        let sm = sh
            .begin_move_blocking(id, TierKind::Dram, &cancel)
            .unwrap()
            .unwrap();
        assert!(sh.is_mid_move(id));
        assert_eq!(sh.mid_move_objects(), vec![id]);
        sh.abort_move(sm);
        assert!(!sh.is_mid_move(id), "abort clears the in-flight set");
    }

    #[test]
    fn move_observer_sees_each_start_with_zero_pins() {
        use std::sync::atomic::AtomicU64;
        let sh = shared(1 << 16, 1 << 18);
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        let starts = Arc::new(AtomicU64::new(0));
        let max_pins = Arc::new(AtomicU64::new(0));
        let (s2, p2) = (Arc::clone(&starts), Arc::clone(&max_pins));
        sh.set_move_observer(Box::new(move |_id, pins| {
            s2.fetch_add(1, Ordering::Relaxed);
            p2.fetch_max(pins, Ordering::Relaxed);
        }));
        let cancel = AtomicBool::new(false);
        let sm = sh
            .begin_move_blocking(id, TierKind::Dram, &cancel)
            .unwrap()
            .unwrap();
        sh.abort_move(sm);
        assert_eq!(starts.load(Ordering::Relaxed), 1);
        assert_eq!(
            max_pins.load(Ordering::Relaxed),
            0,
            "the correct migrator never starts a move with live pins"
        );
    }

    #[test]
    fn poisoned_lock_degrades_to_counted_recovery() {
        let sh = Arc::new(shared(1 << 16, 1 << 18));
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        // A worker panics while holding the table lock.
        let sh2 = Arc::clone(&sh);
        let _ = std::thread::spawn(move || {
            sh2.with(|_h| panic!("worker died holding the hms lock"));
        })
        .join();
        // Other workers keep operating on the recovered (consistent)
        // table instead of cascading the panic.
        let pins = sh.pin_for_task(&[id]).expect("pin after poison");
        assert_eq!(pins.objects.len(), 1);
        sh.unpin_task(&[id]);
        assert!(sh.poisoned() >= 1, "recovery must be counted");
        assert_eq!(sh.with(|h| h.pin_count(id).unwrap()), 0);
        // And the consuming path recovers too.
        let sh = Arc::try_unwrap(sh).expect("sole owner");
        let _hms = sh.into_inner();
    }
}
