//! Thread-safe sharing of one [`Hms`] between task workers and the
//! background migration engine.
//!
//! The measured runtime's parallel mode has two kinds of threads touching
//! the object table concurrently:
//!
//! * **workers** pin a task's objects, resolve them to raw arena bytes,
//!   and run the traffic kernels *outside* any lock;
//! * **the migration thread** begins a two-phase move, performs the long
//!   throttled copy *outside* any lock, and commits the residency flip.
//!
//! Since PR 6 the arbitration is lock-free on the hot path. Every object
//! owns a packed `AtomicU64` state word ([`crate::lockfree::word`]) in a
//! sharded slot table: workers pin and unpin with a single CAS, and the
//! word's `MOVING` bit is the mid-move fence. The slot also caches the
//! object's resolved location (pointer, length, tier), so the pin path
//! never touches a mutex. Blocking is reserved for the two genuinely
//! blocking edges, and parks on the object's *shard* event-count rather
//! than one global condvar:
//!
//! * a worker that needs an object **mid-move** parks until the move
//!   commits (the executor must not run a task while its data is being
//!   copied) — the first such wait stamps the migration's `needed_at`,
//!   which is exactly the paper's exposed-vs-overlapped boundary;
//! * the migration thread that finds its object **pinned** sets the
//!   `PARKED` bit and parks until an unpin drains the count to zero
//!   (never move bytes a task is touching).
//!
//! Deadlock-freedom: both waits happen while holding *no* pins and no
//! tickets. Workers pin all-or-nothing — if the migrator claims `MOVING`
//! mid-acquisition they roll their pins back and re-wait — and the
//! single migrator owns at most one ticket and never waits while holding
//! it (`commit_move`/`abort_move` never block), so every wait is
//! resolved by a thread that itself never blocks on the waiter.
//!
//! The inner `Mutex<Hms>` survives only for the *slow* paths — the
//! allocator bookkeeping of a move's reserve/commit/abort, and the
//! [`SharedHms::with`] escape hatch for setup and reporting. No worker
//! takes it during a run, so a worker panic can no longer convoy the
//! whole pool behind a poisoned table lock; pins themselves are released
//! by [`TaskPins`]' RAII drop even when the holder panics.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::backend::CopyOutcome;
use crate::error::HmsError;
use crate::lockfree::{word, Counters, ShardedTable, Slot, TIER_DRAM, TIER_NVM};
use crate::memory::Hms;
use crate::migrate::MigrationRecord;
use crate::object::ObjectId;
use crate::tier::TierKind;
use crate::Ns;

pub use crate::lockfree::ContentionStats;

/// One object pinned for a task and resolved to raw bytes.
///
/// Created and consumed on the same worker thread; the pointer stays
/// valid until the owning [`TaskPins`] drops because the pin blocks
/// moves and frees, and arenas never remap.
#[derive(Debug)]
pub struct PinnedObject {
    /// The pinned object.
    pub id: ObjectId,
    /// Tier the object resides on for the duration of the pin.
    pub tier: TierKind,
    ptr: *mut u8,
    len: u64,
}

impl PinnedObject {
    /// Raw base pointer of the object's live bytes.
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Object size in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the object is empty (it never is; allocation rejects 0).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The set of objects one task pinned, plus how long it had to wait for
/// in-flight migrations before it could start.
///
/// RAII: dropping releases every pin (and wakes a parked migrator), so
/// a worker panic unwinding through a task body cannot leak a pin and
/// wedge the migration engine.
#[derive(Debug)]
#[must_use = "pins release on drop; binding to _ releases them immediately"]
pub struct TaskPins<'h> {
    shared: &'h SharedHms,
    /// One entry per requested object, in request order.
    pub objects: Vec<PinnedObject>,
    /// Wall-clock ns spent blocked on mid-move objects before pinning.
    pub waited_ns: Ns,
}

impl Drop for TaskPins<'_> {
    fn drop(&mut self) {
        for o in &self.objects {
            self.shared.unpin_one(o.id);
        }
    }
}

/// A begun background migration: ticket plus resolved raw pointers.
///
/// Produced by [`SharedHms::begin_move_blocking`] on the migration
/// thread, which copies `size` bytes from `src` to `dst` with no lock
/// held and then resolves via [`SharedHms::commit_move`] or
/// [`SharedHms::abort_move`].
#[derive(Debug)]
#[must_use = "resolve with commit_move or abort_move"]
pub struct StartedMove {
    ticket: crate::memory::MoveTicket,
    /// Source bytes (live until commit/abort).
    pub src: *const u8,
    /// Destination bytes (reserved until commit/abort).
    pub dst: *mut u8,
    /// Wall-clock ns the request was issued.
    pub issued_at: Ns,
    /// Wall-clock ns the move began (destination reserved).
    pub started_at: Ns,
}

impl StartedMove {
    /// Bytes to copy.
    pub fn size(&self) -> u64 {
        self.ticket.size()
    }

    /// The object being moved.
    pub fn object(&self) -> ObjectId {
        self.ticket.object()
    }
}

/// Callback invoked when a background migration actually starts:
/// `(object, pin count at start)`. Installed by sanitize mode to catch a
/// migrator copying bytes a task is using (the count is 0 whenever the
/// pin/mid-move discipline holds). Must not call back into the
/// [`SharedHms`] that invokes it.
pub type MoveObserver = Box<dyn Fn(ObjectId, u64) + Send + Sync>;

/// A [`Hms`] shareable across worker threads and one migration thread.
///
/// **Lock poisoning.** Workers never take the inner mutex during a run,
/// but a closure passed to [`SharedHms::with`] can still panic while
/// holding it. Every mutation under the lock is complete before any
/// panic-capable call, so the state is consistent at every unlock
/// point; the wrapper therefore *recovers* the guard instead of
/// cascading the panic, and counts the recovery
/// ([`SharedHms::poisoned`]) the same way the obs emitter degrades
/// since PR 4.
pub struct SharedHms {
    /// Slow-path allocator/bookkeeping state (setup, reporting, and the
    /// reserve/commit/abort edges of a move).
    inner: Mutex<Hms>,
    /// Lock-free per-object state words + location caches.
    table: ShardedTable,
    /// Object-id watermark already mirrored into the slot table (ids
    /// are dense, so this is just the synced prefix length).
    synced: AtomicU32,
    epoch: Instant,
    /// Times a poisoned lock was recovered instead of panicking.
    poisoned: AtomicU64,
    /// Migration-start observer (sanitize mode), if installed.
    move_observer: Mutex<Option<MoveObserver>>,
    counters: Counters,
}

impl std::fmt::Debug for SharedHms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedHms")
            .field("synced", &self.synced)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

/// How long a blocked migration re-checks its cancel flag while parked
/// waiting for pins to drain.
const CANCEL_POLL: Duration = Duration::from_millis(20);

/// Backstop timeout for workers parked on a mid-move object (they are
/// notified on commit/abort; the timeout only covers lost races).
const PARK_POLL: Duration = Duration::from_millis(5);

/// Outcome of a single pin attempt on one object.
enum PinBlock {
    /// The object went mid-move under us; roll back and re-wait.
    Moving,
    /// A real error (missing object, saturated pin field).
    Hard(HmsError),
}

impl SharedHms {
    /// Wrap an [`Hms`] (with its backend already installed and objects
    /// allocated) for shared use.
    pub fn new(hms: Hms) -> Self {
        let sh = SharedHms {
            table: ShardedTable::new(),
            synced: AtomicU32::new(0),
            inner: Mutex::new(hms),
            epoch: Instant::now(),
            poisoned: AtomicU64::new(0),
            move_observer: Mutex::new(None),
            counters: Counters::default(),
        };
        // Mirror any pre-allocated objects into the slot table.
        sh.with(|_| {});
        sh
    }

    /// Acquire the inner lock, recovering (and counting) a poisoned
    /// guard instead of propagating the panic.
    fn lock_inner(&self) -> MutexGuard<'_, Hms> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(e) => {
                self.poisoned.fetch_add(1, Ordering::Relaxed);
                e.into_inner()
            }
        }
    }

    /// Times a poisoned lock was recovered (a `with` closure panicked
    /// while holding it). Nonzero means a thread died, not that the
    /// table is inconsistent.
    pub fn poisoned(&self) -> u64 {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Snapshot of the lock-free paths' contention counters.
    pub fn contention(&self) -> ContentionStats {
        self.counters.snapshot()
    }

    /// Install a migration-start observer (sanitize mode). The callback
    /// runs on the migration thread with no lock held.
    pub fn set_move_observer(&self, obs: MoveObserver) {
        *self
            .move_observer
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(obs);
    }

    /// Whether a background migration of `id` is currently in flight
    /// (begun, not yet committed or aborted). Lock-free: one load of
    /// the object's state word.
    pub fn is_mid_move(&self, id: ObjectId) -> bool {
        self.table
            .slot(id)
            .is_some_and(|s| word::is_moving(s.state.load(Ordering::SeqCst)))
    }

    /// Every object currently mid-move, ascending.
    pub fn mid_move_objects(&self) -> Vec<ObjectId> {
        let peak = self.synced.load(Ordering::Acquire);
        (0..peak)
            .map(ObjectId)
            .filter(|id| self.is_mid_move(*id))
            .collect()
    }

    /// Live pins currently held on `id` (0 for unknown objects).
    pub fn pin_count(&self, id: ObjectId) -> u32 {
        self.table
            .slot(id)
            .map_or(0, |s| word::pins(s.state.load(Ordering::SeqCst)))
    }

    /// Wall-clock ns since this wrapper was created — the time axis of
    /// every [`MigrationRecord`] it produces.
    pub fn now_ns(&self) -> Ns {
        self.epoch.elapsed().as_nanos() as f64
    }

    /// Run `f` with exclusive access to the underlying [`Hms`] (setup,
    /// final reporting), then re-mirror the object table into the
    /// lock-free slots — `f` may have allocated, freed or moved objects
    /// behind the slot caches. Must not race live pin holders (the
    /// measured runtime only calls this outside task windows).
    pub fn with<R>(&self, f: impl FnOnce(&mut Hms) -> R) -> R {
        let mut hms = self.lock_inner();
        let r = f(&mut hms);
        self.refresh_slots(&mut hms);
        r
    }

    /// Unwrap the inner [`Hms`] (after all threads are joined).
    pub fn into_inner(self) -> Hms {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mirror liveness and resolved locations of every object into the
    /// slot table. Caller holds the inner lock.
    fn refresh_slots(&self, hms: &mut Hms) {
        let peak = hms.peak_object_id();
        for raw in 0..peak {
            let id = ObjectId(raw);
            let slot = self.table.ensure_slot(id);
            match hms.object_ptr(id) {
                Ok(Some((ptr, len, tier))) => {
                    slot.ptr.store(ptr, Ordering::SeqCst);
                    slot.len.store(len, Ordering::SeqCst);
                    slot.tier.store(encode_tier(tier), Ordering::SeqCst);
                    slot.live.store(1, Ordering::SeqCst);
                }
                Ok(None) => {
                    // Live object on a byte-less (virtual) substrate.
                    slot.ptr.store(std::ptr::null_mut(), Ordering::SeqCst);
                    if let Ok(size) = hms.size_of(id) {
                        slot.len.store(size, Ordering::SeqCst);
                    }
                    if let Ok(tier) = hms.tier_of(id) {
                        slot.tier.store(encode_tier(tier), Ordering::SeqCst);
                    }
                    slot.live.store(1, Ordering::SeqCst);
                }
                Err(_) => slot.live.store(0, Ordering::SeqCst),
            }
        }
        self.synced.store(peak, Ordering::Release);
    }

    /// Slot for `id`, syncing the table from the inner [`Hms`] if the
    /// id is newer than the mirrored prefix.
    fn slot_or_sync(&self, id: ObjectId) -> Result<&Slot, HmsError> {
        if id.0 >= self.synced.load(Ordering::Acquire) {
            let mut hms = self.lock_inner();
            self.refresh_slots(&mut hms);
        }
        match self.table.slot(id) {
            Some(s) if s.live.load(Ordering::SeqCst) == 1 => Ok(s),
            _ => Err(HmsError::NoSuchObject(id)),
        }
    }

    /// Park until `id` is not mid-move, stamping the migration's
    /// `needed_at` on first block. No-op for unknown objects (pinning
    /// reports those).
    fn wait_not_moving(&self, id: ObjectId) {
        let Some(slot) = self.table.slot(id) else {
            return;
        };
        let mut blocked = false;
        loop {
            let w = slot.state.load(Ordering::SeqCst);
            if !word::is_moving(w) {
                return;
            }
            if !blocked {
                blocked = true;
                self.counters.move_waits.fetch_add(1, Ordering::Relaxed);
            }
            // Stamp the first wall-clock instant anyone needed the
            // object: the paper's exposed-migration boundary.
            let _ = slot.needed_at.compare_exchange(
                0,
                self.now_ns().to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            if !word::has_waiters(w)
                && slot
                    .state
                    .compare_exchange(w, word::set_waiters(w), Ordering::SeqCst, Ordering::SeqCst)
                    .is_err()
            {
                self.counters
                    .pin_cas_retries
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.counters.parks.fetch_add(1, Ordering::Relaxed);
            self.table.shard(id).parker.park_while(PARK_POLL, || {
                word::is_moving(slot.state.load(Ordering::SeqCst))
            });
        }
    }

    /// One CAS pin attempt on `id`.
    fn try_pin(&self, id: ObjectId) -> Result<(), PinBlock> {
        let slot = match self.slot_or_sync(id) {
            Ok(s) => s,
            Err(e) => return Err(PinBlock::Hard(e)),
        };
        loop {
            let w = slot.state.load(Ordering::SeqCst);
            match word::pin(w) {
                Ok(nw) => {
                    if slot
                        .state
                        .compare_exchange(w, nw, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return Ok(());
                    }
                    self.counters
                        .pin_cas_retries
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(word::WordError::Moving) => return Err(PinBlock::Moving),
                // A 16-bit pin field saturating means a task leak, not
                // a placement problem; surface it as the pinned error.
                Err(_) => return Err(PinBlock::Hard(HmsError::Pinned(id))),
            }
        }
    }

    /// Release one pin on `id`, waking a parked migrator when the count
    /// drains to zero.
    fn unpin_one(&self, id: ObjectId) {
        let Some(slot) = self.table.slot(id) else {
            debug_assert!(false, "unpin of unknown {id:?}");
            return;
        };
        loop {
            let w = slot.state.load(Ordering::SeqCst);
            match word::unpin(w) {
                Ok(nw) => {
                    if slot
                        .state
                        .compare_exchange(w, nw, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        if word::pins(nw) == 0
                            && word::is_parked(nw)
                            && self.table.shard(id).parker.notify()
                        {
                            self.counters.unparks.fetch_add(1, Ordering::Relaxed);
                        }
                        return;
                    }
                    self.counters
                        .pin_cas_retries
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    debug_assert!(false, "unbalanced unpin of {id:?}");
                    return;
                }
            }
        }
    }

    /// The executor's data-ready gate: block until none of `ids` is
    /// mid-move, stamping `needed_at` on every in-flight migration that
    /// made us wait. Returns wall-clock ns waited.
    pub fn wait_ready(&self, ids: &[ObjectId]) -> Ns {
        let t0 = self.now_ns();
        for id in ids {
            self.wait_not_moving(*id);
        }
        self.now_ns() - t0
    }

    /// Pin every object in `ids` for one task and resolve each to raw
    /// bytes, waiting out any in-flight migration of them first.
    ///
    /// All-or-nothing without a lock: the task first waits (holding no
    /// pins) until none of its objects is mid-move, then CAS-pins each;
    /// if the migrator claims one mid-acquisition the partial pins are
    /// rolled back and the wait restarts, so a task never holds a pin
    /// while blocked and cannot deadlock against the migration thread
    /// waiting for pins to drain.
    pub fn pin_for_task(&self, ids: &[ObjectId]) -> Result<TaskPins<'_>, HmsError> {
        let t0 = self.now_ns();
        'acquire: loop {
            for id in ids {
                self.wait_not_moving(*id);
            }
            for (i, id) in ids.iter().enumerate() {
                match self.try_pin(*id) {
                    Ok(()) => {}
                    Err(PinBlock::Moving) => {
                        for done in &ids[..i] {
                            self.unpin_one(*done);
                        }
                        continue 'acquire;
                    }
                    Err(PinBlock::Hard(e)) => {
                        for done in &ids[..i] {
                            self.unpin_one(*done);
                        }
                        return Err(e);
                    }
                }
            }
            break;
        }
        // Every id is pinned: locations in the slot caches are fenced
        // against moves until the pins drop.
        let mut objects = Vec::with_capacity(ids.len());
        for id in ids {
            let slot = self.table.slot(*id).expect("pinned object has a slot");
            let ptr = slot.ptr.load(Ordering::SeqCst);
            if ptr.is_null() {
                // Byte-less substrate: same contract as the old
                // `object_ptr` resolution failure.
                for done in ids {
                    self.unpin_one(*done);
                }
                return Err(HmsError::NoSuchObject(*id));
            }
            objects.push(PinnedObject {
                id: *id,
                tier: decode_tier(slot.tier.load(Ordering::SeqCst)),
                ptr,
                len: slot.len.load(Ordering::SeqCst),
            });
        }
        Ok(TaskPins {
            shared: self,
            objects,
            waited_ns: self.now_ns() - t0,
        })
    }

    /// Begin a background migration of `id` to `to`, parking until its
    /// pin count drains first.
    ///
    /// Returns `Ok(None)` when the move is moot (already resident, no
    /// destination space, byte-less substrate) or when `cancel` was set
    /// while waiting — the engine skips and moves on. Errors are real
    /// table inconsistencies.
    pub fn begin_move_blocking(
        &self,
        id: ObjectId,
        to: TierKind,
        cancel: &AtomicBool,
    ) -> Result<Option<StartedMove>, HmsError> {
        let issued_at = self.now_ns();
        let slot = self.slot_or_sync(id)?;
        loop {
            if cancel.load(Ordering::Relaxed) {
                self.clear_parked(slot);
                return Ok(None);
            }
            let w = slot.state.load(Ordering::SeqCst);
            match word::begin_move(w) {
                Ok(nw) => {
                    if slot
                        .state
                        .compare_exchange(w, nw, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        break;
                    }
                    self.counters
                        .pin_cas_retries
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(word::WordError::Pinned(_)) => {
                    if !word::is_parked(w)
                        && slot
                            .state
                            .compare_exchange(
                                w,
                                word::set_parked(w),
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            )
                            .is_err()
                    {
                        self.counters
                            .pin_cas_retries
                            .fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    self.counters.parks.fetch_add(1, Ordering::Relaxed);
                    self.table.shard(id).parker.park_while(CANCEL_POLL, || {
                        word::pins(slot.state.load(Ordering::SeqCst)) > 0
                    });
                }
                // A second in-flight move of the same object means two
                // migrators — a wiring bug, not a race to wait out.
                Err(word::WordError::AlreadyMoving) => return Err(HmsError::Moving(id)),
                Err(_) => unreachable!("begin_move only fails Pinned/AlreadyMoving"),
            }
        }
        // `MOVING` is claimed: no pins exist and none can be taken.
        // Reserve the destination under the inner (slow-path) lock.
        let mut hms = self.lock_inner();
        match hms.begin_move(id, to) {
            Ok(ticket) => match hms.move_ptrs(&ticket) {
                Some((src, dst)) => {
                    let started_at = self.now_ns();
                    drop(hms);
                    // Report the start with no lock held so the
                    // observer cannot deadlock against us.
                    if let Some(obs) = self
                        .move_observer
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .as_ref()
                    {
                        obs(id, u64::from(word::pins(slot.state.load(Ordering::SeqCst))));
                    }
                    Ok(Some(StartedMove {
                        ticket,
                        src,
                        dst,
                        issued_at,
                        started_at,
                    }))
                }
                None => {
                    hms.abort_move(ticket);
                    drop(hms);
                    self.release_move(id);
                    Ok(None)
                }
            },
            Err(HmsError::AlreadyResident(..)) | Err(HmsError::OutOfMemory { .. }) => {
                drop(hms);
                self.release_move(id);
                Ok(None)
            }
            Err(e) => {
                drop(hms);
                self.release_move(id);
                Err(e)
            }
        }
    }

    /// Commit a background migration whose bytes have been copied:
    /// flip residency, refresh the slot's location cache, wake waiting
    /// workers, and return the wall-clock [`MigrationRecord`] (with
    /// `needed_at` stamped if any worker blocked on it).
    pub fn commit_move(&self, started: StartedMove, outcome: &CopyOutcome) -> MigrationRecord {
        let object = started.ticket.object();
        let (from, to, bytes) = (
            started.ticket.from(),
            started.ticket.to(),
            started.ticket.size(),
        );
        let slot = self.table.slot(object).expect("moved object has a slot");
        let mut hms = self.lock_inner();
        hms.commit_move(started.ticket, outcome);
        if let Ok(Some((ptr, len, tier))) = hms.object_ptr(object) {
            slot.ptr.store(ptr, Ordering::SeqCst);
            slot.len.store(len, Ordering::SeqCst);
            slot.tier.store(encode_tier(tier), Ordering::SeqCst);
        }
        drop(hms);
        let needed_bits = slot.needed_at.swap(0, Ordering::Relaxed);
        self.release_move(object);
        MigrationRecord {
            object,
            bytes,
            from,
            to,
            issued_at: started.issued_at,
            start: started.started_at,
            finish: self.now_ns(),
            needed_at: (needed_bits != 0).then(|| f64::from_bits(needed_bits)),
        }
    }

    /// Abandon a begun migration (cancellation mid-copy): the object
    /// stays put, the destination reservation is released, and waiting
    /// workers are woken.
    pub fn abort_move(&self, started: StartedMove) {
        let object = started.ticket.object();
        let mut hms = self.lock_inner();
        hms.abort_move(started.ticket);
        drop(hms);
        if let Some(slot) = self.table.slot(object) {
            slot.needed_at.store(0, Ordering::Relaxed);
        }
        self.release_move(object);
    }

    /// Complete the in-flight move on `id`'s state word (epoch bump)
    /// and wake every worker parked on it.
    fn release_move(&self, id: ObjectId) {
        let slot = self.table.slot(id).expect("released move has a slot");
        loop {
            let w = slot.state.load(Ordering::SeqCst);
            let nw = word::end_move(w).expect("release requires an in-flight move");
            if slot
                .state
                .compare_exchange(w, nw, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                if word::has_waiters(w) && self.table.shard(id).parker.notify() {
                    self.counters.unparks.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            self.counters
                .pin_cas_retries
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop a stale `PARKED` announcement (cancelled before claiming).
    fn clear_parked(&self, slot: &Slot) {
        loop {
            let w = slot.state.load(Ordering::SeqCst);
            if !word::is_parked(w)
                || slot
                    .state
                    .compare_exchange(w, w & !word::PARKED, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return;
            }
        }
    }
}

fn encode_tier(t: TierKind) -> u32 {
    match t {
        TierKind::Dram => TIER_DRAM,
        TierKind::Nvm => TIER_NVM,
    }
}

fn decode_tier(t: u32) -> TierKind {
    if t == TIER_NVM {
        TierKind::Nvm
    } else {
        TierKind::Dram
    }
}

// SAFETY: `PinnedObject`/`StartedMove` carry raw pointers but are created
// and consumed on a single thread; they are deliberately !Send by default
// and we do not override that. `SharedHms` itself is Send + Sync because
// `Hms: Send` (the backend trait requires it), the slot table only holds
// atomics, and all non-atomic interior access goes through the mutexes.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::HmsConfig;
    use crate::presets;
    use crate::tier::TierId;
    use std::sync::Arc;

    // A minimal byte-backed test substrate (heap, not mmap — tahoe-realmem
    // sits above this crate).
    #[derive(Debug)]
    struct HeapBackend {
        dram: Vec<u8>,
        nvm: Vec<u8>,
        stats: crate::BackendStats,
    }

    impl HeapBackend {
        fn new(dram: usize, nvm: usize) -> Self {
            HeapBackend {
                dram: vec![0; dram],
                nvm: vec![0; nvm],
                stats: crate::BackendStats {
                    is_real: true,
                    ..Default::default()
                },
            }
        }
    }

    impl crate::TierBackend for HeapBackend {
        fn name(&self) -> &'static str {
            "heap-test"
        }

        fn data_ptr(&mut self, tier: TierId, addr: u64, len: u64) -> Option<*mut u8> {
            let buf = match tier {
                TierId(0) => &mut self.dram,
                _ => &mut self.nvm,
            };
            if addr.checked_add(len)? > buf.len() as u64 {
                return None;
            }
            // SAFETY: the range was just bounds-checked against the buffer.
            Some(unsafe { buf.as_mut_ptr().add(addr as usize) })
        }

        fn record_external_copy(
            &mut self,
            _object: u32,
            _from: TierId,
            _to: TierId,
            outcome: &CopyOutcome,
        ) {
            self.stats.copies += 1;
            self.stats.copied_bytes += outcome.bytes;
            self.stats.copy_wall_ns += outcome.wall_ns;
        }

        fn stats(&self) -> crate::BackendStats {
            self.stats
        }
    }

    fn shared(dram: u64, nvm: u64) -> SharedHms {
        let config = HmsConfig::new(presets::dram(dram), presets::optane_pmm(nvm), 5.0).unwrap();
        let mut hms = Hms::new(config);
        hms.set_backend(Box::new(HeapBackend::new(dram as usize, nvm as usize)));
        SharedHms::new(hms)
    }

    #[test]
    fn pin_resolves_bytes_and_blocks_migration() {
        let sh = shared(1 << 16, 1 << 18);
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        let pins = sh.pin_for_task(&[id]).unwrap();
        assert_eq!(pins.objects.len(), 1);
        assert_eq!(pins.objects[0].tier, TierKind::Nvm);
        assert_eq!(pins.objects[0].len(), 4096);
        assert_eq!(sh.pin_count(id), 1);
        // A pinned object rejects a (cancelled) migration outright.
        let cancel = AtomicBool::new(true);
        assert!(sh
            .begin_move_blocking(id, TierKind::Dram, &cancel)
            .unwrap()
            .is_none());
        drop(pins);
        assert_eq!(sh.pin_count(id), 0);
    }

    #[test]
    fn background_move_carries_bytes_and_records_overlap() {
        let sh = Arc::new(shared(1 << 16, 1 << 18));
        let id = sh.with(|h| h.alloc_object("x", 8192, TierKind::Nvm, false).unwrap());
        // Fill through a pin so the copy has recognizable contents.
        let pins = sh.pin_for_task(&[id]).unwrap();
        // SAFETY: the pin guarantees 8192 exclusive writable bytes.
        unsafe { pins.objects[0].as_ptr().write_bytes(0xCD, 8192) };
        drop(pins);

        let cancel = AtomicBool::new(false);
        let sm = sh
            .begin_move_blocking(id, TierKind::Dram, &cancel)
            .unwrap()
            .expect("move must start");
        // Mid-move, pins must wait — emulate a worker on another thread.
        let sh2 = Arc::clone(&sh);
        let waiter = std::thread::spawn(move || {
            let pins = sh2.pin_for_task(&[id]).unwrap();
            let tier = pins.objects[0].tier;
            // SAFETY: the pin guarantees the object's bytes are readable.
            let first = unsafe { *pins.objects[0].as_ptr() };
            let waited = pins.waited_ns;
            drop(pins);
            (tier, first, waited)
        });
        // Give the waiter time to block, then finish the copy.
        std::thread::sleep(Duration::from_millis(20));
        // SAFETY: `begin_move_blocking` resolved both disjoint ranges and
        // fenced the object until commit.
        unsafe { std::ptr::copy_nonoverlapping(sm.src, sm.dst, sm.size() as usize) };
        let rec = sh.commit_move(
            sm,
            &CopyOutcome {
                bytes: 8192,
                wall_ns: 100.0,
                throttle_ns: 0.0,
                chunks: 1,
            },
        );
        let (tier, first, waited) = waiter.join().unwrap();
        assert_eq!(tier, TierKind::Dram, "waiter must see post-move residency");
        assert_eq!(first, 0xCD, "bytes must have physically moved");
        assert!(waited > 0.0, "waiter must have measured its block");
        assert_eq!(rec.object, id);
        assert!(rec.needed_at.is_some(), "blocked pin must stamp needed_at");
        assert!(rec.finish >= rec.start && rec.start >= rec.issued_at);
        let stats = sh.with(|h| h.backend_stats());
        assert_eq!(stats.copies, 1);
        assert_eq!(stats.copied_bytes, 8192);
        let c = sh.contention();
        assert!(c.move_waits >= 1, "blocked pin must count a move wait");
        assert!(c.parks >= 1, "blocked pin must park, not spin");
    }

    #[test]
    fn begin_move_waits_for_pins_and_honors_cancel() {
        let sh = shared(1 << 16, 1 << 18);
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        let _pins = sh.pin_for_task(&[id]).unwrap();
        let cancel = AtomicBool::new(true);
        // Pinned + cancelled: returns None instead of waiting forever.
        assert!(sh
            .begin_move_blocking(id, TierKind::Dram, &cancel)
            .unwrap()
            .is_none());
    }

    #[test]
    fn begin_move_parks_until_pins_drain() {
        let sh = Arc::new(shared(1 << 16, 1 << 18));
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        let pins = sh.pin_for_task(&[id]).unwrap();
        let sh2 = Arc::clone(&sh);
        let mover = std::thread::spawn(move || {
            let cancel = AtomicBool::new(false);
            let sm = sh2
                .begin_move_blocking(id, TierKind::Dram, &cancel)
                .unwrap()
                .expect("move must start once pins drain");
            sh2.abort_move(sm);
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(pins); // unpin-to-zero must wake the parked migrator
        mover.join().unwrap();
        assert_eq!(sh.pin_count(id), 0);
        let c = sh.contention();
        assert!(c.parks >= 1, "pinned begin_move must park");
    }

    #[test]
    fn aborted_move_leaves_object_in_place() {
        let sh = shared(1 << 16, 1 << 18);
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        let cancel = AtomicBool::new(false);
        let sm = sh
            .begin_move_blocking(id, TierKind::Dram, &cancel)
            .unwrap()
            .unwrap();
        sh.abort_move(sm);
        sh.with(|h| {
            assert_eq!(h.tier_of(id).unwrap(), TierKind::Nvm);
            assert!(!h.is_moving(id).unwrap());
            assert_eq!(h.used(TierKind::Dram), 0, "reservation released");
        });
        assert!(!sh.is_mid_move(id));
    }

    #[test]
    fn moot_moves_are_skipped() {
        let sh = shared(1 << 12, 1 << 18);
        let cancel = AtomicBool::new(false);
        let there = sh.with(|h| h.alloc_object("d", 1024, TierKind::Dram, false).unwrap());
        assert!(sh
            .begin_move_blocking(there, TierKind::Dram, &cancel)
            .unwrap()
            .is_none());
        let big = sh.with(|h| {
            h.alloc_object("big", 1 << 14, TierKind::Nvm, false)
                .unwrap()
        });
        // 16 KiB cannot fit the 4 KiB DRAM tier: skipped, not an error.
        assert!(sh
            .begin_move_blocking(big, TierKind::Dram, &cancel)
            .unwrap()
            .is_none());
        // Both skips fully released the move state.
        assert!(!sh.is_mid_move(there) && !sh.is_mid_move(big));
        let _ = sh.pin_for_task(&[there, big]).unwrap();
    }

    #[test]
    fn wait_ready_returns_immediately_when_nothing_inflight() {
        let sh = shared(1 << 16, 1 << 18);
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        let waited = sh.wait_ready(&[id]);
        assert!(waited < 1e9, "no in-flight move, no real wait");
    }

    #[test]
    fn mid_move_introspection_tracks_inflight_set() {
        let sh = shared(1 << 16, 1 << 18);
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        assert!(!sh.is_mid_move(id));
        assert!(sh.mid_move_objects().is_empty());
        let cancel = AtomicBool::new(false);
        let sm = sh
            .begin_move_blocking(id, TierKind::Dram, &cancel)
            .unwrap()
            .unwrap();
        assert!(sh.is_mid_move(id));
        assert_eq!(sh.mid_move_objects(), vec![id]);
        sh.abort_move(sm);
        assert!(!sh.is_mid_move(id), "abort clears the in-flight state");
    }

    #[test]
    fn move_observer_sees_each_start_with_zero_pins() {
        let sh = shared(1 << 16, 1 << 18);
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        let starts = Arc::new(AtomicU64::new(0));
        let max_pins = Arc::new(AtomicU64::new(0));
        let (s2, p2) = (Arc::clone(&starts), Arc::clone(&max_pins));
        sh.set_move_observer(Box::new(move |_id, pins| {
            s2.fetch_add(1, Ordering::Relaxed);
            p2.fetch_max(pins, Ordering::Relaxed);
        }));
        let cancel = AtomicBool::new(false);
        let sm = sh
            .begin_move_blocking(id, TierKind::Dram, &cancel)
            .unwrap()
            .unwrap();
        sh.abort_move(sm);
        assert_eq!(starts.load(Ordering::Relaxed), 1);
        assert_eq!(
            max_pins.load(Ordering::Relaxed),
            0,
            "the correct migrator never starts a move with live pins"
        );
    }

    #[test]
    fn panicking_pin_holder_releases_pins() {
        let sh = Arc::new(shared(1 << 16, 1 << 18));
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        let sh2 = Arc::clone(&sh);
        let _ = std::thread::spawn(move || {
            let _pins = sh2.pin_for_task(&[id]).unwrap();
            panic!("worker died mid-task");
        })
        .join();
        // The RAII guard unwound: no leaked pin can wedge the migrator.
        assert_eq!(sh.pin_count(id), 0);
        let cancel = AtomicBool::new(false);
        let sm = sh
            .begin_move_blocking(id, TierKind::Dram, &cancel)
            .unwrap()
            .expect("migration proceeds after the panicked worker");
        sh.abort_move(sm);
    }

    #[test]
    fn poisoned_lock_degrades_to_counted_recovery() {
        let sh = Arc::new(shared(1 << 16, 1 << 18));
        let id = sh.with(|h| h.alloc_object("x", 4096, TierKind::Nvm, false).unwrap());
        // A thread panics while holding the inner lock.
        let sh2 = Arc::clone(&sh);
        let _ = std::thread::spawn(move || {
            sh2.with(|_h| panic!("died holding the hms lock"));
        })
        .join();
        // Workers never take the inner lock, so pinning is entirely
        // unaffected by the poisoning.
        let pins = sh.pin_for_task(&[id]).expect("pin after poison");
        assert_eq!(pins.objects.len(), 1);
        drop(pins);
        // The next slow-path lock recovers the (consistent) state and
        // counts the recovery instead of cascading the panic.
        sh.with(|h| h.check_invariants().expect("table consistent"));
        assert!(sh.poisoned() >= 1, "recovery must be counted");
        assert_eq!(sh.pin_count(id), 0);
        // And the consuming path recovers too.
        let sh = Arc::try_unwrap(sh).expect("sole owner");
        let _hms = sh.into_inner();
    }
}
