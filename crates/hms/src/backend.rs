//! Pluggable physical substrate behind the object manager.
//!
//! [`Hms`](crate::Hms) tracks *where* objects live; a [`TierBackend`]
//! decides what a tier's address space *is*. The default
//! [`VirtualBackend`] backs tiers with nothing at all — addresses are
//! bookkeeping and copies are free, which is exactly what the
//! virtual-time simulator wants. `tahoe-realmem` provides the second
//! implementation: per-tier `mmap` arenas where an object's address is a
//! real offset into a mapped region and a migration is a rate-limited
//! physical `memcpy`.
//!
//! The trait is deliberately narrow: the allocator stays in `Hms` (both
//! substrates share the same best-fit address discipline), and the
//! backend only has to translate `(tier, addr)` to bytes and execute
//! inter-tier copies.

use crate::tier::TierId;

/// What one inter-tier copy cost on the backing substrate.
///
/// The virtual backend reports zeros (its copies are accounted in
/// virtual time by the migration engine, not here); real backends report
/// measured wall-clock numbers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CopyOutcome {
    /// Bytes physically copied.
    pub bytes: u64,
    /// Wall-clock nanoseconds the copy took, including throttling.
    pub wall_ns: f64,
    /// Of `wall_ns`, nanoseconds spent waiting on the rate limiter and
    /// the injected device latency (0 for an unthrottled copy).
    pub throttle_ns: f64,
    /// Bounded-size chunks the copy was split into.
    pub chunks: u32,
}

/// Cumulative backend-side statistics, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackendStats {
    /// Whether the backend maps real memory (false for the virtual one).
    pub is_real: bool,
    /// Inter-tier copies executed.
    pub copies: u64,
    /// Bytes physically moved between tiers.
    pub copied_bytes: u64,
    /// Total wall-clock ns spent in copies.
    pub copy_wall_ns: f64,
    /// Of that, ns spent throttling (rate limit + injected latency).
    pub copy_throttle_ns: f64,
}

/// A physical (or null) substrate for the ordered tier list.
///
/// Addresses handed to the backend are the allocator's tier-local byte
/// offsets in `[0, capacity)`; a real backend resolves them against its
/// per-tier mapping.
///
/// The trait requires `Send` so an [`Hms`](crate::Hms) holding a boxed
/// backend can be shared across worker threads behind a lock (see
/// [`crate::sync::SharedHms`]); the `mmap` backend's mappings are plain
/// owned memory, so this costs real implementations nothing.
pub trait TierBackend: std::fmt::Debug + Send {
    /// Short substrate name for reports (`"virtual"`, `"mmap"`).
    fn name(&self) -> &'static str;

    /// Resolve `len` bytes at tier-local `addr` to a raw pointer, or
    /// `None` if the backend has no bytes (virtual substrate) or the
    /// range is out of bounds.
    fn data_ptr(&mut self, tier: TierId, addr: u64, len: u64) -> Option<*mut u8>;

    /// An object was allocated at `[addr, addr+len)` on `tier` (hook for
    /// `madvise`-style residency hints).
    fn on_alloc(&mut self, _tier: TierId, _addr: u64, _len: u64) {}

    /// An object at `[addr, addr+len)` on `tier` was freed.
    fn on_free(&mut self, _tier: TierId, _addr: u64, _len: u64) {}

    /// Copy `len` object bytes from `(from, from_addr)` to
    /// `(to, to_addr)` — called by [`Hms::move_object`](crate::Hms)
    /// after the destination block is reserved and before the source is
    /// released, so both ranges are live for the duration of the copy.
    fn copy(
        &mut self,
        _object: u32,
        _from: TierId,
        _from_addr: u64,
        _to: TierId,
        _to_addr: u64,
        len: u64,
    ) -> CopyOutcome {
        CopyOutcome {
            bytes: len,
            ..CopyOutcome::default()
        }
    }

    /// A copy that was executed *outside* the backend — the background
    /// migration engine copies through raw arena pointers while the HMS
    /// lock is released, then reports the outcome here on commit so
    /// stats and events stay complete. The default ignores it (the
    /// virtual substrate has no bytes to copy in the first place).
    fn record_external_copy(
        &mut self,
        _object: u32,
        _from: TierId,
        _to: TierId,
        _outcome: &CopyOutcome,
    ) {
    }

    /// Cumulative statistics.
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }
}

/// The null substrate: tiers are pure bookkeeping, copies are free.
///
/// This is the simulator's backend — migration cost is modelled in
/// virtual time by [`crate::migrate::CopyChannel`], not paid here.
#[derive(Debug, Default, Clone, Copy)]
pub struct VirtualBackend;

impl TierBackend for VirtualBackend {
    fn name(&self) -> &'static str {
        "virtual"
    }

    fn data_ptr(&mut self, _tier: TierId, _addr: u64, _len: u64) -> Option<*mut u8> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_backend_has_no_bytes_and_free_copies() {
        let mut b = VirtualBackend;
        assert_eq!(b.name(), "virtual");
        assert!(b.data_ptr(TierId(0), 0, 64).is_none());
        let out = b.copy(0, TierId(1), 0, TierId(0), 0, 4096);
        assert_eq!(out.bytes, 4096);
        assert_eq!(out.wall_ns, 0.0);
        assert!(!b.stats().is_real);
    }
}
