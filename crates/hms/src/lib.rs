//! Heterogeneous memory substrate (HMS) for the Tahoe reproduction.
//!
//! The SC 2018 paper evaluates on emulated NVM (Quartz, NUMA-based
//! emulation) and, in the journal follow-up, on Intel Optane PMM. None of
//! those are available here, so this crate provides the substitute: a
//! *virtual-time* two-tier memory system whose knobs are exactly the knobs
//! the emulators expose — per-tier read/write latency and bandwidth,
//! capacity, and a finite migration copy bandwidth.
//!
//! The crate provides:
//!
//! * [`TierSpec`] / [`TierKind`] — device models with read/write asymmetry,
//!   plus presets for DRAM, STT-RAM, PCRAM, ReRAM and Optane PMM in
//!   [`presets`], and Quartz-style scaled-DRAM emulation points.
//! * [`Hms`] — an object-granularity memory manager over the two tiers with
//!   a real best-fit free-list allocator per tier ([`alloc::TierAllocator`]),
//!   so capacity pressure, fallback allocation and fragmentation behave
//!   like a real runtime's DRAM arena.
//! * [`timing`] — the roofline-style timing model that converts a task's
//!   main-memory access profile into virtual nanoseconds on a given tier.
//!   This is what makes data objects *bandwidth-sensitive* or
//!   *latency-sensitive*, the distinction the paper's placement decisions
//!   hinge on.
//! * [`migrate`] — a single-channel asynchronous copy engine with overlap
//!   accounting, modelling the helper thread that migrates objects between
//!   tiers concurrently with task execution.
//!
//! Virtual time is carried as `f64` **nanoseconds** ([`Ns`]); with that
//! unit, a bandwidth of 1 GB/s is numerically 1 byte/ns, which keeps the
//! arithmetic in the timing model free of unit conversions.

// Raw object pointers cross this crate's pin/move API; every unsafe
// operation must sit in an explicit `unsafe` block with a SAFETY
// justification, even inside `unsafe fn` bodies.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc;
pub mod backend;
pub mod error;
pub mod lockfree;
pub mod memory;
pub mod migrate;
pub mod object;
pub mod presets;
pub mod sync;
pub mod tier;
pub mod timing;
pub mod wear;

pub use backend::{BackendStats, CopyOutcome, TierBackend, VirtualBackend};
pub use error::HmsError;
pub use memory::{Hms, HmsConfig, MoveTicket, ResidencySnapshot};
pub use migrate::{CopyChannel, MigrationRecord, MigrationStats};
pub use object::{ObjectId, ObjectMeta};
pub use sync::{ContentionStats, MoveObserver, PinnedObject, SharedHms, StartedMove, TaskPins};
pub use tier::{TierId, TierKind, TierSpec};
pub use timing::AccessProfile;
pub use wear::WearStats;

/// Virtual time in nanoseconds.
///
/// All simulated durations and instants in the workspace use this unit.
/// 1 GB/s of bandwidth equals exactly 1 byte per nanosecond.
pub type Ns = f64;

/// Cache line size used throughout the models, in bytes.
///
/// The paper's profiling step counts cache-line-granularity main-memory
/// accesses; 64 B is the line size on every platform the paper uses.
pub const CACHELINE: u64 = 64;
