//! Roofline-style memory timing model.
//!
//! The paper's central empirical observation is that data objects differ in
//! *why* NVM hurts them: objects touched by streams of independent accesses
//! are limited by **bandwidth**, objects touched by dependent chains
//! (pointer chasing) are limited by **latency**, and many fall in between.
//! This module encodes that distinction as a two-term roofline:
//!
//! ```text
//! t_bw  = loads·CL / read_bw  +  stores·CL / write_bw          (transfer)
//! t_lat = (loads·read_lat + stores·write_lat) / MLP            (serialization)
//! t     = max(t_bw, t_lat)
//! ```
//!
//! `MLP` (memory-level parallelism) is the average number of outstanding
//! misses the access pattern sustains: 1.0 for a pure dependent chain,
//! 8–16 for hardware-prefetched streams. High-MLP profiles hit the
//! bandwidth roof; MLP≈1 profiles are latency-serialized — precisely the
//! two sensitivity classes the paper's placement model distinguishes.

use crate::tier::TierSpec;
use crate::{Ns, CACHELINE};

/// Main-memory access profile of one task (or of one task's traffic to one
/// data object).
///
/// Counts are accesses that *miss the cache hierarchy* and reach main
/// memory — the quantity the paper samples with performance counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessProfile {
    /// Cache-line loads served by main memory.
    pub loads: u64,
    /// Cache-line stores served by main memory.
    pub stores: u64,
    /// Average memory-level parallelism of the access stream (>= 1).
    pub mlp: f64,
}

impl AccessProfile {
    /// A profile with no main-memory traffic.
    pub const EMPTY: AccessProfile = AccessProfile {
        loads: 0,
        stores: 0,
        mlp: 1.0,
    };

    /// Construct a profile, clamping MLP to at least 1.
    pub fn new(loads: u64, stores: u64, mlp: f64) -> Self {
        AccessProfile {
            loads,
            stores,
            mlp: mlp.max(1.0),
        }
    }

    /// A streaming profile (high MLP): bandwidth-bound on slow memory.
    pub fn streaming(loads: u64, stores: u64) -> Self {
        Self::new(loads, stores, 16.0)
    }

    /// A dependent-chain profile (MLP = 1): latency-bound on slow memory.
    pub fn pointer_chase(loads: u64) -> Self {
        Self::new(loads, 0, 1.0)
    }

    /// Total main-memory accesses.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total bytes moved to/from main memory.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.accesses() * CACHELINE
    }

    /// Merge two profiles (counts add; MLP is the access-weighted mean).
    pub fn merge(&self, other: &AccessProfile) -> AccessProfile {
        let a = self.accesses() as f64;
        let b = other.accesses() as f64;
        let mlp = if a + b == 0.0 {
            1.0
        } else {
            (self.mlp * a + other.mlp * b) / (a + b)
        };
        AccessProfile::new(self.loads + other.loads, self.stores + other.stores, mlp)
    }

    /// Scale the access counts by `frac` (used when chunking objects).
    pub fn scale(&self, frac: f64) -> AccessProfile {
        AccessProfile::new(
            (self.loads as f64 * frac).round() as u64,
            (self.stores as f64 * frac).round() as u64,
            self.mlp,
        )
    }

    /// Bandwidth-roof time on `tier`, in ns.
    pub fn transfer_time_ns(&self, tier: &TierSpec) -> Ns {
        let cl = CACHELINE as f64;
        self.loads as f64 * cl / tier.read_bw_gbps + self.stores as f64 * cl / tier.write_bw_gbps
    }

    /// Latency-serialization time on `tier`, in ns.
    pub fn serialization_time_ns(&self, tier: &TierSpec) -> Ns {
        (self.loads as f64 * tier.read_lat_ns + self.stores as f64 * tier.write_lat_ns)
            / self.mlp.max(1.0)
    }

    /// Memory time of this profile on `tier`: the roofline maximum of the
    /// transfer and serialization terms.
    pub fn mem_time_ns(&self, tier: &TierSpec) -> Ns {
        self.transfer_time_ns(tier)
            .max(self.serialization_time_ns(tier))
    }

    /// Whether this profile is bandwidth-limited (vs latency-limited) on
    /// `tier`.
    pub fn bandwidth_limited_on(&self, tier: &TierSpec) -> bool {
        self.transfer_time_ns(tier) >= self.serialization_time_ns(tier)
    }

    /// Achieved bandwidth on `tier` in GB/s, `bytes / mem_time`.
    pub fn achieved_bw_gbps(&self, tier: &TierSpec) -> f64 {
        let t = self.mem_time_ns(tier);
        if t == 0.0 {
            0.0
        } else {
            self.bytes() as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn dram() -> TierSpec {
        presets::dram(1 << 30)
    }

    #[test]
    fn empty_profile_takes_no_time() {
        assert_eq!(AccessProfile::EMPTY.mem_time_ns(&dram()), 0.0);
        assert_eq!(AccessProfile::EMPTY.bytes(), 0);
    }

    #[test]
    fn streaming_profile_is_bandwidth_limited() {
        let p = AccessProfile::streaming(1_000_000, 0);
        assert!(p.bandwidth_limited_on(&dram()));
        // 64 MB at 10 GB/s = 6.4 ms.
        let t = p.mem_time_ns(&dram());
        assert!((t - 6.4e6).abs() / 6.4e6 < 1e-9, "t = {t}");
    }

    #[test]
    fn pointer_chase_is_latency_limited() {
        let p = AccessProfile::pointer_chase(1_000_000);
        assert!(!p.bandwidth_limited_on(&dram()));
        // 1e6 dependent loads at 10 ns = 10 ms.
        let t = p.mem_time_ns(&dram());
        assert!((t - 1.0e7).abs() / 1.0e7 < 1e-9, "t = {t}");
    }

    #[test]
    fn halving_bandwidth_doubles_streaming_time_but_not_chase_time() {
        // Use a 40 ns base latency so the chase's bandwidth demand
        // (64 B / 40 ns = 1.6 GB/s) stays below the halved roof; at DRAM's
        // 10 ns a dependent chain genuinely crosses the roofline, which is
        // the model behaving correctly, not the property under test.
        let base = dram().scale_latency(4.0).unwrap();
        let half = base.scale_bandwidth(0.5).unwrap();
        let stream = AccessProfile::streaming(1_000_000, 500_000);
        let chase = AccessProfile::pointer_chase(1_000_000);
        assert!(
            (stream.mem_time_ns(&half) / stream.mem_time_ns(&base) - 2.0).abs() < 1e-9,
            "streaming should scale with bandwidth"
        );
        assert!(
            (chase.mem_time_ns(&half) / chase.mem_time_ns(&base) - 1.0).abs() < 1e-9,
            "pointer chase should not care about bandwidth"
        );
    }

    #[test]
    fn quadrupling_latency_hits_chase_but_not_stream() {
        let lat4 = dram().scale_latency(4.0).unwrap();
        let stream = AccessProfile::streaming(1_000_000, 500_000);
        let chase = AccessProfile::pointer_chase(1_000_000);
        assert!(
            (chase.mem_time_ns(&lat4) / chase.mem_time_ns(&dram()) - 4.0).abs() < 1e-9,
            "pointer chase should scale with latency"
        );
        assert!(
            (stream.mem_time_ns(&lat4) / stream.mem_time_ns(&dram()) - 1.0).abs() < 1e-9,
            "streaming should not care about latency (still below the roof)"
        );
    }

    #[test]
    fn write_asymmetry_matters() {
        let optane = presets::optane_pmm(1 << 30);
        let reads = AccessProfile::streaming(1_000_000, 0);
        let writes = AccessProfile::streaming(0, 1_000_000);
        // Optane write bandwidth (1.3 GB/s) << read bandwidth (3.9 GB/s).
        assert!(writes.mem_time_ns(&optane) > 2.5 * reads.mem_time_ns(&optane));
    }

    #[test]
    fn merge_adds_counts_and_weights_mlp() {
        let a = AccessProfile::new(100, 0, 1.0);
        let b = AccessProfile::new(300, 0, 9.0);
        let m = a.merge(&b);
        assert_eq!(m.loads, 400);
        assert!((m.mlp - 7.0).abs() < 1e-12);
        // Merging with empty is identity.
        let e = AccessProfile::EMPTY.merge(&a);
        assert_eq!(e.loads, 100);
        assert!((e.mlp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scale_halves_counts() {
        let p = AccessProfile::new(100, 50, 4.0).scale(0.5);
        assert_eq!(p.loads, 50);
        assert_eq!(p.stores, 25);
        assert!((p.mlp - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mlp_is_clamped() {
        let p = AccessProfile::new(10, 10, 0.0);
        assert!((p.mlp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn achieved_bw_never_exceeds_peak() {
        let tiers = [
            dram(),
            presets::optane_pmm(1 << 30),
            presets::pcram(1 << 30),
        ];
        for tier in &tiers {
            for mlp in [1.0, 2.0, 8.0, 32.0] {
                let p = AccessProfile::new(10_000, 5_000, mlp);
                let peak = tier.read_bw_gbps.max(tier.write_bw_gbps);
                assert!(
                    p.achieved_bw_gbps(tier) <= peak + 1e-9,
                    "achieved {} > peak {} on {}",
                    p.achieved_bw_gbps(tier),
                    peak,
                    tier.name
                );
            }
        }
    }
}
