//! Memory tier identities and device specifications.

use std::fmt;

use crate::error::HmsError;

/// Which of the two tiers of the heterogeneous memory system a byte lives
/// in.
///
/// The paper's HMS pairs a small, fast DRAM with a large, slow NVM in a
/// single physical address space; allocation between them is managed at
/// user level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TierKind {
    /// The fast, small tier (DRAM).
    Dram,
    /// The slow, large tier (non-volatile memory).
    Nvm,
}

impl TierKind {
    /// The other tier.
    #[inline]
    pub fn other(self) -> TierKind {
        match self {
            TierKind::Dram => TierKind::Nvm,
            TierKind::Nvm => TierKind::Dram,
        }
    }

    /// All tiers, DRAM first.
    pub const ALL: [TierKind; 2] = [TierKind::Dram, TierKind::Nvm];
}

impl fmt::Display for TierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierKind::Dram => write!(f, "DRAM"),
            TierKind::Nvm => write!(f, "NVM"),
        }
    }
}

/// Index of one tier in an ordered tier list, fastest first.
///
/// The N-tier generalization of [`TierKind`]: tier 0 is always the
/// fastest, smallest tier (DRAM) and the highest index is the slowest,
/// largest tier (the spill tier, NVM in the paper's setup). Middle
/// indices are intermediate tiers such as CXL-attached memory.
///
/// [`TierKind`] remains the two-tier facade: `Dram` maps to tier 0 and
/// `Nvm` maps to the *last* tier of the configured list, so every
/// two-tier caller keeps working unchanged against an N-tier `Hms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TierId(pub u8);

impl TierId {
    /// The fastest tier (always index 0; DRAM in every preset).
    pub const FASTEST: TierId = TierId(0);

    /// The tier's position in the ordered list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The [`TierKind`] facade for this index given an `n`-tier list:
    /// index 0 is `Dram`, everything else presents as `Nvm` (middle
    /// tiers are "not DRAM" to two-tier observers).
    #[inline]
    pub fn kind(self) -> TierKind {
        if self.0 == 0 {
            TierKind::Dram
        } else {
            TierKind::Nvm
        }
    }

    /// Map a [`TierKind`] onto an `n`-tier list: `Dram` → tier 0,
    /// `Nvm` → the last tier.
    #[inline]
    pub fn from_kind(kind: TierKind, n_tiers: usize) -> TierId {
        match kind {
            TierKind::Dram => TierId(0),
            TierKind::Nvm => TierId(n_tiers.saturating_sub(1) as u8),
        }
    }
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tier{}", self.0)
    }
}

/// Performance and capacity specification of one memory tier.
///
/// Latencies are per *dependent* cache-line access; bandwidths are the
/// sustainable sequential rates. Read and write are kept separate because
/// every candidate NVM technology is read/write-asymmetric — the paper's
/// models split `#load` and `#store` terms for exactly this reason.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSpec {
    /// Human-readable device name (e.g. `"DRAM"`, `"Optane PMM"`).
    pub name: String,
    /// Latency of a dependent read, in nanoseconds.
    pub read_lat_ns: f64,
    /// Latency of a dependent write, in nanoseconds.
    pub write_lat_ns: f64,
    /// Sustained read bandwidth, in GB/s (== bytes/ns).
    pub read_bw_gbps: f64,
    /// Sustained write bandwidth, in GB/s (== bytes/ns).
    pub write_bw_gbps: f64,
    /// Usable capacity in bytes.
    pub capacity: u64,
}

impl TierSpec {
    /// Create a spec with symmetric read/write behaviour.
    pub fn symmetric(name: &str, lat_ns: f64, bw_gbps: f64, capacity: u64) -> Self {
        TierSpec {
            name: name.to_string(),
            read_lat_ns: lat_ns,
            write_lat_ns: lat_ns,
            read_bw_gbps: bw_gbps,
            write_bw_gbps: bw_gbps,
            capacity,
        }
    }

    /// Return a copy with a different capacity.
    pub fn with_capacity(&self, capacity: u64) -> Self {
        TierSpec {
            capacity,
            ..self.clone()
        }
    }

    /// Return a copy with bandwidth scaled by `frac` (Quartz-style
    /// bandwidth throttling, e.g. `frac = 0.5` models "1/2 DRAM BW").
    ///
    /// Fails on a non-positive or non-finite fraction.
    pub fn scale_bandwidth(&self, frac: f64) -> Result<Self, HmsError> {
        if !(frac > 0.0 && frac.is_finite()) {
            return Err(HmsError::InvalidSpec {
                name: self.name.clone(),
                reason: format!("bandwidth fraction must be positive and finite, got {frac}"),
            });
        }
        Ok(TierSpec {
            name: format!("{} x{:.3}BW", self.name, frac),
            read_bw_gbps: self.read_bw_gbps * frac,
            write_bw_gbps: self.write_bw_gbps * frac,
            ..self.clone()
        })
    }

    /// Return a copy with latency scaled by `mult` (Quartz-style latency
    /// injection, e.g. `mult = 4.0` models "4x DRAM latency").
    ///
    /// Fails on a non-positive or non-finite multiplier.
    pub fn scale_latency(&self, mult: f64) -> Result<Self, HmsError> {
        if !(mult > 0.0 && mult.is_finite()) {
            return Err(HmsError::InvalidSpec {
                name: self.name.clone(),
                reason: format!("latency multiplier must be positive and finite, got {mult}"),
            });
        }
        Ok(TierSpec {
            name: format!("{} x{:.3}LAT", self.name, mult),
            read_lat_ns: self.read_lat_ns * mult,
            write_lat_ns: self.write_lat_ns * mult,
            ..self.clone()
        })
    }

    /// Geometric-mean bandwidth across reads and writes, used as the
    /// single-number "peak bandwidth" in sensitivity thresholds.
    pub fn mean_bw_gbps(&self) -> f64 {
        (self.read_bw_gbps * self.write_bw_gbps).sqrt()
    }

    /// Ratio of write latency to read latency (1.0 for symmetric devices).
    pub fn write_read_lat_ratio(&self) -> f64 {
        self.write_lat_ns / self.read_lat_ns
    }

    /// Validate that the spec is physically sensible.
    pub fn validate(&self) -> Result<(), HmsError> {
        let fail = |reason: &str| {
            Err(HmsError::InvalidSpec {
                name: self.name.clone(),
                reason: reason.to_string(),
            })
        };
        if !(self.read_lat_ns > 0.0 && self.write_lat_ns > 0.0) {
            return fail("latencies must be positive");
        }
        if !(self.read_bw_gbps > 0.0 && self.write_bw_gbps > 0.0) {
            return fail("bandwidths must be positive");
        }
        if ![
            self.read_lat_ns,
            self.write_lat_ns,
            self.read_bw_gbps,
            self.write_bw_gbps,
        ]
        .iter()
        .all(|x| x.is_finite())
        {
            return fail("latencies and bandwidths must be finite");
        }
        if self.capacity == 0 {
            return fail("capacity must be nonzero");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_flips() {
        assert_eq!(TierKind::Dram.other(), TierKind::Nvm);
        assert_eq!(TierKind::Nvm.other(), TierKind::Dram);
        assert_eq!(TierKind::Dram.other().other(), TierKind::Dram);
    }

    #[test]
    fn display_names() {
        assert_eq!(TierKind::Dram.to_string(), "DRAM");
        assert_eq!(TierKind::Nvm.to_string(), "NVM");
    }

    #[test]
    fn tier_id_kind_round_trip() {
        assert_eq!(TierId(0).kind(), TierKind::Dram);
        assert_eq!(TierId(1).kind(), TierKind::Nvm);
        assert_eq!(TierId(2).kind(), TierKind::Nvm);
        for n in 2..5 {
            assert_eq!(TierId::from_kind(TierKind::Dram, n), TierId(0));
            assert_eq!(TierId::from_kind(TierKind::Nvm, n), TierId((n - 1) as u8));
        }
        assert_eq!(TierId(3).to_string(), "tier3");
        assert_eq!(TierId(1).index(), 1);
        assert_eq!(TierId::FASTEST, TierId(0));
    }

    #[test]
    fn symmetric_spec_round_trip() {
        let s = TierSpec::symmetric("t", 10.0, 10.0, 1 << 30);
        assert_eq!(s.read_lat_ns, s.write_lat_ns);
        assert_eq!(s.read_bw_gbps, s.write_bw_gbps);
        assert!((s.write_read_lat_ratio() - 1.0).abs() < 1e-12);
        s.validate().unwrap();
    }

    #[test]
    fn bandwidth_scaling_halves_both_directions() {
        let s = TierSpec::symmetric("t", 10.0, 10.0, 1 << 30)
            .scale_bandwidth(0.5)
            .unwrap();
        assert!((s.read_bw_gbps - 5.0).abs() < 1e-12);
        assert!((s.write_bw_gbps - 5.0).abs() < 1e-12);
        // Latency untouched.
        assert!((s.read_lat_ns - 10.0).abs() < 1e-12);
    }

    #[test]
    fn latency_scaling_multiplies_both_directions() {
        let s = TierSpec::symmetric("t", 10.0, 10.0, 1 << 30)
            .scale_latency(4.0)
            .unwrap();
        assert!((s.read_lat_ns - 40.0).abs() < 1e-12);
        assert!((s.write_lat_ns - 40.0).abs() < 1e-12);
        assert!((s.read_bw_gbps - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mean_bw_is_geometric() {
        let s = TierSpec {
            name: "x".into(),
            read_lat_ns: 1.0,
            write_lat_ns: 1.0,
            read_bw_gbps: 4.0,
            write_bw_gbps: 1.0,
            capacity: 1,
        };
        assert!((s.mean_bw_gbps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mut s = TierSpec::symmetric("t", 10.0, 10.0, 1 << 20);
        s.capacity = 0;
        assert!(s.validate().is_err());
        let mut s2 = TierSpec::symmetric("t", 0.0, 10.0, 1);
        s2.read_lat_ns = 0.0;
        assert!(s2.validate().is_err());
    }

    #[test]
    fn bad_scale_factors_are_errors_not_panics() {
        let s = TierSpec::symmetric("t", 10.0, 10.0, 1 << 20);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(s.scale_bandwidth(bad).is_err(), "frac {bad}");
            assert!(s.scale_latency(bad).is_err(), "mult {bad}");
        }
        match s.scale_bandwidth(-2.0).unwrap_err() {
            crate::HmsError::InvalidSpec { name, reason } => {
                assert_eq!(name, "t");
                assert!(reason.contains("positive"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
