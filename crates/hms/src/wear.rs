//! Write-endurance (wear) accounting.
//!
//! PCM/ReRAM-class NVM has finite write endurance (10⁶–10⁸ cycles per
//! cell), so a data-management runtime affects device *lifetime*, not
//! just performance: keeping write-hot objects in DRAM shelters the NVM
//! from their stores, while migrations add copy writes of their own.
//! This module tallies bytes written per tier from both sources so runs
//! can report NVM write traffic and the write-shielding ratio.

use crate::tier::TierKind;

/// Bytes written per tier, split by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WearStats {
    /// Application store traffic that landed in DRAM.
    pub dram_store_bytes: u64,
    /// Application store traffic that landed in NVM.
    pub nvm_store_bytes: u64,
    /// Migration copy traffic written into DRAM (promotions).
    pub dram_copy_bytes: u64,
    /// Migration copy traffic written into NVM (evictions).
    pub nvm_copy_bytes: u64,
}

impl WearStats {
    /// Record application stores of `bytes` to `tier`.
    pub fn record_stores(&mut self, tier: TierKind, bytes: u64) {
        match tier {
            TierKind::Dram => self.dram_store_bytes += bytes,
            TierKind::Nvm => self.nvm_store_bytes += bytes,
        }
    }

    /// Record a migration writing `bytes` into `dest`.
    pub fn record_copy(&mut self, dest: TierKind, bytes: u64) {
        match dest {
            TierKind::Dram => self.dram_copy_bytes += bytes,
            TierKind::Nvm => self.nvm_copy_bytes += bytes,
        }
    }

    /// Total bytes written to NVM (stores + eviction copies) — the
    /// quantity endurance budgets are written against.
    pub fn nvm_written_bytes(&self) -> u64 {
        self.nvm_store_bytes + self.nvm_copy_bytes
    }

    /// Total application store bytes regardless of tier.
    pub fn total_store_bytes(&self) -> u64 {
        self.dram_store_bytes + self.nvm_store_bytes
    }

    /// Fraction of application store traffic shielded from the NVM by
    /// DRAM placement, in `[0, 1]`. 1.0 = every store landed in DRAM.
    pub fn write_shielding(&self) -> f64 {
        let total = self.total_store_bytes();
        if total == 0 {
            return 1.0;
        }
        self.dram_store_bytes as f64 / total as f64
    }

    /// NVM write amplification: NVM bytes written per application store
    /// byte (can exceed 1 when eviction copies dominate, or be far below
    /// 1 when DRAM shields stores).
    pub fn nvm_write_amplification(&self) -> f64 {
        let total = self.total_store_bytes();
        if total == 0 {
            return 0.0;
        }
        self.nvm_written_bytes() as f64 / total as f64
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &WearStats) {
        self.dram_store_bytes += other.dram_store_bytes;
        self.nvm_store_bytes += other.nvm_store_bytes;
        self.dram_copy_bytes += other.dram_copy_bytes;
        self.nvm_copy_bytes += other.nvm_copy_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_split_by_tier() {
        let mut w = WearStats::default();
        w.record_stores(TierKind::Dram, 100);
        w.record_stores(TierKind::Nvm, 300);
        assert_eq!(w.total_store_bytes(), 400);
        assert_eq!(w.nvm_written_bytes(), 300);
        assert!((w.write_shielding() - 0.25).abs() < 1e-12);
        assert!((w.nvm_write_amplification() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn copies_count_against_destination() {
        let mut w = WearStats::default();
        w.record_copy(TierKind::Dram, 1000); // promotion
        w.record_copy(TierKind::Nvm, 500); // eviction
        assert_eq!(w.dram_copy_bytes, 1000);
        assert_eq!(w.nvm_copy_bytes, 500);
        assert_eq!(w.nvm_written_bytes(), 500);
    }

    #[test]
    fn eviction_heavy_run_amplifies() {
        let mut w = WearStats::default();
        w.record_stores(TierKind::Dram, 100);
        w.record_copy(TierKind::Nvm, 400);
        assert!(w.nvm_write_amplification() > 1.0);
    }

    #[test]
    fn empty_run_is_fully_shielded() {
        let w = WearStats::default();
        assert_eq!(w.write_shielding(), 1.0);
        assert_eq!(w.nvm_write_amplification(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = WearStats::default();
        a.record_stores(TierKind::Nvm, 10);
        let mut b = WearStats::default();
        b.record_stores(TierKind::Nvm, 30);
        b.record_copy(TierKind::Dram, 5);
        a.merge(&b);
        assert_eq!(a.nvm_store_bytes, 40);
        assert_eq!(a.dram_copy_bytes, 5);
    }
}
