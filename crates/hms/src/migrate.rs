//! Asynchronous migration engine with overlap accounting.
//!
//! The paper hides migration cost behind computation: a helper thread
//! drains a FIFO of migration requests while worker threads keep executing
//! tasks, and the runtime only stalls if a task becomes ready before the
//! migration of one of its objects has finished. This module models that
//! helper thread as a single *copy channel* with finite bandwidth: requests
//! are serviced in issue order, each occupying the channel for
//! `bytes / copy_bw` virtual nanoseconds.
//!
//! Overlap accounting mirrors the paper's "%overlap" table: for each
//! migration we record how much of its duration was hidden behind
//! execution (the consumer task had not become ready yet) versus *exposed*
//! (a task sat waiting for the copy to finish).

use tahoe_obs::Metrics;

use crate::object::ObjectId;
use crate::tier::TierKind;
use crate::Ns;

/// A single-bandwidth copy channel between the tiers, serviced FIFO.
#[derive(Debug, Clone)]
pub struct CopyChannel {
    copy_bw_gbps: f64,
    free_at: Ns,
    metrics: Metrics,
}

impl CopyChannel {
    /// Create a channel with the given copy bandwidth (GB/s).
    pub fn new(copy_bw_gbps: f64) -> Self {
        assert!(copy_bw_gbps > 0.0, "copy bandwidth must be positive");
        CopyChannel {
            copy_bw_gbps,
            free_at: 0.0,
            metrics: Metrics::disabled(),
        }
    }

    /// Attach a metrics registry; every scheduled copy is counted under
    /// `hms.channel.*` from then on.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Copy bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.copy_bw_gbps
    }

    /// Time at which the channel becomes idle.
    pub fn free_at(&self) -> Ns {
        self.free_at
    }

    /// Duration a copy of `bytes` occupies the channel.
    pub fn copy_duration_ns(&self, bytes: u64) -> Ns {
        bytes as f64 / self.copy_bw_gbps
    }

    /// Schedule a copy of `bytes` issued at `issue`: it starts when both
    /// the request has been issued and the channel is free, and runs to
    /// completion. Returns `(start, finish)` and advances the channel.
    pub fn schedule(&mut self, bytes: u64, issue: Ns) -> (Ns, Ns) {
        let start = issue.max(self.free_at);
        let finish = start + self.copy_duration_ns(bytes);
        self.free_at = finish;
        self.metrics.inc("hms.channel.copies");
        self.metrics.add("hms.channel.bytes", bytes);
        self.metrics
            .gauge_add("hms.channel.busy_ns", finish - start);
        self.metrics
            .gauge_add("hms.channel.queue_ns", (start - issue).max(0.0));
        (start, finish)
    }

    /// Reset the channel to idle at time zero (new simulation run).
    pub fn reset(&mut self) {
        self.free_at = 0.0;
    }
}

/// Record of one completed (scheduled) migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// Object (or chunk) that moved.
    pub object: ObjectId,
    /// Bytes moved.
    pub bytes: u64,
    /// Source tier.
    pub from: TierKind,
    /// Destination tier.
    pub to: TierKind,
    /// Virtual time the request was issued by the planner.
    pub issued_at: Ns,
    /// Virtual time the copy started on the channel.
    pub start: Ns,
    /// Virtual time the copy finished.
    pub finish: Ns,
    /// Virtual time the first consumer needed the object (if any). Set by
    /// the runtime when the consuming task becomes ready.
    pub needed_at: Option<Ns>,
}

impl MigrationRecord {
    /// Portion of the copy hidden behind execution: the part that
    /// completed before the consumer needed the data (entire copy when no
    /// consumer waited).
    pub fn overlapped_ns(&self) -> Ns {
        let dur = self.finish - self.start;
        match self.needed_at {
            None => dur,
            Some(need) => (need.min(self.finish) - self.start).max(0.0).min(dur),
        }
    }

    /// Portion of the copy a consumer task had to wait for.
    pub fn exposed_ns(&self) -> Ns {
        let dur = self.finish - self.start;
        dur - self.overlapped_ns()
    }
}

/// Aggregated migration statistics (the paper's migration table: number of
/// migrations, migrated data size, % overlapped).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationStats {
    /// Number of migrations performed.
    pub count: u64,
    /// Total bytes migrated.
    pub bytes: u64,
    /// Total channel time hidden behind execution.
    pub overlapped_ns: Ns,
    /// Total channel time tasks waited on.
    pub exposed_ns: Ns,
    /// Migrations from DRAM to NVM (evictions).
    pub evictions: u64,
    /// Migrations from NVM to DRAM (promotions).
    pub promotions: u64,
}

impl MigrationStats {
    /// Fold one record into the statistics.
    pub fn record(&mut self, rec: &MigrationRecord) {
        self.count += 1;
        self.bytes += rec.bytes;
        self.overlapped_ns += rec.overlapped_ns();
        self.exposed_ns += rec.exposed_ns();
        match rec.to {
            TierKind::Dram => self.promotions += 1,
            TierKind::Nvm => self.evictions += 1,
        }
    }

    /// Percentage of migration time that was overlapped with execution.
    pub fn pct_overlap(&self) -> f64 {
        let total = self.overlapped_ns + self.exposed_ns;
        if total == 0.0 {
            100.0
        } else {
            100.0 * self.overlapped_ns / total
        }
    }

    /// Migrated volume in MB.
    pub fn megabytes(&self) -> f64 {
        self.bytes as f64 / 1.0e6
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &MigrationStats) {
        self.count += other.count;
        self.bytes += other.bytes;
        self.overlapped_ns += other.overlapped_ns;
        self.exposed_ns += other.exposed_ns;
        self.evictions += other.evictions;
        self.promotions += other.promotions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(start: Ns, finish: Ns, needed_at: Option<Ns>) -> MigrationRecord {
        MigrationRecord {
            object: ObjectId(0),
            bytes: 1000,
            from: TierKind::Nvm,
            to: TierKind::Dram,
            issued_at: start,
            start,
            finish,
            needed_at,
        }
    }

    #[test]
    fn channel_serializes_requests() {
        let mut ch = CopyChannel::new(1.0); // 1 GB/s = 1 byte/ns
        let (s1, f1) = ch.schedule(1000, 0.0);
        assert_eq!((s1, f1), (0.0, 1000.0));
        // Second request issued while busy waits for the channel.
        let (s2, f2) = ch.schedule(500, 100.0);
        assert_eq!((s2, f2), (1000.0, 1500.0));
        // Request issued after idle starts immediately.
        let (s3, f3) = ch.schedule(100, 2000.0);
        assert_eq!((s3, f3), (2000.0, 2100.0));
    }

    #[test]
    fn copy_duration_scales_inverse_bandwidth() {
        let fast = CopyChannel::new(10.0);
        let slow = CopyChannel::new(2.5);
        assert!((fast.copy_duration_ns(4000) - 400.0).abs() < 1e-9);
        assert!((slow.copy_duration_ns(4000) - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn fully_hidden_migration_is_100_pct_overlap() {
        // Consumer needed the data after the copy finished.
        let r = rec(0.0, 1000.0, Some(5000.0));
        assert_eq!(r.overlapped_ns(), 1000.0);
        assert_eq!(r.exposed_ns(), 0.0);
    }

    #[test]
    fn unconsumed_migration_counts_as_hidden() {
        let r = rec(0.0, 1000.0, None);
        assert_eq!(r.exposed_ns(), 0.0);
    }

    #[test]
    fn fully_exposed_migration() {
        // Consumer was already waiting when the copy started.
        let r = rec(200.0, 1200.0, Some(200.0));
        assert_eq!(r.overlapped_ns(), 0.0);
        assert_eq!(r.exposed_ns(), 1000.0);
    }

    #[test]
    fn partially_exposed_migration() {
        let r = rec(0.0, 1000.0, Some(600.0));
        assert_eq!(r.overlapped_ns(), 600.0);
        assert_eq!(r.exposed_ns(), 400.0);
    }

    #[test]
    fn stats_aggregate_and_percentage() {
        let mut st = MigrationStats::default();
        st.record(&rec(0.0, 1000.0, Some(600.0))); // 600 hidden / 400 exposed
        st.record(&rec(0.0, 1000.0, None)); // fully hidden
        assert_eq!(st.count, 2);
        assert_eq!(st.bytes, 2000);
        assert_eq!(st.promotions, 2);
        assert!((st.pct_overlap() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn stats_merge() {
        let mut a = MigrationStats::default();
        a.record(&rec(0.0, 100.0, None));
        let mut b = MigrationStats::default();
        b.record(&rec(0.0, 300.0, Some(0.0)));
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert!((a.pct_overlap() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_report_full_overlap() {
        assert_eq!(MigrationStats::default().pct_overlap(), 100.0);
    }

    #[test]
    fn channel_metrics_count_copies_and_queueing() {
        let mut ch = CopyChannel::new(1.0);
        let m = Metrics::enabled();
        ch.set_metrics(m.clone());
        ch.schedule(1000, 0.0);
        ch.schedule(500, 100.0); // queued 900 ns behind the first copy
        let snap = m.snapshot();
        assert_eq!(snap.counter("hms.channel.copies"), Some(2));
        assert_eq!(snap.counter("hms.channel.bytes"), Some(1500));
        assert_eq!(snap.gauge("hms.channel.busy_ns"), Some(1500.0));
        assert_eq!(snap.gauge("hms.channel.queue_ns"), Some(900.0));
    }
}
