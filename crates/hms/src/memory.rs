//! The heterogeneous memory manager: object-granularity placement over a
//! DRAM tier and an NVM tier, each backed by a real allocator.

use std::collections::HashMap;

use crate::alloc::TierAllocator;
use crate::backend::{BackendStats, CopyOutcome, TierBackend, VirtualBackend};
use crate::error::HmsError;
use crate::object::{ObjectId, ObjectMeta};
use crate::tier::{TierKind, TierSpec};

/// Configuration of the two-tier memory system.
#[derive(Debug, Clone)]
pub struct HmsConfig {
    /// Fast-tier device model.
    pub dram: TierSpec,
    /// Slow-tier device model.
    pub nvm: TierSpec,
    /// Bandwidth of the inter-tier copy engine (helper thread), GB/s.
    pub copy_bw_gbps: f64,
}

impl HmsConfig {
    /// Convenience constructor validating both tiers and the copy
    /// engine's bandwidth.
    pub fn new(dram: TierSpec, nvm: TierSpec, copy_bw_gbps: f64) -> Result<Self, HmsError> {
        dram.validate()?;
        nvm.validate()?;
        if !(copy_bw_gbps > 0.0 && copy_bw_gbps.is_finite()) {
            return Err(HmsError::InvalidConfig(format!(
                "copy bandwidth must be positive and finite, got {copy_bw_gbps} GB/s"
            )));
        }
        Ok(HmsConfig {
            dram,
            nvm,
            copy_bw_gbps,
        })
    }

    /// The spec of one tier.
    pub fn tier(&self, kind: TierKind) -> &TierSpec {
        match kind {
            TierKind::Dram => &self.dram,
            TierKind::Nvm => &self.nvm,
        }
    }
}

/// Where each live object currently resides, with allocator state.
#[derive(Debug)]
struct ObjectRecord {
    meta: ObjectMeta,
    tier: TierKind,
    addr: u64,
    /// Number of in-flight tasks touching the object (pins block moves).
    pins: u32,
    /// A two-phase move is in flight: destination reserved, copy running
    /// outside the lock. Blocks pin/free/move until resolved.
    moving: bool,
}

/// An in-flight two-phase migration: the destination block is reserved
/// and the source is still live, but the bytes have not moved yet.
///
/// Produced by [`Hms::begin_move`]; the holder copies the bytes itself
/// (typically off-thread through [`Hms::move_ptrs`]) and must resolve
/// the ticket with exactly one of [`Hms::commit_move`] /
/// [`Hms::abort_move`] — dropping it leaks the destination reservation
/// and leaves the object marked mid-move.
#[derive(Debug)]
#[must_use = "resolve with commit_move or abort_move"]
pub struct MoveTicket {
    object: ObjectId,
    from: TierKind,
    from_addr: u64,
    to: TierKind,
    to_addr: u64,
    size: u64,
}

impl MoveTicket {
    /// Object being moved.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// Source tier.
    pub fn from(&self) -> TierKind {
        self.from
    }

    /// Destination tier.
    pub fn to(&self) -> TierKind {
        self.to
    }

    /// Bytes to move.
    pub fn size(&self) -> u64 {
        self.size
    }
}

/// Snapshot of tier residency, for assertions and reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidencySnapshot {
    /// Objects currently in DRAM.
    pub dram: Vec<ObjectId>,
    /// Objects currently in NVM.
    pub nvm: Vec<ObjectId>,
    /// Bytes used in DRAM.
    pub dram_used: u64,
    /// Bytes used in NVM.
    pub nvm_used: u64,
}

/// The heterogeneous memory system: object table plus one allocator per
/// tier.
///
/// This is the paper's user-level DRAM management service generalized to
/// both tiers. All placement changes go through [`Hms::move_object`], which
/// enforces pinning (never move an object while a task that declared it is
/// in flight) and capacity (allocation in the destination must succeed
/// before the source copy is released).
#[derive(Debug)]
pub struct Hms {
    config: HmsConfig,
    dram: TierAllocator,
    nvm: TierAllocator,
    objects: HashMap<ObjectId, ObjectRecord>,
    next_id: u32,
    /// Count of failed DRAM allocations that fell back to NVM.
    pub dram_fallbacks: u64,
    metrics: tahoe_obs::Metrics,
    backend: Box<dyn TierBackend>,
}

impl Hms {
    /// Create an empty memory system.
    pub fn new(config: HmsConfig) -> Self {
        let dram = TierAllocator::new(config.dram.capacity);
        let nvm = TierAllocator::new(config.nvm.capacity);
        Hms {
            config,
            dram,
            nvm,
            objects: HashMap::new(),
            next_id: 0,
            dram_fallbacks: 0,
            metrics: tahoe_obs::Metrics::disabled(),
            backend: Box::new(VirtualBackend),
        }
    }

    /// Replace the physical substrate. Must be called before any
    /// allocation so the backend sees every live range; the default is
    /// the bookkeeping-only [`VirtualBackend`].
    pub fn set_backend(&mut self, backend: Box<dyn TierBackend>) {
        debug_assert!(
            self.objects.is_empty(),
            "backend must be installed before the first allocation"
        );
        self.backend = backend;
    }

    /// Name of the installed substrate (`"virtual"`, `"mmap"`).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Cumulative substrate-side statistics.
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// The live bytes of an object on a real substrate, or `Ok(None)` on
    /// the virtual one. The slice aliases the tier arena; it is valid
    /// until the object is moved or freed.
    pub fn object_bytes(&mut self, id: ObjectId) -> Result<Option<&mut [u8]>, HmsError> {
        let (tier, addr, size) = {
            let rec = self.objects.get(&id).ok_or(HmsError::NoSuchObject(id))?;
            (rec.tier, rec.addr, rec.meta.size)
        };
        match self.backend.data_ptr(tier, addr, size) {
            // SAFETY: the backend guarantees `size` bytes at the returned
            // pointer, and the borrow of `self` prevents a concurrent
            // move/free from invalidating the mapping.
            Some(p) => Ok(Some(unsafe {
                std::slice::from_raw_parts_mut(p, size as usize)
            })),
            None => Ok(None),
        }
    }

    /// Attach a metrics registry. Capacities are published immediately as
    /// gauges; occupancy gauges (`hms.<tier>.used_bytes`) and transition
    /// counters (`hms.moves`, `hms.allocs`, `hms.dram_fallbacks`) update
    /// as the object table changes.
    pub fn set_metrics(&mut self, metrics: tahoe_obs::Metrics) {
        self.metrics = metrics;
        self.metrics
            .gauge_set("hms.dram.capacity_bytes", self.config.dram.capacity as f64);
        self.metrics
            .gauge_set("hms.nvm.capacity_bytes", self.config.nvm.capacity as f64);
        self.publish_occupancy();
    }

    fn publish_occupancy(&self) {
        self.metrics
            .gauge_set("hms.dram.used_bytes", self.dram.used() as f64);
        self.metrics
            .gauge_set("hms.nvm.used_bytes", self.nvm.used() as f64);
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &HmsConfig {
        &self.config
    }

    /// The device spec of `kind`.
    pub fn tier_spec(&self, kind: TierKind) -> &TierSpec {
        self.config.tier(kind)
    }

    fn allocator(&mut self, kind: TierKind) -> &mut TierAllocator {
        match kind {
            TierKind::Dram => &mut self.dram,
            TierKind::Nvm => &mut self.nvm,
        }
    }

    fn allocator_ref(&self, kind: TierKind) -> &TierAllocator {
        match kind {
            TierKind::Dram => &self.dram,
            TierKind::Nvm => &self.nvm,
        }
    }

    /// Allocate a new data object on `preferred`, falling back to the
    /// other tier if `fallback` is set and the preferred tier is full
    /// (the paper's default: everything that does not fit in DRAM starts
    /// in NVM).
    pub fn alloc_object(
        &mut self,
        name: &str,
        size: u64,
        preferred: TierKind,
        fallback: bool,
    ) -> Result<ObjectId, HmsError> {
        if size == 0 {
            return Err(HmsError::ZeroSizeAllocation);
        }
        let (tier, addr) = match self.allocator(preferred).alloc(size) {
            Some(addr) => (preferred, addr),
            None if fallback => {
                if preferred == TierKind::Dram {
                    self.dram_fallbacks += 1;
                    self.metrics.inc("hms.dram_fallbacks");
                }
                let other = preferred.other();
                match self.allocator(other).alloc(size) {
                    Some(addr) => (other, addr),
                    None => {
                        return Err(HmsError::OutOfMemory {
                            tier: other,
                            requested: size,
                            largest_free: self.allocator_ref(other).largest_free_block(),
                        })
                    }
                }
            }
            None => {
                return Err(HmsError::OutOfMemory {
                    tier: preferred,
                    requested: size,
                    largest_free: self.allocator_ref(preferred).largest_free_block(),
                })
            }
        };
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        self.objects.insert(
            id,
            ObjectRecord {
                meta: ObjectMeta {
                    id,
                    name: name.to_string(),
                    size,
                    chunk_of: None,
                },
                tier,
                addr,
                pins: 0,
                moving: false,
            },
        );
        self.backend.on_alloc(tier, addr, size);
        self.metrics.inc("hms.allocs");
        self.publish_occupancy();
        Ok(id)
    }

    /// Register a chunk object (metadata bookkeeping for large-object
    /// decomposition). The chunk is allocated like a normal object.
    pub fn alloc_chunk(
        &mut self,
        parent: ObjectId,
        index: u32,
        name: &str,
        size: u64,
        preferred: TierKind,
        fallback: bool,
    ) -> Result<ObjectId, HmsError> {
        let id = self.alloc_object(name, size, preferred, fallback)?;
        if let Some(rec) = self.objects.get_mut(&id) {
            rec.meta.chunk_of = Some((parent, index));
        }
        Ok(id)
    }

    /// Free an object. Fails if pinned or mid-move.
    pub fn free_object(&mut self, id: ObjectId) -> Result<(), HmsError> {
        let rec = self.objects.get(&id).ok_or(HmsError::NoSuchObject(id))?;
        if rec.pins > 0 {
            return Err(HmsError::Pinned(id));
        }
        if rec.moving {
            return Err(HmsError::Moving(id));
        }
        let rec = self.objects.remove(&id).expect("checked above");
        self.allocator(rec.tier)
            .free(rec.addr)
            .expect("object address must be live in its tier allocator");
        self.backend.on_free(rec.tier, rec.addr, rec.meta.size);
        self.metrics.inc("hms.frees");
        self.publish_occupancy();
        Ok(())
    }

    /// Current tier of an object.
    pub fn tier_of(&self, id: ObjectId) -> Result<TierKind, HmsError> {
        self.objects
            .get(&id)
            .map(|r| r.tier)
            .ok_or(HmsError::NoSuchObject(id))
    }

    /// Metadata of an object.
    pub fn meta(&self, id: ObjectId) -> Result<&ObjectMeta, HmsError> {
        self.objects
            .get(&id)
            .map(|r| &r.meta)
            .ok_or(HmsError::NoSuchObject(id))
    }

    /// Size of an object in bytes.
    pub fn size_of(&self, id: ObjectId) -> Result<u64, HmsError> {
        self.meta(id).map(|m| m.size)
    }

    /// Pin an object against migration (a task that declared it started).
    /// Fails while a two-phase move of the object is in flight — the
    /// bytes are mid-copy and must not be touched (callers that want to
    /// wait instead of fail go through [`crate::sync::SharedHms`]).
    pub fn pin(&mut self, id: ObjectId) -> Result<(), HmsError> {
        let rec = self
            .objects
            .get_mut(&id)
            .ok_or(HmsError::NoSuchObject(id))?;
        if rec.moving {
            return Err(HmsError::Moving(id));
        }
        rec.pins += 1;
        Ok(())
    }

    /// Release one pin.
    pub fn unpin(&mut self, id: ObjectId) -> Result<(), HmsError> {
        let rec = self
            .objects
            .get_mut(&id)
            .ok_or(HmsError::NoSuchObject(id))?;
        debug_assert!(rec.pins > 0, "unbalanced unpin of {id:?}");
        rec.pins = rec.pins.saturating_sub(1);
        Ok(())
    }

    /// Number of pins currently held on `id`.
    pub fn pin_count(&self, id: ObjectId) -> Result<u32, HmsError> {
        self.objects
            .get(&id)
            .map(|r| r.pins)
            .ok_or(HmsError::NoSuchObject(id))
    }

    /// Move an object to `to`, synchronously. Returns the number of
    /// bytes moved.
    ///
    /// The destination allocation is obtained before the source is freed,
    /// as a real runtime must (the copy needs both resident). Fails if the
    /// object is pinned, mid-move, missing, already there, or the
    /// destination can't hold it.
    pub fn move_object(&mut self, id: ObjectId, to: TierKind) -> Result<u64, HmsError> {
        let ticket = self.begin_move(id, to)?;
        // Physical copy while both ranges are reserved: destination is
        // allocated, source not yet released.
        self.backend.copy(
            id.0,
            ticket.from,
            ticket.from_addr,
            ticket.to,
            ticket.to_addr,
            ticket.size,
        );
        Ok(self.finish_move(ticket))
    }

    /// Phase one of a two-phase move: reserve the destination and mark
    /// the object mid-move, without copying anything.
    ///
    /// This is what the background migration engine uses — it holds the
    /// HMS lock only for this reservation, performs the (long, throttled)
    /// copy through [`Hms::move_ptrs`] with the lock released, and
    /// retakes it for [`Hms::commit_move`]. While the ticket is
    /// outstanding the object rejects pins, frees, and further moves, so
    /// no task can observe half-copied bytes.
    pub fn begin_move(&mut self, id: ObjectId, to: TierKind) -> Result<MoveTicket, HmsError> {
        let (size, from, from_addr, pins, moving) = {
            let rec = self.objects.get(&id).ok_or(HmsError::NoSuchObject(id))?;
            (rec.meta.size, rec.tier, rec.addr, rec.pins, rec.moving)
        };
        if from == to {
            return Err(HmsError::AlreadyResident(id, to));
        }
        if pins > 0 {
            return Err(HmsError::Pinned(id));
        }
        if moving {
            return Err(HmsError::Moving(id));
        }
        let to_addr = self
            .allocator(to)
            .alloc(size)
            .ok_or_else(|| HmsError::OutOfMemory {
                tier: to,
                requested: size,
                largest_free: self.allocator_ref(to).largest_free_block(),
            })?;
        self.backend.on_alloc(to, to_addr, size);
        self.objects.get_mut(&id).expect("checked above").moving = true;
        Ok(MoveTicket {
            object: id,
            from,
            from_addr,
            to,
            to_addr,
            size,
        })
    }

    /// Resolve the source and destination of an in-flight move to raw
    /// pointers, or `None` on a byte-less (virtual) substrate.
    ///
    /// The ranges stay valid while the ticket is outstanding: the source
    /// cannot be freed or remapped (the object is marked mid-move) and
    /// the destination block is reserved in its allocator.
    pub fn move_ptrs(&mut self, ticket: &MoveTicket) -> Option<(*mut u8, *mut u8)> {
        let src = self
            .backend
            .data_ptr(ticket.from, ticket.from_addr, ticket.size)?;
        let dst = self
            .backend
            .data_ptr(ticket.to, ticket.to_addr, ticket.size)?;
        Some((src, dst))
    }

    /// Phase two of a two-phase move: the bytes have been copied by the
    /// ticket holder — release the source, flip residency, and fold the
    /// copy's measured cost into the backend's statistics. Returns the
    /// bytes moved.
    pub fn commit_move(&mut self, ticket: MoveTicket, outcome: &CopyOutcome) -> u64 {
        self.backend
            .record_external_copy(ticket.object.0, ticket.from, ticket.to, outcome);
        self.finish_move(ticket)
    }

    /// Abandon an in-flight move (cancellation): release the destination
    /// reservation and clear the mid-move mark. The object stays where
    /// it was; partially copied destination bytes are discarded.
    pub fn abort_move(&mut self, ticket: MoveTicket) {
        self.allocator(ticket.to)
            .free(ticket.to_addr)
            .expect("ticket destination must be live");
        self.backend.on_free(ticket.to, ticket.to_addr, ticket.size);
        self.objects
            .get_mut(&ticket.object)
            .expect("ticket object must be live")
            .moving = false;
        self.publish_occupancy();
    }

    /// Whether a two-phase move of `id` is currently in flight.
    pub fn is_moving(&self, id: ObjectId) -> Result<bool, HmsError> {
        self.objects
            .get(&id)
            .map(|r| r.moving)
            .ok_or(HmsError::NoSuchObject(id))
    }

    /// Shared tail of a completed move: free the source, update the
    /// record, publish metrics.
    fn finish_move(&mut self, ticket: MoveTicket) -> u64 {
        self.allocator(ticket.from)
            .free(ticket.from_addr)
            .expect("source address must be live");
        self.backend
            .on_free(ticket.from, ticket.from_addr, ticket.size);
        let rec = self
            .objects
            .get_mut(&ticket.object)
            .expect("ticket object must be live");
        rec.tier = ticket.to;
        rec.addr = ticket.to_addr;
        rec.moving = false;
        self.metrics.inc("hms.moves");
        self.metrics.add("hms.moved_bytes", ticket.size);
        self.publish_occupancy();
        ticket.size
    }

    /// Resolve an object's live bytes to a raw pointer with its length
    /// and current tier (real substrates), or `Ok(None)` on the virtual
    /// one. Unlike [`Hms::object_bytes`] this hands out a raw pointer,
    /// for callers that manage aliasing themselves (the parallel
    /// measured path pins objects and lets concurrent readers share the
    /// range without materializing overlapping `&mut`s).
    pub fn object_ptr(
        &mut self,
        id: ObjectId,
    ) -> Result<Option<(*mut u8, u64, TierKind)>, HmsError> {
        let (tier, addr, size) = {
            let rec = self.objects.get(&id).ok_or(HmsError::NoSuchObject(id))?;
            (rec.tier, rec.addr, rec.meta.size)
        };
        Ok(self
            .backend
            .data_ptr(tier, addr, size)
            .map(|p| (p, size, tier)))
    }

    /// Whether `bytes` more would fit on `tier` right now.
    pub fn can_fit(&self, tier: TierKind, bytes: u64) -> bool {
        self.allocator_ref(tier).can_fit(bytes)
    }

    /// Bytes used on `tier`.
    pub fn used(&self, tier: TierKind) -> u64 {
        self.allocator_ref(tier).used()
    }

    /// Bytes free on `tier`.
    pub fn free_bytes(&self, tier: TierKind) -> u64 {
        self.allocator_ref(tier).free_bytes()
    }

    /// External fragmentation of `tier`.
    pub fn fragmentation(&self, tier: TierKind) -> f64 {
        self.allocator_ref(tier).fragmentation()
    }

    /// One past the highest object id ever allocated (ids are dense and
    /// never reused, so every live id is below this watermark). The
    /// shared wrapper's slot table syncs against it.
    pub fn peak_object_id(&self) -> u32 {
        self.next_id
    }

    /// Ids of all live objects, ascending.
    pub fn live_objects(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.objects.keys().copied().collect();
        v.sort();
        v
    }

    /// Ids of objects resident on `tier`, ascending.
    pub fn objects_on(&self, tier: TierKind) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|(_, r)| r.tier == tier)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// Residency snapshot for reporting.
    pub fn snapshot(&self) -> ResidencySnapshot {
        ResidencySnapshot {
            dram: self.objects_on(TierKind::Dram),
            nvm: self.objects_on(TierKind::Nvm),
            dram_used: self.used(TierKind::Dram),
            nvm_used: self.used(TierKind::Nvm),
        }
    }

    /// Total footprint of live objects.
    pub fn footprint(&self) -> u64 {
        self.objects.values().map(|r| r.meta.size).sum()
    }

    /// Check cross-structure invariants (object table vs allocators).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.dram.check_invariants()?;
        self.nvm.check_invariants()?;
        let mut dram_bytes = 0;
        let mut nvm_bytes = 0;
        for rec in self.objects.values() {
            match rec.tier {
                TierKind::Dram => dram_bytes += rec.meta.size,
                TierKind::Nvm => nvm_bytes += rec.meta.size,
            }
        }
        if dram_bytes != self.dram.used() {
            return Err(format!(
                "DRAM object bytes {dram_bytes} != allocator used {}",
                self.dram.used()
            ));
        }
        if nvm_bytes != self.nvm.used() {
            return Err(format!(
                "NVM object bytes {nvm_bytes} != allocator used {}",
                self.nvm.used()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn small_hms(dram_cap: u64, nvm_cap: u64) -> Hms {
        Hms::new(
            HmsConfig::new(presets::dram(dram_cap), presets::optane_pmm(nvm_cap), 5.0)
                .expect("valid test config"),
        )
    }

    #[test]
    fn alloc_prefers_requested_tier() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 512, TierKind::Dram, true).unwrap();
        assert_eq!(h.tier_of(a).unwrap(), TierKind::Dram);
        assert_eq!(h.used(TierKind::Dram), 512);
        h.check_invariants().unwrap();
    }

    #[test]
    fn dram_overflow_falls_back_to_nvm() {
        let mut h = small_hms(1024, 4096);
        let _a = h.alloc_object("a", 1000, TierKind::Dram, true).unwrap();
        let b = h.alloc_object("b", 512, TierKind::Dram, true).unwrap();
        assert_eq!(h.tier_of(b).unwrap(), TierKind::Nvm);
        assert_eq!(h.dram_fallbacks, 1);
        h.check_invariants().unwrap();
    }

    #[test]
    fn no_fallback_errors_out() {
        let mut h = small_hms(1024, 4096);
        let _a = h.alloc_object("a", 1000, TierKind::Dram, false).unwrap();
        let err = h.alloc_object("b", 512, TierKind::Dram, false).unwrap_err();
        assert!(matches!(
            err,
            HmsError::OutOfMemory {
                tier: TierKind::Dram,
                ..
            }
        ));
    }

    #[test]
    fn both_tiers_full_is_oom() {
        let mut h = small_hms(64, 64);
        let _ = h.alloc_object("a", 64, TierKind::Dram, true).unwrap();
        let _ = h.alloc_object("b", 64, TierKind::Nvm, true).unwrap();
        assert!(h.alloc_object("c", 1, TierKind::Dram, true).is_err());
    }

    #[test]
    fn move_object_updates_residency_and_accounting() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 256, TierKind::Nvm, false).unwrap();
        let moved = h.move_object(a, TierKind::Dram).unwrap();
        assert_eq!(moved, 256);
        assert_eq!(h.tier_of(a).unwrap(), TierKind::Dram);
        assert_eq!(h.used(TierKind::Nvm), 0);
        assert_eq!(h.used(TierKind::Dram), 256);
        h.check_invariants().unwrap();
    }

    #[test]
    fn move_to_same_tier_is_error() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 64, TierKind::Dram, false).unwrap();
        assert_eq!(
            h.move_object(a, TierKind::Dram),
            Err(HmsError::AlreadyResident(a, TierKind::Dram))
        );
    }

    #[test]
    fn move_respects_destination_capacity() {
        let mut h = small_hms(100, 4096);
        let big = h.alloc_object("big", 512, TierKind::Nvm, false).unwrap();
        let err = h.move_object(big, TierKind::Dram).unwrap_err();
        assert!(matches!(
            err,
            HmsError::OutOfMemory {
                tier: TierKind::Dram,
                ..
            }
        ));
        // Object must still be intact in NVM after the failed move.
        assert_eq!(h.tier_of(big).unwrap(), TierKind::Nvm);
        h.check_invariants().unwrap();
    }

    #[test]
    fn pinned_object_cannot_move_or_free() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 64, TierKind::Nvm, false).unwrap();
        h.pin(a).unwrap();
        assert_eq!(h.move_object(a, TierKind::Dram), Err(HmsError::Pinned(a)));
        assert_eq!(h.free_object(a), Err(HmsError::Pinned(a)));
        h.unpin(a).unwrap();
        assert!(h.move_object(a, TierKind::Dram).is_ok());
        h.check_invariants().unwrap();
    }

    #[test]
    fn pin_is_counted() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 64, TierKind::Nvm, false).unwrap();
        h.pin(a).unwrap();
        h.pin(a).unwrap();
        assert_eq!(h.pin_count(a).unwrap(), 2);
        h.unpin(a).unwrap();
        assert_eq!(h.pin_count(a).unwrap(), 1);
        // Still pinned by one task.
        assert_eq!(h.move_object(a, TierKind::Dram), Err(HmsError::Pinned(a)));
    }

    #[test]
    fn free_returns_bytes_to_tier() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 300, TierKind::Dram, false).unwrap();
        h.free_object(a).unwrap();
        assert_eq!(h.used(TierKind::Dram), 0);
        assert!(matches!(h.tier_of(a), Err(HmsError::NoSuchObject(_))));
        h.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_partitions_objects() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 100, TierKind::Dram, false).unwrap();
        let b = h.alloc_object("b", 200, TierKind::Nvm, false).unwrap();
        let snap = h.snapshot();
        assert_eq!(snap.dram, vec![a]);
        assert_eq!(snap.nvm, vec![b]);
        assert_eq!(snap.dram_used, 100);
        assert_eq!(snap.nvm_used, 200);
        assert_eq!(h.footprint(), 300);
    }

    #[test]
    fn chunk_allocation_links_parent() {
        let mut h = small_hms(1024, 4096);
        let parent = h.alloc_object("p", 512, TierKind::Nvm, false).unwrap();
        let c = h
            .alloc_chunk(parent, 3, "p[3]", 128, TierKind::Nvm, false)
            .unwrap();
        assert_eq!(h.meta(c).unwrap().chunk_of, Some((parent, 3)));
        assert!(h.meta(c).unwrap().is_chunk());
    }

    #[test]
    fn config_rejects_bad_specs_and_copy_bw() {
        let d = presets::dram(1024);
        let n = presets::optane_pmm(4096);
        assert!(matches!(
            HmsConfig::new(d.clone().with_capacity(0), n.clone(), 5.0),
            Err(HmsError::InvalidSpec { .. })
        ));
        for bad in [0.0, -1.0, f64::NAN] {
            assert!(matches!(
                HmsConfig::new(d.clone(), n.clone(), bad),
                Err(HmsError::InvalidConfig(_))
            ));
        }
        assert!(HmsConfig::new(d, n, 5.0).is_ok());
    }

    #[test]
    fn default_backend_is_virtual() {
        let mut h = small_hms(1024, 4096);
        assert_eq!(h.backend_name(), "virtual");
        assert!(!h.backend_stats().is_real);
        let a = h.alloc_object("a", 64, TierKind::Dram, false).unwrap();
        assert!(h.object_bytes(a).unwrap().is_none());
    }

    #[test]
    fn zero_size_rejected() {
        let mut h = small_hms(1024, 4096);
        assert_eq!(
            h.alloc_object("z", 0, TierKind::Dram, true),
            Err(HmsError::ZeroSizeAllocation)
        );
    }

    #[test]
    fn two_phase_move_reserves_then_commits() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 256, TierKind::Nvm, false).unwrap();
        let t = h.begin_move(a, TierKind::Dram).unwrap();
        assert_eq!(
            (t.object(), t.from(), t.to(), t.size()),
            (a, TierKind::Nvm, TierKind::Dram, 256)
        );
        assert!(h.is_moving(a).unwrap());
        // Mid-move the object rejects pins, frees, and further moves.
        assert_eq!(h.pin(a), Err(HmsError::Moving(a)));
        assert_eq!(h.free_object(a), Err(HmsError::Moving(a)));
        assert_eq!(h.move_object(a, TierKind::Dram), Err(HmsError::Moving(a)));
        // Both ranges reserved while the ticket is outstanding.
        assert_eq!(h.used(TierKind::Dram), 256);
        assert_eq!(h.used(TierKind::Nvm), 256);
        let moved = h.commit_move(t, &crate::CopyOutcome::default());
        assert_eq!(moved, 256);
        assert!(!h.is_moving(a).unwrap());
        assert_eq!(h.tier_of(a).unwrap(), TierKind::Dram);
        assert_eq!(h.used(TierKind::Nvm), 0);
        h.check_invariants().unwrap();
    }

    #[test]
    fn aborted_two_phase_move_restores_state() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 256, TierKind::Nvm, false).unwrap();
        let t = h.begin_move(a, TierKind::Dram).unwrap();
        h.abort_move(t);
        assert!(!h.is_moving(a).unwrap());
        assert_eq!(h.tier_of(a).unwrap(), TierKind::Nvm);
        assert_eq!(h.used(TierKind::Dram), 0);
        h.check_invariants().unwrap();
        // The object is movable again after the abort.
        assert!(h.move_object(a, TierKind::Dram).is_ok());
    }

    #[test]
    fn metrics_track_occupancy_and_transitions() {
        let mut h = small_hms(1024, 4096);
        let m = tahoe_obs::Metrics::enabled();
        h.set_metrics(m.clone());
        let a = h.alloc_object("a", 300, TierKind::Nvm, false).unwrap();
        h.move_object(a, TierKind::Dram).unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.counter("hms.allocs"), Some(1));
        assert_eq!(snap.counter("hms.moves"), Some(1));
        assert_eq!(snap.counter("hms.moved_bytes"), Some(300));
        assert_eq!(snap.gauge("hms.dram.used_bytes"), Some(300.0));
        assert_eq!(snap.gauge("hms.nvm.used_bytes"), Some(0.0));
        assert_eq!(snap.gauge("hms.dram.capacity_bytes"), Some(1024.0));
        h.free_object(a).unwrap();
        assert_eq!(m.snapshot().gauge("hms.dram.used_bytes"), Some(0.0));
    }
}
