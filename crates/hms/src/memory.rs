//! The heterogeneous memory manager: object-granularity placement over
//! an ordered list of memory tiers, each backed by a real allocator.
//!
//! The paper's HMS is a DRAM/NVM pair; this module generalizes it to N
//! ordered tiers (fastest first), with the two-tier [`TierKind`] API
//! preserved as a facade: `Dram` is tier 0 and `Nvm` is the *last*
//! tier, so existing two-tier callers (the virtual simulator, the
//! parallel measured path, the background migrator) compile and behave
//! unchanged while N-tier callers address tiers by [`TierId`].

use std::collections::HashMap;

use crate::alloc::TierAllocator;
use crate::backend::{BackendStats, CopyOutcome, TierBackend, VirtualBackend};
use crate::error::HmsError;
use crate::object::{ObjectId, ObjectMeta};
use crate::tier::{TierId, TierKind, TierSpec};

/// Configuration of the tiered memory system.
///
/// The ordered tier list is `[dram, mids…, nvm]` — `dram` is always the
/// fastest tier and `nvm` the slowest (the spill tier). `mids` is empty
/// in the classic two-tier setup; a 3-tier DRAM/CXL/NVM platform puts
/// the CXL spec there.
#[derive(Debug, Clone)]
pub struct HmsConfig {
    /// Fast-tier device model (tier 0).
    pub dram: TierSpec,
    /// Slow-tier device model (the last tier; the spill tier).
    pub nvm: TierSpec,
    /// Bandwidth of the DRAM↔spill inter-tier copy engine (helper
    /// thread), GB/s. Per-pair bandwidths, when configured, live in the
    /// copy matrix and are read through [`HmsConfig::copy_bw_between`].
    pub copy_bw_gbps: f64,
    /// Middle tiers between `dram` and `nvm`, fastest first (empty in
    /// the two-tier setup).
    pub mids: Vec<TierSpec>,
    /// Row-major n×n copy-bandwidth matrix, GB/s: entry `[from][to]` is
    /// the modelled bandwidth of a `from`→`to` migration. `None` falls
    /// back to the scalar `copy_bw_gbps` for every pair.
    copy_matrix: Option<Vec<f64>>,
}

impl HmsConfig {
    /// Convenience constructor for the classic two-tier system,
    /// validating both tiers and the copy engine's bandwidth.
    pub fn new(dram: TierSpec, nvm: TierSpec, copy_bw_gbps: f64) -> Result<Self, HmsError> {
        dram.validate()?;
        nvm.validate()?;
        if !(copy_bw_gbps > 0.0 && copy_bw_gbps.is_finite()) {
            return Err(HmsError::InvalidConfig(format!(
                "copy bandwidth must be positive and finite, got {copy_bw_gbps} GB/s"
            )));
        }
        Ok(HmsConfig {
            dram,
            nvm,
            copy_bw_gbps,
            mids: Vec::new(),
            copy_matrix: None,
        })
    }

    /// Construct an N-tier system from an ordered tier list (fastest
    /// first, at least two tiers). `copy_bw_gbps` sets the DRAM↔spill
    /// pair; every other pair's copy bandwidth defaults to
    /// `0.8 × min(src read BW, dst write BW)` — the copy streams out of
    /// the source and into the destination, so the slower side of that
    /// pipe bounds it (the same derivation the two-tier presets use).
    pub fn with_tiers(mut tiers: Vec<TierSpec>, copy_bw_gbps: f64) -> Result<Self, HmsError> {
        if tiers.len() < 2 {
            return Err(HmsError::InvalidConfig(format!(
                "a tier list needs at least 2 tiers, got {}",
                tiers.len()
            )));
        }
        if tiers.len() > u8::MAX as usize {
            return Err(HmsError::InvalidConfig(format!(
                "at most {} tiers are supported, got {}",
                u8::MAX,
                tiers.len()
            )));
        }
        for t in &tiers {
            t.validate()?;
        }
        let nvm = tiers.pop().expect("len >= 2");
        let dram = tiers.remove(0);
        let mids = tiers;
        let mut cfg = HmsConfig::new(dram, nvm, copy_bw_gbps)?;
        cfg.mids = mids;
        let n = cfg.n_tiers();
        let mut matrix = vec![0.0; n * n];
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                let src = cfg.tier_spec_at(TierId(from as u8));
                let dst = cfg.tier_spec_at(TierId(to as u8));
                matrix[from * n + to] = 0.8 * src.read_bw_gbps.min(dst.write_bw_gbps);
            }
        }
        matrix[n - 1] = copy_bw_gbps; // [0][last]
        matrix[(n - 1) * n] = copy_bw_gbps; // [last][0]
        cfg.copy_matrix = Some(matrix);
        Ok(cfg)
    }

    /// Number of tiers (≥ 2).
    pub fn n_tiers(&self) -> usize {
        2 + self.mids.len()
    }

    /// The ordered tier list, fastest first.
    pub fn tier_specs(&self) -> Vec<&TierSpec> {
        let mut v = Vec::with_capacity(self.n_tiers());
        v.push(&self.dram);
        v.extend(self.mids.iter());
        v.push(&self.nvm);
        v
    }

    /// The spec of the tier at `id`. Panics on an out-of-range index.
    pub fn tier_spec_at(&self, id: TierId) -> &TierSpec {
        let i = id.index();
        let n = self.n_tiers();
        assert!(i < n, "tier index {i} out of range (n_tiers = {n})");
        if i == 0 {
            &self.dram
        } else if i == n - 1 {
            &self.nvm
        } else {
            &self.mids[i - 1]
        }
    }

    /// The [`TierId`] a two-tier [`TierKind`] maps to in this config.
    pub fn tier_id(&self, kind: TierKind) -> TierId {
        TierId::from_kind(kind, self.n_tiers())
    }

    /// The last (slowest, spill) tier.
    pub fn last_tier(&self) -> TierId {
        TierId((self.n_tiers() - 1) as u8)
    }

    /// Modelled copy bandwidth of a `from`→`to` migration, GB/s. Falls
    /// back to the scalar `copy_bw_gbps` when no matrix is configured.
    pub fn copy_bw_between(&self, from: TierId, to: TierId) -> f64 {
        match &self.copy_matrix {
            Some(m) => {
                let n = self.n_tiers();
                assert!(
                    from.index() < n && to.index() < n,
                    "tier index out of range"
                );
                m[from.index() * n + to.index()]
            }
            None => self.copy_bw_gbps,
        }
    }

    /// Override one pair's copy bandwidth (builds the matrix from the
    /// scalar default on first use).
    pub fn set_copy_bw(&mut self, from: TierId, to: TierId, bw_gbps: f64) -> Result<(), HmsError> {
        if !(bw_gbps > 0.0 && bw_gbps.is_finite()) {
            return Err(HmsError::InvalidConfig(format!(
                "copy bandwidth must be positive and finite, got {bw_gbps} GB/s"
            )));
        }
        let n = self.n_tiers();
        if from.index() >= n || to.index() >= n {
            return Err(HmsError::InvalidConfig(format!(
                "tier pair ({from}, {to}) out of range for {n} tiers"
            )));
        }
        let m = self
            .copy_matrix
            .get_or_insert_with(|| vec![self.copy_bw_gbps; n * n]);
        m[from.index() * n + to.index()] = bw_gbps;
        Ok(())
    }

    /// The spec of one tier through the two-tier facade.
    pub fn tier(&self, kind: TierKind) -> &TierSpec {
        match kind {
            TierKind::Dram => &self.dram,
            TierKind::Nvm => &self.nvm,
        }
    }
}

/// Gauge names for up to four middle tiers (the metrics registry keys on
/// `&'static str`; platforms with more middle tiers than this publish
/// gauges for the first four only).
const MID_CAPACITY_GAUGES: [&str; 4] = [
    "hms.tier1.capacity_bytes",
    "hms.tier2.capacity_bytes",
    "hms.tier3.capacity_bytes",
    "hms.tier4.capacity_bytes",
];
const MID_USED_GAUGES: [&str; 4] = [
    "hms.tier1.used_bytes",
    "hms.tier2.used_bytes",
    "hms.tier3.used_bytes",
    "hms.tier4.used_bytes",
];

/// Where each live object currently resides, with allocator state.
#[derive(Debug)]
struct ObjectRecord {
    meta: ObjectMeta,
    tier: TierId,
    addr: u64,
    /// Number of in-flight tasks touching the object (pins block moves).
    pins: u32,
    /// A two-phase move is in flight: destination reserved, copy running
    /// outside the lock. Blocks pin/free/move until resolved.
    moving: bool,
}

/// An in-flight two-phase migration: the destination block is reserved
/// and the source is still live, but the bytes have not moved yet.
///
/// Produced by [`Hms::begin_move`]; the holder copies the bytes itself
/// (typically off-thread through [`Hms::move_ptrs`]) and must resolve
/// the ticket with exactly one of [`Hms::commit_move`] /
/// [`Hms::abort_move`] — dropping it leaks the destination reservation
/// and leaves the object marked mid-move.
#[derive(Debug)]
#[must_use = "resolve with commit_move or abort_move"]
pub struct MoveTicket {
    object: ObjectId,
    from: TierId,
    from_addr: u64,
    to: TierId,
    to_addr: u64,
    size: u64,
}

impl MoveTicket {
    /// Object being moved.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// Source tier through the two-tier facade (middle tiers present as
    /// NVM); [`MoveTicket::from_tier`] has the exact index.
    pub fn from(&self) -> TierKind {
        self.from.kind()
    }

    /// Destination tier through the two-tier facade.
    pub fn to(&self) -> TierKind {
        self.to.kind()
    }

    /// Exact source tier index.
    pub fn from_tier(&self) -> TierId {
        self.from
    }

    /// Exact destination tier index.
    pub fn to_tier(&self) -> TierId {
        self.to
    }

    /// Bytes to move.
    pub fn size(&self) -> u64 {
        self.size
    }
}

/// Snapshot of tier residency, for assertions and reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidencySnapshot {
    /// Objects currently in DRAM (tier 0).
    pub dram: Vec<ObjectId>,
    /// Objects currently in NVM (the last tier).
    pub nvm: Vec<ObjectId>,
    /// Objects on middle tiers, ascending (empty in two-tier configs).
    pub mid: Vec<ObjectId>,
    /// Bytes used in DRAM.
    pub dram_used: u64,
    /// Bytes used in NVM.
    pub nvm_used: u64,
    /// Bytes used across all middle tiers.
    pub mid_used: u64,
}

/// The heterogeneous memory system: object table plus one allocator per
/// tier.
///
/// This is the paper's user-level DRAM management service generalized to
/// every tier. All placement changes go through [`Hms::move_object`] /
/// [`Hms::move_object_to`], which enforce pinning (never move an object
/// while a task that declared it is in flight) and capacity (allocation
/// in the destination must succeed before the source copy is released).
#[derive(Debug)]
pub struct Hms {
    config: HmsConfig,
    /// One allocator per tier, fastest first.
    tiers: Vec<TierAllocator>,
    objects: HashMap<ObjectId, ObjectRecord>,
    next_id: u32,
    /// Count of failed DRAM allocations that fell back to a slower tier.
    pub dram_fallbacks: u64,
    metrics: tahoe_obs::Metrics,
    backend: Box<dyn TierBackend>,
}

impl Hms {
    /// Create an empty memory system.
    pub fn new(config: HmsConfig) -> Self {
        let tiers = config
            .tier_specs()
            .iter()
            .map(|spec| TierAllocator::new(spec.capacity))
            .collect();
        Hms {
            config,
            tiers,
            objects: HashMap::new(),
            next_id: 0,
            dram_fallbacks: 0,
            metrics: tahoe_obs::Metrics::disabled(),
            backend: Box::new(VirtualBackend),
        }
    }

    /// Replace the physical substrate. Must be called before any
    /// allocation so the backend sees every live range; the default is
    /// the bookkeeping-only [`VirtualBackend`].
    pub fn set_backend(&mut self, backend: Box<dyn TierBackend>) {
        debug_assert!(
            self.objects.is_empty(),
            "backend must be installed before the first allocation"
        );
        self.backend = backend;
    }

    /// Name of the installed substrate (`"virtual"`, `"mmap"`).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Cumulative substrate-side statistics.
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// The live bytes of an object on a real substrate, or `Ok(None)` on
    /// the virtual one. The slice aliases the tier arena; it is valid
    /// until the object is moved or freed.
    pub fn object_bytes(&mut self, id: ObjectId) -> Result<Option<&mut [u8]>, HmsError> {
        let (tier, addr, size) = {
            let rec = self.objects.get(&id).ok_or(HmsError::NoSuchObject(id))?;
            (rec.tier, rec.addr, rec.meta.size)
        };
        match self.backend.data_ptr(tier, addr, size) {
            // SAFETY: the backend guarantees `size` bytes at the returned
            // pointer, and the borrow of `self` prevents a concurrent
            // move/free from invalidating the mapping.
            Some(p) => Ok(Some(unsafe {
                std::slice::from_raw_parts_mut(p, size as usize)
            })),
            None => Ok(None),
        }
    }

    /// Attach a metrics registry. Capacities are published immediately as
    /// gauges; occupancy gauges (`hms.<tier>.used_bytes`) and transition
    /// counters (`hms.moves`, `hms.allocs`, `hms.dram_fallbacks`) update
    /// as the object table changes. Middle tiers publish under
    /// `hms.tier<i>.*`.
    pub fn set_metrics(&mut self, metrics: tahoe_obs::Metrics) {
        self.metrics = metrics;
        self.metrics
            .gauge_set("hms.dram.capacity_bytes", self.config.dram.capacity as f64);
        self.metrics
            .gauge_set("hms.nvm.capacity_bytes", self.config.nvm.capacity as f64);
        for (i, spec) in self.config.mids.iter().enumerate() {
            if let Some(name) = MID_CAPACITY_GAUGES.get(i) {
                self.metrics.gauge_set(name, spec.capacity as f64);
            }
        }
        self.publish_occupancy();
    }

    fn publish_occupancy(&self) {
        let last = self.tiers.len() - 1;
        self.metrics
            .gauge_set("hms.dram.used_bytes", self.tiers[0].used() as f64);
        self.metrics
            .gauge_set("hms.nvm.used_bytes", self.tiers[last].used() as f64);
        for i in 1..last {
            if let Some(name) = MID_USED_GAUGES.get(i - 1) {
                self.metrics.gauge_set(name, self.tiers[i].used() as f64);
            }
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &HmsConfig {
        &self.config
    }

    /// Number of tiers.
    pub fn n_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// The device spec of `kind`.
    pub fn tier_spec(&self, kind: TierKind) -> &TierSpec {
        self.config.tier(kind)
    }

    fn to_id(&self, kind: TierKind) -> TierId {
        self.config.tier_id(kind)
    }

    fn allocator(&mut self, tier: TierId) -> &mut TierAllocator {
        &mut self.tiers[tier.index()]
    }

    fn allocator_ref(&self, tier: TierId) -> &TierAllocator {
        &self.tiers[tier.index()]
    }

    /// Allocate a new data object on `preferred`, falling back to the
    /// other tier if `fallback` is set and the preferred tier is full
    /// (the paper's default: everything that does not fit in DRAM starts
    /// in NVM). Two-tier facade over [`Hms::alloc_object_on`].
    pub fn alloc_object(
        &mut self,
        name: &str,
        size: u64,
        preferred: TierKind,
        fallback: bool,
    ) -> Result<ObjectId, HmsError> {
        let preferred = self.to_id(preferred);
        self.alloc_object_on(name, size, preferred, fallback)
    }

    /// Allocate a new data object on tier `preferred`. With `fallback`
    /// the allocation cascades: first every *slower* tier in order
    /// (spill down, the paper's overflow direction), then faster tiers
    /// (a full slow tier overflows upward rather than failing).
    pub fn alloc_object_on(
        &mut self,
        name: &str,
        size: u64,
        preferred: TierId,
        fallback: bool,
    ) -> Result<ObjectId, HmsError> {
        if size == 0 {
            return Err(HmsError::ZeroSizeAllocation);
        }
        let n = self.tiers.len();
        assert!(preferred.index() < n, "tier {preferred} out of range");
        let mut placed = None;
        if let Some(addr) = self.allocator(preferred).alloc(size) {
            placed = Some((preferred, addr));
        } else if fallback {
            if preferred == TierId::FASTEST {
                self.dram_fallbacks += 1;
                self.metrics.inc("hms.dram_fallbacks");
            }
            // Slower tiers first, then faster ones.
            let order = (preferred.index() + 1..n).chain((0..preferred.index()).rev());
            let mut last_tried = preferred;
            for i in order {
                let t = TierId(i as u8);
                last_tried = t;
                if let Some(addr) = self.allocator(t).alloc(size) {
                    placed = Some((t, addr));
                    break;
                }
            }
            if placed.is_none() {
                return Err(HmsError::OutOfMemory {
                    tier: last_tried.kind(),
                    requested: size,
                    largest_free: self.allocator_ref(last_tried).largest_free_block(),
                });
            }
        } else {
            return Err(HmsError::OutOfMemory {
                tier: preferred.kind(),
                requested: size,
                largest_free: self.allocator_ref(preferred).largest_free_block(),
            });
        }
        let (tier, addr) = placed.expect("placed or returned above");
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        self.objects.insert(
            id,
            ObjectRecord {
                meta: ObjectMeta {
                    id,
                    name: name.to_string(),
                    size,
                    chunk_of: None,
                },
                tier,
                addr,
                pins: 0,
                moving: false,
            },
        );
        self.backend.on_alloc(tier, addr, size);
        self.metrics.inc("hms.allocs");
        self.publish_occupancy();
        Ok(id)
    }

    /// Register a chunk object (metadata bookkeeping for large-object
    /// decomposition). The chunk is allocated like a normal object.
    pub fn alloc_chunk(
        &mut self,
        parent: ObjectId,
        index: u32,
        name: &str,
        size: u64,
        preferred: TierKind,
        fallback: bool,
    ) -> Result<ObjectId, HmsError> {
        let id = self.alloc_object(name, size, preferred, fallback)?;
        if let Some(rec) = self.objects.get_mut(&id) {
            rec.meta.chunk_of = Some((parent, index));
        }
        Ok(id)
    }

    /// Free an object. Fails if pinned or mid-move.
    pub fn free_object(&mut self, id: ObjectId) -> Result<(), HmsError> {
        let rec = self.objects.get(&id).ok_or(HmsError::NoSuchObject(id))?;
        if rec.pins > 0 {
            return Err(HmsError::Pinned(id));
        }
        if rec.moving {
            return Err(HmsError::Moving(id));
        }
        let rec = self.objects.remove(&id).expect("checked above");
        self.allocator(rec.tier)
            .free(rec.addr)
            .expect("object address must be live in its tier allocator");
        self.backend.on_free(rec.tier, rec.addr, rec.meta.size);
        self.metrics.inc("hms.frees");
        self.publish_occupancy();
        Ok(())
    }

    /// Current tier of an object through the two-tier facade (middle
    /// tiers present as NVM); [`Hms::tier_index_of`] has the exact index.
    pub fn tier_of(&self, id: ObjectId) -> Result<TierKind, HmsError> {
        self.tier_index_of(id).map(TierId::kind)
    }

    /// Exact tier index of an object.
    pub fn tier_index_of(&self, id: ObjectId) -> Result<TierId, HmsError> {
        self.objects
            .get(&id)
            .map(|r| r.tier)
            .ok_or(HmsError::NoSuchObject(id))
    }

    /// Metadata of an object.
    pub fn meta(&self, id: ObjectId) -> Result<&ObjectMeta, HmsError> {
        self.objects
            .get(&id)
            .map(|r| &r.meta)
            .ok_or(HmsError::NoSuchObject(id))
    }

    /// Size of an object in bytes.
    pub fn size_of(&self, id: ObjectId) -> Result<u64, HmsError> {
        self.meta(id).map(|m| m.size)
    }

    /// Pin an object against migration (a task that declared it started).
    /// Fails while a two-phase move of the object is in flight — the
    /// bytes are mid-copy and must not be touched (callers that want to
    /// wait instead of fail go through [`crate::sync::SharedHms`]).
    pub fn pin(&mut self, id: ObjectId) -> Result<(), HmsError> {
        let rec = self
            .objects
            .get_mut(&id)
            .ok_or(HmsError::NoSuchObject(id))?;
        if rec.moving {
            return Err(HmsError::Moving(id));
        }
        rec.pins += 1;
        Ok(())
    }

    /// Release one pin.
    pub fn unpin(&mut self, id: ObjectId) -> Result<(), HmsError> {
        let rec = self
            .objects
            .get_mut(&id)
            .ok_or(HmsError::NoSuchObject(id))?;
        debug_assert!(rec.pins > 0, "unbalanced unpin of {id:?}");
        rec.pins = rec.pins.saturating_sub(1);
        Ok(())
    }

    /// Number of pins currently held on `id`.
    pub fn pin_count(&self, id: ObjectId) -> Result<u32, HmsError> {
        self.objects
            .get(&id)
            .map(|r| r.pins)
            .ok_or(HmsError::NoSuchObject(id))
    }

    /// Move an object to `to`, synchronously. Two-tier facade over
    /// [`Hms::move_object_to`].
    pub fn move_object(&mut self, id: ObjectId, to: TierKind) -> Result<u64, HmsError> {
        let to = self.to_id(to);
        self.move_object_to(id, to)
    }

    /// Move an object to the tier at `to`, synchronously. Returns the
    /// number of bytes moved.
    ///
    /// The destination allocation is obtained before the source is freed,
    /// as a real runtime must (the copy needs both resident). Fails if the
    /// object is pinned, mid-move, missing, already there, or the
    /// destination can't hold it.
    pub fn move_object_to(&mut self, id: ObjectId, to: TierId) -> Result<u64, HmsError> {
        let ticket = self.begin_move_to(id, to)?;
        // Physical copy while both ranges are reserved: destination is
        // allocated, source not yet released.
        self.backend.copy(
            id.0,
            ticket.from,
            ticket.from_addr,
            ticket.to,
            ticket.to_addr,
            ticket.size,
        );
        Ok(self.finish_move(ticket))
    }

    /// Phase one of a two-phase move (two-tier facade over
    /// [`Hms::begin_move_to`]).
    pub fn begin_move(&mut self, id: ObjectId, to: TierKind) -> Result<MoveTicket, HmsError> {
        let to = self.to_id(to);
        self.begin_move_to(id, to)
    }

    /// Phase one of a two-phase move: reserve the destination and mark
    /// the object mid-move, without copying anything.
    ///
    /// This is what the background migration engine uses — it holds the
    /// HMS lock only for this reservation, performs the (long, throttled)
    /// copy through [`Hms::move_ptrs`] with the lock released, and
    /// retakes it for [`Hms::commit_move`]. While the ticket is
    /// outstanding the object rejects pins, frees, and further moves, so
    /// no task can observe half-copied bytes.
    pub fn begin_move_to(&mut self, id: ObjectId, to: TierId) -> Result<MoveTicket, HmsError> {
        assert!(to.index() < self.tiers.len(), "tier {to} out of range");
        let (size, from, from_addr, pins, moving) = {
            let rec = self.objects.get(&id).ok_or(HmsError::NoSuchObject(id))?;
            (rec.meta.size, rec.tier, rec.addr, rec.pins, rec.moving)
        };
        if from == to {
            return Err(HmsError::AlreadyResident(id, to.kind()));
        }
        if pins > 0 {
            return Err(HmsError::Pinned(id));
        }
        if moving {
            return Err(HmsError::Moving(id));
        }
        let to_addr = self
            .allocator(to)
            .alloc(size)
            .ok_or_else(|| HmsError::OutOfMemory {
                tier: to.kind(),
                requested: size,
                largest_free: self.allocator_ref(to).largest_free_block(),
            })?;
        self.backend.on_alloc(to, to_addr, size);
        self.objects.get_mut(&id).expect("checked above").moving = true;
        Ok(MoveTicket {
            object: id,
            from,
            from_addr,
            to,
            to_addr,
            size,
        })
    }

    /// Resolve the source and destination of an in-flight move to raw
    /// pointers, or `None` on a byte-less (virtual) substrate.
    ///
    /// The ranges stay valid while the ticket is outstanding: the source
    /// cannot be freed or remapped (the object is marked mid-move) and
    /// the destination block is reserved in its allocator.
    pub fn move_ptrs(&mut self, ticket: &MoveTicket) -> Option<(*mut u8, *mut u8)> {
        let src = self
            .backend
            .data_ptr(ticket.from, ticket.from_addr, ticket.size)?;
        let dst = self
            .backend
            .data_ptr(ticket.to, ticket.to_addr, ticket.size)?;
        Some((src, dst))
    }

    /// Phase two of a two-phase move: the bytes have been copied by the
    /// ticket holder — release the source, flip residency, and fold the
    /// copy's measured cost into the backend's statistics. Returns the
    /// bytes moved.
    pub fn commit_move(&mut self, ticket: MoveTicket, outcome: &CopyOutcome) -> u64 {
        self.backend
            .record_external_copy(ticket.object.0, ticket.from, ticket.to, outcome);
        self.finish_move(ticket)
    }

    /// Abandon an in-flight move (cancellation): release the destination
    /// reservation and clear the mid-move mark. The object stays where
    /// it was; partially copied destination bytes are discarded.
    pub fn abort_move(&mut self, ticket: MoveTicket) {
        self.allocator(ticket.to)
            .free(ticket.to_addr)
            .expect("ticket destination must be live");
        self.backend.on_free(ticket.to, ticket.to_addr, ticket.size);
        self.objects
            .get_mut(&ticket.object)
            .expect("ticket object must be live")
            .moving = false;
        self.publish_occupancy();
    }

    /// Whether a two-phase move of `id` is currently in flight.
    pub fn is_moving(&self, id: ObjectId) -> Result<bool, HmsError> {
        self.objects
            .get(&id)
            .map(|r| r.moving)
            .ok_or(HmsError::NoSuchObject(id))
    }

    /// Shared tail of a completed move: free the source, update the
    /// record, publish metrics.
    fn finish_move(&mut self, ticket: MoveTicket) -> u64 {
        self.allocator(ticket.from)
            .free(ticket.from_addr)
            .expect("source address must be live");
        self.backend
            .on_free(ticket.from, ticket.from_addr, ticket.size);
        let rec = self
            .objects
            .get_mut(&ticket.object)
            .expect("ticket object must be live");
        rec.tier = ticket.to;
        rec.addr = ticket.to_addr;
        rec.moving = false;
        self.metrics.inc("hms.moves");
        self.metrics.add("hms.moved_bytes", ticket.size);
        self.publish_occupancy();
        ticket.size
    }

    /// Resolve an object's live bytes to a raw pointer with its length
    /// and current tier (real substrates), or `Ok(None)` on the virtual
    /// one. Unlike [`Hms::object_bytes`] this hands out a raw pointer,
    /// for callers that manage aliasing themselves (the parallel
    /// measured path pins objects and lets concurrent readers share the
    /// range without materializing overlapping `&mut`s).
    pub fn object_ptr(
        &mut self,
        id: ObjectId,
    ) -> Result<Option<(*mut u8, u64, TierKind)>, HmsError> {
        let (tier, addr, size) = {
            let rec = self.objects.get(&id).ok_or(HmsError::NoSuchObject(id))?;
            (rec.tier, rec.addr, rec.meta.size)
        };
        Ok(self
            .backend
            .data_ptr(tier, addr, size)
            .map(|p| (p, size, tier.kind())))
    }

    /// Whether `bytes` more would fit on `tier` right now.
    pub fn can_fit(&self, tier: TierKind, bytes: u64) -> bool {
        self.can_fit_at(self.to_id(tier), bytes)
    }

    /// Whether `bytes` more would fit on the tier at `tier` right now.
    pub fn can_fit_at(&self, tier: TierId, bytes: u64) -> bool {
        self.allocator_ref(tier).can_fit(bytes)
    }

    /// Bytes used on `tier`.
    pub fn used(&self, tier: TierKind) -> u64 {
        self.used_at(self.to_id(tier))
    }

    /// Bytes used on the tier at `tier`.
    pub fn used_at(&self, tier: TierId) -> u64 {
        self.allocator_ref(tier).used()
    }

    /// Bytes free on `tier`.
    pub fn free_bytes(&self, tier: TierKind) -> u64 {
        self.free_bytes_at(self.to_id(tier))
    }

    /// Bytes free on the tier at `tier`.
    pub fn free_bytes_at(&self, tier: TierId) -> u64 {
        self.allocator_ref(tier).free_bytes()
    }

    /// External fragmentation of `tier`.
    pub fn fragmentation(&self, tier: TierKind) -> f64 {
        self.allocator_ref(self.to_id(tier)).fragmentation()
    }

    /// One past the highest object id ever allocated (ids are dense and
    /// never reused, so every live id is below this watermark). The
    /// shared wrapper's slot table syncs against it.
    pub fn peak_object_id(&self) -> u32 {
        self.next_id
    }

    /// Ids of all live objects, ascending.
    pub fn live_objects(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.objects.keys().copied().collect();
        v.sort();
        v
    }

    /// Ids of objects resident on `tier`, ascending. Through the facade
    /// `Dram` means tier 0 and `Nvm` the last tier — objects on middle
    /// tiers appear in neither view (use [`Hms::objects_on_tier`]).
    pub fn objects_on(&self, tier: TierKind) -> Vec<ObjectId> {
        self.objects_on_tier(self.to_id(tier))
    }

    /// Ids of objects resident on the tier at `tier`, ascending.
    pub fn objects_on_tier(&self, tier: TierId) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|(_, r)| r.tier == tier)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// Residency snapshot for reporting.
    pub fn snapshot(&self) -> ResidencySnapshot {
        let last = self.config.last_tier();
        let mut mid: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|(_, r)| r.tier != TierId::FASTEST && r.tier != last)
            .map(|(id, _)| *id)
            .collect();
        mid.sort();
        let mid_used = (1..self.tiers.len() - 1)
            .map(|i| self.tiers[i].used())
            .sum();
        ResidencySnapshot {
            dram: self.objects_on_tier(TierId::FASTEST),
            nvm: self.objects_on_tier(last),
            mid,
            dram_used: self.used_at(TierId::FASTEST),
            nvm_used: self.used_at(last),
            mid_used,
        }
    }

    /// Total footprint of live objects.
    pub fn footprint(&self) -> u64 {
        self.objects.values().map(|r| r.meta.size).sum()
    }

    /// Check cross-structure invariants (object table vs allocators).
    pub fn check_invariants(&self) -> Result<(), String> {
        for alloc in &self.tiers {
            alloc.check_invariants()?;
        }
        let mut per_tier = vec![0u64; self.tiers.len()];
        for rec in self.objects.values() {
            per_tier[rec.tier.index()] += rec.meta.size;
        }
        for (i, (bytes, alloc)) in per_tier.iter().zip(self.tiers.iter()).enumerate() {
            if *bytes != alloc.used() {
                return Err(format!(
                    "tier{i} object bytes {bytes} != allocator used {}",
                    alloc.used()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn small_hms(dram_cap: u64, nvm_cap: u64) -> Hms {
        Hms::new(
            HmsConfig::new(presets::dram(dram_cap), presets::optane_pmm(nvm_cap), 5.0)
                .expect("valid test config"),
        )
    }

    fn three_tier_hms(dram_cap: u64, mid_cap: u64, nvm_cap: u64) -> Hms {
        Hms::new(
            HmsConfig::with_tiers(
                vec![
                    presets::dram(dram_cap),
                    presets::cxl(mid_cap),
                    presets::optane_pmm(nvm_cap),
                ],
                5.0,
            )
            .expect("valid 3-tier config"),
        )
    }

    #[test]
    fn alloc_prefers_requested_tier() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 512, TierKind::Dram, true).unwrap();
        assert_eq!(h.tier_of(a).unwrap(), TierKind::Dram);
        assert_eq!(h.used(TierKind::Dram), 512);
        h.check_invariants().unwrap();
    }

    #[test]
    fn dram_overflow_falls_back_to_nvm() {
        let mut h = small_hms(1024, 4096);
        let _a = h.alloc_object("a", 1000, TierKind::Dram, true).unwrap();
        let b = h.alloc_object("b", 512, TierKind::Dram, true).unwrap();
        assert_eq!(h.tier_of(b).unwrap(), TierKind::Nvm);
        assert_eq!(h.dram_fallbacks, 1);
        h.check_invariants().unwrap();
    }

    #[test]
    fn no_fallback_errors_out() {
        let mut h = small_hms(1024, 4096);
        let _a = h.alloc_object("a", 1000, TierKind::Dram, false).unwrap();
        let err = h.alloc_object("b", 512, TierKind::Dram, false).unwrap_err();
        assert!(matches!(
            err,
            HmsError::OutOfMemory {
                tier: TierKind::Dram,
                ..
            }
        ));
    }

    #[test]
    fn both_tiers_full_is_oom() {
        let mut h = small_hms(64, 64);
        let _ = h.alloc_object("a", 64, TierKind::Dram, true).unwrap();
        let _ = h.alloc_object("b", 64, TierKind::Nvm, true).unwrap();
        assert!(h.alloc_object("c", 1, TierKind::Dram, true).is_err());
    }

    #[test]
    fn move_object_updates_residency_and_accounting() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 256, TierKind::Nvm, false).unwrap();
        let moved = h.move_object(a, TierKind::Dram).unwrap();
        assert_eq!(moved, 256);
        assert_eq!(h.tier_of(a).unwrap(), TierKind::Dram);
        assert_eq!(h.used(TierKind::Nvm), 0);
        assert_eq!(h.used(TierKind::Dram), 256);
        h.check_invariants().unwrap();
    }

    #[test]
    fn move_to_same_tier_is_error() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 64, TierKind::Dram, false).unwrap();
        assert_eq!(
            h.move_object(a, TierKind::Dram),
            Err(HmsError::AlreadyResident(a, TierKind::Dram))
        );
    }

    #[test]
    fn move_respects_destination_capacity() {
        let mut h = small_hms(100, 4096);
        let big = h.alloc_object("big", 512, TierKind::Nvm, false).unwrap();
        let err = h.move_object(big, TierKind::Dram).unwrap_err();
        assert!(matches!(
            err,
            HmsError::OutOfMemory {
                tier: TierKind::Dram,
                ..
            }
        ));
        // Object must still be intact in NVM after the failed move.
        assert_eq!(h.tier_of(big).unwrap(), TierKind::Nvm);
        h.check_invariants().unwrap();
    }

    #[test]
    fn pinned_object_cannot_move_or_free() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 64, TierKind::Nvm, false).unwrap();
        h.pin(a).unwrap();
        assert_eq!(h.move_object(a, TierKind::Dram), Err(HmsError::Pinned(a)));
        assert_eq!(h.free_object(a), Err(HmsError::Pinned(a)));
        h.unpin(a).unwrap();
        assert!(h.move_object(a, TierKind::Dram).is_ok());
        h.check_invariants().unwrap();
    }

    #[test]
    fn pin_is_counted() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 64, TierKind::Nvm, false).unwrap();
        h.pin(a).unwrap();
        h.pin(a).unwrap();
        assert_eq!(h.pin_count(a).unwrap(), 2);
        h.unpin(a).unwrap();
        assert_eq!(h.pin_count(a).unwrap(), 1);
        // Still pinned by one task.
        assert_eq!(h.move_object(a, TierKind::Dram), Err(HmsError::Pinned(a)));
    }

    #[test]
    fn free_returns_bytes_to_tier() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 300, TierKind::Dram, false).unwrap();
        h.free_object(a).unwrap();
        assert_eq!(h.used(TierKind::Dram), 0);
        assert!(matches!(h.tier_of(a), Err(HmsError::NoSuchObject(_))));
        h.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_partitions_objects() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 100, TierKind::Dram, false).unwrap();
        let b = h.alloc_object("b", 200, TierKind::Nvm, false).unwrap();
        let snap = h.snapshot();
        assert_eq!(snap.dram, vec![a]);
        assert_eq!(snap.nvm, vec![b]);
        assert!(snap.mid.is_empty());
        assert_eq!(snap.dram_used, 100);
        assert_eq!(snap.nvm_used, 200);
        assert_eq!(snap.mid_used, 0);
        assert_eq!(h.footprint(), 300);
    }

    #[test]
    fn chunk_allocation_links_parent() {
        let mut h = small_hms(1024, 4096);
        let parent = h.alloc_object("p", 512, TierKind::Nvm, false).unwrap();
        let c = h
            .alloc_chunk(parent, 3, "p[3]", 128, TierKind::Nvm, false)
            .unwrap();
        assert_eq!(h.meta(c).unwrap().chunk_of, Some((parent, 3)));
        assert!(h.meta(c).unwrap().is_chunk());
    }

    #[test]
    fn config_rejects_bad_specs_and_copy_bw() {
        let d = presets::dram(1024);
        let n = presets::optane_pmm(4096);
        assert!(matches!(
            HmsConfig::new(d.clone().with_capacity(0), n.clone(), 5.0),
            Err(HmsError::InvalidSpec { .. })
        ));
        for bad in [0.0, -1.0, f64::NAN] {
            assert!(matches!(
                HmsConfig::new(d.clone(), n.clone(), bad),
                Err(HmsError::InvalidConfig(_))
            ));
        }
        assert!(HmsConfig::new(d, n, 5.0).is_ok());
    }

    #[test]
    fn default_backend_is_virtual() {
        let mut h = small_hms(1024, 4096);
        assert_eq!(h.backend_name(), "virtual");
        assert!(!h.backend_stats().is_real);
        let a = h.alloc_object("a", 64, TierKind::Dram, false).unwrap();
        assert!(h.object_bytes(a).unwrap().is_none());
    }

    #[test]
    fn zero_size_rejected() {
        let mut h = small_hms(1024, 4096);
        assert_eq!(
            h.alloc_object("z", 0, TierKind::Dram, true),
            Err(HmsError::ZeroSizeAllocation)
        );
    }

    #[test]
    fn two_phase_move_reserves_then_commits() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 256, TierKind::Nvm, false).unwrap();
        let t = h.begin_move(a, TierKind::Dram).unwrap();
        assert_eq!(
            (t.object(), t.from(), t.to(), t.size()),
            (a, TierKind::Nvm, TierKind::Dram, 256)
        );
        assert!(h.is_moving(a).unwrap());
        // Mid-move the object rejects pins, frees, and further moves.
        assert_eq!(h.pin(a), Err(HmsError::Moving(a)));
        assert_eq!(h.free_object(a), Err(HmsError::Moving(a)));
        assert_eq!(h.move_object(a, TierKind::Dram), Err(HmsError::Moving(a)));
        // Both ranges reserved while the ticket is outstanding.
        assert_eq!(h.used(TierKind::Dram), 256);
        assert_eq!(h.used(TierKind::Nvm), 256);
        let moved = h.commit_move(t, &crate::CopyOutcome::default());
        assert_eq!(moved, 256);
        assert!(!h.is_moving(a).unwrap());
        assert_eq!(h.tier_of(a).unwrap(), TierKind::Dram);
        assert_eq!(h.used(TierKind::Nvm), 0);
        h.check_invariants().unwrap();
    }

    #[test]
    fn aborted_two_phase_move_restores_state() {
        let mut h = small_hms(1024, 4096);
        let a = h.alloc_object("a", 256, TierKind::Nvm, false).unwrap();
        let t = h.begin_move(a, TierKind::Dram).unwrap();
        h.abort_move(t);
        assert!(!h.is_moving(a).unwrap());
        assert_eq!(h.tier_of(a).unwrap(), TierKind::Nvm);
        assert_eq!(h.used(TierKind::Dram), 0);
        h.check_invariants().unwrap();
        // The object is movable again after the abort.
        assert!(h.move_object(a, TierKind::Dram).is_ok());
    }

    #[test]
    fn metrics_track_occupancy_and_transitions() {
        let mut h = small_hms(1024, 4096);
        let m = tahoe_obs::Metrics::enabled();
        h.set_metrics(m.clone());
        let a = h.alloc_object("a", 300, TierKind::Nvm, false).unwrap();
        h.move_object(a, TierKind::Dram).unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.counter("hms.allocs"), Some(1));
        assert_eq!(snap.counter("hms.moves"), Some(1));
        assert_eq!(snap.counter("hms.moved_bytes"), Some(300));
        assert_eq!(snap.gauge("hms.dram.used_bytes"), Some(300.0));
        assert_eq!(snap.gauge("hms.nvm.used_bytes"), Some(0.0));
        assert_eq!(snap.gauge("hms.dram.capacity_bytes"), Some(1024.0));
        h.free_object(a).unwrap();
        assert_eq!(m.snapshot().gauge("hms.dram.used_bytes"), Some(0.0));
    }

    // --- N-tier behaviour ------------------------------------------------

    #[test]
    fn three_tier_config_exposes_ordered_specs() {
        let cfg = HmsConfig::with_tiers(
            vec![
                presets::dram(1024),
                presets::cxl(2048),
                presets::optane_pmm(4096),
            ],
            5.0,
        )
        .unwrap();
        assert_eq!(cfg.n_tiers(), 3);
        assert_eq!(cfg.tier_spec_at(TierId(0)).name, "DRAM");
        assert_eq!(cfg.tier_spec_at(TierId(1)).name, "CXL");
        assert_eq!(cfg.tier_spec_at(TierId(2)).name, "Optane PMM");
        assert_eq!(cfg.tier_id(TierKind::Dram), TierId(0));
        assert_eq!(cfg.tier_id(TierKind::Nvm), TierId(2));
        assert_eq!(cfg.last_tier(), TierId(2));
        // DRAM↔spill keeps the explicit scalar; other pairs are derived.
        assert_eq!(cfg.copy_bw_between(TierId(0), TierId(2)), 5.0);
        assert_eq!(cfg.copy_bw_between(TierId(2), TierId(0)), 5.0);
        let d_to_c = cfg.copy_bw_between(TierId(0), TierId(1));
        assert!(d_to_c > 0.0 && d_to_c.is_finite());
        // CXL write BW bounds the DRAM→CXL copy pipe.
        let cxl = presets::cxl(2048);
        assert!((d_to_c - 0.8 * cxl.write_bw_gbps.min(presets::dram(1).read_bw_gbps)).abs() < 1e-9);
    }

    #[test]
    fn with_tiers_rejects_degenerate_lists() {
        assert!(HmsConfig::with_tiers(vec![presets::dram(1024)], 5.0).is_err());
        assert!(HmsConfig::with_tiers(vec![], 5.0).is_err());
    }

    #[test]
    fn alloc_cascades_down_then_up_across_three_tiers() {
        let mut h = three_tier_hms(100, 100, 64);
        // Fill DRAM; next preferred-DRAM alloc lands on the middle tier.
        let _a = h.alloc_object_on("a", 100, TierId(0), true).unwrap();
        let b = h.alloc_object_on("b", 60, TierId(0), true).unwrap();
        assert_eq!(h.tier_index_of(b).unwrap(), TierId(1));
        assert_eq!(h.dram_fallbacks, 1);
        // Middle tier nearly full: the next one spills to NVM.
        let c = h.alloc_object_on("c", 60, TierId(0), true).unwrap();
        assert_eq!(h.tier_index_of(c).unwrap(), TierId(2));
        // The spill tier is full now (60 of 64): preferring it overflows
        // *upward* to the middle tier rather than failing.
        let d = h.alloc_object_on("d", 30, TierId(2), true).unwrap();
        assert_eq!(h.tier_index_of(d).unwrap(), TierId(1));
        h.check_invariants().unwrap();
    }

    #[test]
    fn mid_tier_presents_as_nvm_through_the_facade() {
        let mut h = three_tier_hms(1024, 1024, 1024);
        let m = h.alloc_object_on("m", 64, TierId(1), false).unwrap();
        assert_eq!(h.tier_index_of(m).unwrap(), TierId(1));
        assert_eq!(h.tier_of(m).unwrap(), TierKind::Nvm);
        // Facade views see tier 0 and the *last* tier only.
        assert!(h.objects_on(TierKind::Dram).is_empty());
        assert!(h.objects_on(TierKind::Nvm).is_empty());
        assert_eq!(h.objects_on_tier(TierId(1)), vec![m]);
        let snap = h.snapshot();
        assert_eq!(snap.mid, vec![m]);
        assert_eq!(snap.mid_used, 64);
    }

    #[test]
    fn tier_to_tier_moves_walk_the_ladder() {
        let mut h = three_tier_hms(1024, 1024, 1024);
        let a = h.alloc_object_on("a", 256, TierId(2), false).unwrap();
        assert_eq!(h.move_object_to(a, TierId(1)).unwrap(), 256);
        assert_eq!(h.tier_index_of(a).unwrap(), TierId(1));
        assert_eq!(h.used_at(TierId(2)), 0);
        assert_eq!(h.used_at(TierId(1)), 256);
        let t = h.begin_move_to(a, TierId(0)).unwrap();
        assert_eq!((t.from_tier(), t.to_tier()), (TierId(1), TierId(0)));
        let moved = h.commit_move(t, &crate::CopyOutcome::default());
        assert_eq!(moved, 256);
        assert_eq!(h.tier_index_of(a).unwrap(), TierId(0));
        assert_eq!(
            h.move_object_to(a, TierId(0)),
            Err(HmsError::AlreadyResident(a, TierKind::Dram))
        );
        h.check_invariants().unwrap();
    }

    #[test]
    fn copy_bw_override_is_per_pair() {
        let mut cfg = HmsConfig::with_tiers(
            vec![
                presets::dram(1024),
                presets::cxl(2048),
                presets::optane_pmm(4096),
            ],
            5.0,
        )
        .unwrap();
        cfg.set_copy_bw(TierId(1), TierId(2), 1.25).unwrap();
        assert_eq!(cfg.copy_bw_between(TierId(1), TierId(2)), 1.25);
        assert_eq!(cfg.copy_bw_between(TierId(0), TierId(2)), 5.0);
        assert!(cfg.set_copy_bw(TierId(0), TierId(3), 1.0).is_err());
        assert!(cfg.set_copy_bw(TierId(0), TierId(1), f64::NAN).is_err());
    }
}
