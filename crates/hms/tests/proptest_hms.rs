//! Property tests for the memory substrate: the allocator must keep its
//! invariants under arbitrary alloc/free/move interleavings, and the
//! timing model must respect basic monotonicity laws.

use proptest::prelude::*;

use tahoe_hms::alloc::TierAllocator;
use tahoe_hms::{presets, AccessProfile, Hms, HmsConfig, TierKind};

/// One step of allocator abuse.
#[derive(Debug, Clone)]
enum Step {
    Alloc(u64),
    FreeNth(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..50_000).prop_map(Step::Alloc),
        (0usize..64).prop_map(Step::FreeNth),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn allocator_invariants_hold_under_any_interleaving(
        steps in proptest::collection::vec(step_strategy(), 1..120),
        capacity in 10_000u64..1_000_000,
    ) {
        let mut a = TierAllocator::new(capacity);
        let mut live: Vec<u64> = Vec::new();
        for step in steps {
            match step {
                Step::Alloc(size) => {
                    if let Some(addr) = a.alloc(size) {
                        live.push(addr);
                    }
                }
                Step::FreeNth(n) => {
                    if !live.is_empty() {
                        let addr = live.remove(n % live.len());
                        prop_assert!(a.free(addr).is_some());
                    }
                }
            }
            a.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("invariant violated: {e}"))
            })?;
        }
        // Freeing everything restores a single maximal block.
        for addr in live {
            a.free(addr);
        }
        prop_assert_eq!(a.used(), 0);
        prop_assert_eq!(a.largest_free_block(), capacity);
        prop_assert_eq!(a.free_blocks(), 1);
    }

    #[test]
    fn allocations_never_exceed_capacity(
        sizes in proptest::collection::vec(1u64..100_000, 1..100),
        capacity in 50_000u64..500_000,
    ) {
        let mut a = TierAllocator::new(capacity);
        for s in sizes {
            let _ = a.alloc(s);
            prop_assert!(a.used() <= capacity);
        }
        a.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("invariant violated: {e}"))
        })?;
    }

    #[test]
    fn hms_moves_preserve_accounting(
        sizes in proptest::collection::vec(1u64..10_000, 1..40),
        moves in proptest::collection::vec((0usize..40, proptest::bool::ANY), 0..80),
    ) {
        let total: u64 = sizes.iter().sum();
        let mut hms = Hms::new(
            HmsConfig::new(
                presets::dram(total + 1024),
                presets::optane_pmm(total * 2 + 1024),
                5.0,
            )
            .expect("valid config"),
        );
        let ids: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                hms.alloc_object(&format!("o{i}"), s, TierKind::Nvm, false)
                    .expect("fits")
            })
            .collect();
        for (n, to_dram) in moves {
            let id = ids[n % ids.len()];
            let target = if to_dram { TierKind::Dram } else { TierKind::Nvm };
            let _ = hms.move_object(id, target); // AlreadyResident is fine
            hms.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("invariant violated: {e}"))
            })?;
        }
        prop_assert_eq!(hms.footprint(), total);
        prop_assert_eq!(
            hms.used(TierKind::Dram) + hms.used(TierKind::Nvm),
            total
        );
    }

    #[test]
    fn mem_time_is_monotone_in_traffic(
        loads in 0u64..1_000_000,
        stores in 0u64..1_000_000,
        extra in 1u64..100_000,
        mlp in 1.0f64..32.0,
    ) {
        let tier = presets::optane_pmm(1 << 30);
        let base = AccessProfile::new(loads, stores, mlp);
        let more_loads = AccessProfile::new(loads + extra, stores, mlp);
        let more_stores = AccessProfile::new(loads, stores + extra, mlp);
        prop_assert!(more_loads.mem_time_ns(&tier) >= base.mem_time_ns(&tier));
        prop_assert!(more_stores.mem_time_ns(&tier) >= base.mem_time_ns(&tier));
    }

    #[test]
    fn mem_time_decreases_with_mlp_and_bandwidth(
        loads in 1u64..1_000_000,
        stores in 0u64..1_000_000,
        mlp in 1.0f64..16.0,
    ) {
        let tier = presets::pcram(1 << 30);
        let low = AccessProfile::new(loads, stores, mlp);
        let high = AccessProfile::new(loads, stores, mlp * 2.0);
        prop_assert!(high.mem_time_ns(&tier) <= low.mem_time_ns(&tier) + 1e-9);
        let faster = tier.scale_bandwidth(2.0).unwrap();
        prop_assert!(low.mem_time_ns(&faster) <= low.mem_time_ns(&tier) + 1e-9);
    }

    #[test]
    fn slower_device_never_faster(
        loads in 0u64..500_000,
        stores in 0u64..500_000,
        mlp in 1.0f64..32.0,
        bw_frac in 0.1f64..1.0,
        lat_mult in 1.0f64..10.0,
    ) {
        let dram = presets::dram(1 << 30);
        let slow = dram
            .scale_bandwidth(bw_frac)
            .unwrap()
            .scale_latency(lat_mult)
            .unwrap();
        let p = AccessProfile::new(loads, stores, mlp);
        prop_assert!(p.mem_time_ns(&slow) >= p.mem_time_ns(&dram) - 1e-9);
    }
}
