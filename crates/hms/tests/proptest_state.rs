//! Property tests for the lock-free packed per-object state word and a
//! multi-thread hammer over the shared pin/move machinery.
//!
//! The word's transition legality (no pin while moving, no double
//! begin/commit, no completion with live pins) is what makes the CAS
//! loops in `SharedHms` safe; these properties pin it down over the
//! whole packed domain, not just the handful of states unit tests reach.

use proptest::prelude::*;

use tahoe_hms::lockfree::word;

/// Any u16, endpoints included (the vendored ranges are half-open).
fn bits16() -> impl Strategy<Value = u16> {
    (0u32..65_536).prop_map(|v| v as u16)
}

/// Any u32, endpoints included.
fn bits32() -> impl Strategy<Value = u32> {
    (0u64..(1u64 << 32)).prop_map(|v| v as u32)
}

/// An arbitrary-but-valid packed word: pins and a move never coexist
/// (the machine can't reach that state), flags and epoch free.
fn word_strategy() -> impl Strategy<Value = u64> {
    (
        bits16(),
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        bits32(),
    )
        .prop_map(|(pins, moving, parked, waiters, epoch)| {
            let pins = if moving { 0 } else { pins };
            word::pack(pins, moving, parked, waiters, epoch)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pack_unpack_round_trips(
        pins in bits16(),
        moving in proptest::bool::ANY,
        parked in proptest::bool::ANY,
        waiters in proptest::bool::ANY,
        epoch in bits32(),
    ) {
        let w = word::pack(pins, moving, parked, waiters, epoch);
        prop_assert_eq!(word::unpack(w), (pins, moving, parked, waiters, epoch));
        prop_assert_eq!(word::pins(w), u32::from(pins));
        prop_assert_eq!(word::epoch(w), epoch);
        prop_assert_eq!(word::is_moving(w), moving);
    }

    #[test]
    fn transitions_respect_the_state_machine(w in word_strategy()) {
        // Pin: legal iff not moving and not saturated; adds exactly one.
        match word::pin(w) {
            Ok(nw) => {
                prop_assert!(!word::is_moving(w));
                prop_assert_eq!(word::pins(nw), word::pins(w) + 1);
                prop_assert_eq!(word::epoch(nw), word::epoch(w));
            }
            Err(word::WordError::Moving) => prop_assert!(word::is_moving(w)),
            Err(word::WordError::PinOverflow) => {
                prop_assert_eq!(word::pins(w), u32::from(u16::MAX))
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected pin error {e:?}"))),
        }
        // Unpin: legal iff pins are live; removes exactly one.
        match word::unpin(w) {
            Ok(nw) => prop_assert_eq!(word::pins(nw), word::pins(w) - 1),
            Err(e) => {
                prop_assert_eq!(e, word::WordError::NotPinned);
                prop_assert_eq!(word::pins(w), 0);
            }
        }
        // Begin: rejects live pins (pin-while-moving's dual) and double
        // begins; on success the word is moving with the parked
        // announcement consumed and the epoch unchanged.
        match word::begin_move(w) {
            Ok(nw) => {
                prop_assert_eq!(word::pins(w), 0);
                prop_assert!(!word::is_moving(w));
                prop_assert!(word::is_moving(nw) && !word::is_parked(nw));
                prop_assert_eq!(word::epoch(nw), word::epoch(w));
            }
            Err(word::WordError::AlreadyMoving) => prop_assert!(word::is_moving(w)),
            Err(word::WordError::Pinned(p)) => prop_assert_eq!(p, word::pins(w)),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected begin error {e:?}"))),
        }
        // End (commit/abort): legal only mid-move; clears every move
        // flag and bumps the epoch by exactly one.
        match word::end_move(w) {
            Ok(nw) => {
                prop_assert!(word::is_moving(w));
                prop_assert!(!word::is_moving(nw) && !word::is_parked(nw) && !word::has_waiters(nw));
                prop_assert_eq!(word::epoch(nw), word::epoch(w).wrapping_add(1));
                prop_assert_eq!(word::pins(nw), 0);
            }
            Err(e) => {
                prop_assert_eq!(e, word::WordError::NotMoving);
                prop_assert!(!word::is_moving(w));
            }
        }
    }

    #[test]
    fn double_commit_is_rejected(w in word_strategy()) {
        // Whatever state we start from, a completed move cannot complete
        // again without an interleaved begin.
        if let Ok(done) = word::end_move(w) {
            prop_assert_eq!(word::end_move(done), Err(word::WordError::NotMoving));
        }
    }

    #[test]
    fn full_move_cycle_is_an_epoch_increment(w in word_strategy()) {
        if word::is_moving(w) || word::pins(w) > 0 {
            return Ok(());
        }
        let moved = word::begin_move(w).unwrap();
        prop_assert_eq!(word::pin(moved), Err(word::WordError::Moving));
        let done = word::end_move(word::set_waiters(moved)).unwrap();
        prop_assert_eq!(word::epoch(done), word::epoch(w).wrapping_add(1));
        // And the object is pinnable again.
        prop_assert!(word::pin(done).is_ok());
    }
}

mod hammer {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use tahoe_hms::{presets, Hms, HmsConfig, SharedHms, TierId, TierKind};

    #[derive(Debug)]
    struct HeapBackend {
        dram: Vec<u8>,
        nvm: Vec<u8>,
    }

    impl tahoe_hms::TierBackend for HeapBackend {
        fn name(&self) -> &'static str {
            "heap-hammer"
        }

        fn data_ptr(&mut self, tier: TierId, addr: u64, len: u64) -> Option<*mut u8> {
            let buf = match tier {
                TierId(0) => &mut self.dram,
                _ => &mut self.nvm,
            };
            if addr.checked_add(len)? > buf.len() as u64 {
                return None;
            }
            // SAFETY: the range was just bounds-checked against the buffer.
            Some(unsafe { buf.as_mut_ptr().add(addr as usize) })
        }

        fn stats(&self) -> tahoe_hms::BackendStats {
            tahoe_hms::BackendStats {
                is_real: true,
                ..Default::default()
            }
        }
    }

    /// Many threads pin/unpin overlapping object sets while a migrator
    /// thread bounces one object between tiers: afterwards every pin
    /// count must be zero and the table consistent.
    #[test]
    fn concurrent_pins_drain_to_zero() {
        let dram = 1 << 20;
        let nvm = 1 << 21;
        let config = HmsConfig::new(presets::dram(dram), presets::optane_pmm(nvm), 5.0).unwrap();
        let mut hms = Hms::new(config);
        hms.set_backend(Box::new(HeapBackend {
            dram: vec![0; dram as usize],
            nvm: vec![0; nvm as usize],
        }));
        let mut ids = Vec::new();
        let sh = {
            for i in 0..16 {
                ids.push(
                    hms.alloc_object(&format!("o{i}"), 4096, TierKind::Nvm, false)
                        .unwrap(),
                );
            }
            Arc::new(SharedHms::new(hms))
        };

        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        // 6 pinner threads over overlapping triples.
        for t in 0..6usize {
            let sh = Arc::clone(&sh);
            let ids = ids.clone();
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let mut k = t;
                while !stop.load(Ordering::Relaxed) {
                    let set = [ids[k % 16], ids[(k + 5) % 16], ids[(k + 11) % 16]];
                    let pins = sh.pin_for_task(&set).expect("pin");
                    std::hint::black_box(&pins.objects);
                    drop(pins);
                    k = k.wrapping_add(1);
                }
            }));
        }
        // One migrator bouncing object 0 between tiers.
        {
            let sh = Arc::clone(&sh);
            let id = ids[0];
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let cancel = AtomicBool::new(false);
                let mut to = TierKind::Dram;
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(Some(sm)) = sh.begin_move_blocking(id, to, &cancel) {
                        // SAFETY: the ticket fences both disjoint ranges.
                        unsafe {
                            std::ptr::copy_nonoverlapping(sm.src, sm.dst, sm.size() as usize)
                        };
                        let _ = sh.commit_move(
                            sm,
                            &tahoe_hms::CopyOutcome {
                                bytes: 4096,
                                wall_ns: 1.0,
                                throttle_ns: 0.0,
                                chunks: 1,
                            },
                        );
                    }
                    to = match to {
                        TierKind::Dram => TierKind::Nvm,
                        TierKind::Nvm => TierKind::Dram,
                    };
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            t.join().expect("hammer thread");
        }
        for id in &ids {
            assert_eq!(sh.pin_count(*id), 0, "pins must drain to zero");
        }
        assert!(sh.mid_move_objects().is_empty(), "no move left in flight");
        let sh = Arc::try_unwrap(sh).expect("sole owner");
        let hms = sh.into_inner();
        hms.check_invariants()
            .expect("table consistent after hammer");
    }
}
