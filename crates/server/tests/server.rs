//! End-to-end multi-tenant server tests: isolation at admission,
//! bit-exact determinism under cross-tenant contention, preemption of
//! cold tenants, and admission-control shedding.

use tahoe_core::app::{App, AppBuilder, ObjectSpec};
use tahoe_core::measured::reference_checksum_seeded;
use tahoe_hms::{AccessProfile, ObjectId, TierSpec};
use tahoe_memprof::wallclock::{MeasuredTier, WallClockCalibration};
use tahoe_obs::{Emitter, Metrics};
use tahoe_server::{
    driver, AdmitError, ArbiterMode, QuotaPolicy, ServerConfig, TahoeServer, TelemetryConfig,
    TenantSpec,
};
use tahoe_taskrt::{AccessMode, TaskAccess, TaskGraph};

/// Synthetic calibration (no kernel measurement): DRAM 10 GB/s /
/// 100 ns, NVM 3x slower, correction factors 1.0 — machine-independent
/// and fast.
fn cal() -> WallClockCalibration {
    WallClockCalibration {
        dram: TierSpec::symmetric("dram", 100.0, 10.0, 1 << 20),
        nvm: TierSpec::symmetric("nvm", 300.0, 3.0, 1 << 24),
        cf_bw: 1.0,
        cf_lat: 1.0,
        measured: MeasuredTier {
            stream_bw_gbps: 10.0,
            chase_lat_ns: 100.0,
            stream_wall_ns: 1000.0,
            chase_wall_ns: 1000.0,
        },
    }
}

fn config(mode: ArbiterMode, dram_budget: u64, max_queue: usize) -> ServerConfig {
    ServerConfig {
        workers: 2,
        dram_budget,
        nvm_capacity: 1 << 24,
        mode,
        max_queue,
    }
}

fn quota_mode() -> ArbiterMode {
    ArbiterMode::Quota(QuotaPolicy::DemandProportional { floor_frac: 0.5 })
}

/// A tenant app: one hot object touched by every task plus `cold`
/// rarely-touched objects, across `windows` windows of `tasks_per_w`
/// tasks.
fn tenant_app(name: &str, hot_bytes: u64, cold: u32, windows: u32, tasks_per_w: u32) -> App {
    let mut b = AppBuilder::new(name);
    let hot = b.object("hot", hot_bytes);
    let colds: Vec<ObjectId> = (0..cold)
        .map(|i| b.object(&format!("cold{i}"), hot_bytes))
        .collect();
    let c = b.class("work");
    for w in 0..windows {
        if w > 0 {
            b.next_window();
        }
        for t in 0..tasks_per_w {
            let mut tb = b.task(c).update_streaming(hot, 256);
            if t == 0 {
                if let Some(cid) = colds.get((w as usize) % colds.len().max(1)) {
                    tb = tb.read_streaming(*cid, 16);
                }
            }
            tb.submit();
        }
    }
    b.build()
}

fn server(cfg: ServerConfig) -> TahoeServer {
    TahoeServer::new(cfg, cal(), Emitter::disabled(), Metrics::disabled()).expect("server")
}

#[test]
fn foreign_object_reference_is_rejected_at_admission() {
    let srv = server(config(quota_mode(), 64 << 10, 1));
    // A well-behaved tenant registers fine.
    let good = srv
        .register_tenant(
            TenantSpec::new("good", 1.0),
            tenant_app("good", 8 << 10, 1, 2, 2),
        )
        .expect("valid tenant");

    // A malicious/buggy tenant hands over a graph referencing object
    // index 42 while declaring a single object — the only way to name
    // another tenant's memory, since global ids are never exposed.
    let mut graph = TaskGraph::new();
    let c = graph.class("evil");
    graph.add_task(
        c,
        vec![TaskAccess::new(
            ObjectId(42),
            AccessMode::Write,
            AccessProfile::streaming(0, 64),
        )],
        0.0,
    );
    let evil = App {
        name: "evil".into(),
        objects: vec![ObjectSpec {
            name: "only".into(),
            size: 4096,
            chunkable: false,
            est_refs: None,
        }],
        graph,
    };
    let err = match srv.register_tenant(TenantSpec::new("evil", 1.0), evil) {
        Err(e) => e,
        Ok(_) => panic!("foreign reference must be rejected"),
    };
    assert!(
        matches!(
            err,
            AdmitError::ForeignObject {
                object: 42,
                owned: 1,
                ..
            }
        ),
        "wrong rejection: {err}"
    );

    // The rejection left no trace: the good tenant still runs and its
    // result is still bit-exact.
    let outcome = good.submit(5).ticket().expect("admitted").wait();
    assert_eq!(
        outcome.checksum,
        reference_checksum_seeded(&tenant_app("good", 8 << 10, 1, 2, 2), 5)
    );
    let report = srv.shutdown();
    assert_eq!(report.tenants.len(), 1, "evil tenant was never registered");
    assert_eq!(report.completed_total(), 1);
}

#[test]
fn checksums_under_contention_match_solo_references() {
    // Budget fits roughly half the hot sets: constant arbitration,
    // migration and preemption while three tenants run closed-loop.
    let hot = 16 << 10;
    let srv = server(config(quota_mode(), 2 * hot + 4096, 2));
    let apps: Vec<App> = (0..3)
        .map(|i| tenant_app(&format!("t{i}"), hot, 2, 3, 2))
        .collect();
    let handles: Vec<_> = apps
        .iter()
        .enumerate()
        .map(|(i, _)| {
            srv.register_tenant(
                TenantSpec::new(&format!("t{i}"), 1.0),
                tenant_app(&format!("t{i}"), hot, 2, 3, 2),
            )
            .expect("register")
        })
        .collect();
    let refs: Vec<u64> = handles
        .iter()
        .zip(&apps)
        .map(|(h, app)| reference_checksum_seeded(app, driver::tenant_seed(11, h.tenant())))
        .collect();

    let outcomes = driver::closed_loop(&handles.iter().collect::<Vec<_>>(), 4, 11);
    assert_eq!(outcomes.len(), 12);
    for o in &outcomes {
        assert_eq!(
            o.checksum, refs[o.tenant as usize],
            "tenant {} graph {} diverged from its solo reference",
            o.tenant, o.graph
        );
    }
    let report = srv.shutdown();
    assert_eq!(report.completed_total(), 12);
    for t in &report.tenants {
        assert_eq!(t.completed, 4);
        assert_eq!(t.shed, 0, "closed loop never sheds");
        assert_eq!(t.latencies_ns.len(), 4);
        assert_eq!(t.hist.count(), 4);
    }
}

#[test]
fn idle_tenant_hot_set_is_preempted_by_active_tenant() {
    // Budget holds exactly one hot object: whoever is active should
    // own it, and an idle tenant's cached copy must be demoted.
    let hot = 16 << 10;
    let srv = server(config(quota_mode(), hot + 2048, 1));
    let a = srv
        .register_tenant(TenantSpec::new("a", 1.0), tenant_app("a", hot, 1, 2, 2))
        .expect("register a");
    let b = srv
        .register_tenant(TenantSpec::new("b", 1.0), tenant_app("b", hot, 1, 2, 2))
        .expect("register b");

    // Tenant a runs alone: as the only active tenant it gets the whole
    // budget and promotes its hot object...
    driver::warmup(&a, 2, 3);
    // ...then goes idle (quota zero). Tenant b's admissions must be
    // able to reclaim the DRAM.
    let b_out = driver::warmup(&b, 2, 3);
    assert_eq!(
        b_out[0].checksum,
        reference_checksum_seeded(&tenant_app("b", hot, 1, 2, 2), driver::tenant_seed(3, 1))
    );
    let report = srv.shutdown();
    let ta = &report.tenants[0];
    assert!(
        ta.promoted_bytes >= hot,
        "solo warmup must promote a's hot object (promoted {})",
        ta.promoted_bytes
    );
    assert!(
        report.preempted_total() >= 1,
        "b's admission must preempt idle a's DRAM residents"
    );
    let tb = &report.tenants[1];
    assert!(
        tb.promoted_bytes >= hot,
        "b must win the DRAM once a is idle (promoted {})",
        tb.promoted_bytes
    );
}

#[test]
fn full_queue_sheds_and_counts() {
    let srv = server(config(quota_mode(), 32 << 10, 1));
    let h = srv
        .register_tenant(
            TenantSpec::new("bursty", 1.0),
            tenant_app("bursty", 16 << 10, 1, 3, 4),
        )
        .expect("register");
    // Back-to-back burst of 5 with a queue bound of 1: one runs, one
    // queues, the rest shed at admission.
    let (done, shed) = driver::burst(&h, 5, 1);
    assert!(shed >= 1, "burst past the queue bound must shed");
    assert_eq!(done.len() as u64 + shed, 5);
    let report = srv.shutdown();
    let t = &report.tenants[0];
    assert_eq!(t.submitted, 5);
    assert_eq!(t.shed, shed);
    assert_eq!(t.completed, done.len() as u64);
    assert_eq!(report.shed_total(), shed);
}

#[test]
fn free_for_all_mode_never_preempts_but_still_validates() {
    let hot = 16 << 10;
    let srv = server(config(ArbiterMode::FreeForAll, hot + 2048, 2));
    let apps: Vec<App> = (0..2)
        .map(|i| tenant_app(&format!("f{i}"), hot, 1, 2, 2))
        .collect();
    let handles: Vec<_> = (0..2)
        .map(|i| {
            srv.register_tenant(
                TenantSpec::new(&format!("f{i}"), 1.0),
                tenant_app(&format!("f{i}"), hot, 1, 2, 2),
            )
            .expect("register")
        })
        .collect();
    let outcomes = driver::closed_loop(&handles.iter().collect::<Vec<_>>(), 3, 21);
    for o in &outcomes {
        assert_eq!(
            o.checksum,
            reference_checksum_seeded(&apps[o.tenant as usize], driver::tenant_seed(21, o.tenant)),
            "free-for-all still deterministic"
        );
    }
    let report = srv.shutdown();
    assert_eq!(report.preempted_total(), 0, "free-for-all never preempts");
    assert_eq!(report.completed_total(), 6);
}

#[test]
fn submission_sequence_numbers_are_unique_and_outcomes_consistent() {
    let srv = server(config(quota_mode(), 48 << 10, 2));
    let handles: Vec<_> = (0..3)
        .map(|i| {
            srv.register_tenant(
                TenantSpec::new(&format!("s{i}"), 1.0 + i as f64),
                tenant_app(&format!("s{i}"), 8 << 10, 1, 2, 2),
            )
            .expect("register")
        })
        .collect();
    let outcomes = driver::closed_loop(&handles.iter().collect::<Vec<_>>(), 3, 0);
    let mut seqs: Vec<u64> = outcomes.iter().map(|o| o.graph).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), 9, "sequence numbers are globally unique");
    for o in &outcomes {
        assert!(o.latency_ns >= o.queue_wait_ns);
        assert!(o.finished_ns >= o.admitted_ns);
        assert!(o.admitted_ns >= o.submitted_ns);
    }
    srv.shutdown();
}

/// One raw-HTTP request over a std `TcpStream` — the test doubles as
/// proof the endpoint needs no client library (no curl in CI).
fn scrape(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect telemetry endpoint");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

#[test]
fn telemetry_scrape_matches_shutdown_report_bit_for_bit() {
    let srv = server(config(quota_mode(), 48 << 10, 2));
    let handles: Vec<_> = (0..2)
        .map(|i| {
            srv.register_tenant(
                TenantSpec::new(&format!("tele{i}"), 1.0),
                tenant_app(&format!("tele{i}"), 8 << 10, 1, 2, 2),
            )
            .expect("register")
        })
        .collect();

    let journal =
        std::env::temp_dir().join(format!("tahoe-telemetry-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let tele = match srv.serve_telemetry(TelemetryConfig {
        journal: Some(journal.clone()),
        ..TelemetryConfig::default()
    }) {
        Ok(h) => h,
        Err(e) => {
            // Sandboxes without loopback sockets: the plane is optional
            // there, so the test is too.
            eprintln!("skipping: cannot bind telemetry endpoint: {e}");
            srv.shutdown();
            return;
        }
    };
    let addr = tele.addr();

    // Run work to completion; every counter below settles synchronously
    // at admission/completion, so the post-wait scrape is stable.
    let outcomes = driver::closed_loop(&handles.iter().collect::<Vec<_>>(), 3, 17);
    assert_eq!(outcomes.len(), 6);

    let (status, body) = scrape(addr, "/metrics");
    assert!(status.contains("200"), "status line: {status}");
    let (nf_status, _) = scrape(addr, "/nope");
    assert!(nf_status.contains("404"), "status line: {nf_status}");

    // Parse the exposition: `name{labels} value` per sample line.
    let samples: std::collections::HashMap<&str, &str> = body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .filter_map(|l| l.rsplit_once(' '))
        .collect();
    assert_eq!(samples["tahoe_server_tenants"], "2");

    tele.stop();
    let report = srv.shutdown();

    // Bit-for-bit: the scraped integer strings equal the report's u64s.
    for t in &report.tenants {
        let labels = format!("{{tenant=\"{}\",name=\"{}\"}}", t.tenant, t.name);
        let get = |family: &str| -> u64 {
            let key = format!("{family}{labels}");
            samples
                .get(key.as_str())
                .unwrap_or_else(|| panic!("missing sample {key}"))
                .parse()
                .expect("integer sample")
        };
        assert_eq!(get("tahoe_tenant_submitted_total"), t.submitted);
        assert_eq!(get("tahoe_tenant_completed_total"), t.completed);
        assert_eq!(get("tahoe_tenant_shed_total"), t.shed);
        assert_eq!(get("tahoe_tenant_preempted_total"), t.preempted);
        assert_eq!(get("tahoe_tenant_promoted_bytes_total"), t.promoted_bytes);
        assert_eq!(get("tahoe_tenant_demoted_bytes_total"), t.demoted_bytes);
        assert_eq!(get("tahoe_tenant_quota_bytes"), t.last_quota);
        assert_eq!(
            get("tahoe_tenant_latency_ns_count"),
            t.completed,
            "latency summary count tracks completions"
        );
    }

    // The journal got at least the immediate first snapshot plus the
    // final one at stop, every line a self-identifying JSON object.
    let journal_text = std::fs::read_to_string(&journal).expect("journal written");
    let lines: Vec<&str> = journal_text.lines().collect();
    assert!(lines.len() >= 2, "first + final snapshot at minimum");
    for line in &lines {
        assert!(
            line.starts_with("{\"schema\":\"tahoe-telemetry/v1\""),
            "journal line is a schema-tagged object: {line}"
        );
        assert!(line.ends_with('}'), "journal line is complete: {line}");
    }
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn queued_submission_runs_after_the_busy_graph() {
    let srv = server(config(quota_mode(), 32 << 10, 2));
    let h = srv
        .register_tenant(TenantSpec::new("q", 1.0), tenant_app("q", 8 << 10, 1, 3, 3))
        .expect("register");
    let first = h.submit(1);
    let second = h.submit(1);
    // The second submission either queued behind the first or (if the
    // first finished already) was admitted; both must complete.
    assert!(!second.is_shed());
    let o1 = first.ticket().expect("first").wait();
    let o2 = second.ticket().expect("second").wait();
    assert_eq!(o1.checksum, o2.checksum, "same seed, same result");
    assert!(o2.finished_ns >= o1.finished_ns);
    let report = srv.shutdown();
    assert_eq!(report.tenants[0].completed, 2);
}
