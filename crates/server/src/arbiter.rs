//! Cross-tenant DRAM arbitration: pure quota math.
//!
//! The server's admission path calls [`quotas`] every time a graph is
//! admitted: given the global DRAM budget and each tenant's weight,
//! declared demand and activity, it returns the per-tenant byte quotas
//! the knapsack planner and the preemption pass enforce. Keeping the
//! math pure (no locks, no server state) makes the fairness properties
//! unit-testable in isolation:
//!
//! * **Feasibility** — quotas never sum to more than the budget.
//! * **Starvation-freeness** — every *active* tenant with nonzero
//!   weight receives at least its weighted floor, so a noisy neighbour
//!   can never arbitrate an active tenant down to zero.
//! * **Work conservation** — bytes not needed by one tenant (demand
//!   below its share) flow to tenants that do need them under
//!   [`QuotaPolicy::DemandProportional`].
//!
//! Inactive tenants get a quota of zero: their DRAM-resident objects
//! are fair game for preemption (demotion to NVM) the moment an active
//! tenant needs the space.

/// How the arbiter splits the DRAM budget across active tenants.
#[derive(Debug, Clone, PartialEq)]
pub enum QuotaPolicy {
    /// Fixed weighted shares: active tenant `i` gets
    /// `budget * w_i / Σ w` regardless of how much it can use.
    Static,
    /// Weighted floors plus demand-proportional distribution of the
    /// rest: active tenant `i` is guaranteed
    /// `floor_frac * budget * w_i / Σ w`, and the remaining
    /// `(1 - floor_frac) * budget` is split in proportion to declared
    /// demand (bytes of objects whose DRAM residence has positive
    /// predicted value). `floor_frac` is clamped to `[0, 1]`.
    DemandProportional {
        /// Fraction of the budget reserved as guaranteed floors.
        floor_frac: f64,
    },
}

/// One tenant's standing at arbitration time.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantDemand {
    /// Static share weight (from registration).
    pub weight: f64,
    /// Bytes of objects whose DRAM residence the planner values.
    pub demand: u64,
    /// Whether the tenant currently has a graph running or queued.
    pub active: bool,
}

/// Per-tenant DRAM quotas in bytes. Inactive or zero-weight tenants
/// get zero; the result always satisfies `sum(quotas) <= budget`.
pub fn quotas(policy: &QuotaPolicy, budget: u64, tenants: &[TenantDemand]) -> Vec<u64> {
    let mut q = vec![0u64; tenants.len()];
    let weight_sum: f64 = tenants
        .iter()
        .filter(|t| t.active && t.weight > 0.0)
        .map(|t| t.weight)
        .sum();
    if weight_sum <= 0.0 {
        return q;
    }
    let share = |w: f64| budget as f64 * w / weight_sum;
    match policy {
        QuotaPolicy::Static => {
            for (qi, t) in q.iter_mut().zip(tenants) {
                if t.active && t.weight > 0.0 {
                    *qi = share(t.weight) as u64;
                }
            }
        }
        QuotaPolicy::DemandProportional { floor_frac } => {
            let ff = floor_frac.clamp(0.0, 1.0);
            let floor_total: f64 = budget as f64 * ff;
            let leftover = budget as f64 - floor_total;
            let demand_sum: f64 = tenants
                .iter()
                .filter(|t| t.active && t.weight > 0.0)
                .map(|t| t.demand as f64)
                .sum();
            for (qi, t) in q.iter_mut().zip(tenants) {
                if !(t.active && t.weight > 0.0) {
                    continue;
                }
                let floor = floor_total * t.weight / weight_sum;
                let extra = if demand_sum > 0.0 {
                    leftover * t.demand as f64 / demand_sum
                } else {
                    // Nobody declared demand: fall back to weights so
                    // the budget is not wasted.
                    leftover * t.weight / weight_sum
                };
                *qi = (floor + extra) as u64;
            }
        }
    }
    // Truncation keeps each quota at or below its real-valued share,
    // but guard against accumulated floating-point excess anyway.
    let mut total: u64 = q.iter().sum();
    while total > budget {
        let i = q
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .expect("nonempty");
        let cut = (total - budget).min(q[i]);
        q[i] -= cut;
        total -= cut;
    }
    q
}

/// Jain's fairness index over per-tenant allocations or rates:
/// `(Σx)² / (n · Σx²)`. Ranges from `1/n` (one tenant gets
/// everything) to `1.0` (perfectly equal); an empty or all-zero input
/// is perfectly fair by convention.
pub fn jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(weight: f64, demand: u64, active: bool) -> TenantDemand {
        TenantDemand {
            weight,
            demand,
            active,
        }
    }

    const BUDGET: u64 = 1 << 20;

    #[test]
    fn quotas_never_exceed_budget() {
        for policy in [
            QuotaPolicy::Static,
            QuotaPolicy::DemandProportional { floor_frac: 0.5 },
            QuotaPolicy::DemandProportional { floor_frac: 0.0 },
            QuotaPolicy::DemandProportional { floor_frac: 1.0 },
        ] {
            for n in 1..7 {
                let tenants: Vec<TenantDemand> = (0..n)
                    .map(|i| t(1.0 + i as f64, (i as u64) * 100_000, i % 3 != 2))
                    .collect();
                let q = quotas(&policy, BUDGET, &tenants);
                assert!(
                    q.iter().sum::<u64>() <= BUDGET,
                    "{policy:?} with {n} tenants oversubscribed: {q:?}"
                );
            }
        }
    }

    #[test]
    fn static_split_is_weight_proportional() {
        let q = quotas(
            &QuotaPolicy::Static,
            BUDGET,
            &[t(1.0, 0, true), t(3.0, 0, true)],
        );
        assert_eq!(q[0], BUDGET / 4);
        assert_eq!(q[1], 3 * (BUDGET / 4));
    }

    #[test]
    fn inactive_and_zero_weight_tenants_get_zero() {
        for policy in [
            QuotaPolicy::Static,
            QuotaPolicy::DemandProportional { floor_frac: 0.5 },
        ] {
            let q = quotas(
                &policy,
                BUDGET,
                &[t(1.0, 500, false), t(0.0, 500, true), t(1.0, 500, true)],
            );
            assert_eq!(q[0], 0, "inactive tenant must hold no quota");
            assert_eq!(q[1], 0, "zero-weight tenant must hold no quota");
            assert!(q[2] > 0);
        }
    }

    #[test]
    fn demand_proportional_respects_floors() {
        // Starvation-freeness: tenant 0 declares no demand but is
        // active, so it keeps its weighted floor; the greedy tenant
        // cannot take it.
        let q = quotas(
            &QuotaPolicy::DemandProportional { floor_frac: 0.5 },
            BUDGET,
            &[t(1.0, 0, true), t(1.0, u64::MAX / 2, true)],
        );
        let floor_each = (BUDGET as f64 * 0.5 / 2.0) as u64;
        assert!(
            q[0] >= floor_each,
            "active tenant starved below its floor: {} < {floor_each}",
            q[0]
        );
        assert!(q[1] > q[0], "demand must attract the leftover");
    }

    #[test]
    fn demand_proportional_splits_leftover_by_demand() {
        let q = quotas(
            &QuotaPolicy::DemandProportional { floor_frac: 0.0 },
            BUDGET,
            &[t(1.0, 100, true), t(1.0, 300, true)],
        );
        // No floors: pure demand split, 1:3.
        assert_eq!(q[0], BUDGET / 4);
        assert_eq!(q[1], 3 * (BUDGET / 4));
    }

    #[test]
    fn zero_total_demand_falls_back_to_weights() {
        let q = quotas(
            &QuotaPolicy::DemandProportional { floor_frac: 0.25 },
            BUDGET,
            &[t(1.0, 0, true), t(1.0, 0, true)],
        );
        assert_eq!(q[0], BUDGET / 2);
        assert_eq!(q[1], BUDGET / 2);
    }

    #[test]
    fn all_inactive_means_all_zero() {
        let q = quotas(
            &QuotaPolicy::Static,
            BUDGET,
            &[t(1.0, 10, false), t(2.0, 10, false)],
        );
        assert_eq!(q, vec![0, 0]);
    }

    #[test]
    fn jain_bounds_and_known_points() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
        assert!((jain(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One tenant hogging everything: J = 1/n.
        assert!((jain(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        let j = jain(&[1.0, 2.0, 3.0, 4.0]);
        assert!(j > 0.25 && j < 1.0, "mid fairness must be interior: {j}");
    }
}
