//! The multi-tenant runtime server.
//!
//! One [`TahoeServer`] owns the process-wide runtime resources: a
//! shared [`TaskPool`] of workers, one [`SharedHms`] two-tier memory
//! system whose DRAM capacity is the *global* budget, and one
//! background migration engine. Tenants register once with an
//! [`App`] — their objects are allocated NVM-resident for the server's
//! lifetime — and then submit graph executions through their
//! [`TenantHandle`], concurrently with every other tenant.
//!
//! **Admission control.** Each submission passes through the arbiter
//! under one lock: per-tenant DRAM quotas are recomputed over the
//! currently *active* tenants ([`arbiter::quotas`]), the tenant's own
//! objects are re-planned with the knapsack solver against its quota,
//! and the resulting tier moves are handed to the FIFO migration
//! engine — space-freeing demotions strictly before the promotions
//! that need the space. A tenant whose previous graph is still running
//! queues (bounded by [`ServerConfig::max_queue`]) or is shed.
//!
//! **Preemption.** Quota modes may demote *other* tenants' DRAM
//! residents, but only objects held above their owner's current quota
//! — an idle tenant's quota is zero, so its cached hot set is
//! reclaimed the moment an active tenant needs the bytes, while an
//! active tenant can never be pushed below its guaranteed floor
//! (starvation-freeness, tested in [`crate::arbiter`]).
//!
//! **Determinism.** Every graph execution re-initializes the tenant's
//! objects from the seeded fill and folds per-access checksums in the
//! canonical order of
//! [`reference_checksum_seeded`](tahoe_core::measured::reference_checksum_seeded)
//! — so a tenant's result under full cross-tenant contention, arbitrary
//! preemption and any worker interleaving is bit-identical to the same
//! app running alone.

use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tahoe_core::app::App;
use tahoe_core::measured::{cf, fold, init_seed, site_seed};
use tahoe_hms::{
    ContentionStats, Hms, HmsConfig, MigrationRecord, MigrationStats, Ns, ObjectId, SharedHms,
    TierKind,
};
use tahoe_memprof::wallclock::WallClockCalibration;
use tahoe_obs::{Emitter, Event, HistData, Histogram, Metrics};
use tahoe_placement::Item;
use tahoe_realmem::{traffic, BackgroundMigrator, RealBackend};
use tahoe_taskrt::{DataGate, JobSpec, TaskGraph, TaskPool, TaskSpec};

use crate::arbiter::{self, QuotaPolicy, TenantDemand};
use crate::namespace::{self, AdmitError, Namespace};
use crate::telemetry::BlameBoard;

/// How the server arbitrates the shared DRAM budget across tenants.
#[derive(Debug, Clone, PartialEq)]
pub enum ArbiterMode {
    /// Quota-arbitrated: per-tenant quotas from [`arbiter::quotas`],
    /// enforced by the admission knapsack and over-quota preemption.
    Quota(QuotaPolicy),
    /// No arbitration: each admission may grab whatever DRAM is free
    /// (first come, first served — the rich-get-richer baseline the
    /// fairness bench compares against). No preemption ever happens.
    FreeForAll,
}

/// Server construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Worker threads in the shared pool (0 clamps to 1).
    pub workers: usize,
    /// Global DRAM budget in bytes, shared by all tenants.
    pub dram_budget: u64,
    /// NVM capacity in bytes; every tenant's full footprint must fit.
    pub nvm_capacity: u64,
    /// DRAM arbitration mode.
    pub mode: ArbiterMode,
    /// Graphs a tenant may hold queued behind a running one before
    /// further submissions are shed.
    pub max_queue: usize,
}

/// Registration-time description of a tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name (reports, traces).
    pub name: String,
    /// Arbitration weight (relative DRAM share).
    pub weight: f64,
}

impl TenantSpec {
    /// A tenant with the given name and weight.
    pub fn new(name: &str, weight: f64) -> Self {
        TenantSpec {
            name: name.to_string(),
            weight,
        }
    }
}

/// Immutable per-tenant state fixed at registration.
struct TenantInfo {
    id: u32,
    name: String,
    weight: f64,
    graph: Arc<TaskGraph>,
    /// Global hms ids, indexed by the tenant's local object index.
    ids: Arc<Vec<ObjectId>>,
    sizes: Vec<u64>,
    /// Predicted whole-run value of DRAM residence per object.
    values: Vec<f64>,
    /// Bytes of objects with positive value (declared DRAM demand).
    demand: u64,
    slot_base: Vec<usize>,
    n_slots: usize,
    windows: u32,
}

/// Completed-execution record delivered through a [`GraphTicket`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphOutcome {
    /// Tenant that ran the graph.
    pub tenant: u32,
    /// Server-wide submission sequence number.
    pub graph: u64,
    /// Seed that parameterized the traffic.
    pub run_seed: u64,
    /// Canonical re-fold of every access checksum; must equal
    /// [`reference_checksum_seeded`](tahoe_core::measured::reference_checksum_seeded)
    /// for the tenant's app and seed.
    pub checksum: u64,
    /// Submission wall time (server epoch, ns).
    pub submitted_ns: Ns,
    /// Admission wall time, ns.
    pub admitted_ns: Ns,
    /// Completion wall time, ns.
    pub finished_ns: Ns,
    /// `finished - submitted`: the latency the tenant observed.
    pub latency_ns: Ns,
    /// `admitted - submitted`: time spent queued behind the tenant's
    /// own previous graph.
    pub queue_wait_ns: Ns,
}

#[derive(Default)]
struct TicketCell {
    slot: Mutex<Option<GraphOutcome>>,
    cv: Condvar,
}

impl TicketCell {
    fn fulfil(&self, outcome: GraphOutcome) {
        let mut slot = self.slot.lock().expect("ticket slot");
        *slot = Some(outcome);
        self.cv.notify_all();
    }
}

/// Handle to one accepted (admitted or queued) graph submission.
pub struct GraphTicket {
    cell: Arc<TicketCell>,
}

impl GraphTicket {
    /// Block until the graph completed; returns its outcome.
    pub fn wait(&self) -> GraphOutcome {
        let mut slot = self.cell.slot.lock().expect("ticket slot");
        loop {
            if let Some(o) = slot.as_ref() {
                return o.clone();
            }
            slot = self.cell.cv.wait(slot).expect("ticket slot");
        }
    }

    /// The outcome, if the graph already completed (non-blocking).
    pub fn try_get(&self) -> Option<GraphOutcome> {
        self.cell.slot.lock().expect("ticket slot").clone()
    }
}

/// Result of [`TenantHandle::submit`].
pub enum Submission {
    /// Dispatched immediately.
    Admitted(GraphTicket),
    /// Accepted but queued behind the tenant's running graph.
    Queued(GraphTicket),
    /// Rejected: the tenant's queue was full.
    Shed {
        /// Tenant whose submission was shed.
        tenant: u32,
        /// Sequence number the submission would have had.
        graph: u64,
    },
}

impl Submission {
    /// The ticket, unless the submission was shed.
    pub fn ticket(&self) -> Option<&GraphTicket> {
        match self {
            Submission::Admitted(t) | Submission::Queued(t) => Some(t),
            Submission::Shed { .. } => None,
        }
    }

    /// Whether the submission was rejected.
    pub fn is_shed(&self) -> bool {
        matches!(self, Submission::Shed { .. })
    }
}

struct Pending {
    seq: u64,
    run_seed: u64,
    submitted_ns: Ns,
    ticket: Arc<TicketCell>,
}

/// Everything admission needs to hand a graph to the pool, computed
/// under the server lock but executed outside it (object init and
/// pool submission can block on in-flight migrations).
struct DispatchPlan {
    info: Arc<TenantInfo>,
    seq: u64,
    run_seed: u64,
    submitted_ns: Ns,
    ticket: Arc<TicketCell>,
    quota: u64,
}

struct TenantState {
    info: Arc<TenantInfo>,
    /// A graph of this tenant is currently dispatched.
    busy: bool,
    queue: VecDeque<Pending>,
    /// Local indices of objects the arbiter intends DRAM-resident.
    /// Intent, not ground truth: the invariant is that the sum of
    /// planned bytes across tenants never exceeds the budget, and
    /// every planned transition was enqueued to the FIFO migration
    /// engine with demotions ahead of the promotions they make room
    /// for — so the engine can always honour the intent.
    planned: BTreeSet<usize>,
    submitted: u64,
    completed: u64,
    shed: u64,
    /// Objects of *this* tenant demoted by other tenants' admissions.
    preempted: u64,
    promoted_bytes: u64,
    demoted_bytes: u64,
    last_quota: u64,
    hist: Histogram,
    latencies: Vec<f64>,
}

fn planned_bytes(t: &TenantState) -> u64 {
    t.planned.iter().map(|&i| t.info.sizes[i]).sum()
}

struct Inner {
    tenants: Vec<TenantState>,
    namespace: Namespace,
    seq: u64,
}

pub(crate) struct ServerShared {
    cfg: ServerConfig,
    cal: WallClockCalibration,
    hms_cfg: HmsConfig,
    hms: Arc<SharedHms>,
    emitter: Emitter,
    metrics: Metrics,
    pool: Mutex<Option<TaskPool>>,
    migrator: Mutex<Option<BackgroundMigrator>>,
    /// Rolling per-(object, tier) blame, fed by the migration engine's
    /// commit observer — readable while the server runs.
    blame: Arc<BlameBoard>,
    inner: Mutex<Inner>,
}

/// Per-tenant slice of the final [`ServerReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant id.
    pub tenant: u32,
    /// Registration name.
    pub name: String,
    /// Arbitration weight.
    pub weight: f64,
    /// Graphs submitted (including shed ones).
    pub submitted: u64,
    /// Graphs run to completion.
    pub completed: u64,
    /// Submissions rejected with a full queue.
    pub shed: u64,
    /// This tenant's objects demoted by other tenants' admissions.
    pub preempted: u64,
    /// Bytes promoted to DRAM for this tenant.
    pub promoted_bytes: u64,
    /// Bytes demoted to NVM (self-demotions plus preemptions).
    pub demoted_bytes: u64,
    /// DRAM quota at the last arbitration this tenant saw.
    pub last_quota: u64,
    /// Exact end-to-end latency of every completed graph, ns.
    pub latencies_ns: Vec<f64>,
    /// Log-bucketed digest of the same latencies (mergeable across
    /// runs, same shape the flight-recorder histograms use).
    pub hist: HistData,
}

impl TenantReport {
    /// Exact latency quantile (nearest-rank on the recorded samples);
    /// 0 when the tenant completed nothing.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let mut v = self.latencies_ns.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        v[idx]
    }
}

/// Lifetime summary returned by [`TahoeServer::shutdown`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerReport {
    /// One entry per registered tenant.
    pub tenants: Vec<TenantReport>,
    /// Shared pool statistics.
    pub pool: tahoe_taskrt::PoolStats,
    /// Wall-clock overlap accounting of all migrations.
    pub migration: MigrationStats,
    /// Migration requests that were moot (already resident, no space).
    pub migrations_skipped: u64,
    /// Lock-free pin/move contention counters.
    pub contention: ContentionStats,
    /// Server lifetime, ns.
    pub wall_ns: Ns,
}

impl ServerReport {
    /// Total graphs completed across tenants.
    pub fn completed_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Total preemption demotions suffered across tenants.
    pub fn preempted_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.preempted).sum()
    }

    /// Total shed submissions across tenants.
    pub fn shed_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.shed).sum()
    }

    /// Jain fairness index over per-tenant completion counts.
    pub fn jain_by_completions(&self) -> f64 {
        let xs: Vec<f64> = self.tenants.iter().map(|t| t.completed as f64).collect();
        arbiter::jain(&xs)
    }
}

/// The executor's data gate for one tenant's job: a task is
/// data-ready when none of its (global) objects is mid-migration.
struct ServerGate {
    hms: Arc<SharedHms>,
    ids: Arc<Vec<ObjectId>>,
}

impl DataGate for ServerGate {
    fn wait_ready(&self, task: &TaskSpec) -> f64 {
        let ids: Vec<ObjectId> = task.objects().iter().map(|o| self.ids[o.index()]).collect();
        self.hms.wait_ready(&ids)
    }
}

/// The long-lived multi-tenant runtime server.
pub struct TahoeServer {
    pub(crate) sh: Arc<ServerShared>,
}

/// A tenant's submission interface. Clone-free by design: one handle
/// per tenant, shareable by reference across driver threads.
pub struct TenantHandle {
    sh: Arc<ServerShared>,
    tenant: u32,
}

impl TahoeServer {
    /// Build the server: shared worker pool, shared two-tier memory
    /// (DRAM capacity = `cfg.dram_budget`, NVM = `cfg.nvm_capacity`)
    /// and the background migration engine, all tagged observability
    /// through `emitter`/`metrics`.
    pub fn new(
        cfg: ServerConfig,
        cal: WallClockCalibration,
        emitter: Emitter,
        metrics: Metrics,
    ) -> Result<Self, String> {
        let mut dram = cal.dram.clone();
        dram.capacity = cfg.dram_budget;
        let mut nvm = cal.nvm.clone();
        nvm.capacity = cfg.nvm_capacity;
        let copy_bw = nvm.write_bw_gbps.min(dram.read_bw_gbps) * 0.8;
        let hms_cfg = HmsConfig::new(dram, nvm, copy_bw).map_err(|e| e.to_string())?;
        let backend = RealBackend::with_observability(&hms_cfg, emitter.clone(), metrics.clone())?;
        let copy_cfg = backend.copy_config();
        let mut hms = Hms::new(hms_cfg.clone());
        hms.set_backend(Box::new(backend));
        let hms = Arc::new(SharedHms::new(hms));
        // The engine's commit observer feeds the live blame board: the
        // telemetry plane sees each migration's overlap split the
        // moment it commits, not at shutdown.
        let blame = Arc::new(BlameBoard::new());
        let board = Arc::clone(&blame);
        let migrator = BackgroundMigrator::spawn_observed(
            Arc::clone(&hms),
            copy_cfg,
            emitter.clone(),
            None,
            Some(Arc::new(move |rec: &MigrationRecord| board.record(rec))),
        );
        let pool = TaskPool::new(cfg.workers);
        Ok(TahoeServer {
            sh: Arc::new(ServerShared {
                cfg,
                cal,
                hms_cfg,
                hms,
                emitter,
                metrics,
                pool: Mutex::new(Some(pool)),
                migrator: Mutex::new(Some(migrator)),
                blame,
                inner: Mutex::new(Inner {
                    tenants: Vec::new(),
                    namespace: Namespace::new(),
                    seq: 0,
                }),
            }),
        })
    }

    /// Register a tenant. Validates the app against the tenant's own
    /// namespace (any access outside it — the only way to name another
    /// tenant's memory — is rejected here, before anything is
    /// allocated or scheduled) and allocates its objects NVM-resident
    /// for the server's lifetime.
    pub fn register_tenant(&self, spec: TenantSpec, app: App) -> Result<TenantHandle, AdmitError> {
        let mut inner = self.sh.inner.lock().expect("server state");
        let tid = inner.tenants.len() as u32;
        namespace::validate_app(tid, &app)?;
        let mut ids: Vec<ObjectId> = Vec::with_capacity(app.objects.len());
        let mut fail: Option<AdmitError> = None;
        self.sh.hms.with(|hms| {
            for spec in &app.objects {
                match hms.alloc_object(
                    &format!("t{tid}.{}", spec.name),
                    spec.size,
                    TierKind::Nvm,
                    false,
                ) {
                    Ok(id) => ids.push(id),
                    Err(e) => {
                        fail = Some(AdmitError::AllocFailed {
                            tenant: tid,
                            object: spec.name.clone(),
                            detail: e.to_string(),
                        });
                        break;
                    }
                }
            }
            if fail.is_some() {
                // Roll back the partial registration.
                for id in &ids {
                    let _ = hms.free_object(*id);
                }
            }
        });
        if let Some(e) = fail {
            return Err(e);
        }
        inner.namespace.register(tid, &ids);

        // Predicted value of DRAM residence per object — the same
        // ground-truth model the single-tenant planner uses.
        let mut values = vec![0.0f64; app.objects.len()];
        for t in app.graph.tasks() {
            for a in &t.accesses {
                let on_nvm = a.profile.mem_time_ns(&self.sh.hms_cfg.nvm)
                    * cf(&self.sh.cal, &a.profile, &self.sh.hms_cfg.nvm);
                let on_dram = a.profile.mem_time_ns(&self.sh.hms_cfg.dram)
                    * cf(&self.sh.cal, &a.profile, &self.sh.hms_cfg.dram);
                values[a.object.index()] += (on_nvm - on_dram).max(0.0);
            }
        }
        let demand = app
            .objects
            .iter()
            .enumerate()
            .filter(|(i, _)| values[*i] > 0.0)
            .map(|(_, o)| o.size)
            .sum();
        let mut slot_base = vec![0usize; app.graph.len()];
        let mut n_slots = 0usize;
        for t in app.graph.tasks() {
            slot_base[t.id.index()] = n_slots;
            n_slots += t.accesses.len();
        }
        let windows = app.windows();
        let App { objects, graph, .. } = app;
        let info = Arc::new(TenantInfo {
            id: tid,
            name: spec.name,
            weight: spec.weight,
            graph: Arc::new(graph),
            ids: Arc::new(ids),
            sizes: objects.iter().map(|o| o.size).collect(),
            values,
            demand,
            slot_base,
            n_slots,
            windows,
        });
        inner.tenants.push(TenantState {
            info,
            busy: false,
            queue: VecDeque::new(),
            planned: BTreeSet::new(),
            submitted: 0,
            completed: 0,
            shed: 0,
            preempted: 0,
            promoted_bytes: 0,
            demoted_bytes: 0,
            last_quota: 0,
            hist: Histogram::new(),
            latencies: Vec::new(),
        });
        Ok(TenantHandle {
            sh: Arc::clone(&self.sh),
            tenant: tid,
        })
    }

    /// Number of registered tenants.
    pub fn tenants(&self) -> usize {
        self.sh.inner.lock().expect("server state").tenants.len()
    }

    /// Drain all in-flight and queued graphs, stop the pool and the
    /// migration engine, and return the lifetime report.
    pub fn shutdown(self) -> ServerReport {
        loop {
            let idle = {
                let inner = self.sh.inner.lock().expect("server state");
                inner.tenants.iter().all(|t| !t.busy && t.queue.is_empty())
            };
            if idle {
                break;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        let pool = self
            .sh
            .pool
            .lock()
            .expect("pool slot")
            .take()
            .expect("pool live until shutdown");
        let pool_stats = pool.shutdown();
        let mig = self
            .sh
            .migrator
            .lock()
            .expect("migrator slot")
            .take()
            .expect("migrator live until shutdown")
            .finish();
        let contention = self.sh.hms.contention();
        let wall_ns = self.sh.hms.now_ns();
        let inner = self.sh.inner.lock().expect("server state");
        let tenants = inner
            .tenants
            .iter()
            .map(|t| TenantReport {
                tenant: t.info.id,
                name: t.info.name.clone(),
                weight: t.info.weight,
                submitted: t.submitted,
                completed: t.completed,
                shed: t.shed,
                preempted: t.preempted,
                promoted_bytes: t.promoted_bytes,
                demoted_bytes: t.demoted_bytes,
                last_quota: t.last_quota,
                latencies_ns: t.latencies.clone(),
                hist: t.hist.data(),
            })
            .collect();
        ServerReport {
            tenants,
            pool: pool_stats,
            migration: mig.stats,
            migrations_skipped: mig.skipped,
            contention,
            wall_ns,
        }
    }
}

impl TenantHandle {
    /// This handle's tenant id.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Submit one graph execution with the given traffic seed.
    ///
    /// Per-tenant executions are serialized (cross-tenant concurrency
    /// is the server's parallelism axis): if the tenant's previous
    /// graph is still running the submission queues, and once the
    /// queue holds [`ServerConfig::max_queue`] entries it is shed.
    pub fn submit(&self, run_seed: u64) -> Submission {
        let submitted_ns = self.sh.hms.now_ns();
        let tid = self.tenant as usize;
        let (plan, cell) = {
            let mut inner = self.sh.inner.lock().expect("server state");
            inner.seq += 1;
            let seq = inner.seq;
            inner.tenants[tid].submitted += 1;
            let cell = Arc::new(TicketCell::default());
            let pend = Pending {
                seq,
                run_seed,
                submitted_ns,
                ticket: Arc::clone(&cell),
            };
            if inner.tenants[tid].busy {
                if inner.tenants[tid].queue.len() >= self.sh.cfg.max_queue {
                    inner.tenants[tid].shed += 1;
                    let queued = inner.tenants[tid].queue.len() as u32;
                    let (t, tenant) = (self.sh.hms.now_ns(), self.tenant);
                    self.sh.emitter.emit(|| Event::GraphShed {
                        t,
                        tenant,
                        graph: seq,
                        queued,
                    });
                    self.sh.metrics.add("server.graphs_shed", 1);
                    return Submission::Shed {
                        tenant: self.tenant,
                        graph: seq,
                    };
                }
                inner.tenants[tid].queue.push_back(pend);
                return Submission::Queued(GraphTicket { cell });
            }
            (self.sh.admit_locked(&mut inner, tid, pend), cell)
        };
        dispatch(&self.sh, plan);
        Submission::Admitted(GraphTicket { cell })
    }
}

/// Escape a tenant name for embedding in a Prometheus label value or a
/// JSON string (both use backslash escapes for `"` and `\`).
fn label_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl ServerShared {
    /// Render the Prometheus-style text exposition served on the
    /// telemetry endpoint's `/metrics` path: per-tenant counters and
    /// quota state (bit-identical to what the final [`ServerReport`]
    /// will carry for the same instant), latency digests, server-wide
    /// totals, and the rolling blame top-`blame_top_k`.
    pub(crate) fn telemetry_text(&self, blame_top_k: usize) -> String {
        use std::fmt::Write as _;
        let now = self.hms.now_ns();
        let inner = self.inner.lock().expect("server state");
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# TYPE tahoe_server_uptime_ns gauge");
        let _ = writeln!(out, "tahoe_server_uptime_ns {now}");
        let _ = writeln!(out, "# TYPE tahoe_server_tenants gauge");
        let _ = writeln!(out, "tahoe_server_tenants {}", inner.tenants.len());

        // Per-tenant counter families. Values are the same u64s the
        // end-of-run TenantReport snapshots — integer-formatted, so a
        // scrape taken while the server is idle matches the report bit
        // for bit.
        struct Family {
            name: &'static str,
            kind: &'static str,
            get: fn(&TenantState) -> u64,
        }
        let families: &[Family] = &[
            Family {
                name: "tahoe_tenant_submitted_total",
                kind: "counter",
                get: |t| t.submitted,
            },
            Family {
                name: "tahoe_tenant_completed_total",
                kind: "counter",
                get: |t| t.completed,
            },
            Family {
                name: "tahoe_tenant_shed_total",
                kind: "counter",
                get: |t| t.shed,
            },
            Family {
                name: "tahoe_tenant_preempted_total",
                kind: "counter",
                get: |t| t.preempted,
            },
            Family {
                name: "tahoe_tenant_promoted_bytes_total",
                kind: "counter",
                get: |t| t.promoted_bytes,
            },
            Family {
                name: "tahoe_tenant_demoted_bytes_total",
                kind: "counter",
                get: |t| t.demoted_bytes,
            },
            Family {
                name: "tahoe_tenant_quota_bytes",
                kind: "gauge",
                get: |t| t.last_quota,
            },
        ];
        for f in families {
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind);
            for t in &inner.tenants {
                let _ = writeln!(
                    out,
                    "{}{{tenant=\"{}\",name=\"{}\"}} {}",
                    f.name,
                    t.info.id,
                    label_escape(&t.info.name),
                    (f.get)(t)
                );
            }
        }

        // Latency digests from the same log-bucketed histograms the
        // report embeds.
        let _ = writeln!(out, "# TYPE tahoe_tenant_latency_ns summary");
        for t in &inner.tenants {
            let s = t.hist.data().summary();
            let labels = format!(
                "tenant=\"{}\",name=\"{}\"",
                t.info.id,
                label_escape(&t.info.name)
            );
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                let _ = writeln!(
                    out,
                    "tahoe_tenant_latency_ns{{{labels},quantile=\"{q}\"}} {v}"
                );
            }
            let _ = writeln!(out, "tahoe_tenant_latency_ns_count{{{labels}}} {}", s.count);
            let _ = writeln!(out, "tahoe_tenant_latency_ns_max{{{labels}}} {}", s.max);
        }
        drop(inner);

        // Rolling blame top-K: worst exposed stall time first, labelled
        // by global HMS object id and destination tier.
        let top = self.blame.top_k(blame_top_k);
        for (name, kind) in [
            ("tahoe_blame_migrations_total", "counter"),
            ("tahoe_blame_bytes_total", "counter"),
            ("tahoe_blame_overlapped_ns_total", "counter"),
            ("tahoe_blame_exposed_ns_total", "counter"),
        ] {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for e in &top {
                let labels = format!("object=\"{}\",tier=\"{}\"", e.object, e.tier_tag);
                let v: String = match name {
                    "tahoe_blame_migrations_total" => e.migrations.to_string(),
                    "tahoe_blame_bytes_total" => e.bytes.to_string(),
                    "tahoe_blame_overlapped_ns_total" => format!("{}", e.overlapped_ns),
                    _ => format!("{}", e.exposed_ns),
                };
                let _ = writeln!(out, "{name}{{{labels}}} {v}");
            }
        }
        out
    }

    /// One JSONL snapshot line for the telemetry journal: the same
    /// per-tenant counters and blame top-K as the text exposition, as a
    /// single self-contained JSON object.
    pub(crate) fn telemetry_json(&self, blame_top_k: usize) -> String {
        use std::fmt::Write as _;
        let now = self.hms.now_ns();
        let inner = self.inner.lock().expect("server state");
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"schema\":\"tahoe-telemetry/v1\",\"t_ns\":{now},\"tenants\":["
        );
        for (i, t) in inner.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = t.hist.data().summary();
            let _ = write!(
                out,
                "{{\"tenant\":{},\"name\":\"{}\",\"submitted\":{},\"completed\":{},\"shed\":{},\"preempted\":{},\"promoted_bytes\":{},\"demoted_bytes\":{},\"quota_bytes\":{},\"latency_p50_ns\":{},\"latency_p99_ns\":{}}}",
                t.info.id,
                label_escape(&t.info.name),
                t.submitted,
                t.completed,
                t.shed,
                t.preempted,
                t.promoted_bytes,
                t.demoted_bytes,
                t.last_quota,
                s.p50,
                s.p99
            );
        }
        drop(inner);
        out.push_str("],\"blame\":[");
        for (i, e) in self.blame.top_k(blame_top_k).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"object\":{},\"tier\":\"{}\",\"migrations\":{},\"bytes\":{},\"overlapped_ns\":{},\"exposed_ns\":{}}}",
                e.object, e.tier_tag, e.migrations, e.bytes, e.overlapped_ns, e.exposed_ns
            );
        }
        out.push_str("]}");
        out
    }

    /// Arbitrate and plan one admission. Caller holds the server lock
    /// and has verified the tenant is not busy; this marks it busy,
    /// recomputes quotas, re-plans the tenant's placement within its
    /// quota, preempts over-quota victims if allowed, and enqueues the
    /// ordered move list to the FIFO migration engine — all under the
    /// lock, so concurrent admissions observe consistent intent and
    /// the engine sees space-freeing demotions before the promotions
    /// that rely on them.
    fn admit_locked(&self, inner: &mut Inner, tid: usize, pend: Pending) -> DispatchPlan {
        inner.tenants[tid].busy = true;
        let budget = self.cfg.dram_budget;
        let now = self.hms.now_ns();
        let total_planned: u64 = inner.tenants.iter().map(planned_bytes).sum();
        let mut free = budget.saturating_sub(total_planned);
        let quotas: Option<Vec<u64>> = match &self.cfg.mode {
            ArbiterMode::Quota(policy) => {
                let demands: Vec<TenantDemand> = inner
                    .tenants
                    .iter()
                    .map(|t| TenantDemand {
                        weight: t.info.weight,
                        demand: t.info.demand,
                        active: t.busy || !t.queue.is_empty(),
                    })
                    .collect();
                let q = arbiter::quotas(policy, budget, &demands);
                for (i, t) in inner.tenants.iter_mut().enumerate() {
                    if q[i] != t.last_quota {
                        t.last_quota = q[i];
                        let (tenant, demand) = (t.info.id, t.info.demand);
                        self.emitter.emit(|| Event::TenantQuota {
                            t: now,
                            tenant,
                            quota_bytes: q[i],
                            demand_bytes: demand,
                        });
                    }
                }
                Some(q)
            }
            ArbiterMode::FreeForAll => None,
        };
        let info = Arc::clone(&inner.tenants[tid].info);
        let cap = match &quotas {
            Some(q) => q[tid],
            // Free-for-all: keep what you have, grab what's free.
            None => planned_bytes(&inner.tenants[tid]) + free,
        };
        let items: Vec<Item> = info
            .sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| Item {
                id: ObjectId(i as u32),
                size,
                value: info.values[i],
            })
            .collect();
        let solution = tahoe_placement::solve(&items, cap);
        let chosen: BTreeSet<usize> = solution.chosen.iter().map(|o| o.index()).collect();
        let mut moves: Vec<(ObjectId, TierKind)> = Vec::new();

        // Self-demotions: planned residents the new plan dropped.
        let drops: Vec<usize> = inner.tenants[tid]
            .planned
            .iter()
            .copied()
            .filter(|i| !chosen.contains(i))
            .collect();
        for i in drops {
            inner.tenants[tid].planned.remove(&i);
            inner.tenants[tid].demoted_bytes += info.sizes[i];
            free += info.sizes[i];
            moves.push((info.ids[i], TierKind::Nvm));
        }

        // Promotions, highest predicted value first; under quota modes
        // make room by preempting objects other tenants hold above
        // their own quota (lowest-value victim first), otherwise drop
        // promotions that do not fit.
        let mut promote: Vec<usize> = chosen
            .iter()
            .copied()
            .filter(|i| !inner.tenants[tid].planned.contains(i))
            .collect();
        promote.sort_by(|a, b| {
            info.values[*b]
                .partial_cmp(&info.values[*a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for i in promote {
            let sz = info.sizes[i];
            if let Some(q) = &quotas {
                while free < sz {
                    let mut best: Option<(usize, usize, f64)> = None;
                    for (j, t) in inner.tenants.iter().enumerate() {
                        if j == tid || planned_bytes(t) <= q[j] {
                            continue;
                        }
                        for &oi in &t.planned {
                            let v = t.info.values[oi];
                            if best.is_none_or(|(_, _, bv)| v < bv) {
                                best = Some((j, oi, v));
                            }
                        }
                    }
                    let Some((j, oi, _)) = best else { break };
                    let victim = &mut inner.tenants[j];
                    victim.planned.remove(&oi);
                    victim.preempted += 1;
                    let bytes = victim.info.sizes[oi];
                    victim.demoted_bytes += bytes;
                    free += bytes;
                    moves.push((victim.info.ids[oi], TierKind::Nvm));
                    let tenant = victim.info.id;
                    self.emitter.emit(|| Event::TenantPreempt {
                        t: now,
                        tenant,
                        object: oi as u32,
                        bytes,
                    });
                    self.metrics.add("server.preemptions", 1);
                }
            }
            if free >= sz {
                inner.tenants[tid].planned.insert(i);
                inner.tenants[tid].promoted_bytes += sz;
                free -= sz;
                moves.push((info.ids[i], TierKind::Dram));
            }
        }

        if !moves.is_empty() {
            let mig = self.migrator.lock().expect("migrator slot");
            let mig = mig.as_ref().expect("migrator live until shutdown");
            for (id, tier) in &moves {
                mig.enqueue(*id, *tier);
            }
        }
        DispatchPlan {
            info,
            seq: pend.seq,
            run_seed: pend.run_seed,
            submitted_ns: pend.submitted_ns,
            ticket: pend.ticket,
            quota: cap,
        }
    }
}

/// Execute an admission plan: emit the admission event, re-initialize
/// the tenant's objects with the seeded deterministic fill, and hand
/// the graph to the shared pool. Runs outside the server lock (the
/// init fill and pool hand-off may block briefly on in-flight
/// migrations of the same objects).
fn dispatch(sh: &Arc<ServerShared>, plan: DispatchPlan) {
    let DispatchPlan {
        info,
        seq,
        run_seed,
        submitted_ns,
        ticket,
        quota,
    } = plan;
    let tenant = info.id;
    let admitted_ns = sh.hms.now_ns();
    let queue_wait_ns = (admitted_ns - submitted_ns).max(0.0);
    sh.emitter.emit(|| Event::GraphAdmitted {
        t: admitted_ns,
        tenant,
        graph: seq,
        queue_wait_ns,
        quota_bytes: quota,
    });

    // Seeded re-init: every execution starts from the same fill a solo
    // run would, so the canonical checksum is comparable run to run.
    let mut init_sums = Vec::with_capacity(info.ids.len());
    {
        let pins = sh
            .hms
            .pin_for_task(&info.ids)
            .expect("tenant objects are never freed");
        for (i, pin) in pins.objects.iter().enumerate() {
            // SAFETY: the pin blocks migration for every object, the
            // arenas never remap, tenant objects are never freed, and
            // per-tenant serialization plus cross-tenant disjointness
            // make this the only live reference to these bytes.
            #[allow(unsafe_code)]
            let buf = unsafe { std::slice::from_raw_parts_mut(pin.as_ptr(), pin.len()) };
            init_sums.push(traffic::init_fill(buf, init_seed(run_seed, i)));
        }
    }

    let slots: Arc<Vec<AtomicU64>> =
        Arc::new((0..info.n_slots).map(|_| AtomicU64::new(0)).collect());
    let gate = Arc::new(ServerGate {
        hms: Arc::clone(&sh.hms),
        ids: Arc::clone(&info.ids),
    });

    let work = {
        let sh = Arc::clone(sh);
        let info = Arc::clone(&info);
        let slots = Arc::clone(&slots);
        Arc::new(move |worker: usize, tag: u32, task: &TaskSpec| {
            let t0 = Instant::now();
            let obj_ids: Vec<ObjectId> =
                task.objects().iter().map(|o| info.ids[o.index()]).collect();
            let pins = sh
                .hms
                .pin_for_task(&obj_ids)
                .expect("tenant objects are never freed");
            for (ai, access) in task.accesses.iter().enumerate() {
                let hid = info.ids[access.object.index()];
                let pin = pins
                    .objects
                    .iter()
                    .find(|p| p.id == hid)
                    .expect("every access object is pinned");
                // Quartz-style software NVM emulation, identical to the
                // single-tenant parallel path: native-speed kernel, then
                // inject the cf-corrected slow-minus-fast difference.
                let inject_ns = if pin.tier == TierKind::Nvm {
                    let slow = access.profile.mem_time_ns(&sh.hms_cfg.nvm)
                        * cf(&sh.cal, &access.profile, &sh.hms_cfg.nvm);
                    let fast = access.profile.mem_time_ns(&sh.hms_cfg.dram)
                        * cf(&sh.cal, &access.profile, &sh.hms_cfg.dram);
                    (slow - fast).max(0.0)
                } else {
                    0.0
                };
                // SAFETY: the pin blocks moves and frees for the whole
                // task, the arenas never remap, writes are exclusive by
                // the graph's derived dependences, and tenants only ever
                // reach their own (disjoint) objects — enforced at
                // admission by the namespace check.
                #[allow(unsafe_code)]
                let c = unsafe {
                    traffic::run_access_ptr(
                        pin.as_ptr(),
                        pin.len(),
                        access.profile.loads,
                        access.profile.stores,
                        site_seed(run_seed, task.id.0, ai),
                    )
                };
                slots[info.slot_base[task.id.index()] + ai].store(c, Ordering::Release);
                if inject_ns > 0.0 {
                    tahoe_realmem::throttle::pace_until(Instant::now(), inject_ns);
                }
            }
            let waited = pins.waited_ns;
            drop(pins);
            let t = sh.hms.now_ns();
            let (task_id, window, wall) = (task.id.0, task.window, t0.elapsed().as_nanos() as f64);
            sh.emitter.emit(|| Event::WorkerTask {
                t,
                tenant: tag,
                worker: worker as u32,
                task: task_id,
                window,
                wall_ns: wall,
                gate_wait_ns: waited,
            });
        })
    };

    let on_done: Box<dyn FnOnce() + Send> = {
        let sh = Arc::clone(sh);
        let info = Arc::clone(&info);
        let slots = Arc::clone(&slots);
        Box::new(move || {
            // Canonical re-fold: init sums in object order, then every
            // access slot in window/task/access order — the reference
            // checksum's exact fold sequence.
            let mut checksum = 0u64;
            for s in &init_sums {
                checksum = fold(checksum, *s);
            }
            for w in 0..info.windows {
                for tid in info.graph.window_tasks(w) {
                    let task = info.graph.task(tid);
                    for ai in 0..task.accesses.len() {
                        checksum = fold(
                            checksum,
                            slots[info.slot_base[tid.index()] + ai].load(Ordering::Acquire),
                        );
                    }
                }
            }
            let finished_ns = sh.hms.now_ns();
            let latency_ns = (finished_ns - submitted_ns).max(0.0);
            let wall_ns = (finished_ns - admitted_ns).max(0.0);
            sh.emitter.emit(|| Event::GraphDone {
                t: finished_ns,
                tenant,
                graph: seq,
                latency_ns,
                wall_ns,
            });
            sh.metrics.add("server.graphs_completed", 1);
            let next = {
                let mut inner = sh.inner.lock().expect("server state");
                {
                    let st = &mut inner.tenants[tenant as usize];
                    st.completed += 1;
                    st.latencies.push(latency_ns);
                    st.hist.record(latency_ns);
                    st.busy = false;
                }
                let pend = inner.tenants[tenant as usize].queue.pop_front();
                pend.map(|p| sh.admit_locked(&mut inner, tenant as usize, p))
            };
            // Fulfil before dispatching the next queued graph so a
            // closed-loop submitter wakes as soon as its result exists.
            ticket.fulfil(GraphOutcome {
                tenant,
                graph: seq,
                run_seed,
                checksum,
                submitted_ns,
                admitted_ns,
                finished_ns,
                latency_ns,
                queue_wait_ns,
            });
            if let Some(p) = next {
                dispatch(&sh, p);
            }
        })
    };

    let job = JobSpec {
        tag: tenant,
        graph: Arc::clone(&info.graph),
        gate,
        work,
        on_window: None,
        on_done: Some(on_done),
    };
    let pool = sh.pool.lock().expect("pool slot");
    pool.as_ref().expect("pool live until shutdown").submit(job);
}
