//! Multi-tenant runtime server for the Tahoe reproduction.
//!
//! Everything below the server is single-tenant: one app, one run, one
//! report. Production NVM/DRAM machines are shared — many jobs from
//! many owners arrive continuously and compete for the *same* DRAM.
//! This crate adds that missing layer:
//!
//! * [`server`] — the long-lived [`TahoeServer`]: one shared
//!   work-stealing [`tahoe_taskrt::TaskPool`], one shared
//!   [`tahoe_hms::SharedHms`] whose DRAM capacity is the global
//!   budget, one background migration engine. Tenants register once
//!   and submit graph executions concurrently through
//!   [`TenantHandle`]s; admission control queues or sheds when a
//!   tenant outruns itself.
//! * [`arbiter`] — pure cross-tenant quota math (weighted static or
//!   demand-proportional with guaranteed floors) plus the Jain
//!   fairness index; the preemption pass demotes only objects held
//!   *above* their owner's quota, so active tenants are
//!   starvation-free.
//! * [`namespace`] — per-tenant object namespaces; a graph naming an
//!   object outside its tenant's declared set is rejected at
//!   admission, before anything is allocated or scheduled.
//! * [`driver`] — closed-loop and open-loop submission drivers for
//!   experiments.
//! * [`compose`] — interleave tenant apps into one graph for the
//!   access sanitizer's schedule fuzz.
//! * [`telemetry`] — the live telemetry plane: a std-`TcpListener`
//!   Prometheus-style `/metrics` endpoint serving per-tenant counters,
//!   quota state and the rolling migration blame top-K (fed by the
//!   engine's commit observer), with optional periodic JSONL snapshot
//!   journaling. Idle-state counters match the eventual
//!   [`ServerReport`] bit for bit.
//!
//! Determinism survives multi-tenancy: each tenant's per-graph
//! checksum is bit-identical to the same app running alone, whatever
//! the contention, preemption or interleaving — the fairness bench
//! gates on it.
//!
//! # Quick start
//!
//! ```
//! use tahoe_core::app::AppBuilder;
//! use tahoe_core::measured::reference_checksum_seeded;
//! use tahoe_hms::TierSpec;
//! use tahoe_memprof::wallclock::{MeasuredTier, WallClockCalibration};
//! use tahoe_obs::{Emitter, Metrics};
//! use tahoe_server::{
//!     ArbiterMode, QuotaPolicy, ServerConfig, Submission, TahoeServer, TenantSpec,
//! };
//!
//! fn make_app(name: &str) -> tahoe_core::app::App {
//!     let mut b = AppBuilder::new(name);
//!     let x = b.object("x", 8 << 10);
//!     let y = b.object("y", 8 << 10);
//!     let c = b.class("step");
//!     b.task(c).read_streaming(x, 32).write_streaming(y, 32).submit();
//!     b.task(c).update_streaming(y, 32).submit();
//!     b.build()
//! }
//!
//! // Synthetic calibration: DRAM 10 GB/s / 100 ns, NVM 3x slower.
//! let cal = WallClockCalibration {
//!     dram: TierSpec::symmetric("dram", 100.0, 10.0, 1 << 20),
//!     nvm: TierSpec::symmetric("nvm", 300.0, 3.0, 1 << 24),
//!     cf_bw: 1.0,
//!     cf_lat: 1.0,
//!     measured: MeasuredTier {
//!         stream_bw_gbps: 10.0,
//!         chase_lat_ns: 100.0,
//!         stream_wall_ns: 1000.0,
//!         chase_wall_ns: 1000.0,
//!     },
//! };
//! let server = TahoeServer::new(
//!     ServerConfig {
//!         workers: 2,
//!         dram_budget: 24 << 10,
//!         nvm_capacity: 1 << 24,
//!         mode: ArbiterMode::Quota(QuotaPolicy::DemandProportional { floor_frac: 0.5 }),
//!         max_queue: 2,
//!     },
//!     cal,
//!     Emitter::disabled(),
//!     Metrics::disabled(),
//! )
//! .unwrap();
//!
//! // Two tenants share the pool and the DRAM budget.
//! let t0 = server.register_tenant(TenantSpec::new("alice", 1.0), make_app("a")).unwrap();
//! let t1 = server.register_tenant(TenantSpec::new("bob", 1.0), make_app("b")).unwrap();
//! let (s0, s1) = (t0.submit(7), t1.submit(9));
//! let (o0, o1) = (s0.ticket().unwrap().wait(), s1.ticket().unwrap().wait());
//!
//! // Shared and contended — yet bit-identical to running alone.
//! assert_eq!(o0.checksum, reference_checksum_seeded(&make_app("a"), 7));
//! assert_eq!(o1.checksum, reference_checksum_seeded(&make_app("b"), 9));
//! let report = server.shutdown();
//! assert_eq!(report.completed_total(), 2);
//! ```

// Raw-pointer traffic kernels run through migration-fenced pins; every
// unsafe block is scoped and carries its SAFETY argument.
#![deny(unsafe_code)]

pub mod arbiter;
pub mod compose;
pub mod driver;
pub mod namespace;
pub mod server;
pub mod telemetry;

pub use arbiter::{jain, QuotaPolicy, TenantDemand};
pub use compose::interleave;
pub use namespace::AdmitError;
pub use server::{
    ArbiterMode, GraphOutcome, GraphTicket, ServerConfig, ServerReport, Submission, TahoeServer,
    TenantHandle, TenantReport, TenantSpec,
};
pub use telemetry::{BlameBoard, BlameLine, TelemetryConfig, TelemetryHandle};
