//! Submission drivers for experiments: closed-loop and open-loop
//! tenant load generators over [`TenantHandle`]s.
//!
//! The fairness bench runs both shapes: closed-loop (each tenant
//! resubmits the moment its previous graph completes — the saturating
//! steady state where arbitration matters most) and a back-to-back
//! open-loop burst (submissions arrive regardless of completion, so a
//! bounded queue must shed).

use crate::server::{GraphOutcome, Submission, TenantHandle};

/// Per-tenant deterministic seed for driver-submitted graphs: every
/// graph of a tenant uses the same seed, so each outcome's checksum
/// can be validated against the tenant's solo reference directly.
pub fn tenant_seed(base_seed: u64, tenant: u32) -> u64 {
    base_seed.wrapping_add(tenant as u64)
}

/// Closed-loop drive: one submitter thread per handle, each running
/// `graphs` back-to-back submit→wait cycles with
/// [`tenant_seed`]`(base_seed, tenant)`. Returns every outcome
/// (completion order within a tenant, tenants interleaved
/// arbitrarily). Closed-loop submissions are never shed: a tenant
/// only submits once its previous graph finished.
pub fn closed_loop(handles: &[&TenantHandle], graphs: usize, base_seed: u64) -> Vec<GraphOutcome> {
    let mut out = Vec::with_capacity(handles.len() * graphs);
    std::thread::scope(|scope| {
        let joins: Vec<_> = handles
            .iter()
            .map(|h| {
                scope.spawn(move || {
                    let seed = tenant_seed(base_seed, h.tenant());
                    let mut mine = Vec::with_capacity(graphs);
                    for _ in 0..graphs {
                        match h.submit(seed) {
                            Submission::Admitted(t) | Submission::Queued(t) => mine.push(t.wait()),
                            Submission::Shed { tenant, graph } => {
                                unreachable!("closed-loop shed: tenant {tenant} graph {graph}")
                            }
                        }
                    }
                    mine
                })
            })
            .collect();
        for j in joins {
            out.extend(j.join().expect("driver thread"));
        }
    });
    out
}

/// Pipelined closed loop: like [`closed_loop`] but each tenant keeps
/// `depth` submissions in flight (one running, `depth - 1` queued), so
/// tenants are continuously busy-or-queued and the arbiter sees a
/// stable active set instead of flickering idle gaps between
/// submit→wait cycles. Requires `depth - 1 <=` the server's
/// `max_queue` — within that bound a pipelined submission is never
/// shed, and the driver panics if one is.
pub fn pipelined(
    handles: &[&TenantHandle],
    graphs: usize,
    depth: usize,
    base_seed: u64,
) -> Vec<GraphOutcome> {
    assert!(depth >= 1, "pipeline depth must be at least 1");
    let mut out = Vec::with_capacity(handles.len() * graphs);
    std::thread::scope(|scope| {
        let joins: Vec<_> = handles
            .iter()
            .map(|h| {
                scope.spawn(move || {
                    let seed = tenant_seed(base_seed, h.tenant());
                    let submit = |n: usize| match h.submit(seed) {
                        Submission::Admitted(t) | Submission::Queued(t) => t,
                        Submission::Shed { tenant, .. } => unreachable!(
                            "pipelined shed: tenant {tenant} submission {n} \
                             (depth exceeds the server's queue bound?)"
                        ),
                    };
                    let mut inflight = std::collections::VecDeque::new();
                    let mut submitted = 0usize;
                    while submitted < graphs.min(depth) {
                        inflight.push_back(submit(submitted));
                        submitted += 1;
                    }
                    let mut mine = Vec::with_capacity(graphs);
                    while let Some(t) = inflight.pop_front() {
                        mine.push(t.wait());
                        if submitted < graphs {
                            inflight.push_back(submit(submitted));
                            submitted += 1;
                        }
                    }
                    mine
                })
            })
            .collect();
        for j in joins {
            out.extend(j.join().expect("driver thread"));
        }
    });
    out
}

/// Time-bounded pipelined closed loop: every tenant keeps `depth`
/// submissions in flight and resubmits on each completion until
/// `duration` elapses, then drains what is still in flight. Unlike a
/// fixed-graph-count loop, fast tenants never exit early — slow
/// tenants stay contended for the whole window, so per-tenant latency
/// distributions reflect sustained sharing rather than a tail where
/// the winners already left. Same `depth - 1 <= max_queue` contract as
/// [`pipelined`].
pub fn closed_loop_timed(
    handles: &[&TenantHandle],
    duration: std::time::Duration,
    depth: usize,
    base_seed: u64,
) -> Vec<GraphOutcome> {
    assert!(depth >= 1, "pipeline depth must be at least 1");
    let deadline = std::time::Instant::now() + duration;
    let mut out = Vec::new();
    std::thread::scope(|scope| {
        let joins: Vec<_> = handles
            .iter()
            .map(|h| {
                scope.spawn(move || {
                    let seed = tenant_seed(base_seed, h.tenant());
                    let submit = || match h.submit(seed) {
                        Submission::Admitted(t) | Submission::Queued(t) => t,
                        Submission::Shed { tenant, .. } => unreachable!(
                            "timed-loop shed: tenant {tenant} \
                             (depth exceeds the server's queue bound?)"
                        ),
                    };
                    let mut inflight: std::collections::VecDeque<_> =
                        (0..depth).map(|_| submit()).collect();
                    let mut mine = Vec::new();
                    while let Some(t) = inflight.pop_front() {
                        mine.push(t.wait());
                        if std::time::Instant::now() < deadline {
                            inflight.push_back(submit());
                        }
                    }
                    mine
                })
            })
            .collect();
        for j in joins {
            out.extend(j.join().expect("driver thread"));
        }
    });
    out
}

/// Open-loop burst: submit `graphs` executions back-to-back without
/// waiting, then wait for everything that was accepted. Returns the
/// accepted outcomes and the number of submissions that were shed by
/// admission control.
pub fn burst(handle: &TenantHandle, graphs: usize, seed: u64) -> (Vec<GraphOutcome>, u64) {
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for _ in 0..graphs {
        match handle.submit(seed) {
            Submission::Admitted(t) | Submission::Queued(t) => tickets.push(t),
            Submission::Shed { .. } => shed += 1,
        }
    }
    (tickets.iter().map(|t| t.wait()).collect(), shed)
}

/// Warm a tenant up: run `graphs` solo submit→wait cycles so its
/// admission plan (and DRAM residency) reflects a running tenant
/// before other tenants join.
pub fn warmup(handle: &TenantHandle, graphs: usize, base_seed: u64) -> Vec<GraphOutcome> {
    let seed = tenant_seed(base_seed, handle.tenant());
    (0..graphs)
        .map(|_| {
            handle
                .submit(seed)
                .ticket()
                .expect("warmup never sheds: tenant is idle")
                .wait()
        })
        .collect()
}
