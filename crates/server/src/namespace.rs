//! Per-tenant object namespaces over the shared memory system.
//!
//! Every tenant describes its graph against its *own* dense object ids
//! (`ObjectId(0..n)` indexing its `App::objects`); the server maps
//! those to globally unique [`tahoe_hms::ObjectId`]s at registration.
//! Isolation is enforced *at admission time*: a graph that references
//! an object index outside the tenant's declared set — the only way a
//! tenant could name another tenant's memory, since the global ids are
//! never exposed — is rejected with [`AdmitError::ForeignObject`]
//! before anything is allocated or scheduled. Nothing about a buggy or
//! malicious tenant graph can reach the runtime data path.

use std::collections::HashMap;
use std::fmt;

use tahoe_core::app::App;
use tahoe_hms::ObjectId;

/// Why a tenant registration or submission was refused at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// A task references an object index the tenant never declared —
    /// in a multi-tenant server that is an attempted cross-tenant
    /// reference, rejected before allocation or scheduling.
    ForeignObject {
        /// Offending tenant.
        tenant: u32,
        /// Task whose access list names the foreign object.
        task: u32,
        /// The undeclared object index.
        object: u32,
        /// How many objects the tenant actually declared.
        owned: usize,
    },
    /// The task graph failed structural validation (e.g. a dependence
    /// cycle).
    InvalidGraph {
        /// Offending tenant.
        tenant: u32,
        /// Validator message.
        detail: String,
    },
    /// Backing allocation failed (NVM capacity exhausted).
    AllocFailed {
        /// Offending tenant.
        tenant: u32,
        /// Object name that failed to allocate.
        object: String,
        /// Allocator message.
        detail: String,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::ForeignObject {
                tenant,
                task,
                object,
                owned,
            } => write!(
                f,
                "tenant {tenant}: task {task} references object {object} \
                 outside the tenant's namespace ({owned} objects declared); \
                 rejected at admission"
            ),
            AdmitError::InvalidGraph { tenant, detail } => {
                write!(f, "tenant {tenant}: invalid task graph: {detail}")
            }
            AdmitError::AllocFailed {
                tenant,
                object,
                detail,
            } => write!(f, "tenant {tenant}: allocating {object:?} failed: {detail}"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Admission-time validation of a tenant's application against its own
/// namespace: every declared access must target one of the tenant's
/// `owned` object indices, and the graph must be structurally valid.
pub fn validate_app(tenant: u32, app: &App) -> Result<(), AdmitError> {
    let owned = app.objects.len();
    for t in app.graph.tasks() {
        for a in &t.accesses {
            if a.object.index() >= owned {
                return Err(AdmitError::ForeignObject {
                    tenant,
                    task: t.id.0,
                    object: a.object.0,
                    owned,
                });
            }
        }
    }
    app.validate()
        .map_err(|detail| AdmitError::InvalidGraph { tenant, detail })
}

/// Registry of which tenant owns which global object id.
///
/// The shared [`tahoe_hms::Hms`] hands out globally unique ids; this
/// registry pins down the ownership invariant — no global id is ever
/// owned by two tenants — so the data path can assume any id a
/// tenant's dispatch maps to is the tenant's own memory.
#[derive(Debug, Default)]
pub struct Namespace {
    owner: HashMap<u32, u32>,
    per_tenant: Vec<Vec<ObjectId>>,
}

impl Namespace {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record tenant `tenant`'s global ids. Panics if any id is
    /// already owned — that would mean the shared allocator recycled a
    /// live id, which the server never frees.
    pub fn register(&mut self, tenant: u32, ids: &[ObjectId]) {
        for id in ids {
            let prev = self.owner.insert(id.0, tenant);
            assert!(
                prev.is_none(),
                "global object {id:?} already owned by tenant {prev:?}"
            );
        }
        assert_eq!(self.per_tenant.len(), tenant as usize, "dense tenant ids");
        self.per_tenant.push(ids.to_vec());
    }

    /// Who owns a global id, if anyone.
    pub fn owner_of(&self, id: ObjectId) -> Option<u32> {
        self.owner.get(&id.0).copied()
    }

    /// Translate a tenant-local object index to the global id.
    pub fn resolve(&self, tenant: u32, local: usize) -> Option<ObjectId> {
        self.per_tenant
            .get(tenant as usize)
            .and_then(|v| v.get(local))
            .copied()
    }

    /// Number of registered tenants.
    pub fn tenants(&self) -> usize {
        self.per_tenant.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_core::app::AppBuilder;
    use tahoe_hms::AccessProfile;
    use tahoe_taskrt::{AccessMode, TaskAccess, TaskGraph};

    #[test]
    fn valid_app_passes() {
        let mut b = AppBuilder::new("ok");
        let x = b.object("x", 4096);
        let c = b.class("s");
        b.task(c).read_streaming(x, 8).submit();
        validate_app(0, &b.build()).expect("valid app");
    }

    #[test]
    fn foreign_object_reference_is_rejected() {
        // Bypass the builder (which validates) to model a malicious or
        // buggy tenant handing over a graph that names object 99 while
        // declaring a single object.
        let mut graph = TaskGraph::new();
        let c = graph.class("evil");
        graph.add_task(
            c,
            vec![TaskAccess::new(
                ObjectId(99),
                AccessMode::Write,
                AccessProfile::streaming(0, 8),
            )],
            0.0,
        );
        let app = App {
            name: "evil".into(),
            objects: vec![tahoe_core::app::ObjectSpec {
                name: "only".into(),
                size: 4096,
                chunkable: false,
                est_refs: None,
            }],
            graph,
        };
        let err = validate_app(3, &app).expect_err("must reject");
        assert_eq!(
            err,
            AdmitError::ForeignObject {
                tenant: 3,
                task: 0,
                object: 99,
                owned: 1,
            }
        );
        assert!(err.to_string().contains("rejected at admission"));
    }

    #[test]
    fn namespace_tracks_ownership_and_resolution() {
        let mut ns = Namespace::new();
        ns.register(0, &[ObjectId(10), ObjectId(11)]);
        ns.register(1, &[ObjectId(12)]);
        assert_eq!(ns.owner_of(ObjectId(10)), Some(0));
        assert_eq!(ns.owner_of(ObjectId(12)), Some(1));
        assert_eq!(ns.owner_of(ObjectId(13)), None);
        assert_eq!(ns.resolve(0, 1), Some(ObjectId(11)));
        assert_eq!(ns.resolve(1, 0), Some(ObjectId(12)));
        assert_eq!(ns.resolve(1, 1), None);
        assert_eq!(ns.tenants(), 2);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn double_ownership_panics() {
        let mut ns = Namespace::new();
        ns.register(0, &[ObjectId(10)]);
        ns.register(1, &[ObjectId(10)]);
    }
}
