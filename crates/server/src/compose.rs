//! Composing tenant apps into one interleaved application.
//!
//! The access sanitizer's schedule fuzz checks *single* task graphs;
//! [`interleave`] builds the multi-tenant analogue as one app: the
//! parts' objects are renamed into disjoint namespaces and their
//! windows are zipped together, so tasks of different tenants share
//! windows (and therefore workers) while never sharing objects. Any
//! cross-tenant race the shared pool could expose — a window barrier
//! leaking across jobs, a dependence miscounted between interleaved
//! tasks — becomes an ordinary sanitizer violation on the composed
//! graph.
//!
//! Only access-derived dependences are replayed; explicit
//! [`AppBuilder::dep`](tahoe_core::app::AppBuilder) edges (which no
//! bundled workload uses) are not preserved.

use tahoe_core::app::{App, AppBuilder, ObjectSpec};
use tahoe_hms::ObjectId;

/// Merge `parts` into one app: objects prefixed and kept disjoint,
/// same-index windows executed together. Panics if `parts` is empty.
pub fn interleave(parts: &[(&App, &str)]) -> App {
    assert!(!parts.is_empty(), "interleave needs at least one app");
    let mut b = AppBuilder::new("interleaved");
    let obj_maps: Vec<Vec<ObjectId>> = parts
        .iter()
        .map(|(app, prefix)| {
            app.objects
                .iter()
                .map(|o| {
                    b.object_spec(ObjectSpec {
                        name: format!("{prefix}.{}", o.name),
                        size: o.size,
                        chunkable: o.chunkable,
                        est_refs: o.est_refs,
                    })
                })
                .collect()
        })
        .collect();
    let max_windows = parts.iter().map(|(a, _)| a.windows()).max().unwrap_or(1);
    for w in 0..max_windows {
        if w > 0 {
            b.next_window();
        }
        for (pi, (app, prefix)) in parts.iter().enumerate() {
            if w >= app.windows() {
                continue;
            }
            for tid in app.graph.window_tasks(w) {
                let task = app.graph.task(tid);
                let class = b.class(&format!("{prefix}.{}", app.graph.class_name(task.class)));
                let mut tb = b.task(class).compute_ns(task.compute_ns);
                for a in &task.accesses {
                    tb = tb.access(obj_maps[pi][a.object.index()], a.mode, a.profile);
                }
                tb.submit();
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_core::app::AppBuilder;

    fn tiny(name: &str, objects: u32, windows: u32) -> App {
        let mut b = AppBuilder::new(name);
        let ids: Vec<ObjectId> = (0..objects)
            .map(|i| b.object(&format!("o{i}"), 4096))
            .collect();
        let c = b.class("step");
        for w in 0..windows {
            if w > 0 {
                b.next_window();
            }
            for id in &ids {
                b.task(c).update_streaming(*id, 16).submit();
            }
        }
        b.build()
    }

    #[test]
    fn objects_are_disjoint_and_prefixed() {
        let a = tiny("a", 2, 1);
        let b2 = tiny("b", 3, 1);
        let merged = interleave(&[(&a, "t0"), (&b2, "t1")]);
        assert_eq!(merged.objects.len(), 5);
        assert_eq!(merged.objects[0].name, "t0.o0");
        assert_eq!(merged.objects[2].name, "t1.o0");
        merged.validate().expect("valid composition");
    }

    #[test]
    fn windows_zip_and_task_counts_add() {
        let a = tiny("a", 2, 3);
        let b2 = tiny("b", 1, 2);
        let merged = interleave(&[(&a, "t0"), (&b2, "t1")]);
        assert_eq!(merged.windows(), 3);
        // Window 0 and 1 hold both parts' tasks; window 2 only part a.
        assert_eq!(merged.graph.window_tasks(0).len(), 3);
        assert_eq!(merged.graph.window_tasks(1).len(), 3);
        assert_eq!(merged.graph.window_tasks(2).len(), 2);
        assert_eq!(merged.graph.len(), 8);
    }

    #[test]
    fn cross_part_tasks_share_no_objects() {
        let a = tiny("a", 2, 2);
        let b2 = tiny("b", 2, 2);
        let merged = interleave(&[(&a, "t0"), (&b2, "t1")]);
        // Part boundaries: objects 0..2 belong to t0, 2..4 to t1. Every
        // task must stay inside one side.
        for t in merged.graph.tasks() {
            let sides: Vec<bool> = t
                .accesses
                .iter()
                .map(|acc| acc.object.index() >= 2)
                .collect();
            assert!(
                sides.iter().all(|&s| s == sides[0]),
                "task {:?} straddles tenants",
                t.id
            );
        }
    }
}
