//! The live telemetry plane: observe a running server, not just its
//! shutdown report.
//!
//! Two pieces:
//!
//! * [`BlameBoard`] — a rolling per-(object, destination-tier) blame
//!   table fed by the migration engine's commit observer
//!   ([`tahoe_realmem::MigrationObserver`]). Every committed copy's
//!   overlapped/exposed split lands here the moment it commits, so the
//!   worst stall-causing objects are visible *while* tenants run.
//! * [`TahoeServer::serve_telemetry`] — a `std::net::TcpListener`
//!   text-exposition endpoint (Prometheus style, zero dependencies):
//!   `GET /metrics` returns per-tenant counters, quota state, latency
//!   digests and the blame top-K. On the idle counters the exposition
//!   is bit-identical to what [`ServerReport`](crate::ServerReport)
//!   will snapshot at shutdown. Optionally the serving thread also
//!   journals one `telemetry_json`
//!   snapshot line to a JSONL file on a fixed period, giving
//!   after-the-fact runs a time series without a scraper.
//!
//! The endpoint speaks just enough HTTP/1.0 for `curl`, Prometheus and
//! a bare `TcpStream` to read it: request line parsed for the path,
//! headers ignored, `Connection: close` on every response.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tahoe_hms::{MigrationRecord, TierKind};

use crate::server::{ServerShared, TahoeServer};

/// Blame accumulated against one (object, destination tier) pair on the
/// live board. Mirrors `tahoe_obs::BlameEntry`'s copy-accounting fields
/// (the gate-wait attribution needs the full event stream and stays a
/// drain-time product).
#[derive(Debug, Clone, PartialEq)]
pub struct BlameLine {
    /// Global HMS object id.
    pub object: u32,
    /// Destination tier tag, `"dram"` or `"nvm"`.
    pub tier_tag: &'static str,
    /// Committed migrations of this object into this tier.
    pub migrations: u64,
    /// Bytes those migrations moved.
    pub bytes: u64,
    /// Copy time hidden behind compute, ns.
    pub overlapped_ns: f64,
    /// Copy time paid as exposed stalls, ns.
    pub exposed_ns: f64,
}

/// Rolling blame table fed from the migration engine's commit observer.
///
/// `record` runs on the engine thread per committed copy (one mutex
/// acquisition, one map update); readers snapshot through
/// [`top_k`](BlameBoard::top_k).
#[derive(Debug, Default)]
pub struct BlameBoard {
    cells: Mutex<std::collections::BTreeMap<(u32, u8), BlameLine>>,
}

impl BlameBoard {
    /// An empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one committed migration record into the board.
    pub fn record(&self, rec: &MigrationRecord) {
        let (tier, tag): (u8, &'static str) = match rec.to {
            TierKind::Dram => (0, "dram"),
            TierKind::Nvm => (1, "nvm"),
        };
        let mut cells = self.cells.lock().expect("blame board");
        let line = cells
            .entry((rec.object.0, tier))
            .or_insert_with(|| BlameLine {
                object: rec.object.0,
                tier_tag: tag,
                migrations: 0,
                bytes: 0,
                overlapped_ns: 0.0,
                exposed_ns: 0.0,
            });
        line.migrations += 1;
        line.bytes += rec.bytes;
        line.overlapped_ns += rec.overlapped_ns();
        line.exposed_ns += rec.exposed_ns();
    }

    /// The `k` worst lines by exposed stall time (object id, then tier,
    /// breaks ties — deterministic output for identical histories).
    pub fn top_k(&self, k: usize) -> Vec<BlameLine> {
        let cells = self.cells.lock().expect("blame board");
        let mut lines: Vec<BlameLine> = cells.values().cloned().collect();
        lines.sort_by(|a, b| {
            b.exposed_ns
                .total_cmp(&a.exposed_ns)
                .then(a.object.cmp(&b.object))
                .then(a.tier_tag.cmp(b.tier_tag))
        });
        lines.truncate(k);
        lines
    }

    /// Total committed migrations the board has seen.
    pub fn migrations(&self) -> u64 {
        let cells = self.cells.lock().expect("blame board");
        cells.values().map(|l| l.migrations).sum()
    }
}

/// Telemetry endpoint configuration.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Bind address. The default `127.0.0.1:0` asks the OS for a free
    /// loopback port; read the actual one from
    /// [`TelemetryHandle::addr`].
    pub addr: String,
    /// When set, append one `telemetry_json` snapshot line to this
    /// JSONL file every `journal_every` (plus a final line at stop).
    pub journal: Option<PathBuf>,
    /// Journal snapshot period.
    pub journal_every: Duration,
    /// Blame entries exposed per scrape/snapshot.
    pub blame_top_k: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            addr: "127.0.0.1:0".to_string(),
            journal: None,
            journal_every: Duration::from_millis(100),
            blame_top_k: 10,
        }
    }
}

/// Handle to a running telemetry endpoint. Stop it explicitly with
/// [`stop`](TelemetryHandle::stop); dropping without stopping leaves
/// the serving thread running until the process exits (it holds only an
/// `Arc` on the server state, never a lock across accepts).
pub struct TelemetryHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl TelemetryHandle {
    /// The address the endpoint actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the serving thread and join it. Idempotent-safe: the
    /// handle is consumed.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl TahoeServer {
    /// Start the live telemetry endpoint: bind `cfg.addr`, serve
    /// `GET /metrics` text exposition (404 elsewhere), and — when
    /// `cfg.journal` is set — append periodic JSONL snapshots. Returns
    /// the handle with the bound address; call
    /// [`TelemetryHandle::stop`] before or after
    /// [`shutdown`](TahoeServer::shutdown) (the plane reads shared
    /// state and does not pin the server's lifetime).
    pub fn serve_telemetry(&self, cfg: TelemetryConfig) -> std::io::Result<TelemetryHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let sh = Arc::clone(&self.sh);
        let join = std::thread::Builder::new()
            .name("tahoe-telemetry".into())
            .spawn(move || serve(sh, listener, cfg, flag))?;
        Ok(TelemetryHandle {
            addr,
            stop,
            join: Some(join),
        })
    }
}

fn serve(
    sh: Arc<ServerShared>,
    listener: TcpListener,
    cfg: TelemetryConfig,
    stop: Arc<AtomicBool>,
) {
    let mut journal = cfg.journal.as_ref().and_then(|p| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(p)
            .ok()
    });
    let mut last_snapshot = Instant::now();
    // First snapshot immediately: short-lived runs get at least one line.
    if let Some(j) = &mut journal {
        let _ = writeln!(j, "{}", sh.telemetry_json(cfg.blame_top_k));
    }
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => handle_conn(&sh, stream, cfg.blame_top_k),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
        if journal.is_some() && last_snapshot.elapsed() >= cfg.journal_every {
            last_snapshot = Instant::now();
            if let Some(j) = &mut journal {
                let _ = writeln!(j, "{}", sh.telemetry_json(cfg.blame_top_k));
            }
        }
    }
    // Final snapshot so the journal's last line reflects the end state.
    if let Some(j) = &mut journal {
        let _ = writeln!(j, "{}", sh.telemetry_json(cfg.blame_top_k));
        let _ = j.flush();
    }
}

/// Serve one connection: parse the request line just enough to get the
/// path, answer `/metrics` with the exposition, 404 anything else.
fn handle_conn(sh: &Arc<ServerShared>, mut stream: TcpStream, blame_top_k: usize) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 2048];
    let mut used = 0usize;
    // Read until the end of the request head (or the buffer fills —
    // longer requests cannot change the answer).
    while used < buf.len() {
        match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(n) => {
                used += n;
                if buf[..used].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..used]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        ("200 OK", sh.telemetry_text(blame_top_k))
    } else {
        ("404 Not Found", "not found; try /metrics\n".to_string())
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::ObjectId;

    fn rec(
        object: u32,
        bytes: u64,
        to: TierKind,
        start: f64,
        finish: f64,
        needed: f64,
    ) -> MigrationRecord {
        MigrationRecord {
            object: ObjectId(object),
            bytes,
            from: match to {
                TierKind::Dram => TierKind::Nvm,
                TierKind::Nvm => TierKind::Dram,
            },
            to,
            issued_at: start,
            start,
            finish,
            needed_at: Some(needed),
        }
    }

    #[test]
    fn board_accumulates_and_ranks_by_exposed() {
        let b = BlameBoard::new();
        // Object 1: needed at 50 of [0,100] -> 50 overlapped, 50 exposed.
        b.record(&rec(1, 10, TierKind::Dram, 0.0, 100.0, 50.0));
        // Object 2: needed at 10 of [0,100] -> 10 overlapped, 90 exposed.
        b.record(&rec(2, 20, TierKind::Dram, 0.0, 100.0, 10.0));
        // Object 1 again, demotion direction: separate line.
        b.record(&rec(1, 10, TierKind::Nvm, 0.0, 30.0, 100.0));
        let top = b.top_k(10);
        assert_eq!(top.len(), 3);
        assert_eq!((top[0].object, top[0].tier_tag), (2, "dram"));
        assert!((top[0].exposed_ns - 90.0).abs() < 1e-9);
        assert_eq!(b.migrations(), 3);
        assert_eq!(b.top_k(1).len(), 1);
        // needed_at after finish: fully overlapped demotion.
        let demo = top.iter().find(|l| l.tier_tag == "nvm").unwrap();
        assert_eq!(demo.exposed_ns, 0.0);
    }
}
