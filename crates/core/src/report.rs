//! Run reports: what one policy run measured.

use tahoe_hms::{MigrationStats, Ns, WearStats};
use tahoe_obs::MetricsSnapshot;
use tahoe_placement::PlanKind;

use crate::overhead::OverheadLedger;

/// Everything measured during one policy run of one application.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Policy display name.
    pub policy: String,
    /// Completion time (virtual ns).
    pub makespan_ns: Ns,
    /// Worker utilization in `[0, 1]`.
    pub utilization: f64,
    /// Total task dispatch stalls (exposed migration cost), ns.
    pub stall_ns: Ns,
    /// Migration statistics (count, bytes, overlap).
    pub migrations: MigrationStats,
    /// Runtime overhead charged (profiling, sync, planning).
    pub overhead: OverheadLedger,
    /// Which plan kind won (Tahoe only).
    pub plan_kind: Option<PlanKind>,
    /// Number of re-profiling events triggered by workload variation.
    pub replans: u32,
    /// Promotions that failed (destination full/fragmented) and were
    /// skipped.
    pub failed_promotions: u32,
    /// Number of tasks executed.
    pub tasks: u64,
    /// Number of execution windows.
    pub windows: u32,
    /// Objects resident in DRAM at the end of the run.
    pub final_dram_objects: usize,
    /// Write-endurance tally (NVM lifetime proxy).
    pub wear: WearStats,
    /// Metrics snapshot: counters/gauges/series recorded by every layer
    /// during the run. Empty unless the run was observed
    /// ([`crate::Runtime::run_observed`]).
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// This run's slowdown relative to a baseline makespan (1.0 = equal).
    pub fn slowdown_vs(&self, baseline_makespan_ns: Ns) -> f64 {
        if baseline_makespan_ns <= 0.0 {
            f64::NAN
        } else {
            self.makespan_ns / baseline_makespan_ns
        }
    }

    /// Percentage of migration time overlapped with execution.
    pub fn pct_overlap(&self) -> f64 {
        self.migrations.pct_overlap()
    }

    /// Runtime overhead as % of makespan.
    pub fn overhead_pct(&self) -> f64 {
        self.overhead.pct_of(self.makespan_ns)
    }

    /// Fraction of application store traffic shielded from NVM.
    pub fn write_shielding(&self) -> f64 {
        self.wear.write_shielding()
    }

    /// How much of the NVM↔DRAM gap this run recovered:
    /// `(nvm − this) / (nvm − dram)`, in `[−∞, 1]`; 1.0 means DRAM-equal.
    pub fn gap_recovery(&self, dram_only_ns: Ns, nvm_only_ns: Ns) -> f64 {
        let gap = nvm_only_ns - dram_only_ns;
        if gap <= 0.0 {
            return 1.0;
        }
        (nvm_only_ns - self.makespan_ns) / gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(makespan: f64) -> RunReport {
        RunReport {
            app: "x".into(),
            policy: "p".into(),
            makespan_ns: makespan,
            utilization: 0.5,
            stall_ns: 0.0,
            migrations: MigrationStats::default(),
            overhead: OverheadLedger::default(),
            plan_kind: None,
            replans: 0,
            failed_promotions: 0,
            tasks: 1,
            windows: 1,
            final_dram_objects: 0,
            wear: WearStats::default(),
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn slowdown_and_recovery() {
        let r = report(120.0);
        assert!((r.slowdown_vs(100.0) - 1.2).abs() < 1e-12);
        // dram 100, nvm 200: at 120 we recovered 80% of the gap.
        assert!((r.gap_recovery(100.0, 200.0) - 0.8).abs() < 1e-12);
        // Degenerate gap.
        assert_eq!(report(100.0).gap_recovery(100.0, 100.0), 1.0);
    }
}
