//! Application description: data objects plus a data-annotated task graph.
//!
//! This mirrors the programming interface of the paper's runtime: data
//! objects are registered through a `malloc`-style call before the main
//! loop, tasks declare their accesses (the task-parallel analogue of the
//! paper's phase/data-object annotations), and iteration boundaries are
//! marked so the runtime can plan per window.

use tahoe_hms::{AccessProfile, Ns, ObjectId};
use tahoe_taskrt::{AccessMode, TaskAccess, TaskClassId, TaskGraph, TaskId};

/// Specification of one target data object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSpec {
    /// Name for reports.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Whether the object is a flat, regularly accessed array that the
    /// chunking optimization may decompose (the paper only chunks such
    /// objects).
    pub chunkable: bool,
    /// Compiler-estimated number of memory references (the paper's
    /// symbolic-formula analysis), used by the initial-placement
    /// heuristic. `None` when the analysis cannot see the count.
    pub est_refs: Option<f64>,
}

/// A complete application: objects + task graph.
#[derive(Debug)]
pub struct App {
    /// Application name (reports, harness tables).
    pub name: String,
    /// Data objects; `ObjectId(i)` in the graph refers to `objects[i]`.
    pub objects: Vec<ObjectSpec>,
    /// The task graph with derived dependences and window marks.
    pub graph: TaskGraph,
}

impl App {
    /// Total bytes of all data objects.
    pub fn footprint(&self) -> u64 {
        self.objects.iter().map(|o| o.size).sum()
    }

    /// Number of execution windows.
    pub fn windows(&self) -> u32 {
        self.graph.window_count()
    }

    /// Sanity-check that every task references declared objects.
    pub fn validate(&self) -> Result<(), String> {
        for t in self.graph.tasks() {
            for a in &t.accesses {
                if a.object.index() >= self.objects.len() {
                    return Err(format!("{:?} references undeclared {:?}", t.id, a.object));
                }
            }
        }
        self.graph
            .verify_acyclic()
            .map_err(|(a, b)| format!("cycle via {a:?} -> {b:?}"))
    }
}

/// Builder for [`App`].
#[derive(Debug)]
pub struct AppBuilder {
    name: String,
    objects: Vec<ObjectSpec>,
    graph: TaskGraph,
}

impl AppBuilder {
    /// Start building an application.
    pub fn new(name: &str) -> Self {
        AppBuilder {
            name: name.to_string(),
            objects: Vec::new(),
            graph: TaskGraph::new(),
        }
    }

    /// Register a data object (defaults: not chunkable, no compiler
    /// estimate).
    pub fn object(&mut self, name: &str, size: u64) -> ObjectId {
        self.object_spec(ObjectSpec {
            name: name.to_string(),
            size,
            chunkable: false,
            est_refs: None,
        })
    }

    /// Register a chunkable (flat-array) data object.
    pub fn object_chunkable(&mut self, name: &str, size: u64) -> ObjectId {
        self.object_spec(ObjectSpec {
            name: name.to_string(),
            size,
            chunkable: true,
            est_refs: None,
        })
    }

    /// Register an object with a full spec.
    pub fn object_spec(&mut self, spec: ObjectSpec) -> ObjectId {
        assert!(spec.size > 0, "objects must have nonzero size");
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(spec);
        id
    }

    /// Set the compiler reference estimate of an existing object.
    pub fn set_est_refs(&mut self, id: ObjectId, refs: f64) {
        self.objects[id.index()].est_refs = Some(refs);
    }

    /// Intern a task class.
    pub fn class(&mut self, name: &str) -> TaskClassId {
        self.graph.class(name)
    }

    /// Begin describing a task of `class`.
    pub fn task(&mut self, class: TaskClassId) -> TaskBuilder<'_> {
        TaskBuilder {
            app: self,
            class,
            accesses: Vec::new(),
            compute_ns: 0.0,
        }
    }

    /// Close the current window (iteration boundary).
    pub fn next_window(&mut self) {
        self.graph.mark_window();
    }

    /// Add an explicit dependence (barrier-style).
    pub fn dep(&mut self, from: TaskId, to: TaskId) {
        self.graph.add_dep(from, to);
    }

    /// Finish building; validates the application.
    pub fn build(self) -> App {
        let app = App {
            name: self.name,
            objects: self.objects,
            graph: self.graph,
        };
        app.validate().expect("invalid application");
        app
    }
}

/// Fluent description of one task.
#[derive(Debug)]
pub struct TaskBuilder<'a> {
    app: &'a mut AppBuilder,
    class: TaskClassId,
    accesses: Vec<TaskAccess>,
    compute_ns: Ns,
}

impl TaskBuilder<'_> {
    /// Declare an access with an explicit profile.
    pub fn access(mut self, object: ObjectId, mode: AccessMode, profile: AccessProfile) -> Self {
        self.accesses.push(TaskAccess::new(object, mode, profile));
        self
    }

    /// Streaming read of `lines` cache lines.
    pub fn read_streaming(self, object: ObjectId, lines: u64) -> Self {
        self.access(object, AccessMode::Read, AccessProfile::streaming(lines, 0))
    }

    /// Streaming write of `lines` cache lines.
    pub fn write_streaming(self, object: ObjectId, lines: u64) -> Self {
        self.access(
            object,
            AccessMode::Write,
            AccessProfile::streaming(0, lines),
        )
    }

    /// Streaming update (read-modify-write) touching `lines` lines each
    /// way.
    pub fn update_streaming(self, object: ObjectId, lines: u64) -> Self {
        self.access(
            object,
            AccessMode::ReadWrite,
            AccessProfile::streaming(lines, lines),
        )
    }

    /// Dependent-chain read of `lines` lines (pointer chasing).
    pub fn read_chasing(self, object: ObjectId, lines: u64) -> Self {
        self.access(
            object,
            AccessMode::Read,
            AccessProfile::pointer_chase(lines),
        )
    }

    /// Pure compute time in nanoseconds.
    pub fn compute_ns(mut self, ns: Ns) -> Self {
        self.compute_ns = ns;
        self
    }

    /// Pure compute time in microseconds.
    pub fn compute_us(self, us: f64) -> Self {
        self.compute_ns(us * 1e3)
    }

    /// Submit the task to the graph; returns its id.
    pub fn submit(self) -> TaskId {
        self.app
            .graph
            .add_task(self.class, self.accesses, self.compute_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_object_ids() {
        let mut b = AppBuilder::new("t");
        let a = b.object("a", 10);
        let c = b.object("b", 20);
        assert_eq!(a, ObjectId(0));
        assert_eq!(c, ObjectId(1));
    }

    #[test]
    fn build_small_app() {
        let mut b = AppBuilder::new("t");
        let x = b.object("x", 4096);
        let y = b.object_chunkable("y", 8192);
        let c = b.class("step");
        let t0 = b
            .task(c)
            .read_streaming(x, 64)
            .write_streaming(y, 64)
            .compute_us(1.0)
            .submit();
        b.next_window();
        let t1 = b.task(c).update_streaming(y, 32).submit();
        let app = b.build();
        assert_eq!(app.footprint(), 12288);
        assert_eq!(app.windows(), 2);
        assert_eq!(app.graph.preds(t1), &[t0]);
        assert!(app.objects[y.index()].chunkable);
        assert!(!app.objects[x.index()].chunkable);
        app.validate().unwrap();
    }

    #[test]
    fn est_refs_settable() {
        let mut b = AppBuilder::new("t");
        let x = b.object("x", 4096);
        b.set_est_refs(x, 1.0e6);
        let c = b.class("s");
        b.task(c).read_streaming(x, 1).submit();
        let app = b.build();
        assert_eq!(app.objects[0].est_refs, Some(1.0e6));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_object_panics() {
        let mut b = AppBuilder::new("t");
        b.object("bad", 0);
    }

    #[test]
    fn chasing_access_has_unit_mlp() {
        let mut b = AppBuilder::new("t");
        let x = b.object("x", 4096);
        let c = b.class("s");
        b.task(c).read_chasing(x, 100).submit();
        let app = b.build();
        let acc = &app.graph.task(TaskId(0)).accesses[0];
        assert_eq!(acc.profile.mlp, 1.0);
        assert_eq!(acc.profile.loads, 100);
    }
}
