//! Parallel measured mode: work-stealing execution with overlapped
//! background migration.
//!
//! The sequential measured path ([`crate::measured`]) proves the
//! policies move real bytes; this module proves the *runtime shape* of
//! the paper: tasks execute on a pool of work-stealing workers
//! ([`tahoe_taskrt::wsexec`]) while a dedicated migration thread
//! ([`tahoe_realmem::BackgroundMigrator`]) drains the proactive plan's
//! copy queue concurrently — the paper's computation/data-movement
//! overlap, measured in wall-clock time.
//!
//! **Determinism of results, not schedules.** Worker interleavings vary
//! run to run, but the final answer cannot: the task graph's derived
//! dependences order every pair of conflicting accesses, the traffic
//! kernels are pure functions of buffer contents and seed, and
//! migrations are byte-preserving copies fenced against concurrent
//! access (pin ↔ mid-move discipline in [`tahoe_hms::SharedHms`]). Each
//! access's checksum lands in a dedicated slot, and the slots are
//! re-folded in the canonical order of
//! [`reference_checksum_seeded`](crate::measured::reference_checksum_seeded)
//! — so a parallel run at any worker count must match the sequential
//! heap-buffer reference bit for bit.
//!
//! **Overlap accounting.** Every committed migration carries wall-clock
//! `issued_at`/`start`/`finish` stamps plus `needed_at` — the first
//! moment a worker actually blocked on the moving object (stamped by the
//! executor's data gate). Copy time before `needed_at` was hidden behind
//! execution; time after it was exposed. The aggregated
//! [`MigrationStats::pct_overlap`] is the number the paper's Tahoe
//! design lives or dies by.
//!
//! # Example: a parallel measured run
//!
//! A synthetic calibration (no kernel measurement) keeps the example
//! fast and hardware-independent; real runs get one from
//! [`MeasuredRuntime::calibrate`].
//!
//! ```
//! use tahoe_core::app::AppBuilder;
//! use tahoe_core::config::Platform;
//! use tahoe_core::measured::{reference_checksum_seeded, MeasuredRuntime};
//! use tahoe_core::policy::PolicyKind;
//! use tahoe_hms::TierSpec;
//! use tahoe_memprof::wallclock::{MeasuredTier, WallClockCalibration, WallClockConfig};
//!
//! // Two tasks ping-ponging two 8 KiB objects (a real dependence chain).
//! let mut b = AppBuilder::new("doc");
//! let x = b.object("x", 8 << 10);
//! let y = b.object("y", 8 << 10);
//! let c = b.class("copy");
//! b.task(c).read_streaming(x, 64).write_streaming(y, 64).submit();
//! b.task(c).read_streaming(y, 64).write_streaming(x, 64).submit();
//! let app = b.build();
//!
//! let cal = WallClockCalibration {
//!     dram: TierSpec::symmetric("dram", 100.0, 10.0, 1 << 22),
//!     nvm: TierSpec::symmetric("nvm", 300.0, 3.0, 1 << 24),
//!     cf_bw: 1.0,
//!     cf_lat: 1.0,
//!     measured: MeasuredTier {
//!         stream_bw_gbps: 10.0,
//!         chase_lat_ns: 100.0,
//!         stream_wall_ns: 1000.0,
//!         chase_wall_ns: 1000.0,
//!     },
//! };
//! let rt = MeasuredRuntime::new(Platform::optane(1 << 22, 1 << 24), WallClockConfig::smoke());
//! let report = rt
//!     .run_policy_parallel(&app, &PolicyKind::DramOnly, &cal, 2, 0)
//!     .unwrap();
//! // Two workers, real threads — and still bit-identical to the
//! // sequential heap-buffer reference.
//! assert_eq!(report.checksum, reference_checksum_seeded(&app, 0));
//! assert_eq!(report.workers, 2);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tahoe_hms::{MigrationStats, ObjectId, SharedHms, TierKind};
use tahoe_memprof::wallclock::WallClockCalibration;
use tahoe_obs::{BlameTable, CritPath, CritPathDigest, Emitter, Event, FlightRecorder, WhatIf};
use tahoe_realmem::{traffic, BackgroundMigrator};
use tahoe_sanitize::{AccessSanitizer, ExtraAccess, NoSanitize, SanitizeHook, SanitizeReport};
use tahoe_taskrt::{DataGate, TaskSpec, WsExecutor};

use crate::app::App;
use crate::measured::{cf, fold, init_seed, site_seed, MeasuredRuntime, PreparedRun};
use crate::policy::PolicyKind;

/// Flight-recorder ring capacity per lane. At one event plus up to a
/// few histogram samples per task, 16 Ki slots absorb any smoke-sized
/// window without drops; overflow is counted, not blocking.
const RING_CAPACITY: usize = 1 << 14;

/// Histogram keys the parallel runtime records (per worker lane, merged
/// at drain): task wall time, migration-gate waits, steal-search time,
/// and background-copy chunk time.
const HIST_KEYS: &[&str] = &["gate_wait_ns", "mig_chunk_ns", "steal_ns", "task_ns"];

/// Per-(object, tier) wall-clock access timing, accumulated by the
/// workers during a parallel measured run. The model-accuracy audit
/// compares `mean_nvm_ns - mean_dram_ns` (measured per-access saving of
/// DRAM residence) against the planner's prediction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessTierTiming {
    /// Total wall ns of accesses that hit the object on DRAM.
    pub dram_ns: f64,
    /// Number of those accesses.
    pub dram_samples: u64,
    /// Total wall ns of accesses that hit the object on NVM (includes
    /// the injected Quartz-style delay).
    pub nvm_ns: f64,
    /// Number of those accesses.
    pub nvm_samples: u64,
}

impl AccessTierTiming {
    /// Mean wall ns per DRAM access, if any were observed.
    pub fn mean_dram_ns(&self) -> Option<f64> {
        (self.dram_samples > 0).then(|| self.dram_ns / self.dram_samples as f64)
    }

    /// Mean wall ns per NVM access, if any were observed.
    pub fn mean_nvm_ns(&self) -> Option<f64> {
        (self.nvm_samples > 0).then(|| self.nvm_ns / self.nvm_samples as f64)
    }

    /// Measured per-access saving of DRAM over NVM residence, ns —
    /// requires samples on both tiers (Tahoe's promoted objects have
    /// both: NVM during profiling, DRAM after migration).
    pub fn measured_saving_ns(&self) -> Option<f64> {
        Some(self.mean_nvm_ns()? - self.mean_dram_ns()?)
    }
}

/// One policy's parallel measured outcome at a given worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelPolicyReport {
    /// Policy display name.
    pub policy: String,
    /// Worker threads the executor ran.
    pub workers: usize,
    /// Run seed that parameterized the traffic.
    pub run_seed: u64,
    /// Wall-clock time of the execution phase, ns (init + windows;
    /// excludes setup, calibration, and post-run migration drain).
    pub wall_ns: f64,
    /// Bytes of object data walked by the traffic kernels.
    pub bytes_touched: u64,
    /// `bytes_touched / wall_ns` (== GB/s).
    pub throughput_gbps: f64,
    /// Re-fold of every access checksum in canonical (reference) order.
    pub checksum: u64,
    /// Physical inter-tier copies (background + any synchronous).
    pub migrations: u64,
    /// Bytes those copies moved.
    pub migrated_bytes: u64,
    /// Wall-clock ns spent inside the throttled copy engine.
    pub copy_wall_ns: f64,
    /// Wall-clock overlap accounting of the background migrations.
    pub migration: MigrationStats,
    /// Migration requests that were moot (already resident, no space).
    pub migrations_skipped: u64,
    /// Wall-clock ns workers spent blocked waiting for in-flight
    /// migrations (the executor-observed exposed latency).
    pub gate_wait_ns: f64,
    /// Successful work steals between workers.
    pub steals: u64,
    /// Objects resident in DRAM when the run finished.
    pub final_dram_objects: usize,
    /// Per-object wall-clock access timing split by the tier the access
    /// hit (indexed like `app.objects`). Always populated — two relaxed
    /// atomic adds per access.
    pub access_timing: Vec<AccessTierTiming>,
    /// Events dropped because a flight-recorder ring filled (0 when
    /// unobserved or never saturated).
    pub obs_ring_dropped: u64,
    /// Contention counters of the lock-free pin/move state machines
    /// (CAS retries, shard parks/unparks, mid-move waits).
    pub contention: tahoe_hms::ContentionStats,
    /// Causal-profile digest: critical path, exposed-stall blame and
    /// per-object what-if estimates reconstructed from the merged
    /// flight-recorder stream. `None` on unobserved runs (no recorder).
    pub crit: Option<CritPathDigest>,
}

/// Static counter key for a violation-kind tag (the metrics registry
/// stores `&'static str` keys; [`tahoe_sanitize::ViolationKind::tag`]
/// values are the source of truth for the suffixes).
fn violation_counter_key(tag: &str) -> &'static str {
    match tag {
        "dependency_cycle" => "sanitize.violations.dependency_cycle",
        "unordered_conflict" => "sanitize.violations.unordered_conflict",
        "use_after_free" => "sanitize.violations.use_after_free",
        "infeasible_footprint" => "sanitize.violations.infeasible_footprint",
        "dead_declaration" => "sanitize.violations.dead_declaration",
        "undeclared_access" => "sanitize.violations.undeclared_access",
        "write_under_read" => "sanitize.violations.write_under_read",
        "mid_move_access" => "sanitize.violations.mid_move_access",
        "pinned_copy" => "sanitize.violations.pinned_copy",
        "plan_over_capacity" => "sanitize.violations.plan_over_capacity",
        "plan_move_race" => "sanitize.violations.plan_move_race",
        "plan_unknown_tier" => "sanitize.violations.plan_unknown_tier",
        "plan_dead_object" => "sanitize.violations.plan_dead_object",
        "plan_double_move" => "sanitize.violations.plan_double_move",
        "plan_cost_regression" => "sanitize.violations.plan_cost_regression",
        _ => "sanitize.violations.other",
    }
}

/// The executor's data gate over a [`SharedHms`]: a task is
/// data-ready when none of its objects is mid-migration.
struct HmsGate<'a> {
    shared: &'a SharedHms,
    ids: &'a [ObjectId],
}

impl DataGate for HmsGate<'_> {
    fn wait_ready(&self, task: &TaskSpec) -> f64 {
        let ids: Vec<ObjectId> = task.objects().iter().map(|o| self.ids[o.index()]).collect();
        self.shared.wait_ready(&ids)
    }
}

impl MeasuredRuntime {
    /// Execute `app` under `policy` with `workers` work-stealing worker
    /// threads and the background migration engine, on arena-backed
    /// objects with the given calibration.
    ///
    /// The returned checksum must equal
    /// [`reference_checksum_seeded(app, run_seed)`](crate::measured::reference_checksum_seeded)
    /// bit for bit — any worker count, any policy, any schedule.
    pub fn run_policy_parallel(
        &self,
        app: &App,
        policy: &PolicyKind,
        cal: &WallClockCalibration,
        workers: usize,
        run_seed: u64,
    ) -> Result<ParallelPolicyReport, String> {
        // `NoSanitize` has `ENABLED = false`: every hook call below is an
        // empty inlined function behind `if S::ENABLED`, so this path
        // compiles to exactly the pre-sanitizer runtime — no shadow
        // state, no per-access branches on live data.
        self.run_policy_parallel_impl(app, policy, cal, workers, run_seed, &NoSanitize)
    }

    /// Like [`run_policy_parallel`](Self::run_policy_parallel), but with
    /// the dynamic access sanitizer shadowing every memory access.
    ///
    /// Every access a worker performs is checked against the declared
    /// task graph: it must be covered by a declaration on its task, a
    /// `Read` declaration must never store, and the object must not be
    /// mid-migration (the pin discipline makes that impossible unless
    /// the runtime itself is broken — which is exactly what the check
    /// would catch). The migration engine's move-start events are
    /// observed too, flagging any copy that begins while the object has
    /// live pins. `extra` registers accesses the *application claims to
    /// perform beyond its declarations* (committed buggy fixtures use
    /// this); they are checked and fed to the schedule-independent race
    /// scan without touching real memory.
    ///
    /// Returns the normal report plus the [`SanitizeReport`]; violations
    /// are also emitted as `sanitize_violation` events and counted in
    /// `sanitize.violations.*` metrics.
    pub fn run_policy_sanitized(
        &self,
        app: &App,
        policy: &PolicyKind,
        cal: &WallClockCalibration,
        workers: usize,
        run_seed: u64,
        extra: &[ExtraAccess],
    ) -> Result<(ParallelPolicyReport, SanitizeReport), String> {
        let mut san = AccessSanitizer::from_graph(&app.graph);
        for e in extra {
            san.note_extra_access(e);
        }
        let hook = Arc::new(san);
        let report = self.run_policy_parallel_impl(app, policy, cal, workers, run_seed, &hook)?;
        // The move observer's Arc clone died with the SharedHms inside
        // the impl; ours is the last reference.
        let san = Arc::try_unwrap(hook).map_err(|_| "sanitizer still referenced after run")?;
        let sanitize = san.finish();
        for v in &sanitize.violations {
            self.emitter.emit(|| Event::SanitizeViolation {
                t: report.wall_ns,
                kind: v.kind.tag().to_string(),
                task: v.task.unwrap_or(u32::MAX),
                object: v.object.unwrap_or(u32::MAX),
                detail: v.detail.clone(),
            });
        }
        for (tag, n) in sanitize.by_kind() {
            if n > 0 {
                self.metrics.add(violation_counter_key(tag), n);
            }
        }
        self.metrics
            .add("sanitize.accesses_checked", sanitize.accesses_checked);
        Ok((report, sanitize))
    }

    fn run_policy_parallel_impl<S: SanitizeHook>(
        &self,
        app: &App,
        policy: &PolicyKind,
        cal: &WallClockCalibration,
        workers: usize,
        run_seed: u64,
        hook: &S,
    ) -> Result<ParallelPolicyReport, String> {
        // The parallel runtime migrates through the two-tier facade
        // (SharedHms's lock-free words encode DRAM/NVM), so on N-tier
        // platforms it uses the plan's binary projection and ignores
        // the full assignment; the sequential measured path honors it.
        let PreparedRun {
            config,
            hms,
            ids,
            tahoe_plan,
            tahoe_assignment: _,
            copy_cfg,
            plan_values,
        } = self.prepare(app, policy, cal)?;
        let nw = workers.max(1);

        // The flight recorder exists only when someone is listening:
        // lanes 0..nw are the workers, lane nw the migration thread,
        // lane nw+1 the driver (placement decisions). Hot-path emission
        // is then an SPSC ring push — no global lock.
        let recorder = (self.emitter.enabled() || self.metrics.is_enabled())
            .then(|| FlightRecorder::new(nw + 2, RING_CAPACITY, HIST_KEYS));

        // One checksum slot per (task, access) site; workers fill slots
        // in racing order, the end re-folds them canonically.
        let n_tasks = app.graph.len();
        let mut slot_base = vec![0usize; n_tasks];
        let mut n_slots = 0usize;
        for t in app.graph.tasks() {
            slot_base[t.id.index()] = n_slots;
            n_slots += t.accesses.len();
        }
        let slots: Vec<AtomicU64> = (0..n_slots).map(|_| AtomicU64::new(0)).collect();

        let profile_windows = app.windows().saturating_sub(1).min(2);
        let bytes_touched = AtomicU64::new(0);
        // Per-(object, tier) access timing: slot 2i is DRAM, 2i+1 NVM;
        // whole-ns totals plus sample counts, two relaxed adds per
        // access. Always on — the audit needs it on unobserved runs too,
        // and the self-overhead probe charges it to both sides.
        let acc_ns: Vec<AtomicU64> = (0..2 * ids.len()).map(|_| AtomicU64::new(0)).collect();
        let acc_n: Vec<AtomicU64> = (0..2 * ids.len()).map(|_| AtomicU64::new(0)).collect();
        let start = Instant::now();

        // ---- init traffic (sequential, before the pool spins up) -----
        let mut init_sums = Vec::with_capacity(ids.len());
        let mut hms = hms;
        for (i, id) in ids.iter().enumerate() {
            let buf = hms
                .object_bytes(*id)
                .map_err(|e| e.to_string())?
                .ok_or("real backend must expose bytes")?;
            init_sums.push(traffic::init_fill(buf, init_seed(run_seed, i)));
            bytes_touched.fetch_add(buf.len() as u64, Ordering::Relaxed);
        }

        // ---- parallel execution --------------------------------------
        let shared = Arc::new(SharedHms::new(hms));
        // Register before the migrator spawns so no move-start can slip
        // past the sanitizer's pinned-copy check.
        if S::ENABLED {
            if let Some(obs) = hook.move_observer() {
                shared.set_move_observer(obs);
            }
        }
        // With a recorder, the migration thread writes its own lock-free
        // lane (merged into the emitter at drain); the emitter handed to
        // it is disabled so events are never double-reported.
        let migrator = BackgroundMigrator::spawn_traced(
            Arc::clone(&shared),
            copy_cfg,
            if recorder.is_some() {
                Emitter::disabled()
            } else {
                self.emitter.clone()
            },
            recorder.as_ref().map(|r| r.handle(nw)),
        );
        let executor = WsExecutor::new(workers).with_metrics(self.metrics.clone());
        let gate = HmsGate {
            shared: &shared,
            ids: &ids,
        };
        let first_error: Mutex<Option<String>> = Mutex::new(None);
        let mut gate_wait_ns = 0.0;
        let mut steals = 0u64;

        for w in 0..app.windows() {
            // Tahoe hands its plan to the migration thread at the
            // profiling boundary and keeps executing: the copies overlap
            // with this window's (and later windows') tasks.
            if let (Some(plan), true) = (&tahoe_plan, w == profile_windows) {
                // Stamp every decision the planner took — chosen or not
                // — with its predicted benefit; the audit pairs these
                // with measured per-access deltas.
                let t = shared.now_ns();
                for (i, spec) in app.objects.iter().enumerate() {
                    let predicted = plan_values.as_ref().map_or(0.0, |v| v[i]);
                    let chosen = plan.chosen.iter().any(|o| o.index() == i);
                    if !chosen && predicted <= 0.0 {
                        continue;
                    }
                    let ev = Event::PlacementDecision {
                        t,
                        object: i as u32,
                        bytes: spec.size,
                        predicted_benefit_ns: predicted,
                        chosen,
                    };
                    match &recorder {
                        Some(rec) => {
                            let _ = rec.emit(nw + 1, ev);
                        }
                        None => self.emitter.emit(|| ev),
                    }
                }
                for oid in &plan.chosen {
                    migrator.enqueue(ids[oid.index()], TierKind::Dram);
                }
            }
            let stats = executor.run_window_traced(
                &app.graph,
                Some(w),
                &gate,
                recorder.as_ref(),
                |worker, task| {
                    let t0 = Instant::now();
                    let obj_ids: Vec<ObjectId> =
                        task.objects().iter().map(|o| ids[o.index()]).collect();
                    let pins = match shared.pin_for_task(&obj_ids) {
                        Ok(p) => p,
                        Err(e) => {
                            let mut slot = first_error.lock().expect("error slot");
                            slot.get_or_insert_with(|| format!("pin task {}: {e}", task.id.0));
                            return;
                        }
                    };
                    for (ai, access) in task.accesses.iter().enumerate() {
                        let hid = ids[access.object.index()];
                        let pin = pins
                            .objects
                            .iter()
                            .find(|p| p.id == hid)
                            .expect("every access object is pinned");
                        // Quartz-style software NVM emulation, same as the
                        // sequential path: native-speed kernel, then inject
                        // the cf-corrected slow-minus-fast model difference.
                        let inject_ns = if pin.tier == TierKind::Nvm {
                            let slow = access.profile.mem_time_ns(&config.nvm)
                                * cf(cal, &access.profile, &config.nvm);
                            let fast = access.profile.mem_time_ns(&config.dram)
                                * cf(cal, &access.profile, &config.dram);
                            (slow - fast).max(0.0)
                        } else {
                            0.0
                        };
                        if S::ENABLED {
                            hook.on_access(
                                task.id.0,
                                ai,
                                access.object.index() as u32,
                                shared.is_mid_move(hid),
                            );
                        }
                        // SAFETY: the pin blocks moves and frees for the
                        // whole task, the arenas never remap, and writes are
                        // exclusive by the graph's derived dependences (a
                        // writer's task is ordered against every other
                        // toucher of the object).
                        let a_t0 = Instant::now();
                        #[allow(unsafe_code)]
                        let c = unsafe {
                            traffic::run_access_ptr(
                                pin.as_ptr(),
                                pin.len(),
                                access.profile.loads,
                                access.profile.stores,
                                site_seed(run_seed, task.id.0, ai),
                            )
                        };
                        slots[slot_base[task.id.index()] + ai].store(c, Ordering::Release);
                        bytes_touched.fetch_add(pin.len() as u64, Ordering::Relaxed);
                        if inject_ns > 0.0 {
                            tahoe_realmem::throttle::pace_until(Instant::now(), inject_ns);
                        }
                        // Charge the access (kernel + injected delay) to the
                        // tier it actually hit.
                        let slot =
                            2 * access.object.index() + usize::from(pin.tier == TierKind::Nvm);
                        acc_ns[slot].fetch_add(a_t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        acc_n[slot].fetch_add(1, Ordering::Relaxed);
                    }
                    let waited = pins.waited_ns;
                    // RAII unpin: releases every pin even if a kernel
                    // above panicked and we unwound past this point.
                    drop(pins);
                    let t = shared.now_ns();
                    let (task_id, window, wall) =
                        (task.id.0, task.window, t0.elapsed().as_nanos() as f64);
                    match &recorder {
                        Some(rec) => {
                            rec.record(worker, "task_ns", wall);
                            if waited > 0.0 {
                                rec.record(worker, "gate_wait_ns", waited);
                            }
                            let _ = rec.emit(
                                worker,
                                Event::WorkerTask {
                                    t,
                                    // Single-tenant runtime: tenant 0.
                                    tenant: 0,
                                    worker: worker as u32,
                                    task: task_id,
                                    window,
                                    wall_ns: wall,
                                    gate_wait_ns: waited,
                                },
                            );
                        }
                        None => self.emitter.emit(|| Event::WorkerTask {
                            t,
                            tenant: 0,
                            worker: worker as u32,
                            task: task_id,
                            window,
                            wall_ns: wall,
                            gate_wait_ns: waited,
                        }),
                    }
                },
            );
            gate_wait_ns += stats.gate_wait_ns;
            steals += stats.steals;
            if let Some(e) = first_error.lock().expect("error slot").take() {
                migrator.cancel();
                migrator.finish();
                return Err(e);
            }
        }
        // Execution-phase stamp on the event clock (the epoch the
        // recorder's timestamps share), before the post-run drain.
        let exec_wall_ns = shared.now_ns();
        let wall_ns = (start.elapsed().as_nanos() as f64).max(1.0);

        // Close the migration queue; anything still copying completes
        // (with no consumer left to block, it counts as fully hidden).
        let mig = migrator.finish();
        let shared = Arc::try_unwrap(shared).map_err(|_| "migration thread still holds hms")?;
        // How contended were the lock-free paths? Folded into the obs
        // metrics so a scaling regression is diagnosable from artifacts.
        let contention = shared.contention();
        self.metrics
            .add("hms.pin_cas_retries", contention.pin_cas_retries);
        self.metrics.add("hms.parks", contention.parks);
        self.metrics.add("hms.unparks", contention.unparks);
        self.metrics.add("hms.move_waits", contention.move_waits);
        let hms = shared.into_inner();

        // ---- flight-recorder drain -----------------------------------
        // All producers (workers, migrator) have joined; drain the rings
        // into one timestamp-merged stream, append it to the shared
        // emitter, and fold the per-lane histograms into metrics.
        let mut obs_ring_dropped = 0u64;
        let mut crit: Option<CritPathDigest> = None;
        if let Some(rec) = &recorder {
            let cap = rec.drain();
            obs_ring_dropped = cap.total_dropped;
            // Causal profile: reconstruct the critical path and the
            // exposed-stall blame table from the merged stream before
            // it is handed to the emitter. Blame labels objects by HMS
            // id, the model by app index; `prepare` allocates app
            // objects in order into a fresh heap, so the two agree.
            debug_assert!(ids.iter().enumerate().all(|(i, id)| id.0 as usize == i));
            let path = CritPath::from_events(&cap.events);
            let blame = BlameTable::from_events(&cap.events);
            let mut digest = CritPathDigest::new(&path, &blame);
            digest.exec_wall_ns = exec_wall_ns;
            // COZ-style what-if per blamed object: price whole-run DRAM
            // residence with the CF-free model, pair it with the
            // knapsack's prediction, and bound the wall-clock win of an
            // earlier migration by the stall the object exposed.
            let specs = [config.dram.clone(), config.nvm.clone()];
            let base_tiers = vec![1u8; ids.len()];
            let modelled_base = crate::measured::modelled_total_ns(app, &specs, &base_tiers);
            for e in blame.entries.iter().filter(|e| e.exposed_ns > 0.0) {
                let i = e.object as usize;
                if i >= ids.len() {
                    continue;
                }
                let mut tiers = base_tiers.clone();
                tiers[i] = 0;
                let modelled_saving_ns =
                    modelled_base - crate::measured::modelled_total_ns(app, &specs, &tiers);
                let predicted_benefit_ns = plan_values.as_ref().map_or(0.0, |v| v[i]);
                digest.whatif.push(WhatIf {
                    object: e.object,
                    exposed_ns: e.exposed_ns,
                    whatif_wall_ns: (exec_wall_ns - e.exposed_ns).max(0.0),
                    modelled_saving_ns,
                    predicted_benefit_ns,
                    sign_agrees: (modelled_saving_ns > 0.0) == (predicted_benefit_ns > 0.0),
                });
            }
            crit = Some(digest);
            self.emitter.emit_many(cap.events);
            for (key, data) in &cap.hists {
                self.metrics.hist_fold(key, data);
            }
        }
        // Surfaced even when zero, so artifacts can assert "no drops"
        // instead of inferring it from a missing counter key.
        self.metrics.add("obs.ring_dropped", obs_ring_dropped);

        // ---- canonical re-fold ---------------------------------------
        let mut checksum = 0u64;
        for s in &init_sums {
            checksum = fold(checksum, *s);
        }
        for w in 0..app.windows() {
            for tid in app.graph.window_tasks(w) {
                let task = app.graph.task(tid);
                for ai in 0..task.accesses.len() {
                    checksum = fold(
                        checksum,
                        slots[slot_base[tid.index()] + ai].load(Ordering::Acquire),
                    );
                }
            }
        }

        let stats = hms.backend_stats();
        let final_dram_objects = hms.objects_on(TierKind::Dram).len();
        let bytes_touched = bytes_touched.load(Ordering::Relaxed);
        let access_timing: Vec<AccessTierTiming> = (0..ids.len())
            .map(|i| AccessTierTiming {
                dram_ns: acc_ns[2 * i].load(Ordering::Relaxed) as f64,
                dram_samples: acc_n[2 * i].load(Ordering::Relaxed),
                nvm_ns: acc_ns[2 * i + 1].load(Ordering::Relaxed) as f64,
                nvm_samples: acc_n[2 * i + 1].load(Ordering::Relaxed),
            })
            .collect();
        Ok(ParallelPolicyReport {
            policy: policy.name(),
            workers: workers.max(1),
            run_seed,
            wall_ns,
            bytes_touched,
            throughput_gbps: bytes_touched as f64 / wall_ns,
            checksum,
            migrations: stats.copies,
            migrated_bytes: stats.copied_bytes,
            copy_wall_ns: stats.copy_wall_ns,
            migration: mig.stats,
            migrations_skipped: mig.skipped,
            gate_wait_ns,
            steals,
            final_dram_objects,
            access_timing,
            obs_ring_dropped,
            contention,
            crit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;
    use crate::measured::reference_checksum_seeded;
    use tahoe_hms::TierSpec;
    use tahoe_memprof::wallclock::MeasuredTier;

    /// A synthetic calibration (no kernel runs): DRAM at 10 GB/s /
    /// 100 ns, NVM 3× slower, correction factors 1.0. Capacities are
    /// tiny so Tahoe has real pressure; `prepare` inflates NVM to fit.
    fn test_cal(dram_cap: u64, nvm_cap: u64) -> WallClockCalibration {
        let dram = TierSpec::symmetric("dram", 100.0, 10.0, dram_cap);
        let nvm = TierSpec::symmetric("nvm", 300.0, 3.0, nvm_cap);
        WallClockCalibration {
            dram,
            nvm,
            cf_bw: 1.0,
            cf_lat: 1.0,
            measured: MeasuredTier {
                stream_bw_gbps: 10.0,
                chase_lat_ns: 100.0,
                stream_wall_ns: 1000.0,
                chase_wall_ns: 1000.0,
            },
        }
    }

    fn stream_app(blocks: u32, block_bytes: u64, windows: u32) -> App {
        let mut b = AppBuilder::new("par-test");
        let a: Vec<_> = (0..blocks)
            .map(|i| b.object(&format!("a{i}"), block_bytes))
            .collect();
        let bb: Vec<_> = (0..blocks)
            .map(|i| b.object(&format!("b{i}"), block_bytes))
            .collect();
        let c = b.class("triad");
        for w in 0..windows {
            if w > 0 {
                b.next_window();
            }
            for i in 0..blocks as usize {
                b.task(c)
                    .read_streaming(bb[i], 64)
                    .update_streaming(a[i], 64)
                    .submit();
            }
        }
        b.build()
    }

    fn runtime() -> MeasuredRuntime {
        MeasuredRuntime::new(
            crate::config::Platform::optane(1 << 22, 1 << 24),
            tahoe_memprof::wallclock::WallClockConfig::smoke(),
        )
    }

    #[test]
    fn parallel_checksum_matches_reference_for_every_policy() {
        let app = stream_app(4, 16 << 10, 3);
        let footprint = app.footprint();
        let cal = test_cal(footprint / 4, 4 * footprint);
        let rt = runtime();
        let expect = reference_checksum_seeded(&app, 0);
        for policy in [
            PolicyKind::DramOnly,
            PolicyKind::NvmOnly,
            PolicyKind::FirstTouch,
            PolicyKind::tahoe(),
        ] {
            let r = rt
                .run_policy_parallel(&app, &policy, &cal, 2, 0)
                .expect("parallel run");
            assert_eq!(
                r.checksum, expect,
                "policy {} diverged from the reference",
                r.policy
            );
        }
    }

    #[test]
    fn tahoe_parallel_migrates_in_background() {
        let app = stream_app(4, 32 << 10, 4);
        let footprint = app.footprint();
        let cal = test_cal(footprint / 3, 4 * footprint);
        let rt = runtime();
        let r = rt
            .run_policy_parallel(&app, &PolicyKind::tahoe(), &cal, 2, 7)
            .expect("parallel tahoe");
        assert_eq!(r.checksum, reference_checksum_seeded(&app, 7));
        assert!(r.migration.count > 0, "plan must trigger migrations");
        assert_eq!(r.migrations, r.migration.count, "backend saw each copy");
        assert!(r.final_dram_objects > 0, "promoted objects end in DRAM");
        assert!(
            r.migration.overlapped_ns + r.migration.exposed_ns > 0.0,
            "wall-clock accounting must be populated"
        );
    }

    #[test]
    fn observed_run_carries_a_reconciling_crit_digest() {
        let app = stream_app(4, 32 << 10, 4);
        let footprint = app.footprint();
        let cal = test_cal(footprint / 3, 4 * footprint);
        let (emitter, _buf) = Emitter::buffered();
        let rt = runtime().with_observability(emitter, tahoe_obs::Metrics::enabled());
        let r = rt
            .run_policy_parallel(&app, &PolicyKind::tahoe(), &cal, 2, 7)
            .expect("observed parallel tahoe");
        let crit = r.crit.as_ref().expect("observed runs carry a digest");

        // The chain tiles its interval and reaches the whole span.
        assert!(crit.crit_total_ns > 0.0);
        assert!(
            (crit.crit_total_ns - (crit.compute_ns + crit.stall_ns + crit.idle_ns)).abs()
                < 1e-6 * crit.crit_total_ns.max(1.0)
        );
        assert!(
            crit.crit_vs_span_pct <= 5.0,
            "critical path ({} ns) strayed {}% from the observed span ({} ns)",
            crit.crit_total_ns,
            crit.crit_vs_span_pct,
            crit.span_ns
        );
        assert!(crit.exec_wall_ns >= crit.span_ns);

        // Blame reconciles with the engine's own overlap accounting:
        // same records, same arithmetic.
        assert!(r.migration.count > 0, "plan must trigger migrations");
        assert!(
            (crit.blame_pct_overlap - r.migration.pct_overlap()).abs() <= 1.0,
            "blame overlap {} vs engine overlap {}",
            crit.blame_pct_overlap,
            r.migration.pct_overlap()
        );
        let blamed_migrations: u64 = crit.blame.iter().map(|e| e.migrations).sum();
        assert_eq!(blamed_migrations, r.migration.count);

        // What-if estimates are bounded and sign-consistent with the
        // knapsack: DRAM residence can only help in the model.
        for w in &crit.whatif {
            assert!(w.exposed_ns > 0.0);
            assert!(w.whatif_wall_ns <= crit.exec_wall_ns);
            assert!(w.modelled_saving_ns >= 0.0);
        }

        // Unobserved runs carry no digest.
        let plain = runtime()
            .run_policy_parallel(&app, &PolicyKind::tahoe(), &cal, 2, 7)
            .expect("unobserved run");
        assert!(plain.crit.is_none());
    }

    #[test]
    fn worker_counts_do_not_change_the_answer() {
        let app = stream_app(4, 8 << 10, 3);
        let footprint = app.footprint();
        let cal = test_cal(footprint / 4, 4 * footprint);
        let rt = runtime();
        let expect = reference_checksum_seeded(&app, 3);
        for workers in [1, 2, 4] {
            let r = rt
                .run_policy_parallel(&app, &PolicyKind::tahoe(), &cal, workers, 3)
                .expect("parallel run");
            assert_eq!(r.checksum, expect, "diverged at {workers} workers");
        }
    }
}
