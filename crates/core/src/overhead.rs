//! Runtime-overhead model.
//!
//! The paper reports "pure runtime cost" — hardware-counter collection,
//! model evaluation, and helper-thread synchronization — at under 3% of
//! execution time. The simulator charges those costs explicitly so the
//! reported overhead is an output of the run, not an assumption:
//!
//! * sampling collection inflates profiled tasks by a small fraction
//!   (counter reads + ring-buffer drains);
//! * every task under an active runtime pays a fixed queue-check cost
//!   (the FIFO synchronization with the helper thread);
//! * each planning pass pays a per-candidate model + knapsack cost.

use tahoe_hms::Ns;

/// Multiplicative inflation of task duration while sampling is armed.
pub const PROFILING_TASK_INFLATION: f64 = 0.015;

/// Fixed per-task cost of helper-thread queue synchronization, ns.
pub const SYNC_COST_PER_TASK_NS: f64 = 120.0;

/// Planning cost per candidate object, ns (model evaluation + DP row).
pub const PLAN_COST_PER_CANDIDATE_NS: f64 = 150.0;

/// Accumulator for the overhead actually charged during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverheadLedger {
    /// Extra time charged to profiled tasks.
    pub profiling_ns: Ns,
    /// Queue-synchronization time charged.
    pub sync_ns: Ns,
    /// Planning (model + knapsack) time charged.
    pub planning_ns: Ns,
}

impl OverheadLedger {
    /// Total overhead charged.
    pub fn total_ns(&self) -> Ns {
        self.profiling_ns + self.sync_ns + self.planning_ns
    }

    /// Overhead as a percentage of `makespan_ns`.
    pub fn pct_of(&self, makespan_ns: Ns) -> f64 {
        if makespan_ns <= 0.0 {
            0.0
        } else {
            100.0 * self.total_ns() / makespan_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_totals() {
        let l = OverheadLedger {
            profiling_ns: 10.0,
            sync_ns: 20.0,
            planning_ns: 30.0,
        };
        assert_eq!(l.total_ns(), 60.0);
        assert!((l.pct_of(6000.0) - 1.0).abs() < 1e-12);
        assert_eq!(l.pct_of(0.0), 0.0);
    }
}
