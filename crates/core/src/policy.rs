//! Placement policies: the paper's system and every baseline it is
//! compared against.

/// Ablation and feature switches of the Tahoe policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TahoeOptions {
    /// Consider per-window local search.
    pub local_search: bool,
    /// Consider cross-window global search.
    pub global_search: bool,
    /// Decompose chunkable objects larger than the chunk size.
    pub chunking: bool,
    /// Use compiler-estimate-driven initial placement instead of starting
    /// everything in NVM.
    pub initial_placement: bool,
    /// Proactive (helper-thread, overlapped) migration; when off,
    /// migrations are synchronous and fully exposed.
    pub proactive: bool,
    /// Distinguish loads from stores in the models (Eqs. 4–5 vs 2–3).
    pub distinguish_rw: bool,
    /// Re-profile and replan when per-window performance drifts.
    pub adaptive: bool,
    /// Look-ahead depth (tasks) for ordering proactive migrations.
    pub lookahead: usize,
}

impl Default for TahoeOptions {
    fn default() -> Self {
        TahoeOptions {
            local_search: true,
            global_search: true,
            chunking: true,
            initial_placement: true,
            proactive: true,
            distinguish_rw: true,
            adaptive: true,
            lookahead: 16,
        }
    }
}

/// A data-placement policy.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Everything in DRAM (upper bound; ignores the DRAM budget).
    DramOnly,
    /// Everything in NVM (lower bound).
    NvmOnly,
    /// Allocation-order fill: DRAM until full, then NVM; never migrate.
    FirstTouch,
    /// DRAM as a hardware-managed cache in front of NVM (Optane "Memory
    /// Mode" / DRAM-cache baseline). No application knowledge.
    HwCache,
    /// Offline-profiled static placement (X-Mem-like): perfect profile of
    /// the whole run, one knapsack, objects placed before execution, no
    /// migration, no adaptation.
    StaticOffline,
    /// Pin an explicit set of app objects in DRAM (rest in NVM), never
    /// migrate — the per-object placement-motivation experiment.
    Pinned(Vec<tahoe_hms::ObjectId>),
    /// The paper's runtime.
    Tahoe(TahoeOptions),
}

impl PolicyKind {
    /// The full Tahoe policy with default options.
    pub fn tahoe() -> Self {
        PolicyKind::Tahoe(TahoeOptions::default())
    }

    /// Short display name for tables.
    pub fn name(&self) -> String {
        match self {
            PolicyKind::DramOnly => "DRAM-only".into(),
            PolicyKind::NvmOnly => "NVM-only".into(),
            PolicyKind::FirstTouch => "first-touch".into(),
            PolicyKind::HwCache => "hw-cache".into(),
            PolicyKind::StaticOffline => "static-offline".into(),
            PolicyKind::Pinned(objs) => format!("pinned({})", objs.len()),
            PolicyKind::Tahoe(o) => {
                if *o == TahoeOptions::default() {
                    "tahoe".into()
                } else {
                    let mut tags = Vec::new();
                    if !o.local_search {
                        tags.push("-local");
                    }
                    if !o.global_search {
                        tags.push("-global");
                    }
                    if !o.chunking {
                        tags.push("-chunk");
                    }
                    if !o.initial_placement {
                        tags.push("-init");
                    }
                    if !o.proactive {
                        tags.push("-proactive");
                    }
                    if !o.distinguish_rw {
                        tags.push("-rw");
                    }
                    if !o.adaptive {
                        tags.push("-adapt");
                    }
                    format!("tahoe{}", tags.join(""))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let opts = TahoeOptions {
            proactive: false,
            ..TahoeOptions::default()
        };
        let names = [
            PolicyKind::DramOnly.name(),
            PolicyKind::NvmOnly.name(),
            PolicyKind::FirstTouch.name(),
            PolicyKind::HwCache.name(),
            PolicyKind::StaticOffline.name(),
            PolicyKind::tahoe().name(),
            PolicyKind::Tahoe(opts).name(),
        ];
        let mut dedup = names.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(PolicyKind::tahoe().name(), "tahoe");
    }

    #[test]
    fn ablated_name_mentions_the_switch() {
        let o = TahoeOptions {
            distinguish_rw: false,
            ..TahoeOptions::default()
        };
        assert!(PolicyKind::Tahoe(o).name().contains("-rw"));
    }
}
