//! The hardware-DRAM-cache baseline (Optane Memory Mode / DRAM-cache).
//!
//! In Memory Mode the DRAM is a direct-mapped, write-back cache in front
//! of NVM, invisible to software. We model it at object granularity with
//! a uniform hit ratio: with `footprint` bytes of hot data competing for
//! `dram` bytes of cache, a fraction `h = dram / footprint` of traffic
//! hits DRAM; misses pay the NVM access plus a DRAM fill, and a dirty
//! fraction of evictions pays an NVM write-back. This is the standard
//! analytical treatment of a big direct-mapped cache under uniform
//! pressure; it deliberately ignores object-level locality differences —
//! exactly the blindness that makes Memory Mode lose to software
//! placement in the paper's comparison.

use tahoe_hms::{AccessProfile, Ns, TierSpec, CACHELINE};

/// Fraction of evicted lines assumed dirty (write-back traffic).
const DIRTY_FRACTION: f64 = 0.5;

/// Effective memory time of `profile` under a DRAM cache of `dram_bytes`
/// in front of NVM, with `footprint` bytes of live data.
pub fn cached_mem_time_ns(
    profile: &AccessProfile,
    dram: &TierSpec,
    nvm: &TierSpec,
    dram_bytes: u64,
    footprint: u64,
) -> Ns {
    let h = if footprint == 0 {
        1.0
    } else {
        (dram_bytes as f64 / footprint as f64).min(1.0)
    };
    let hit_time = profile.mem_time_ns(dram);
    // A miss pays the NVM access; the DRAM fill overlaps it (DRAM write
    // bandwidth far exceeds NVM read bandwidth). Dirty evictions push
    // lines back to NVM at its write bandwidth — the traffic that makes
    // Memory Mode lose to managed placement on write-heavy streams.
    let miss_time = profile.mem_time_ns(nvm)
        + DIRTY_FRACTION * profile.accesses() as f64 * CACHELINE as f64 / nvm.write_bw_gbps;
    h * hit_time + (1.0 - h) * miss_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::presets;

    #[test]
    fn full_cache_equals_dram() {
        let dram = presets::dram(1 << 30);
        let nvm = presets::optane_pmm(1 << 34);
        let p = AccessProfile::streaming(100_000, 50_000);
        let t = cached_mem_time_ns(&p, &dram, &nvm, 1 << 30, 1 << 30);
        assert!((t - p.mem_time_ns(&dram)).abs() < 1e-9);
        // Zero footprint behaves like all-hit.
        let t0 = cached_mem_time_ns(&p, &dram, &nvm, 1 << 30, 0);
        assert!((t0 - p.mem_time_ns(&dram)).abs() < 1e-9);
    }

    #[test]
    fn tiny_cache_is_worse_than_nvm_raw() {
        // With h≈0 every access pays NVM plus fill plus write-back: the
        // cache *hurts* (the well-known Memory-Mode pathology for
        // streaming-over-capacity workloads).
        let dram = presets::dram(1 << 30);
        let nvm = presets::optane_pmm(1 << 34);
        let p = AccessProfile::streaming(1_000_000, 0);
        let cached = cached_mem_time_ns(&p, &dram, &nvm, 1, u64::MAX);
        assert!(cached > p.mem_time_ns(&nvm));
    }

    #[test]
    fn time_decreases_monotonically_with_cache_size() {
        let dram = presets::dram(1 << 30);
        let nvm = presets::emulated_bw(0.25, 1 << 34).unwrap();
        let p = AccessProfile::streaming(500_000, 250_000);
        let foot = 1 << 30;
        let mut last = f64::INFINITY;
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let t = cached_mem_time_ns(&p, &dram, &nvm, (foot as f64 * frac) as u64, foot);
            assert!(t <= last + 1e-9, "not monotone at {frac}");
            last = t;
        }
    }

    #[test]
    fn halfway_cache_is_between_bounds() {
        let dram = presets::dram(1 << 30);
        let nvm = presets::optane_pmm(1 << 34);
        let p = AccessProfile::streaming(500_000, 100_000);
        let t = cached_mem_time_ns(&p, &dram, &nvm, 1 << 29, 1 << 30);
        assert!(t > p.mem_time_ns(&dram));
        assert!(t < cached_mem_time_ns(&p, &dram, &nvm, 0, 1 << 30));
    }
}
