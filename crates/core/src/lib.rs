//! # Tahoe: runtime data management on NVM-based heterogeneous memory for
//! # task-parallel programs
//!
//! This crate is the reproduction's core: the runtime that decides *which
//! data objects live in DRAM* while a task-parallel program executes over
//! a DRAM+NVM heterogeneous memory system, reproducing the system of
//! Wu, Ren and Li (SC 2018).
//!
//! ## Pipeline
//!
//! 1. **Profile** — during the first execution windows, a sampling
//!    profiler attributes loads/stores to (task class × data object)
//!    pairs ([`tahoe_memprof`]).
//! 2. **Model** — per-object demand is classified bandwidth- vs
//!    latency-sensitive and priced with calibrated benefit/cost equations
//!    ([`tahoe_perfmodel`]).
//! 3. **Decide** — a 0/1 knapsack picks the DRAM set, per window (local
//!    search) and for the whole run (global search); the better predicted
//!    plan wins ([`tahoe_placement`]).
//! 4. **Enforce** — a helper-thread copy channel migrates objects
//!    proactively at window boundaries, overlapping copies with task
//!    execution; tasks stall only if they reach an object whose promotion
//!    is still in flight ([`tahoe_hms::migrate`]).
//! 5. **Adapt** — if per-window performance drifts beyond a threshold,
//!    profiling is re-armed and the plan recomputed.
//!
//! ## Entry points
//!
//! * [`app::AppBuilder`] — declare data objects and data-annotated tasks.
//! * [`policy::PolicyKind`] — select DRAM-only / NVM-only / first-touch /
//!   hardware-cache / offline-static / Tahoe (with ablation switches in
//!   [`policy::TahoeOptions`]).
//! * [`runtime::Runtime`] — run an [`app::App`] under a policy on a
//!   configured platform and get a [`report::RunReport`].
//! * [`runtime::Runtime::run_observed`] — the same run with the
//!   structured observability layer on: returns a
//!   [`runtime::ObsCapture`] with the typed event stream (exportable as
//!   deterministic JSONL or a Chrome/Perfetto trace) and a metrics
//!   snapshot covering every layer of the pipeline.
//! * [`MeasuredRuntime::run_policy_sanitized`](measured::MeasuredRuntime::run_policy_sanitized)
//!   — a parallel measured run with the [`tahoe_sanitize`] access
//!   sanitizer shadowing every access (happens-before race scan,
//!   undeclared-access / write-under-read / mid-move checks); the
//!   plain parallel path compiles the checks away entirely.
//!
//! ```
//! use tahoe_core::prelude::*;
//!
//! let mut b = AppBuilder::new("triad");
//! let a = b.object("a", 1 << 20);
//! let x = b.object("x", 1 << 20);
//! let c = b.class("triad");
//! for _ in 0..4 {
//!     b.task(c)
//!         .read_streaming(x, 16384)
//!         .write_streaming(a, 16384)
//!         .compute_us(5.0)
//!         .submit();
//!     b.next_window();
//! }
//! let app = b.build();
//! let platform = Platform::emulated_bw(0.5, 256 << 10, 64 << 20).unwrap();
//! let report = Runtime::new(platform, RuntimeConfig::default())
//!     .run(&app, &PolicyKind::tahoe());
//! assert!(report.makespan_ns > 0.0);
//! ```

// Unsafe is the exception here, not the rule: only the two measured-mode
// sites that hand raw arena memory to the traffic kernel may use it, each
// behind a scoped `#[allow(unsafe_code)]` with a SAFETY comment.
#![deny(unsafe_code)]

pub mod app;
pub mod audit;
pub mod config;
pub mod driver;
pub mod hwcache;
pub mod measured;
pub mod overhead;
pub mod parallel;
pub mod policy;
pub mod report;
pub mod runtime;

pub use app::{App, AppBuilder, ObjectSpec, TaskBuilder};
pub use audit::{ModelAudit, ObjectAudit, ObsOverhead};
pub use config::{Platform, RuntimeConfig, RuntimeMode};
pub use measured::{MeasuredPolicyReport, MeasuredReport, MeasuredRuntime};
pub use parallel::{AccessTierTiming, ParallelPolicyReport};
pub use policy::{PolicyKind, TahoeOptions};
pub use report::RunReport;
pub use runtime::{ObsCapture, Runtime};
pub use tahoe_sanitize::{
    audit_plan, ExtraAccess, MigrationPlan, PlanContext, PlanStep, SanitizeReport, Violation,
    ViolationKind,
};

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use crate::app::{App, AppBuilder};
    pub use crate::config::{Platform, RuntimeConfig, RuntimeMode};
    pub use crate::measured::{MeasuredReport, MeasuredRuntime};
    pub use crate::policy::{PolicyKind, TahoeOptions};
    pub use crate::report::RunReport;
    pub use crate::runtime::{ObsCapture, Runtime};
    pub use tahoe_hms::{presets, TierKind};
}
