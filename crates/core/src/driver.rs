//! The policy driver: a [`SchedulerHooks`] implementation that injects
//! data-placement behaviour into the virtual-time schedule.
//!
//! One driver instance runs one (application × policy × platform)
//! combination. For the Tahoe policy it implements the full pipeline —
//! profile during the first windows, calibrated models, knapsack plans,
//! helper-thread migration with per-task stalls, adaptivity — while the
//! baselines reduce to fixed placements or the hardware-cache timing
//! model.
//!
//! ## Identifier spaces
//!
//! The application graph names objects with *app ids* (`ObjectId(i)` =
//! `app.objects[i]`). The memory system assigns its own *unit ids* when
//! objects (or their chunks) are allocated. `units[i]` maps app object
//! `i` to its memory units: one id normally, several when the chunking
//! optimization split a large array. Profiling and demand estimation work
//! at app-object granularity (that is what address-to-object mapping
//! gives the paper's profiler); placement, migration and residency work
//! at unit granularity.

use std::collections::{BTreeSet, HashMap};

use tahoe_hms::{
    migrate::{CopyChannel, MigrationRecord, MigrationStats},
    Hms, HmsConfig, Ns, ObjectId, TierKind,
};
use tahoe_memprof::{calibrate::calibrate, Calibration, ProfileDb, Sampler};
use tahoe_obs::{Emitter, Event, Metrics, OverheadKind, ReplanReason};
use tahoe_perfmodel::Demand;
use tahoe_placement::{
    choose_plan, global_plan, local_plan, search::WindowDemand, Plan, PlanKind, WeighCtx,
};
use tahoe_taskrt::{SchedulerHooks, TaskSpec};

use crate::app::App;
use crate::config::{Platform, RuntimeConfig};
use crate::hwcache::cached_mem_time_ns;
use crate::overhead::{
    OverheadLedger, PLAN_COST_PER_CANDIDATE_NS, PROFILING_TASK_INFLATION, SYNC_COST_PER_TASK_NS,
};
use crate::policy::{PolicyKind, TahoeOptions};

/// In-flight promotion of one memory unit.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    record: usize,
    finish: Ns,
}

/// The observability mirror of a memory tier.
fn obs_tier(t: TierKind) -> tahoe_obs::Tier {
    match t {
        TierKind::Dram => tahoe_obs::Tier::Dram,
        TierKind::Nvm => tahoe_obs::Tier::Nvm,
    }
}

/// The policy driver (see module docs).
pub struct Driver<'a> {
    app: &'a App,
    cfg: &'a RuntimeConfig,
    policy: PolicyKind,
    platform: Platform,
    /// The memory system (tiers sized per policy).
    pub hms: Hms,
    /// App object index → memory unit ids (1 normally, >1 when chunked).
    units: Vec<Vec<ObjectId>>,
    /// Unit id → app object index (for reverse lookups).
    unit_parent: HashMap<ObjectId, usize>,
    channel: CopyChannel,
    records: Vec<MigrationRecord>,
    inflight: HashMap<ObjectId, Inflight>,
    /// Promotions whose copy has finished but whose residency flip is
    /// still to be applied, sorted by finish time.
    matured: Vec<(Ns, ObjectId)>,
    /// When synchronous (non-proactive) migration blocks the whole run
    /// until this instant.
    block_until: Ns,
    sampler: Sampler,
    db: ProfileDb,
    calib: Calibration,
    plan: Option<Plan>,
    /// Windows `< profiling_until` are profiled.
    profiling_until: u32,
    window_started_at: Vec<(u32, Ns)>,
    /// One-shot planning cost to charge at the next dispatch.
    pending_plan_cost: Ns,
    /// First window by which migration traffic has settled; the
    /// variation detector only compares windows after this point, so a
    /// duration change *caused by* enforcement is not mistaken for
    /// workload variation.
    quiet_since: u32,
    /// Statistics.
    pub overhead: OverheadLedger,
    /// Replans triggered by workload variation.
    pub replans: u32,
    /// Promotions skipped because the destination could not hold them.
    pub failed_promotions: u32,
    /// Write-endurance tally (stores per tier + migration copies).
    pub wear: tahoe_hms::WearStats,
    footprint: u64,
    emitter: Emitter,
    metrics: Metrics,
}

impl<'a> Driver<'a> {
    /// Build a driver: allocates every object per the policy's initial
    /// placement.
    pub fn new(
        app: &'a App,
        platform: &Platform,
        cfg: &'a RuntimeConfig,
        policy: PolicyKind,
    ) -> Self {
        let footprint = app.footprint();
        // The bounds policies must be able to hold everything in one tier.
        let mut plat = platform.clone();
        match policy {
            PolicyKind::DramOnly => {
                plat.dram = plat.dram.with_capacity(plat.dram.capacity.max(footprint));
            }
            _ => {
                plat.nvm = plat.nvm.with_capacity(plat.nvm.capacity.max(footprint * 2));
            }
        }
        let hms_cfg = HmsConfig::new(plat.dram.clone(), plat.nvm.clone(), plat.copy_bw_gbps)
            .expect("platform already validated");
        let mut hms = Hms::new(hms_cfg);

        let opts = match &policy {
            PolicyKind::Tahoe(o) => Some(o.clone()),
            _ => None,
        };

        // ---- initial placement -----------------------------------------
        // Memory-unit descriptors: one per object, or one per chunk when
        // the chunking optimization splits a large array. Initial
        // placement then works at unit granularity — the compiler's
        // analysis of a regularly accessed array is equally valid for a
        // prefix of it, so chunkable arrays larger than DRAM can still
        // contribute their hottest chunks.
        let mut unit_descs: Vec<(usize, u64, String)> = Vec::new();
        for (i, spec) in app.objects.iter().enumerate() {
            let chunk = opts
                .as_ref()
                .filter(|o| o.chunking && spec.chunkable && spec.size > cfg.chunk_size)
                .map(|_| cfg.chunk_size);
            match chunk {
                Some(chunk_size) => {
                    let n = spec.size.div_ceil(chunk_size);
                    let mut remaining = spec.size;
                    for k in 0..n {
                        let this = remaining.min(chunk_size);
                        remaining -= this;
                        unit_descs.push((i, this, format!("{}[{}]", spec.name, k)));
                    }
                }
                None => unit_descs.push((i, spec.size, spec.name.clone())),
            }
        }
        let unit_tiers = Self::initial_unit_tiers(app, &plat, &policy, &unit_descs);
        let mut units: Vec<Vec<ObjectId>> = vec![Vec::new(); app.objects.len()];
        let mut unit_parent = HashMap::new();
        for ((parent, size, name), tier) in unit_descs.iter().zip(unit_tiers) {
            let id = hms
                .alloc_object(name, *size, tier, true)
                .expect("initial allocation failed");
            unit_parent.insert(id, *parent);
            units[*parent].push(id);
        }

        // ---- offline calibration (Tahoe only needs it, harmless else) --
        let calib = calibrate(&plat.dram, &plat.nvm, &cfg.sampler);

        let profiling_until = match &policy {
            PolicyKind::Tahoe(_) => cfg.profile_windows,
            _ => 0,
        };

        Driver {
            app,
            cfg,
            policy,
            channel: CopyChannel::new(plat.copy_bw_gbps),
            platform: plat,
            hms,
            units,
            unit_parent,
            records: Vec::new(),
            inflight: HashMap::new(),
            matured: Vec::new(),
            block_until: 0.0,
            sampler: Sampler::new(cfg.sampler.clone()),
            db: ProfileDb::new(),
            calib,
            plan: None,
            profiling_until,
            window_started_at: Vec::new(),
            quiet_since: 0,
            pending_plan_cost: 0.0,
            overhead: OverheadLedger::default(),
            replans: 0,
            failed_promotions: 0,
            wear: tahoe_hms::WearStats::default(),
            footprint,
            emitter: Emitter::disabled(),
            metrics: Metrics::disabled(),
        }
    }

    /// Attach observability: policy decisions (plans, migrations,
    /// profiling, replans, overhead charges) are emitted as events, and
    /// the metrics handle is propagated into the memory system, the copy
    /// channel and the sampler so every layer records into one registry.
    pub fn set_obs(&mut self, emitter: Emitter, metrics: Metrics) {
        self.emitter = emitter;
        self.hms.set_metrics(metrics.clone());
        self.channel.set_metrics(metrics.clone());
        self.sampler.set_metrics(metrics.clone());
        self.metrics = metrics;
    }

    /// Initial tier of each memory unit under `policy`. `unit_descs` is
    /// `(parent object index, unit size, name)` per unit.
    fn initial_unit_tiers(
        app: &App,
        platform: &Platform,
        policy: &PolicyKind,
        unit_descs: &[(usize, u64, String)],
    ) -> Vec<TierKind> {
        let per_parent = |tiers: Vec<TierKind>| -> Vec<TierKind> {
            unit_descs.iter().map(|&(p, _, _)| tiers[p]).collect()
        };
        let n = app.objects.len();
        match policy {
            PolicyKind::DramOnly => vec![TierKind::Dram; unit_descs.len()],
            PolicyKind::NvmOnly | PolicyKind::HwCache => {
                vec![TierKind::Nvm; unit_descs.len()]
            }
            PolicyKind::FirstTouch => {
                // Allocation-order fill with fallback happens naturally at
                // alloc time: ask for DRAM, overflow goes to NVM.
                vec![TierKind::Dram; unit_descs.len()]
            }
            PolicyKind::StaticOffline => per_parent(Self::offline_static_tiers(app, platform)),
            PolicyKind::Pinned(objs) => per_parent(
                (0..n)
                    .map(|i| {
                        if objs.contains(&ObjectId(i as u32)) {
                            TierKind::Dram
                        } else {
                            TierKind::Nvm
                        }
                    })
                    .collect(),
            ),
            PolicyKind::Tahoe(o) => {
                if o.initial_placement {
                    Self::compiler_initial_unit_tiers(app, platform, unit_descs)
                } else {
                    vec![TierKind::Nvm; unit_descs.len()]
                }
            }
        }
    }

    /// X-Mem-like oracle: perfect whole-run profile, one knapsack with
    /// the *true* DRAM saving as value, no migration cost.
    fn offline_static_tiers(app: &App, platform: &Platform) -> Vec<TierKind> {
        use tahoe_placement::{solve, Item};
        let mut true_saving = vec![0.0f64; app.objects.len()];
        for t in app.graph.tasks() {
            for a in &t.accesses {
                true_saving[a.object.index()] +=
                    a.profile.mem_time_ns(&platform.nvm) - a.profile.mem_time_ns(&platform.dram);
            }
        }
        let items: Vec<Item> = app
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| Item {
                id: ObjectId(i as u32),
                size: o.size,
                value: true_saving[i],
            })
            .collect();
        let sol = solve(&items, platform.dram.capacity);
        (0..app.objects.len())
            .map(|i| {
                if sol.contains(ObjectId(i as u32)) {
                    TierKind::Dram
                } else {
                    TierKind::Nvm
                }
            })
            .collect()
    }

    /// The paper's compiler-analysis initial placement: rank memory units
    /// by their parent object's estimated references per byte and fill
    /// DRAM greedily. Objects without a compiler estimate
    /// (`est_refs == None`) cannot be placed initially and start in NVM.
    fn compiler_initial_unit_tiers(
        app: &App,
        platform: &Platform,
        unit_descs: &[(usize, u64, String)],
    ) -> Vec<TierKind> {
        let mut ranked: Vec<(usize, f64)> = unit_descs
            .iter()
            .enumerate()
            .filter_map(|(u, &(p, _, _))| {
                let o = &app.objects[p];
                o.est_refs.map(|r| (u, r / o.size as f64))
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("densities are finite")
                .then(a.0.cmp(&b.0))
        });
        let mut budget = platform.dram.capacity;
        let mut tiers = vec![TierKind::Nvm; unit_descs.len()];
        for (u, _) in ranked {
            let size = unit_descs[u].1;
            if size <= budget {
                budget -= size;
                tiers[u] = TierKind::Dram;
            }
        }
        tiers
    }

    /// Memory units of an accessed app object.
    fn units_of(&self, app_obj: ObjectId) -> &[ObjectId] {
        &self.units[app_obj.index()]
    }

    /// Ground-truth memory time of one access under current residency.
    fn access_time_ns(&self, access: &tahoe_taskrt::TaskAccess) -> Ns {
        match &self.policy {
            PolicyKind::HwCache => cached_mem_time_ns(
                &access.profile,
                &self.platform.dram,
                &self.platform.nvm,
                self.platform.dram.capacity,
                self.footprint,
            ),
            _ => {
                let units = self.units_of(access.object);
                if units.len() == 1 {
                    let tier = self.hms.tier_of(units[0]).expect("unit is live");
                    access.profile.mem_time_ns(self.hms.tier_spec(tier))
                } else {
                    // Chunked: traffic splits pro rata by chunk size.
                    let total: u64 = units
                        .iter()
                        .map(|u| self.hms.size_of(*u).expect("unit is live"))
                        .sum();
                    units
                        .iter()
                        .map(|&u| {
                            let sz = self.hms.size_of(u).expect("unit is live");
                            let tier = self.hms.tier_of(u).expect("unit is live");
                            access
                                .profile
                                .scale(sz as f64 / total as f64)
                                .mem_time_ns(self.hms.tier_spec(tier))
                        })
                        .sum()
                }
            }
        }
    }

    /// Ground-truth duration of `task` (no overheads).
    fn base_duration_ns(&self, task: &TaskSpec) -> Ns {
        task.compute_ns
            + task
                .accesses
                .iter()
                .map(|a| self.access_time_ns(a))
                .sum::<f64>()
    }

    /// Apply residency flips for promotions whose copy finished by `now`.
    ///
    /// An apply can fail if DRAM is still full (the eviction that frees
    /// its space happens at the next window boundary — promotions issued
    /// one window early hit this). Failed applies stay queued and retry
    /// on the next call; `failed_promotions` counts the retries.
    fn apply_matured(&mut self, now: Ns) {
        let due: Vec<(Ns, ObjectId)> = {
            let mut due = Vec::new();
            let mut i = 0;
            while i < self.matured.len() {
                if self.matured[i].0 <= now {
                    due.push(self.matured.remove(i));
                } else {
                    i += 1;
                }
            }
            due
        };
        for (finish, unit) in due {
            match self.hms.move_object(unit, TierKind::Dram) {
                Ok(bytes) => {
                    if let Some(inf) = self.inflight.remove(&unit) {
                        let overlap = self.records[inf.record].overlapped_ns();
                        self.metrics.inc("driver.migrations.completed");
                        self.emitter.emit(|| Event::MigrationCompleted {
                            t: now,
                            object: unit.0,
                            bytes,
                            overlap_ns: overlap,
                        });
                    }
                }
                Err(_) => {
                    // Destination full or fragmented: retry after the
                    // next transition frees space.
                    self.failed_promotions += 1;
                    self.metrics.inc("driver.migrations.deferred");
                    self.emitter.emit(|| Event::MigrationDeferred {
                        t: now,
                        object: unit.0,
                    });
                    self.matured.push((finish, unit));
                }
            }
        }
        self.matured
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    }

    /// Profile one task (Tahoe profiling windows).
    fn profile_task(&mut self, task: &TaskSpec) {
        self.db.record_instance(task.class);
        for a in &task.accesses {
            let true_active = self.access_time_ns(a);
            // The tier the object resides on while profiled — the
            // reference point for the concurrency estimate. Chunked
            // objects use their first unit's tier (chunks start together).
            let tier = self
                .hms
                .tier_of(self.units_of(a.object)[0])
                .expect("unit is live");
            let spec = self.hms.tier_spec(tier).clone();
            let obs = self.sampler.observe(&a.profile, true_active, &spec);
            self.db.record(task.class, a.object, &obs);
        }
    }

    /// Estimated per-window demand of every app object, windows
    /// `from..count`, at app-object granularity.
    fn estimated_window_demands(&self, from: u32) -> Vec<Vec<(ObjectId, u64, Demand)>> {
        let count = self.app.graph.window_count();
        let mut out = Vec::with_capacity((count - from) as usize);
        for w in from..count {
            let mut per_obj: HashMap<ObjectId, Demand> = HashMap::new();
            for t in self.app.graph.window_tasks(w) {
                let task = self.app.graph.task(t);
                for a in &task.accesses {
                    if let Some(stats) = self.db.get(task.class, a.object) {
                        let d = Demand::from_stats(&stats, 1);
                        let e = per_obj.entry(a.object).or_insert(Demand::ZERO);
                        *e = e.add(&d);
                    }
                }
            }
            let mut v: Vec<(ObjectId, u64, Demand)> = per_obj
                .into_iter()
                .map(|(o, d)| (o, self.app.objects[o.index()].size, d))
                .collect();
            v.sort_by_key(|(o, _, _)| *o);
            out.push(v);
        }
        out
    }

    /// Translate app-object demands to memory-unit candidates (chunks get
    /// a pro-rata share of the parent's demand).
    fn to_unit_demands(&self, windows: Vec<Vec<(ObjectId, u64, Demand)>>) -> Vec<WindowDemand> {
        windows
            .into_iter()
            .map(|wd| {
                let mut out: WindowDemand = Vec::new();
                for (app_obj, size, demand) in wd {
                    let units = self.units_of(app_obj);
                    if units.len() == 1 {
                        out.push((units[0], size, demand));
                    } else {
                        let total: u64 = units
                            .iter()
                            .map(|u| self.hms.size_of(*u).expect("unit is live"))
                            .sum();
                        for &u in units {
                            let sz = self.hms.size_of(u).expect("unit is live");
                            out.push((u, sz, demand.scale(sz as f64 / total as f64)));
                        }
                    }
                }
                out
            })
            .collect()
    }

    /// Mean profiled window duration, ns (the planner's estimate of how
    /// much execution is available to hide copies behind).
    fn mean_window_duration_ns(&self) -> Ns {
        if self.window_started_at.len() < 2 {
            return 0.0;
        }
        let n = self.window_started_at.len();
        let span = self.window_started_at[n - 1].1 - self.window_started_at[0].1;
        span / (n - 1) as f64
    }

    /// Channel-serialization penalty of a plan: every window's migration
    /// bytes share one copy channel, so copy time beyond what one window
    /// of execution can hide is exposed — regardless of what the per-
    /// object weights assumed. (The per-object knapsack weights cannot
    /// see this shared-resource effect; the paper's benefit-vs-cost rule
    /// is enforced here, at plan granularity.)
    fn channel_penalty_ns(&self, plan: &Plan, overlap_budget_ns: Ns) -> Ns {
        plan.windows
            .iter()
            .map(|pw| {
                let bytes: u64 = pw
                    .promote
                    .iter()
                    .chain(pw.evict.iter())
                    .map(|&u| self.hms.size_of(u).unwrap_or(0))
                    .sum();
                (bytes as f64 / self.platform.copy_bw_gbps - overlap_budget_ns).max(0.0)
            })
            .sum()
    }

    /// Compute the placement plan at window `w` (profiling just ended or a
    /// replan triggered).
    fn compute_plan(&mut self, w: u32, now: Ns, opts: &TahoeOptions) {
        let demands = self.to_unit_demands(self.estimated_window_demands(w));
        if demands.is_empty() {
            return;
        }
        let candidate_count: usize = demands.iter().map(|d| d.len()).sum();
        let initial: BTreeSet<ObjectId> = self.hms.objects_on(TierKind::Dram).into_iter().collect();

        let mean_window_ns = self.mean_window_duration_ns();
        let mean_copy_ns = {
            let total: u64 = demands
                .first()
                .map(|d| d.iter().map(|(_, s, _)| *s).sum())
                .unwrap_or(0);
            let n = demands.first().map(|d| d.len()).unwrap_or(1).max(1);
            (total as f64 / n as f64) / self.platform.copy_bw_gbps
        };
        let ctx = WeighCtx {
            nvm: self.platform.nvm.clone(),
            dram: self.platform.dram.clone(),
            calib: self.calib,
            params: {
                let mut p = self.cfg.model;
                p.distinguish_rw = opts.distinguish_rw;
                p
            },
            copy_bw_gbps: self.platform.copy_bw_gbps,
            // The helper thread can hide at most a fraction of one
            // window of execution per migration.
            overlap_credit_ns: if opts.proactive {
                (0.75 * mean_copy_ns).min(0.25 * mean_window_ns)
            } else {
                0.0
            },
            dram_pressure: self.hms.used(TierKind::Dram) as f64
                / self.platform.dram.capacity.max(1) as f64,
        };
        let cap = self.platform.dram.capacity;

        // A plan's knapsack gain includes the benefit of objects that are
        // *already* resident — which doing nothing collects too. Score
        // plans by their gain over that baseline, minus the channel-
        // serialization penalty; enforce only when strictly better.
        let baseline: Ns = demands
            .iter()
            .map(|wd| {
                wd.iter()
                    .filter(|(id, _, _)| initial.contains(id))
                    .map(|&(id, size, demand)| {
                        ctx.weigh(&tahoe_placement::ObjectCandidate {
                            id,
                            size,
                            demand,
                            resident: true,
                        })
                        .value
                        .max(0.0)
                    })
                    .sum::<f64>()
            })
            .sum();
        if std::env::var("TAHOE_DEBUG").is_ok() {
            if let Some(first) = demands.first() {
                for &(id, size, d) in first.iter().take(6) {
                    let item = ctx.weigh(&tahoe_placement::ObjectCandidate {
                        id,
                        size,
                        demand: d,
                        resident: initial.contains(&id),
                    });
                    eprintln!("[cand] {:?} size={} loads={:.0} stores={:.0} active={:.1}us bw={:.2}GB/s class={:?} value={:.3e}",
                        id, size, d.loads, d.stores, d.active_ns/1e3, d.consumed_bw_gbps(),
                        tahoe_perfmodel::classify(&d, ctx.calib.nvm_peak_bw_gbps, &ctx.params), item.value);
                }
                eprintln!(
                    "[cand] nvm_peak={:.2} cf_bw={:.2} cf_lat={:.2} mean_window={:.1}us",
                    ctx.calib.nvm_peak_bw_gbps,
                    ctx.calib.cf_bw,
                    ctx.calib.cf_lat,
                    mean_window_ns / 1e3
                );
            }
        }
        let overlap_budget = if opts.proactive { mean_window_ns } else { 0.0 };
        let mut best: Option<(Ns, Plan)> = None;
        let mut consider = |plan: Plan, this: &Self| {
            let score =
                plan.predicted_gain_ns - this.channel_penalty_ns(&plan, overlap_budget) - baseline;
            if std::env::var("TAHOE_DEBUG").is_ok() {
                eprintln!("[plan] kind={:?} gain={:.3e} penalty={:.3e} baseline={:.3e} score={:.3e} migr={}",
                    plan.kind, plan.predicted_gain_ns,
                    this.channel_penalty_ns(&plan, overlap_budget), baseline, score,
                    plan.migration_count());
            }
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, plan));
            }
        };
        // Global first: on equal scores the strict comparison keeps the
        // plan with fewer migrations.
        if opts.global_search {
            consider(global_plan(&demands, &initial, cap, &ctx), self);
        }
        if opts.local_search {
            consider(local_plan(&demands, &initial, cap, &ctx), self);
        }
        let _ = choose_plan; // the driver reimplements the choice with the channel penalty
        self.pending_plan_cost += candidate_count as f64 * PLAN_COST_PER_CANDIDATE_NS;
        // Hysteresis: a plan must beat staying put by a meaningful margin
        // (2% of the baseline's value plus a 10 µs floor), otherwise the
        // churn costs more than sampling noise-sized "gains" are worth.
        let margin = 0.02 * baseline + 10_000.0;
        let plan_tag = |k: PlanKind| -> &'static str {
            match k {
                PlanKind::Global => "global",
                PlanKind::Local => "local",
            }
        };
        self.metrics.inc("driver.plans");
        match best {
            Some((score, mut plan)) if score > margin => {
                let kind = plan_tag(plan.kind);
                let migrations = plan.migration_count() as u32;
                let gain = plan.predicted_gain_ns;
                // Window indices in the plan are relative to `w`.
                for pw in &mut plan.windows {
                    pw.window += w;
                }
                self.plan = Some(plan);
                self.metrics.inc("driver.plans.accepted");
                self.emitter.emit(|| Event::PlanComputed {
                    t: now,
                    window: w,
                    kind,
                    candidates: candidate_count as u32,
                    migrations,
                    predicted_gain_ns: gain,
                    baseline_ns: baseline,
                    accepted: true,
                });
            }
            best => {
                // No plan beats staying put: freeze the current placement
                // (an empty plan, so enforcement is a no-op but planning
                // does not re-run every window).
                let (kind, migrations, gain) = best
                    .map(|(_, p)| {
                        (
                            plan_tag(p.kind),
                            p.migration_count() as u32,
                            p.predicted_gain_ns,
                        )
                    })
                    .unwrap_or(("none", 0, 0.0));
                self.plan = Some(Plan {
                    kind: PlanKind::Global,
                    windows: Vec::new(),
                    predicted_gain_ns: 0.0,
                });
                self.metrics.inc("driver.plans.frozen");
                self.emitter.emit(|| Event::PlanComputed {
                    t: now,
                    window: w,
                    kind,
                    candidates: candidate_count as u32,
                    migrations,
                    predicted_gain_ns: gain,
                    baseline_ns: baseline,
                    accepted: false,
                });
            }
        }
    }

    /// Enforce the plan's transitions at the boundary of window `w`, and
    /// pre-issue the *next* window's promotions when data dependences
    /// allow (the paper's `mem_comp_overlap`: a migration is triggered at
    /// the earliest phase boundary after the object's last write, so the
    /// copy overlaps a whole window of execution).
    fn enforce_window(&mut self, w: u32, now: Ns, opts: &TahoeOptions) {
        self.apply_matured(now);
        let Some(plan) = &self.plan else { return };
        let mut promote_early: Vec<ObjectId> = Vec::new();
        if opts.proactive {
            if let Some(next) = plan.windows.iter().find(|pw| pw.window == w + 1) {
                // An object written during window `w` cannot be copied
                // early (the copy would go stale); reads are fine — the
                // NVM copy stays authoritative until the flip applies.
                let written: std::collections::HashSet<usize> = self
                    .app
                    .graph
                    .window_tasks(w)
                    .iter()
                    .flat_map(|&t| self.app.graph.task(t).accesses.iter())
                    .filter(|a| a.mode.writes())
                    .map(|a| a.object.index())
                    .collect();
                promote_early = next
                    .promote
                    .iter()
                    .copied()
                    .filter(|u| {
                        self.unit_parent
                            .get(u)
                            .is_none_or(|parent| !written.contains(parent))
                    })
                    .collect();
            }
        }
        let Some(pw) = plan.windows.iter().find(|pw| pw.window == w) else {
            // No transitions this window; still pre-issue next window's.
            for unit in promote_early {
                self.issue_promotion(unit, now, opts);
            }
            return;
        };
        let evict = pw.evict.clone();
        let promote = pw.promote.clone();
        if !evict.is_empty() || !promote.is_empty() {
            self.quiet_since = w + 1;
        }

        // Evictions first: they free the space promotions need. The copy
        // is charged on the channel; residency flips immediately (the
        // data stays readable from either location during the copy).
        for unit in evict {
            if self.hms.tier_of(unit) != Ok(TierKind::Dram) {
                continue;
            }
            let bytes = self.hms.size_of(unit).expect("unit is live");
            if self.hms.move_object(unit, TierKind::Nvm).is_err() {
                continue;
            }
            let (start, finish) = self.channel.schedule(bytes, now);
            self.wear.record_copy(TierKind::Nvm, bytes);
            self.records.push(MigrationRecord {
                object: unit,
                bytes,
                from: TierKind::Dram,
                to: TierKind::Nvm,
                issued_at: now,
                start,
                finish,
                needed_at: None,
            });
            self.metrics.inc("driver.migrations.issued");
            self.metrics.add("driver.migration_bytes", bytes);
            let queue_depth = self.inflight.len() as u32;
            self.emitter.emit(|| Event::MigrationIssued {
                t: now,
                object: unit.0,
                bytes,
                from: obs_tier(TierKind::Dram),
                to: obs_tier(TierKind::Nvm),
                start,
                finish,
                queue_depth,
            });
            if !opts.proactive {
                self.block_until = self.block_until.max(finish);
            }
        }

        // Promotions in first-use order (the look-ahead): tasks of this
        // window in dispatch order define when each object is first
        // needed, so the helper thread copies the soonest-needed object
        // first.
        let window_tasks = self.app.graph.window_tasks(w);
        let la = tahoe_taskrt::lookahead::Lookahead::new(opts.lookahead.max(1));
        let first_use = la.objects_in_window(&self.app.graph, &window_tasks);
        let rank = |unit: ObjectId| -> usize {
            let parent = self.unit_parent.get(&unit).copied();
            first_use
                .iter()
                .position(|(o, _)| Some(o.index()) == parent)
                .unwrap_or(usize::MAX)
        };
        let mut ordered = promote;
        ordered.sort_by_key(|&u| (rank(u), u));
        for unit in ordered {
            self.issue_promotion(unit, now, opts);
        }
        // Next window's promotions copy behind this window's execution.
        for unit in promote_early {
            self.issue_promotion(unit, now, opts);
        }
        self.matured
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    }

    /// Schedule one NVM→DRAM promotion on the copy channel.
    fn issue_promotion(&mut self, unit: ObjectId, now: Ns, opts: &TahoeOptions) {
        if self.hms.tier_of(unit) != Ok(TierKind::Nvm) || self.inflight.contains_key(&unit) {
            return;
        }
        let bytes = self.hms.size_of(unit).expect("unit is live");
        let (start, finish) = self.channel.schedule(bytes, now);
        self.wear.record_copy(TierKind::Dram, bytes);
        self.records.push(MigrationRecord {
            object: unit,
            bytes,
            from: TierKind::Nvm,
            to: TierKind::Dram,
            issued_at: now,
            start,
            finish,
            needed_at: None,
        });
        self.metrics.inc("driver.migrations.issued");
        self.metrics.add("driver.migration_bytes", bytes);
        let queue_depth = self.inflight.len() as u32;
        self.emitter.emit(|| Event::MigrationIssued {
            t: now,
            object: unit.0,
            bytes,
            from: obs_tier(TierKind::Nvm),
            to: obs_tier(TierKind::Dram),
            start,
            finish,
            queue_depth,
        });
        let record = self.records.len() - 1;
        self.inflight.insert(unit, Inflight { record, finish });
        self.matured.push((finish, unit));
        if !opts.proactive {
            self.block_until = self.block_until.max(finish);
            // Synchronous migration is fully exposed.
            self.records[record].needed_at = Some(now);
        }
    }

    /// Adaptivity: detect per-window drift and re-arm profiling.
    fn check_variation(&mut self, w: u32, now: Ns, opts: &TahoeOptions) {
        if !opts.adaptive || self.plan.is_none() || self.window_started_at.len() < 3 {
            return;
        }
        let n = self.window_started_at.len();
        // Both compared windows must postdate the last enforcement
        // transition — a drop caused by our own migrations is success,
        // not workload variation.
        if self.window_started_at[n - 3].0 < self.quiet_since {
            return;
        }
        let d1 = self.window_started_at[n - 1].1 - self.window_started_at[n - 2].1;
        let d0 = self.window_started_at[n - 2].1 - self.window_started_at[n - 3].1;
        if d0 > 0.0 && ((d1 - d0) / d0).abs() > self.cfg.model.variation_threshold {
            // Re-profile the next profile_windows windows, then replan.
            self.db.clear();
            self.plan = None;
            self.profiling_until = w + self.cfg.profile_windows;
            // Profiling inflation changes window durations too; wait for
            // it to pass before measuring variation again.
            self.quiet_since = self.profiling_until + 1;
            self.replans += 1;
            self.metrics.inc("driver.replans.drift");
            let until_window = self.profiling_until;
            self.emitter.emit(|| Event::ReplanTriggered {
                t: now,
                window: w,
                reason: ReplanReason::Drift,
            });
            self.emitter.emit(|| Event::ProfilingArmed {
                t: now,
                window: w,
                until_window,
            });
        }
    }

    /// Final migration statistics.
    pub fn migration_stats(&self) -> MigrationStats {
        let mut st = MigrationStats::default();
        for r in &self.records {
            st.record(r);
        }
        st
    }

    /// Units currently in DRAM (for reports).
    pub fn dram_units(&self) -> usize {
        self.hms.objects_on(TierKind::Dram).len()
    }

    /// The chosen plan kind, if a plan was computed.
    pub fn plan_kind(&self) -> Option<PlanKind> {
        self.plan.as_ref().map(|p| p.kind)
    }
}

impl SchedulerHooks for Driver<'_> {
    fn task_duration_ns(&mut self, task: &TaskSpec, start: Ns) -> Ns {
        self.apply_matured(start);
        // Endurance accounting: each access's store bytes wear the tier
        // the object currently resides on (HwCache writes through to NVM
        // eventually; charge NVM, its backing store).
        for a in &task.accesses {
            let bytes = a.profile.stores * tahoe_hms::CACHELINE;
            if bytes > 0 {
                let tier = match self.policy {
                    PolicyKind::HwCache => TierKind::Nvm,
                    _ => self
                        .hms
                        .tier_of(self.units_of(a.object)[0])
                        .expect("unit is live"),
                };
                self.wear.record_stores(tier, bytes);
            }
        }
        let mut dur = self.base_duration_ns(task);
        if let PolicyKind::Tahoe(_) = self.policy {
            self.overhead.sync_ns += SYNC_COST_PER_TASK_NS;
            self.metrics
                .gauge_add("overhead.sync_ns", SYNC_COST_PER_TASK_NS);
            dur += SYNC_COST_PER_TASK_NS;
            // Profile during the profiling windows — and any instance of
            // a class that has not yet met its quota (task classes can
            // first appear long after startup; the paper profiles a few
            // instances of *each class*, whenever they arrive).
            if task.window < self.profiling_until
                || !self
                    .db
                    .is_profiled(task.class, self.cfg.min_class_instances)
            {
                self.profile_task(task);
                let extra = dur * PROFILING_TASK_INFLATION;
                self.overhead.profiling_ns += extra;
                self.metrics.gauge_add("overhead.profiling_ns", extra);
                dur += extra;
            }
        }
        dur
    }

    fn task_earliest_start(&mut self, task: &TaskSpec, now: Ns) -> Ns {
        self.apply_matured(now);
        let mut earliest = now.max(self.block_until);
        // Charge any pending planning cost to the next dispatch.
        if self.pending_plan_cost > 0.0 {
            earliest += self.pending_plan_cost;
            self.overhead.planning_ns += self.pending_plan_cost;
            let charged = self.pending_plan_cost;
            self.metrics.gauge_add("overhead.planning_ns", charged);
            self.emitter.emit(|| Event::OverheadCharged {
                t: now,
                kind: OverheadKind::Planning,
                ns: charged,
            });
            self.pending_plan_cost = 0.0;
        }
        // Wait for in-flight promotions of objects this task *writes*:
        // writing mid-copy would leave a stale DRAM copy. Pure readers
        // proceed against the still-authoritative NVM copy (the paper's
        // dependence rule: migration respects writers, reads are safe).
        let mut needed: Vec<usize> = Vec::new();
        for a in &task.accesses {
            if !a.mode.writes() {
                continue;
            }
            for &unit in self.units_of(a.object) {
                if let Some(inf) = self.inflight.get(&unit) {
                    if inf.finish > earliest {
                        earliest = inf.finish;
                    }
                    needed.push(inf.record);
                }
            }
        }
        for record in needed {
            let rec = &mut self.records[record];
            rec.needed_at = Some(rec.needed_at.map_or(now, |t: f64| t.min(now)));
        }
        earliest
    }

    fn on_window_start(&mut self, w: u32, now: Ns) {
        self.window_started_at.push((w, now));
        // Per-tier occupancy sample at every window boundary, whatever the
        // policy — the observability layer's view of residency over time.
        if self.emitter.enabled() || self.metrics.is_enabled() {
            let dram_used = self.hms.used(TierKind::Dram);
            let nvm_used = self.hms.used(TierKind::Nvm);
            let dram_capacity = self.hms.tier_spec(TierKind::Dram).capacity;
            let nvm_capacity = self.hms.tier_spec(TierKind::Nvm).capacity;
            let inflight = self.inflight.len() as u32;
            self.emitter.emit(|| Event::TierSample {
                t: now,
                window: w,
                dram_used,
                dram_capacity,
                nvm_used,
                nvm_capacity,
                inflight,
            });
            self.metrics
                .series_push("tier.dram_used_bytes", w, dram_used as f64);
            self.metrics
                .series_push("tier.nvm_used_bytes", w, nvm_used as f64);
            self.metrics
                .series_push("tier.inflight", w, inflight as f64);
        }
        let PolicyKind::Tahoe(opts) = self.policy.clone() else {
            return;
        };
        if w == 0 && self.profiling_until > 0 {
            let until_window = self.profiling_until;
            self.emitter.emit(|| Event::ProfilingArmed {
                t: now,
                window: 0,
                until_window,
            });
        }
        // A window introducing a task class the current plan has never
        // seen invalidates the plan: its objects were invisible to the
        // demand estimate. Profile this window (the class-quota rule in
        // `task_duration_ns` does it) and replan at the next boundary.
        if self.plan.is_some() {
            let unseen = self
                .app
                .graph
                .window_tasks(w)
                .iter()
                .any(|&t| self.db.instances_of(self.app.graph.task(t).class) == 0);
            if unseen {
                self.plan = None;
                self.profiling_until = self.profiling_until.max(w + 1);
                self.quiet_since = self.profiling_until + 1;
                self.replans += 1;
                self.metrics.inc("driver.replans.unseen_class");
                let until_window = self.profiling_until;
                self.emitter.emit(|| Event::ReplanTriggered {
                    t: now,
                    window: w,
                    reason: ReplanReason::UnseenClass,
                });
                self.emitter.emit(|| Event::ProfilingArmed {
                    t: now,
                    window: w,
                    until_window,
                });
            }
        }
        self.check_variation(w, now, &opts);
        if self.plan.is_none() && w >= self.profiling_until {
            self.emitter
                .emit(|| Event::ProfilingClosed { t: now, window: w });
            self.compute_plan(w, now, &opts);
        }
        if self.plan.is_some() {
            self.enforce_window(w, now, &opts);
        }
    }

    fn on_task_finish(&mut self, _task: &TaskSpec, finish: Ns) {
        self.apply_matured(finish);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;

    fn two_object_app(windows: u32) -> App {
        let mut b = AppBuilder::new("t");
        let hot = b.object("hot", 1 << 20);
        let cold = b.object("cold", 1 << 20);
        b.set_est_refs(hot, 1.0e8);
        b.set_est_refs(cold, 1.0e3);
        let c = b.class("sweep");
        for w in 0..windows {
            b.task(c)
                .read_streaming(hot, 100_000)
                .write_streaming(hot, 50_000)
                .read_streaming(cold, 10)
                .compute_us(1.0)
                .submit();
            if w + 1 < windows {
                b.next_window();
            }
        }
        b.build()
    }

    fn platform() -> Platform {
        Platform::emulated_bw(0.25, 1 << 20, 1 << 30).unwrap()
    }

    #[test]
    fn dram_only_places_everything_in_dram() {
        let app = two_object_app(3);
        let cfg = RuntimeConfig::default();
        let d = Driver::new(&app, &platform(), &cfg, PolicyKind::DramOnly);
        assert_eq!(d.hms.objects_on(TierKind::Dram).len(), 2);
        assert_eq!(d.hms.objects_on(TierKind::Nvm).len(), 0);
    }

    #[test]
    fn nvm_only_places_everything_in_nvm() {
        let app = two_object_app(3);
        let cfg = RuntimeConfig::default();
        let d = Driver::new(&app, &platform(), &cfg, PolicyKind::NvmOnly);
        assert_eq!(d.hms.objects_on(TierKind::Nvm).len(), 2);
    }

    #[test]
    fn first_touch_fills_dram_then_overflows() {
        let app = two_object_app(3); // 2 MB footprint, 1 MB DRAM
        let cfg = RuntimeConfig::default();
        let d = Driver::new(&app, &platform(), &cfg, PolicyKind::FirstTouch);
        assert_eq!(d.hms.objects_on(TierKind::Dram).len(), 1);
        assert_eq!(d.hms.objects_on(TierKind::Nvm).len(), 1);
        assert_eq!(d.hms.dram_fallbacks, 1);
    }

    #[test]
    fn static_offline_picks_the_hot_object() {
        let app = two_object_app(3);
        let cfg = RuntimeConfig::default();
        let d = Driver::new(&app, &platform(), &cfg, PolicyKind::StaticOffline);
        let dram = d.hms.objects_on(TierKind::Dram);
        assert_eq!(dram.len(), 1);
        // Object 0 ("hot") must be the chosen one.
        assert_eq!(d.hms.meta(dram[0]).unwrap().name, "hot");
    }

    #[test]
    fn tahoe_initial_placement_uses_compiler_estimates() {
        let app = two_object_app(3);
        let cfg = RuntimeConfig::default();
        let d = Driver::new(&app, &platform(), &cfg, PolicyKind::tahoe());
        let dram = d.hms.objects_on(TierKind::Dram);
        assert_eq!(dram.len(), 1);
        assert_eq!(d.hms.meta(dram[0]).unwrap().name, "hot");
    }

    #[test]
    fn tahoe_without_initial_placement_starts_in_nvm() {
        let app = two_object_app(3);
        let cfg = RuntimeConfig::default();
        let o = TahoeOptions {
            initial_placement: false,
            ..TahoeOptions::default()
        };
        let d = Driver::new(&app, &platform(), &cfg, PolicyKind::Tahoe(o));
        assert_eq!(d.hms.objects_on(TierKind::Dram).len(), 0);
    }

    #[test]
    fn chunking_materializes_chunks() {
        let mut b = AppBuilder::new("t");
        let big = b.object_chunkable("big", 10 << 20);
        let c = b.class("s");
        b.task(c).read_streaming(big, 1000).submit();
        let app = b.build();
        let cfg = RuntimeConfig {
            chunk_size: 4 << 20,
            ..RuntimeConfig::default()
        };
        let d = Driver::new(&app, &platform(), &cfg, PolicyKind::tahoe());
        assert_eq!(d.units[0].len(), 3); // 4 + 4 + 2 MB
        let total: u64 = d.units[0].iter().map(|&u| d.hms.size_of(u).unwrap()).sum();
        assert_eq!(total, 10 << 20);
    }
}
