//! Platform and runtime configuration.

use tahoe_hms::{presets, HmsConfig, HmsError, TierSpec};
use tahoe_memprof::SamplerConfig;
use tahoe_perfmodel::ModelParams;

/// Which substrate a run executes on.
///
/// `Virtual` is the simulator: tiers are bookkeeping, time is modelled.
/// `Measured` backs both tiers with `mmap` arenas (`tahoe-realmem`),
/// executes real memory traffic, and reports wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeMode {
    /// Virtual-time simulation (the default everywhere it isn't stated).
    #[default]
    Virtual,
    /// Real buffers, wall-clock timing, software-emulated NVM.
    Measured,
}

impl std::fmt::Display for RuntimeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeMode::Virtual => write!(f, "virtual"),
            RuntimeMode::Measured => write!(f, "measured"),
        }
    }
}

/// The simulated hardware platform: an ordered tier list plus the copy
/// engine. `dram` is the fastest tier, `nvm` the slowest (spill) tier,
/// and `mids` holds any middle tiers (e.g. CXL-attached memory) in
/// fastest-first order between them.
#[derive(Debug, Clone)]
pub struct Platform {
    /// DRAM tier spec (capacity = the scarce fast-tier budget).
    pub dram: TierSpec,
    /// NVM tier spec.
    pub nvm: TierSpec,
    /// Middle tiers between DRAM and NVM, fastest first. Empty for the
    /// classic two-tier platforms.
    pub mids: Vec<TierSpec>,
    /// Copy-channel (helper thread) bandwidth in GB/s. The paper's
    /// migrations run over ordinary memcpy; a mid-range value between the
    /// two tiers' bandwidths is the realistic default.
    pub copy_bw_gbps: f64,
}

impl Platform {
    /// A two-tier platform from explicit tier specs.
    pub fn new(dram: TierSpec, nvm: TierSpec, copy_bw_gbps: f64) -> Self {
        Platform {
            dram,
            nvm,
            mids: Vec::new(),
            copy_bw_gbps,
        }
    }

    /// Insert a middle tier after any existing middle tiers (so calls
    /// list tiers fastest-first, matching the ordered tier list).
    pub fn with_mid_tier(mut self, spec: TierSpec) -> Self {
        self.mids.push(spec);
        self
    }

    /// Three-tier DRAM / CXL / Optane-PMM platform. CXL sits between the
    /// endpoints on latency and inverts Optane's bandwidth asymmetry
    /// (symmetric 2.5 GB/s vs Optane's 3.9 read / 1.3 write), so
    /// latency-bound and write-heavy objects that miss the DRAM budget
    /// prefer the middle tier while read-streaming objects still favor
    /// Optane.
    pub fn optane_cxl(dram_capacity: u64, cxl_capacity: u64, nvm_capacity: u64) -> Self {
        Platform::optane(dram_capacity, nvm_capacity).with_mid_tier(presets::cxl(cxl_capacity))
    }

    /// Number of tiers (2 + middle tiers).
    pub fn n_tiers(&self) -> usize {
        2 + self.mids.len()
    }

    /// The full ordered tier list, fastest first.
    pub fn tier_specs(&self) -> Vec<TierSpec> {
        let mut v = Vec::with_capacity(self.n_tiers());
        v.push(self.dram.clone());
        v.extend(self.mids.iter().cloned());
        v.push(self.nvm.clone());
        v
    }

    /// Quartz-style bandwidth-limited NVM: `bw_frac` of DRAM bandwidth.
    /// Fails on a non-positive or non-finite fraction.
    pub fn emulated_bw(
        bw_frac: f64,
        dram_capacity: u64,
        nvm_capacity: u64,
    ) -> Result<Self, HmsError> {
        let dram = presets::dram(dram_capacity);
        let nvm = presets::emulated_bw(bw_frac, nvm_capacity)?;
        let copy = nvm.write_bw_gbps.min(dram.read_bw_gbps) * 0.8;
        Ok(Platform::new(dram, nvm, copy))
    }

    /// Quartz-style latency-limited NVM: `lat_mult` × DRAM latency.
    /// Fails on a non-positive or non-finite multiplier.
    pub fn emulated_lat(
        lat_mult: f64,
        dram_capacity: u64,
        nvm_capacity: u64,
    ) -> Result<Self, HmsError> {
        let dram = presets::dram(dram_capacity);
        let nvm = presets::emulated_lat(lat_mult, nvm_capacity)?;
        let copy = nvm.write_bw_gbps.min(dram.read_bw_gbps) * 0.8;
        Ok(Platform::new(dram, nvm, copy))
    }

    /// Optane-PMM-like platform.
    pub fn optane(dram_capacity: u64, nvm_capacity: u64) -> Self {
        let dram = presets::dram(dram_capacity);
        let nvm = presets::optane_pmm(nvm_capacity);
        let copy = nvm.write_bw_gbps.min(dram.read_bw_gbps) * 0.8;
        Platform::new(dram, nvm, copy)
    }

    /// The HMS configuration for this platform. Fails if any tier spec
    /// or the copy bandwidth fails validation.
    pub fn hms_config(&self) -> Result<HmsConfig, HmsError> {
        if self.mids.is_empty() {
            HmsConfig::new(self.dram.clone(), self.nvm.clone(), self.copy_bw_gbps)
        } else {
            HmsConfig::with_tiers(self.tier_specs(), self.copy_bw_gbps)
        }
    }

    /// A copy with a different DRAM capacity (sensitivity sweeps).
    pub fn with_dram_capacity(&self, capacity: u64) -> Self {
        let mut p = self.clone();
        p.dram = p.dram.with_capacity(capacity);
        p
    }
}

/// Runtime configuration shared by all policies.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of simulated workers.
    pub workers: usize,
    /// Windows spent profiling before the plan is computed (the paper
    /// profiles the first two iterations).
    pub profile_windows: u32,
    /// Minimum profiled instances per task class before its profile is
    /// trusted.
    pub min_class_instances: u32,
    /// Model thresholds/knobs.
    pub model: ModelParams,
    /// Sampling profiler configuration.
    pub sampler: SamplerConfig,
    /// Chunk size for large-object decomposition, bytes.
    pub chunk_size: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 4,
            profile_windows: 2,
            min_class_instances: 1,
            model: ModelParams::default(),
            sampler: SamplerConfig::default(),
            chunk_size: 512 << 10,
        }
    }
}

impl RuntimeConfig {
    /// Set the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emulated_platforms_have_sane_copy_bandwidth() {
        let p = Platform::emulated_bw(0.5, 1 << 20, 1 << 30).unwrap();
        assert!(p.copy_bw_gbps > 0.0);
        assert!(p.copy_bw_gbps <= p.dram.read_bw_gbps);
        let q = Platform::emulated_lat(4.0, 1 << 20, 1 << 30).unwrap();
        assert!(q.copy_bw_gbps > 0.0);
        assert!(Platform::emulated_bw(-0.5, 1 << 20, 1 << 30).is_err());
        assert!(Platform::emulated_lat(0.0, 1 << 20, 1 << 30).is_err());
    }

    #[test]
    fn runtime_mode_displays() {
        assert_eq!(RuntimeMode::Virtual.to_string(), "virtual");
        assert_eq!(RuntimeMode::Measured.to_string(), "measured");
        assert_eq!(RuntimeMode::default(), RuntimeMode::Virtual);
    }

    #[test]
    fn with_dram_capacity_only_changes_capacity() {
        let p = Platform::optane(1 << 20, 1 << 30);
        let q = p.with_dram_capacity(1 << 22);
        assert_eq!(q.dram.capacity, 1 << 22);
        assert_eq!(q.dram.read_lat_ns, p.dram.read_lat_ns);
        assert_eq!(q.nvm.capacity, p.nvm.capacity);
    }

    #[test]
    fn three_tier_platform_builds_an_ordered_hms_config() {
        let p = Platform::optane_cxl(1 << 20, 4 << 20, 1 << 30);
        assert_eq!(p.n_tiers(), 3);
        let specs = p.tier_specs();
        assert_eq!(specs[0].name, "DRAM");
        assert_eq!(specs[1].name, "CXL");
        assert_eq!(specs[2].name, "Optane PMM");
        let cfg = p.hms_config().unwrap();
        assert_eq!(cfg.n_tiers(), 3);
        assert_eq!(cfg.tier_specs()[1].name, "CXL");
        // Two-tier platforms are unchanged by the generalization.
        let two = Platform::optane(1 << 20, 1 << 30);
        assert_eq!(two.n_tiers(), 2);
        assert_eq!(two.hms_config().unwrap().n_tiers(), 2);
    }

    #[test]
    fn default_config_matches_paper_choices() {
        let c = RuntimeConfig::default();
        assert_eq!(c.profile_windows, 2);
        assert_eq!(c.sampler.interval, 1000);
    }
}
