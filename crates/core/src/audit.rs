//! Model-accuracy audit and observability self-overhead probe.
//!
//! The Tahoe planner earns its migrations with *predictions*: per-object
//! knapsack values derived from the analytic cost model on the fitted
//! tier specs. [`MeasuredRuntime::run_model_audit`] closes the loop — it
//! runs the parallel measured Tahoe policy, pairs every placement
//! decision's predicted per-access saving with the *measured* per-access
//! wall-clock delta between the object's NVM and DRAM residence phases,
//! and reports per-object absolute percentage error plus two aggregates:
//!
//! * **MAPE** — mean absolute percentage error of predicted vs measured
//!   per-access saving over the audited objects;
//! * **sign agreement** — the fraction of audited objects where the
//!   measured saving is actually positive (the model predicted a benefit
//!   and a benefit materialized). Sign agreement is the property the
//!   knapsack's *ranking* depends on; MAPE bounds the magnitude error.
//!
//! Only Tahoe's *chosen* objects are auditable: Tahoe starts everything
//! on NVM and promotes the chosen set after the profiling windows, so
//! exactly those objects accumulate access samples on both tiers.
//!
//! [`MeasuredRuntime::probe_obs_overhead`] answers the other question an
//! always-on flight recorder raises: what does recording cost? It runs
//! the same seeded workload with observability fully off and fully on
//! (emitter + metrics + recorder) and reports the relative wall-clock
//! delta of the best-of-N runs.

use tahoe_memprof::wallclock::WallClockCalibration;
use tahoe_obs::{Emitter, HistSummary, Metrics};

use crate::app::App;
use crate::measured::{reference_checksum_seeded, MeasuredRuntime};
use crate::policy::PolicyKind;

/// One object's predicted-vs-measured row in the audit.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectAudit {
    /// App object index.
    pub object: u32,
    /// Object name (from the app).
    pub name: String,
    /// Object size in bytes.
    pub bytes: u64,
    /// Whether the knapsack promoted the object to DRAM.
    pub chosen: bool,
    /// Accesses the task graph makes to the object.
    pub accesses: u64,
    /// Model-predicted per-access saving of DRAM residence, ns.
    pub predicted_saving_ns: f64,
    /// Measured per-access saving (mean NVM wall − mean DRAM wall), ns;
    /// `None` when the object never ran on both tiers.
    pub measured_saving_ns: Option<f64>,
    /// Absolute percentage error of the prediction (denominator floored
    /// at 1 ns to keep near-zero measurements from exploding the ratio).
    pub ape_pct: Option<f64>,
    /// Whether the measured saving is positive, i.e. the predicted
    /// benefit had the right sign.
    pub sign_agrees: Option<bool>,
}

/// The full audit of one parallel measured Tahoe run.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAudit {
    /// Policy audited (always Tahoe's display name).
    pub policy: String,
    /// Worker threads the run used.
    pub workers: usize,
    /// Run seed that parameterized the traffic.
    pub run_seed: u64,
    /// Every object the planner stamped a decision on.
    pub rows: Vec<ObjectAudit>,
    /// Rows with both a positive prediction and a measurement.
    pub audited: usize,
    /// Mean absolute percentage error over the audited rows.
    pub mape_pct: f64,
    /// Percentage of audited rows whose measured saving is positive.
    pub sign_agreement_pct: f64,
    /// Physical migrations the run performed.
    pub migrations: u64,
    /// Wall-clock time of the run, ns.
    pub wall_ns: f64,
    /// Latency-histogram digests from the run's flight recorder
    /// (task_ns, gate_wait_ns, steal_ns, mig_chunk_ns — empty keys are
    /// omitted).
    pub hists: Vec<(String, HistSummary)>,
}

/// Result of the observability self-overhead probe.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsOverhead {
    /// Best-of-reps wall time with observability off, ns.
    pub off_wall_ns: f64,
    /// Best-of-reps wall time with emitter + metrics + recorder on, ns.
    pub on_wall_ns: f64,
    /// `(on − off) / off`, as a percentage, floored at 0.
    pub overhead_pct: f64,
    /// Repetitions per side.
    pub reps: u32,
}

impl MeasuredRuntime {
    /// Run the parallel measured Tahoe policy and score the cost model's
    /// placement predictions against measured per-access wall-clock
    /// deltas. Fails if the run's checksum diverges from the sequential
    /// reference (an audit of a wrong run is worthless).
    pub fn run_model_audit(
        &self,
        app: &App,
        cal: &WallClockCalibration,
        workers: usize,
        run_seed: u64,
    ) -> Result<ModelAudit, String> {
        let policy = PolicyKind::tahoe();
        // The plan (chosen set + per-object predicted values) from the
        // same preparation path the run will take.
        let prepared = self.prepare(app, &policy, cal)?;
        let plan = prepared
            .tahoe_plan
            .as_ref()
            .ok_or("tahoe preparation must produce a plan")?;
        let chosen: Vec<bool> = (0..app.objects.len())
            .map(|i| plan.chosen.iter().any(|o| o.index() == i))
            .collect();
        let values = prepared
            .plan_values
            .clone()
            .ok_or("tahoe preparation must produce plan values")?;
        drop(prepared);

        let mut accesses = vec![0u64; app.objects.len()];
        for t in app.graph.tasks() {
            for a in &t.accesses {
                accesses[a.object.index()] += 1;
            }
        }

        // Run with metrics (and therefore the flight recorder) on, so
        // the audit artifact carries the latency digests.
        let metrics = Metrics::enabled();
        let rt = self
            .clone()
            .with_observability(self.emitter.clone(), metrics.clone());
        let report = rt.run_policy_parallel(app, &policy, cal, workers, run_seed)?;
        let expect = reference_checksum_seeded(app, run_seed);
        if report.checksum != expect {
            return Err(format!(
                "audit run checksum {:#x} diverged from reference {:#x}",
                report.checksum, expect
            ));
        }

        let mut rows = Vec::new();
        let mut ape_sum = 0.0;
        let mut signs = 0usize;
        let mut audited = 0usize;
        for (i, spec) in app.objects.iter().enumerate() {
            let predicted_total = values[i];
            if !chosen[i] && predicted_total <= 0.0 {
                continue;
            }
            let predicted = if accesses[i] > 0 {
                predicted_total / accesses[i] as f64
            } else {
                0.0
            };
            let measured = report.access_timing[i].measured_saving_ns();
            let (ape_pct, sign_agrees) = match measured {
                Some(meas) if predicted > 0.0 => {
                    let ape = (predicted - meas).abs() / meas.abs().max(1.0) * 100.0;
                    audited += 1;
                    ape_sum += ape;
                    if meas > 0.0 {
                        signs += 1;
                    }
                    (Some(ape), Some(meas > 0.0))
                }
                _ => (None, None),
            };
            rows.push(ObjectAudit {
                object: i as u32,
                name: spec.name.clone(),
                bytes: spec.size,
                chosen: chosen[i],
                accesses: accesses[i],
                predicted_saving_ns: predicted,
                measured_saving_ns: measured,
                ape_pct,
                sign_agrees,
            });
        }

        let hists = metrics
            .snapshot()
            .histograms
            .into_iter()
            .filter(|(_, s)| s.count > 0)
            .collect();
        Ok(ModelAudit {
            policy: report.policy,
            workers: report.workers,
            run_seed,
            rows,
            audited,
            mape_pct: if audited > 0 {
                ape_sum / audited as f64
            } else {
                0.0
            },
            sign_agreement_pct: if audited > 0 {
                signs as f64 / audited as f64 * 100.0
            } else {
                0.0
            },
            migrations: report.migrations,
            wall_ns: report.wall_ns,
            hists,
        })
    }

    /// Measure the flight recorder's self-overhead: the same seeded
    /// parallel Tahoe run with observability fully off vs fully on
    /// (buffered emitter + metrics + recorder), `reps` times each,
    /// comparing best-of-reps wall time. Best-of is the standard
    /// noise-rejection for short wall-clock probes.
    pub fn probe_obs_overhead(
        &self,
        app: &App,
        cal: &WallClockCalibration,
        workers: usize,
        run_seed: u64,
        reps: u32,
    ) -> Result<ObsOverhead, String> {
        let reps = reps.max(1);
        let policy = PolicyKind::tahoe();
        let off_rt = self
            .clone()
            .with_observability(Emitter::disabled(), Metrics::disabled());
        let (on_emitter, on_buffer) = Emitter::buffered();
        let on_rt = self
            .clone()
            .with_observability(on_emitter, Metrics::enabled());

        let mut best_off = f64::INFINITY;
        let mut best_on = f64::INFINITY;
        for _ in 0..reps {
            let off = off_rt.run_policy_parallel(app, &policy, cal, workers, run_seed)?;
            best_off = best_off.min(off.wall_ns);
            let on = on_rt.run_policy_parallel(app, &policy, cal, workers, run_seed)?;
            best_on = best_on.min(on.wall_ns);
            // Keep the buffer from growing across reps; the recording
            // cost (ring pushes, drain, append) is still paid in full
            // inside the timed region.
            let _ = on_buffer.drain();
        }
        Ok(ObsOverhead {
            off_wall_ns: best_off,
            on_wall_ns: best_on,
            overhead_pct: ((best_on - best_off) / best_off * 100.0).max(0.0),
            reps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;
    use crate::config::Platform;
    use tahoe_hms::TierSpec;
    use tahoe_memprof::wallclock::{MeasuredTier, WallClockConfig};

    fn test_cal(dram_cap: u64, nvm_cap: u64) -> WallClockCalibration {
        WallClockCalibration {
            dram: TierSpec::symmetric("dram", 100.0, 10.0, dram_cap),
            nvm: TierSpec::symmetric("nvm", 300.0, 3.0, nvm_cap),
            cf_bw: 1.0,
            cf_lat: 1.0,
            measured: MeasuredTier {
                stream_bw_gbps: 10.0,
                chase_lat_ns: 100.0,
                stream_wall_ns: 1000.0,
                chase_wall_ns: 1000.0,
            },
        }
    }

    fn stream_app(blocks: u32, block_bytes: u64, windows: u32) -> crate::app::App {
        let mut b = AppBuilder::new("audit-test");
        let a: Vec<_> = (0..blocks)
            .map(|i| b.object(&format!("a{i}"), block_bytes))
            .collect();
        let bb: Vec<_> = (0..blocks)
            .map(|i| b.object(&format!("b{i}"), block_bytes))
            .collect();
        let c = b.class("triad");
        for w in 0..windows {
            if w > 0 {
                b.next_window();
            }
            for i in 0..blocks as usize {
                b.task(c)
                    .read_streaming(bb[i], 64)
                    .update_streaming(a[i], 64)
                    .submit();
            }
        }
        b.build()
    }

    fn runtime() -> MeasuredRuntime {
        MeasuredRuntime::new(Platform::optane(1 << 22, 1 << 24), WallClockConfig::smoke())
    }

    #[test]
    fn audit_pairs_predictions_with_measurements() {
        let app = stream_app(4, 32 << 10, 5);
        let footprint = app.footprint();
        let cal = test_cal(footprint / 3, 4 * footprint);
        let audit = runtime()
            .run_model_audit(&app, &cal, 2, 11)
            .expect("audit run");
        assert!(audit.migrations > 0, "tahoe must migrate under pressure");
        assert!(!audit.rows.is_empty());
        assert!(audit.audited >= 1, "chosen objects must be auditable");
        // Audited rows are exactly the ones with both sides present.
        for row in &audit.rows {
            assert_eq!(row.ape_pct.is_some(), row.sign_agrees.is_some());
            if row.ape_pct.is_some() {
                assert!(row.predicted_saving_ns > 0.0);
                assert!(row.measured_saving_ns.is_some());
            }
        }
        assert!(audit.mape_pct.is_finite() && audit.mape_pct >= 0.0);
        assert!((0.0..=100.0).contains(&audit.sign_agreement_pct));
        // The run's latency digests ride along.
        assert!(
            audit.hists.iter().any(|(k, _)| k == "task_ns"),
            "task_ns digest present, got {:?}",
            audit.hists.iter().map(|(k, _)| k).collect::<Vec<_>>()
        );
    }

    #[test]
    fn audit_is_deterministic_in_its_pairing() {
        let app = stream_app(3, 16 << 10, 4);
        let footprint = app.footprint();
        let cal = test_cal(footprint / 3, 4 * footprint);
        let rt = runtime();
        let a = rt.run_model_audit(&app, &cal, 2, 5).expect("audit a");
        let b = rt.run_model_audit(&app, &cal, 2, 5).expect("audit b");
        // Predictions and the chosen set are pure functions of the app
        // and calibration; only the measured side carries noise.
        let pa: Vec<_> = a
            .rows
            .iter()
            .map(|r| (r.object, r.chosen, r.predicted_saving_ns))
            .collect();
        let pb: Vec<_> = b
            .rows
            .iter()
            .map(|r| (r.object, r.chosen, r.predicted_saving_ns))
            .collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn overhead_probe_reports_sane_numbers() {
        let app = stream_app(3, 16 << 10, 3);
        let footprint = app.footprint();
        let cal = test_cal(footprint / 3, 4 * footprint);
        let probe = runtime()
            .probe_obs_overhead(&app, &cal, 2, 0, 2)
            .expect("probe");
        assert!(probe.off_wall_ns > 0.0);
        assert!(probe.on_wall_ns > 0.0);
        assert!(probe.overhead_pct >= 0.0);
        assert_eq!(probe.reps, 2);
    }
}
