//! Measured-mode execution: the policy drivers on real memory.
//!
//! [`RuntimeMode::Measured`](crate::config::RuntimeMode) swaps the
//! virtual-time simulator for a physical substrate:
//!
//! 1. **Calibrate** — map a scratch `mmap` arena, run the executable
//!    STREAM/pointer-chase kernels on it, and fit a `TierSpec` plus
//!    `CF_bw`/`CF_lat` from the wall-clock numbers
//!    ([`tahoe_memprof::wallclock`]). The NVM spec is the fitted DRAM
//!    spec scaled by the reference platform's DRAM→NVM ratios.
//! 2. **Execute** — allocate every app object in [`RealBackend`]-backed
//!    arenas, then run the task graph window by window as *real memory
//!    traffic* ([`tahoe_realmem::traffic`]): each declared access walks
//!    the object's live bytes at native speed; NVM residence then
//!    injects the cf-corrected model *difference* between the slow and
//!    fast device (Quartz-style delay injection). DRAM-resident
//!    accesses run untouched, NVM-resident accesses are spun out by the
//!    derived slowdown.
//! 3. **Compare** — every access folds into a run checksum that is a
//!    pure function of the deterministic traffic, so a reference
//!    execution on plain heap buffers ([`reference_checksum`]) must
//!    match bit for bit, whatever the policy or substrate.
//!
//! Only the four headline policies run in measured mode (DRAM-only,
//! NVM-only, first-touch, Tahoe); the cache/oracle baselines are
//! simulator-only by construction.

use std::time::Instant;

use tahoe_hms::{Hms, HmsConfig, ObjectId, TierId, TierKind, TierSpec};
use tahoe_memprof::wallclock::{
    derive_scaled_spec, fit_calibration, measure_tier, WallClockCalibration, WallClockConfig,
};
use tahoe_obs::{Emitter, Event, Metrics, Tier};
use tahoe_placement::{solve_mck, MckAssignment, MckItem};
use tahoe_realmem::{traffic, MmapArena, RealBackend};
use tahoe_sanitize::{audit_plan, MigrationPlan, PlanContext, PlanStep, SanitizeReport};

use crate::app::App;
use crate::config::Platform;
use crate::policy::PolicyKind;

/// Deterministic per-site seed (splitmix64 of a site key), parameterized
/// by a run seed so the stress suite can vary the traffic contents.
/// `run_seed == 0` reproduces the historical unseeded site key exactly,
/// so existing artifacts stay comparable.
///
/// Public so out-of-crate executors (the multi-tenant server) can run
/// the exact traffic stream the sequential reference folds.
pub fn site_seed(run_seed: u64, task: u32, access: usize) -> u64 {
    let mut z = ((task as u64) << 20)
        ^ access as u64
        ^ 0xA5A5_0000_0000
        ^ run_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn seed(task: u32, access: usize) -> u64 {
    site_seed(0, task, access)
}

/// The canonical checksum fold. Not commutative — equality with the
/// reference requires folding in the canonical order (object inits,
/// then windows → window tasks → accesses).
pub fn fold(acc: u64, x: u64) -> u64 {
    acc.rotate_left(7) ^ x
}

/// One policy's measured outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPolicyReport {
    /// Policy display name.
    pub policy: String,
    /// Wall-clock time of the execution phase, ns (excludes setup and
    /// calibration).
    pub wall_ns: f64,
    /// Bytes of object data walked by the traffic kernels.
    pub bytes_touched: u64,
    /// `bytes_touched / wall_ns` (== GB/s).
    pub throughput_gbps: f64,
    /// Fold of every access checksum, in execution order.
    pub checksum: u64,
    /// Physical inter-tier copies the policy triggered.
    pub migrations: u64,
    /// Bytes those copies moved.
    pub migrated_bytes: u64,
    /// Wall-clock ns spent inside the throttled copy engine.
    pub copy_wall_ns: f64,
    /// Objects resident in DRAM when the run finished.
    pub final_dram_objects: usize,
    /// Objects resident on each tier (fastest first) when the run
    /// finished. Length = tier count; `[0]` equals `final_dram_objects`.
    pub final_tier_objects: Vec<usize>,
}

/// A full measured-mode comparison across policies.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredReport {
    /// The fitted calibration every policy ran under.
    pub calibration: WallClockCalibration,
    /// NUMA nodes the (dram, nvm) arenas were bound to; `-1` = unbound,
    /// pure software emulation.
    pub numa_nodes: (i64, i64),
    /// Per-policy results, in the order requested.
    pub policies: Vec<MeasuredPolicyReport>,
    /// Checksum of the reference execution on plain heap buffers.
    pub reference_checksum: u64,
}

/// Everything a measured policy run needs before its first task: the
/// derived HMS configuration, the backend-loaded [`Hms`] with every
/// object allocated per the policy's initial placement, the app-order →
/// HMS object id map, Tahoe's migration plan (if the policy is Tahoe),
/// and the copy-engine throttle (for the background migration thread).
pub(crate) struct PreparedRun {
    pub(crate) config: HmsConfig,
    pub(crate) hms: Hms,
    pub(crate) ids: Vec<ObjectId>,
    pub(crate) tahoe_plan: Option<tahoe_placement::Solution>,
    /// Tahoe's full N-tier assignment on platforms with middle tiers
    /// (`None` on two-tier platforms, where `tahoe_plan` is the whole
    /// story). When present, `tahoe_plan` is its binary projection —
    /// tier 0 vs everything else — so two-tier consumers (the parallel
    /// runtime's migrator, the model audit) keep working unchanged.
    pub(crate) tahoe_assignment: Option<MckAssignment>,
    pub(crate) copy_cfg: tahoe_realmem::CopyConfig,
    /// Tahoe's per-object knapsack value (predicted ns saved by DRAM
    /// residence over the whole run); `None` for non-Tahoe policies.
    /// This is the prediction the model-accuracy audit scores.
    pub(crate) plan_values: Option<Vec<f64>>,
}

/// Seed for object `i`'s initialization fill. `run_seed == 0` reproduces
/// the historical per-object seed (`i` itself).
pub fn init_seed(run_seed: u64, object: usize) -> u64 {
    object as u64 ^ run_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Measured-mode runtime: a reference platform (capacities + device
/// ratios) plus kernel sizing.
#[derive(Debug, Clone)]
pub struct MeasuredRuntime {
    pub(crate) platform: Platform,
    pub(crate) kernel_cfg: WallClockConfig,
    pub(crate) emitter: Emitter,
    pub(crate) metrics: Metrics,
}

impl MeasuredRuntime {
    /// Build a measured runtime over `platform`. The platform's tier
    /// *capacities* and its DRAM→NVM performance *ratios* are used; its
    /// absolute numbers are replaced by the calibration fit.
    pub fn new(platform: Platform, kernel_cfg: WallClockConfig) -> Self {
        MeasuredRuntime {
            platform,
            kernel_cfg,
            emitter: Emitter::disabled(),
            metrics: Metrics::disabled(),
        }
    }

    /// Attach an event emitter and metrics registry.
    pub fn with_observability(mut self, emitter: Emitter, metrics: Metrics) -> Self {
        self.emitter = emitter;
        self.metrics = metrics;
        self
    }

    /// Run the wall-clock calibration pass on a scratch `mmap` arena.
    pub fn calibrate(&self) -> Result<WallClockCalibration, String> {
        let bytes = self.kernel_cfg.required_bytes();
        let arena = MmapArena::new(TierKind::Dram, bytes)?;
        let ptr = arena
            .data_ptr(0, bytes)
            .ok_or_else(|| "scratch arena too small".to_string())?;
        // SAFETY: the arena maps at least `bytes` writable bytes and
        // lives until after the measurement returns.
        #[allow(unsafe_code)]
        let buf = unsafe { std::slice::from_raw_parts_mut(ptr, bytes as usize) };
        let measured = measure_tier(buf, &self.kernel_cfg)?;
        let cal = fit_calibration(
            &measured,
            &self.kernel_cfg,
            &self.platform.dram,
            &self.platform.nvm,
            self.platform.dram.capacity,
            self.platform.nvm.capacity,
        )
        .map_err(|e| e.to_string())?;
        for (tier, spec) in [(Tier::Dram, &cal.dram), (Tier::Nvm, &cal.nvm)] {
            let (bw_r, bw_w, lat) = (spec.read_bw_gbps, spec.write_bw_gbps, spec.read_lat_ns);
            self.emitter.emit(|| Event::TierFitted {
                t: 0.0,
                tier,
                read_bw_gbps: bw_r,
                write_bw_gbps: bw_w,
                read_lat_ns: lat,
            });
        }
        self.metrics.gauge_set("measured.cf_bw", cal.cf_bw);
        self.metrics.gauge_set("measured.cf_lat", cal.cf_lat);
        Ok(cal)
    }

    /// Shared setup of a measured policy run: validate, derive the HMS
    /// configuration, install a [`RealBackend`], allocate every object on
    /// its policy-chosen tier, and (for Tahoe) compute the knapsack plan
    /// — then refuse to hand the run over unless the static plan auditor
    /// certifies the plan sound. Both the sequential `run_policy` and
    /// `run_policy_parallel` pass through here, so no unsound plan can
    /// reach either executor.
    pub(crate) fn prepare(
        &self,
        app: &App,
        policy: &PolicyKind,
        cal: &WallClockCalibration,
    ) -> Result<PreparedRun, String> {
        let prepared = self.prepare_unaudited(app, policy, cal)?;
        let report = Self::audit_prepared(app, &prepared);
        if !report.is_clean() {
            let kinds: Vec<String> = report
                .by_kind()
                .into_iter()
                .filter(|(_, n)| *n > 0)
                .map(|(tag, n)| format!("{tag}={n}"))
                .collect();
            return Err(format!(
                "refusing to run {}: plan audit found {} violation(s) [{}]; first: {}",
                policy.name(),
                report.violations.len(),
                kinds.join(", "),
                report.violations[0].detail
            ));
        }
        Ok(prepared)
    }

    /// [`MeasuredRuntime::prepare`] without the audit gate.
    fn prepare_unaudited(
        &self,
        app: &App,
        policy: &PolicyKind,
        cal: &WallClockCalibration,
    ) -> Result<PreparedRun, String> {
        match policy {
            PolicyKind::DramOnly
            | PolicyKind::NvmOnly
            | PolicyKind::FirstTouch
            | PolicyKind::Tahoe(_) => {}
            other => {
                return Err(format!(
                    "policy {} is not supported in measured mode",
                    other.name()
                ))
            }
        }
        app.validate()?;
        let footprint = app.footprint();

        // Capacity handling mirrors the virtual driver: DRAM-only is the
        // no-budget upper bound; everything else must at least fit in
        // NVM.
        let mut dram_spec = cal.dram.clone();
        let mut nvm_spec = cal.nvm.clone();
        if matches!(policy, PolicyKind::DramOnly) {
            dram_spec.capacity = dram_spec.capacity.max(footprint);
        }
        nvm_spec.capacity = nvm_spec.capacity.max(2 * footprint);
        let copy_bw = nvm_spec.write_bw_gbps.min(dram_spec.read_bw_gbps) * 0.8;
        let config = if self.platform.mids.is_empty() {
            HmsConfig::new(dram_spec, nvm_spec, copy_bw).map_err(|e| e.to_string())?
        } else {
            // Middle tiers get the same treatment as NVM: the fitted
            // DRAM spec scaled by the reference preset's ratios, at the
            // platform's middle-tier capacity.
            let mut specs = Vec::with_capacity(self.platform.n_tiers());
            specs.push(dram_spec.clone());
            for mid in &self.platform.mids {
                specs.push(derive_scaled_spec(
                    &cal.dram,
                    &self.platform.dram,
                    mid,
                    mid.capacity,
                ));
            }
            specs.push(nvm_spec);
            HmsConfig::with_tiers(specs, copy_bw).map_err(|e| e.to_string())?
        };

        let backend =
            RealBackend::with_observability(&config, self.emitter.clone(), self.metrics.clone())?;
        let copy_cfg = backend.copy_config();
        let mut hms = Hms::new(config.clone());
        hms.set_backend(Box::new(backend));

        // ---- placement + allocation ----------------------------------
        let prefer_dram: Vec<bool> = match policy {
            PolicyKind::DramOnly => vec![true; app.objects.len()],
            PolicyKind::NvmOnly => vec![false; app.objects.len()],
            // First-touch fills DRAM in allocation order and spills.
            PolicyKind::FirstTouch => vec![true; app.objects.len()],
            // Tahoe starts NVM-resident and migrates after profiling.
            PolicyKind::Tahoe(_) => vec![false; app.objects.len()],
            // Rejected above.
            _ => unreachable!("unsupported policy reached placement"),
        };
        let fallback = !matches!(policy, PolicyKind::DramOnly);
        let mut ids: Vec<ObjectId> = Vec::with_capacity(app.objects.len());
        for (spec, &dram) in app.objects.iter().zip(&prefer_dram) {
            let preferred = if dram { TierKind::Dram } else { TierKind::Nvm };
            let id = hms
                .alloc_object(&spec.name, spec.size, preferred, fallback)
                .map_err(|e| format!("alloc {}: {e}", spec.name))?;
            ids.push(id);
        }

        // Tahoe's plan: value of DRAM residence per object over the
        // whole run, from the ground-truth profiles on the fitted specs.
        // Two-tier platforms keep the exact binary-knapsack path; with
        // middle tiers the multiple-choice knapsack assigns every object
        // one tier, and the binary projection (tier 0 vs the rest) is
        // kept alongside for two-tier consumers.
        let mut plan_values: Option<Vec<f64>> = None;
        let mut tahoe_assignment: Option<MckAssignment> = None;
        let tahoe_plan: Option<tahoe_placement::Solution> = match policy {
            PolicyKind::Tahoe(_) if config.n_tiers() == 2 => {
                let mut value = vec![0.0f64; app.objects.len()];
                for t in app.graph.tasks() {
                    for a in &t.accesses {
                        let on_nvm =
                            a.profile.mem_time_ns(&config.nvm) * cf(cal, &a.profile, &config.nvm);
                        let on_dram =
                            a.profile.mem_time_ns(&config.dram) * cf(cal, &a.profile, &config.dram);
                        value[a.object.index()] += (on_nvm - on_dram).max(0.0);
                    }
                }
                let items: Vec<tahoe_placement::Item> = app
                    .objects
                    .iter()
                    .enumerate()
                    .map(|(i, o)| tahoe_placement::Item {
                        id: ObjectId(i as u32),
                        size: o.size,
                        value: value[i],
                    })
                    .collect();
                let solution = tahoe_placement::solve(&items, config.dram.capacity);
                plan_values = Some(value);
                Some(solution)
            }
            PolicyKind::Tahoe(_) => {
                let specs: Vec<TierSpec> = config.tier_specs().into_iter().cloned().collect();
                let n = specs.len();
                let mut values = vec![vec![0.0f64; n]; app.objects.len()];
                for t in app.graph.tasks() {
                    for a in &t.accesses {
                        let on_last = a.profile.mem_time_ns(&specs[n - 1])
                            * cf(cal, &a.profile, &specs[n - 1]);
                        for (ti, spec) in specs.iter().enumerate().take(n - 1) {
                            let on_tier = a.profile.mem_time_ns(spec) * cf(cal, &a.profile, spec);
                            values[a.object.index()][ti] += (on_last - on_tier).max(0.0);
                        }
                    }
                }
                let items: Vec<MckItem> = app
                    .objects
                    .iter()
                    .enumerate()
                    .map(|(i, o)| MckItem {
                        id: ObjectId(i as u32),
                        size: o.size,
                        values: values[i].clone(),
                    })
                    .collect();
                let caps: Vec<u64> = specs.iter().map(|s| s.capacity).collect();
                let assignment = solve_mck(&items, &caps)?;
                // Binary projection for the two-tier facade: objects the
                // MCK put on tier 0 are "chosen", with their DRAM value.
                let chosen = assignment.objects_on(&items, 0);
                let total_size = chosen.iter().map(|o| app.objects[o.index()].size).sum();
                let total_value = chosen.iter().map(|o| values[o.index()][0]).sum();
                tahoe_assignment = Some(assignment);
                plan_values = Some(values.iter().map(|v| v[0]).collect());
                Some(tahoe_placement::Solution {
                    chosen,
                    total_value,
                    total_size,
                })
            }
            _ => None,
        };

        Ok(PreparedRun {
            config,
            hms,
            ids,
            tahoe_plan,
            tahoe_assignment,
            copy_cfg,
            plan_values,
        })
    }

    /// The [`MigrationPlan`] a prepared run will execute: where the
    /// allocator actually placed every object, plus the moves the
    /// Tahoe plan will issue at the profile-window boundary (the same
    /// boundary `run_policy`/`run_policy_parallel` migrate at).
    pub(crate) fn planned_migration(app: &App, prepared: &PreparedRun) -> MigrationPlan {
        let initial_tiers: Vec<u8> = prepared
            .ids
            .iter()
            .map(|&id| {
                prepared
                    .hms
                    .tier_index_of(id)
                    .map(|t| t.0)
                    .unwrap_or_else(|_| (prepared.config.n_tiers() - 1) as u8)
            })
            .collect();
        let boundary = app.windows().saturating_sub(1).min(2);
        let mut steps = Vec::new();
        if let Some(assignment) = &prepared.tahoe_assignment {
            for (i, &t) in assignment.tiers.iter().enumerate() {
                if t != initial_tiers[i] {
                    steps.push(PlanStep {
                        object: i as u32,
                        to_tier: t,
                        window: boundary,
                    });
                }
            }
        } else if let Some(plan) = &prepared.tahoe_plan {
            for o in &plan.chosen {
                if initial_tiers[o.index()] != 0 {
                    steps.push(PlanStep {
                        object: o.0,
                        to_tier: 0,
                        window: boundary,
                    });
                }
            }
        }
        MigrationPlan {
            initial_tiers,
            steps,
        }
    }

    /// Run the static plan auditor over a prepared run.
    pub(crate) fn audit_prepared(app: &App, prepared: &PreparedRun) -> SanitizeReport {
        let plan = Self::planned_migration(app, prepared);
        let specs: Vec<TierSpec> = prepared.config.tier_specs().into_iter().cloned().collect();
        let ctx = PlanContext::new(app.objects.iter().map(|o| o.size).collect());
        audit_plan(&app.graph, &plan, &specs, &ctx)
    }

    /// Pre-flight a policy's migration plan without executing anything:
    /// prepare the run exactly as `run_policy` would (same allocator
    /// decisions, same solver) and return the static auditor's report.
    /// `run_policy` and `run_policy_parallel` enforce the same audit
    /// internally, erroring on an unsound plan; this entry point exposes
    /// the full diagnostic set.
    pub fn verify_plan(
        &self,
        app: &App,
        policy: &PolicyKind,
        cal: &WallClockCalibration,
    ) -> Result<SanitizeReport, String> {
        let prepared = self.prepare_unaudited(app, policy, cal)?;
        Ok(Self::audit_prepared(app, &prepared))
    }

    /// Execute `app` under `policy` on arena-backed objects with the
    /// given calibration. Unsupported policies (cache/oracle baselines)
    /// return an error.
    pub fn run_policy(
        &self,
        app: &App,
        policy: &PolicyKind,
        cal: &WallClockCalibration,
    ) -> Result<MeasuredPolicyReport, String> {
        let PreparedRun {
            config,
            mut hms,
            ids,
            tahoe_plan,
            tahoe_assignment,
            ..
        } = self.prepare(app, policy, cal)?;

        // ---- execution ------------------------------------------------
        let profile_windows = app.windows().saturating_sub(1).min(2);
        let mut checksum = 0u64;
        let mut bytes_touched = 0u64;
        let start = Instant::now();

        // Objects are initialized as real traffic too (this is the
        // first-touch the policies differ on).
        for (i, id) in ids.iter().enumerate() {
            let buf = hms
                .object_bytes(*id)
                .map_err(|e| e.to_string())?
                .ok_or("real backend must expose bytes")?;
            checksum = fold(checksum, traffic::init_fill(buf, i as u64));
            bytes_touched += buf.len() as u64;
        }

        for w in 0..app.windows() {
            // Tahoe migrates its plan in after the profiling windows —
            // real throttled copies through the backend. With an N-tier
            // assignment every object walks to its assigned tier (the
            // per-pair copy config throttles each hop); the two-tier
            // plan keeps promoting the chosen set into DRAM.
            if w == profile_windows {
                if let Some(assignment) = &tahoe_assignment {
                    for (i, &t) in assignment.tiers.iter().enumerate() {
                        let id = ids[i];
                        let target = TierId(t);
                        if hms.tier_index_of(id).map_err(|e| e.to_string())? != target {
                            let _ = hms.move_object_to(id, target);
                        }
                    }
                } else if let Some(plan) = &tahoe_plan {
                    for oid in &plan.chosen {
                        let id = ids[oid.index()];
                        if hms.tier_of(id).map_err(|e| e.to_string())? == TierKind::Nvm {
                            let _ = hms.move_object(id, TierKind::Dram);
                        }
                    }
                }
            }
            for tid in app.graph.window_tasks(w) {
                let task = app.graph.task(tid);
                for (ai, access) in task.accesses.iter().enumerate() {
                    let id = ids[access.object.index()];
                    let tier = hms.tier_index_of(id).map_err(|e| e.to_string())?;
                    // Quartz-style software emulation: the access runs
                    // at native speed, then residence on any tier slower
                    // than DRAM injects the cf-corrected model
                    // *difference* between that device and the fast one.
                    // Injecting the delta (rather than flooring to an
                    // absolute model time) keeps the asymmetry honest
                    // whatever the native kernels cost.
                    let inject_ns = if tier != TierId::FASTEST {
                        let resident = config.tier_spec_at(tier);
                        let slow = access.profile.mem_time_ns(resident)
                            * cf(cal, &access.profile, resident);
                        let fast = access.profile.mem_time_ns(&config.dram)
                            * cf(cal, &access.profile, &config.dram);
                        (slow - fast).max(0.0)
                    } else {
                        0.0
                    };
                    let buf = hms
                        .object_bytes(id)
                        .map_err(|e| e.to_string())?
                        .ok_or("real backend must expose bytes")?;
                    bytes_touched += buf.len() as u64;
                    let c = traffic::run_access(
                        buf,
                        access.profile.loads,
                        access.profile.stores,
                        seed(tid.0, ai),
                    );
                    checksum = fold(checksum, c);
                    if inject_ns > 0.0 {
                        tahoe_realmem::throttle::pace_until(Instant::now(), inject_ns);
                    }
                }
            }
        }
        let wall_ns = (start.elapsed().as_nanos() as f64).max(1.0);

        let stats = hms.backend_stats();
        let final_dram_objects = hms.objects_on(TierKind::Dram).len();
        let mut final_tier_objects = vec![0usize; config.n_tiers()];
        for id in &ids {
            let t = hms.tier_index_of(*id).map_err(|e| e.to_string())?;
            final_tier_objects[t.index()] += 1;
        }
        Ok(MeasuredPolicyReport {
            policy: policy.name(),
            wall_ns,
            bytes_touched,
            throughput_gbps: bytes_touched as f64 / wall_ns,
            checksum,
            migrations: stats.copies,
            migrated_bytes: stats.copied_bytes,
            copy_wall_ns: stats.copy_wall_ns,
            final_dram_objects,
            final_tier_objects,
        })
    }

    /// Calibrate once, run every policy, and attach the reference
    /// checksum.
    pub fn run_suite(&self, app: &App, policies: &[PolicyKind]) -> Result<MeasuredReport, String> {
        let cal = self.calibrate()?;
        let mut reports = Vec::with_capacity(policies.len());
        let mut numa_nodes = (-1i64, -1i64);
        for p in policies {
            let r = self.run_policy(app, p, &cal)?;
            reports.push(r);
        }
        // NUMA topology is a machine property; probe it once for the
        // report.
        let topo = tahoe_realmem::numa::probe();
        if topo.has_remote_node() {
            numa_nodes = (0, topo.nvm_node().map(i64::from).unwrap_or(-1));
        }
        Ok(MeasuredReport {
            calibration: cal,
            numa_nodes,
            policies: reports,
            reference_checksum: reference_checksum(app),
        })
    }
}

/// Which correction factor applies to a profile on a spec.
pub fn cf(
    cal: &WallClockCalibration,
    profile: &tahoe_hms::AccessProfile,
    spec: &tahoe_hms::TierSpec,
) -> f64 {
    if profile.bandwidth_limited_on(spec) {
        cal.cf_bw
    } else {
        cal.cf_lat
    }
}

/// Build multiple-choice knapsack items for `app` over an ordered tier
/// list (fastest first): `values[t]` = modelled ns saved over the whole
/// run by residence on tier `t` instead of the slowest tier (the last
/// entry is therefore 0). Pure model — no wall-clock correction — so
/// the numbers are deterministic across machines and usable in
/// self-validated artifacts.
pub fn mck_items_for(app: &App, specs: &[TierSpec]) -> Vec<MckItem> {
    let n = specs.len();
    let mut values = vec![vec![0.0f64; n]; app.objects.len()];
    for t in app.graph.tasks() {
        for a in &t.accesses {
            let on_last = a.profile.mem_time_ns(&specs[n - 1]);
            for (ti, spec) in specs.iter().enumerate().take(n - 1) {
                values[a.object.index()][ti] += (on_last - a.profile.mem_time_ns(spec)).max(0.0);
            }
        }
    }
    let mut values = values.into_iter();
    app.objects
        .iter()
        .enumerate()
        .map(|(i, o)| MckItem {
            id: ObjectId(i as u32),
            size: o.size,
            values: values.next().expect("one value row per object"),
        })
        .collect()
}

/// Modelled memory time of the whole run with object `i` pinned to tier
/// `tiers[i]` of `specs` throughout (no migrations, no correction
/// factors). The deterministic cost the bench's tier-sweep rows compare.
pub fn modelled_total_ns(app: &App, specs: &[TierSpec], tiers: &[u8]) -> f64 {
    let mut total = 0.0;
    for t in app.graph.tasks() {
        for a in &t.accesses {
            total += a
                .profile
                .mem_time_ns(&specs[tiers[a.object.index()] as usize]);
        }
    }
    total
}

/// Per-object latency-boundedness on `spec`: `true` when most of the
/// object's modelled access time comes from latency-limited
/// (dependent-load) accesses rather than bandwidth-limited streams.
/// This is the classification under which a middle tier like CXL — low
/// latency, modest bandwidth — wins over NVM.
pub fn object_latency_bound(app: &App, spec: &TierSpec) -> Vec<bool> {
    let mut lat = vec![0.0f64; app.objects.len()];
    let mut bw = vec![0.0f64; app.objects.len()];
    for t in app.graph.tasks() {
        for a in &t.accesses {
            let ns = a.profile.mem_time_ns(spec);
            if a.profile.bandwidth_limited_on(spec) {
                bw[a.object.index()] += ns;
            } else {
                lat[a.object.index()] += ns;
            }
        }
    }
    lat.iter().zip(&bw).map(|(l, b)| l > b).collect()
}

/// Solve the placement over an ordered tier list and price the result:
/// the multiple-choice knapsack assignment plus the modelled run cost
/// under it. With two specs this is exactly the binary Tahoe plan (the
/// solver delegates), so `modelled_plan` prices 3-tier and 2-tier
/// configurations on an equal footing.
pub fn modelled_plan(app: &App, specs: &[TierSpec]) -> Result<(MckAssignment, f64), String> {
    let items = mck_items_for(app, specs);
    let caps: Vec<u64> = specs.iter().map(|s| s.capacity).collect();
    let plan = solve_mck(&items, &caps)?;
    let total = modelled_total_ns(app, specs, &plan.tiers);
    Ok((plan, total))
}

/// Execute the app's traffic on plain heap buffers, no tiers, no pacing:
/// the ground truth every measured policy run must match bit for bit.
pub fn reference_checksum(app: &App) -> u64 {
    reference_checksum_seeded(app, 0)
}

/// [`reference_checksum`] with a run seed varying the traffic contents
/// (the parallel stress suite runs several seeds; `run_seed == 0` is the
/// historical stream).
///
/// The fold order — object inits first, then windows → window tasks →
/// accesses — is the *canonical* checksum order: the parallel runtime
/// executes in whatever order its workers race to, but re-folds its
/// per-access checksums in this exact order, so equality here is
/// bit-for-bit regardless of schedule.
pub fn reference_checksum_seeded(app: &App, run_seed: u64) -> u64 {
    let mut buffers: Vec<Vec<u8>> = app
        .objects
        .iter()
        .map(|o| vec![0u8; o.size as usize])
        .collect();
    let mut checksum = 0u64;
    for (i, buf) in buffers.iter_mut().enumerate() {
        checksum = fold(checksum, traffic::init_fill(buf, init_seed(run_seed, i)));
    }
    for w in 0..app.windows() {
        for tid in app.graph.window_tasks(w) {
            let task = app.graph.task(tid);
            for (ai, access) in task.accesses.iter().enumerate() {
                let buf = &mut buffers[access.object.index()];
                let c = traffic::run_access(
                    buf,
                    access.profile.loads,
                    access.profile.stores,
                    site_seed(run_seed, tid.0, ai),
                );
                checksum = fold(checksum, c);
            }
        }
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_across_sites() {
        assert_ne!(seed(0, 0), seed(0, 1));
        assert_ne!(seed(0, 0), seed(1, 0));
    }

    #[test]
    fn reference_checksum_is_deterministic() {
        let mut b = crate::app::AppBuilder::new("t");
        let x = b.object("x", 4096);
        let y = b.object("y", 8192);
        let c = b.class("step");
        b.task(c)
            .read_streaming(x, 64)
            .write_streaming(y, 128)
            .submit();
        b.next_window();
        b.task(c).update_streaming(y, 128).submit();
        let app = b.build();
        assert_eq!(reference_checksum(&app), reference_checksum(&app));
    }
}
