//! The runtime facade: run an application under a policy and report.

use tahoe_obs::{Emitter, Event, Metrics, MetricsSnapshot};
use tahoe_taskrt::{ObsHooks, SimScheduler, Trace, TraceHooks};

use crate::app::App;
use crate::config::{Platform, RuntimeConfig};
use crate::driver::Driver;
use crate::policy::PolicyKind;
use crate::report::RunReport;

/// Everything an observed run captured beyond the report: the structured
/// event stream, the metrics snapshot, and the schedule trace.
#[derive(Debug)]
pub struct ObsCapture {
    /// The event stream in emission order (virtual-time stamped).
    pub events: Vec<Event>,
    /// Snapshot of every counter/gauge/series recorded during the run
    /// (the same snapshot embedded in the report).
    pub metrics: MetricsSnapshot,
    /// The schedule trace (per-task spans and window boundaries).
    pub trace: Trace,
}

impl ObsCapture {
    /// The event stream as deterministic JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        tahoe_obs::to_jsonl(&self.events)
    }

    /// The event stream as Chrome `trace_event` JSON (Perfetto-loadable).
    pub fn to_chrome_trace(&self) -> String {
        tahoe_obs::to_chrome_trace(&self.events)
    }
}

/// Runs applications on a platform under selectable policies.
#[derive(Debug, Clone)]
pub struct Runtime {
    platform: Platform,
    config: RuntimeConfig,
}

impl Runtime {
    /// A runtime for `platform` with `config`.
    pub fn new(platform: Platform, config: RuntimeConfig) -> Self {
        Runtime { platform, config }
    }

    /// The platform in force.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The configuration in force.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Execute `app` under `policy` and collect the report.
    pub fn run(&self, app: &App, policy: &PolicyKind) -> RunReport {
        self.run_traced(app, policy).0
    }

    /// Execute `app` under `policy`, also capturing the schedule trace
    /// (per-task spans and window boundaries; see
    /// [`tahoe_taskrt::Trace::render`] for the ASCII timeline).
    pub fn run_traced(&self, app: &App, policy: &PolicyKind) -> (RunReport, Trace) {
        self.run_with(app, policy, Emitter::disabled(), Metrics::disabled())
    }

    /// Execute `app` under `policy` with full observability: every layer
    /// emits structured events and records metrics. Returns the report
    /// (with its metrics snapshot populated) plus the captured event
    /// stream, metrics and trace.
    ///
    /// Observed runs of the deterministic simulator are themselves
    /// deterministic: identical inputs produce byte-identical JSONL.
    pub fn run_observed(&self, app: &App, policy: &PolicyKind) -> (RunReport, ObsCapture) {
        let (emitter, buffer) = Emitter::buffered();
        let metrics = Metrics::enabled();
        let (report, trace) = self.run_with(app, policy, emitter, metrics.clone());
        let capture = ObsCapture {
            events: buffer.drain(),
            metrics: metrics.snapshot(),
            trace,
        };
        (report, capture)
    }

    fn run_with(
        &self,
        app: &App,
        policy: &PolicyKind,
        emitter: Emitter,
        metrics: Metrics,
    ) -> (RunReport, Trace) {
        app.validate().expect("invalid application");
        let mut driver = Driver::new(app, &self.platform, &self.config, policy.clone());
        driver.set_obs(emitter.clone(), metrics.clone());
        let mut hooks = ObsHooks::new(TraceHooks::new(driver), emitter);
        let sched = SimScheduler::new(self.config.workers);
        let stats = sched.run(&app.graph, &mut hooks);
        let (driver, trace) = hooks.into_inner().into_parts();
        metrics.gauge_set("run.makespan_ns", stats.makespan_ns);
        metrics.gauge_set("run.stall_ns", stats.stall_ns);
        metrics.gauge_set("run.utilization", stats.utilization());
        let report = RunReport {
            app: app.name.clone(),
            policy: policy.name(),
            makespan_ns: stats.makespan_ns,
            utilization: stats.utilization(),
            stall_ns: stats.stall_ns,
            migrations: driver.migration_stats(),
            overhead: driver.overhead,
            plan_kind: driver.plan_kind(),
            replans: driver.replans,
            failed_promotions: driver.failed_promotions,
            tasks: stats.tasks_executed,
            windows: app.windows(),
            final_dram_objects: driver.dram_units(),
            wear: driver.wear,
            metrics: metrics.snapshot(),
        };
        (report, trace)
    }

    /// Run the same app under several policies (comparison tables).
    pub fn run_all(&self, app: &App, policies: &[PolicyKind]) -> Vec<RunReport> {
        policies.iter().map(|p| self.run(app, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;
    use crate::policy::TahoeOptions;

    /// A bandwidth-bound iterative app: one hot streamed array that does
    /// not fit DRAM together with a cold one.
    fn streaming_app(iters: u32) -> App {
        let mut b = AppBuilder::new("stream");
        let hot = b.object("hot", 1 << 20);
        let cold = b.object("cold", 1 << 20);
        b.set_est_refs(hot, 1.0e7);
        b.set_est_refs(cold, 1.0e2);
        let c = b.class("sweep");
        for w in 0..iters {
            for _ in 0..4 {
                b.task(c)
                    .update_streaming(hot, 50_000)
                    .read_streaming(cold, 16)
                    .compute_us(2.0)
                    .submit();
            }
            if w + 1 < iters {
                b.next_window();
            }
        }
        b.build()
    }

    /// A latency-bound app: pointer chasing through a linked structure.
    fn chasing_app(iters: u32) -> App {
        let mut b = AppBuilder::new("chase");
        let heap = b.object("heap", 1 << 20);
        b.set_est_refs(heap, 1.0e6);
        let c = b.class("walk");
        for w in 0..iters {
            for _ in 0..4 {
                b.task(c)
                    .read_chasing(heap, 20_000)
                    .compute_us(1.0)
                    .submit();
            }
            if w + 1 < iters {
                b.next_window();
            }
        }
        b.build()
    }

    fn platform() -> Platform {
        Platform::emulated_bw(0.25, 1 << 20, 1 << 30).unwrap()
    }

    fn rt() -> Runtime {
        Runtime::new(platform(), RuntimeConfig::default())
    }

    #[test]
    fn bounds_order_dram_fastest_nvm_slowest() {
        let app = streaming_app(6);
        let rt = rt();
        let dram = rt.run(&app, &PolicyKind::DramOnly);
        let nvm = rt.run(&app, &PolicyKind::NvmOnly);
        assert!(
            nvm.makespan_ns > 1.5 * dram.makespan_ns,
            "quarter-bandwidth NVM must hurt a streaming app: {} vs {}",
            nvm.makespan_ns,
            dram.makespan_ns
        );
    }

    #[test]
    fn tahoe_lands_between_bounds_and_close_to_dram() {
        let app = streaming_app(8);
        let rt = rt();
        let dram = rt.run(&app, &PolicyKind::DramOnly);
        let nvm = rt.run(&app, &PolicyKind::NvmOnly);
        let tahoe = rt.run(&app, &PolicyKind::tahoe());
        assert!(tahoe.makespan_ns < nvm.makespan_ns, "must beat NVM-only");
        assert!(tahoe.makespan_ns >= dram.makespan_ns * 0.999);
        let recovery = tahoe.gap_recovery(dram.makespan_ns, nvm.makespan_ns);
        assert!(
            recovery > 0.5,
            "expected to recover most of the gap, got {recovery}"
        );
    }

    #[test]
    fn tahoe_beats_nvm_on_latency_bound_app() {
        let app = chasing_app(8);
        let rt = Runtime::new(
            Platform::emulated_lat(4.0, 1 << 20, 1 << 30).unwrap(),
            RuntimeConfig::default(),
        );
        let dram = rt.run(&app, &PolicyKind::DramOnly);
        let nvm = rt.run(&app, &PolicyKind::NvmOnly);
        let tahoe = rt.run(&app, &PolicyKind::tahoe());
        assert!(nvm.makespan_ns > 2.0 * dram.makespan_ns);
        assert!(tahoe.gap_recovery(dram.makespan_ns, nvm.makespan_ns) > 0.5);
    }

    #[test]
    fn migrations_happen_and_are_reported() {
        // Start everything in NVM (no initial placement) so Tahoe must
        // migrate the hot object.
        let app = streaming_app(8);
        let rt = rt();
        let opts = TahoeOptions {
            initial_placement: false,
            ..TahoeOptions::default()
        };
        let rep = rt.run(&app, &PolicyKind::Tahoe(opts));
        assert!(rep.migrations.count >= 1, "expected at least one migration");
        assert!(rep.migrations.bytes >= 1 << 20);
        assert!(rep.final_dram_objects >= 1);
    }

    #[test]
    fn overhead_is_small() {
        let app = streaming_app(10);
        let rep = rt().run(&app, &PolicyKind::tahoe());
        assert!(
            rep.overhead_pct() < 5.0,
            "runtime overhead {}% too large",
            rep.overhead_pct()
        );
    }

    #[test]
    fn all_policies_complete_all_tasks() {
        let app = streaming_app(4);
        let rt = rt();
        for policy in [
            PolicyKind::DramOnly,
            PolicyKind::NvmOnly,
            PolicyKind::FirstTouch,
            PolicyKind::HwCache,
            PolicyKind::StaticOffline,
            PolicyKind::tahoe(),
        ] {
            let rep = rt.run(&app, &policy);
            assert_eq!(rep.tasks, app.graph.len() as u64, "{}", rep.policy);
            assert!(rep.makespan_ns > 0.0);
        }
    }

    #[test]
    fn determinism_same_inputs_same_report() {
        let app = streaming_app(6);
        let rt = rt();
        let a = rt.run(&app, &PolicyKind::tahoe());
        let b = rt.run(&app, &PolicyKind::tahoe());
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn traced_run_matches_untraced_and_captures_all_tasks() {
        let app = streaming_app(5);
        let rt = rt();
        let plain = rt.run(&app, &PolicyKind::tahoe());
        let (rep, trace) = rt.run_traced(&app, &PolicyKind::tahoe());
        assert_eq!(rep.makespan_ns, plain.makespan_ns);
        assert_eq!(trace.spans().len(), app.graph.len());
        assert!((trace.makespan() - rep.makespan_ns).abs() < 1e-9);
        let text = trace.render(60);
        assert!(text.contains("class0"));
    }

    #[test]
    fn wear_accounting_shields_stores_placed_in_dram() {
        let app = streaming_app(6);
        let rt = rt();
        let dram = rt.run(&app, &PolicyKind::DramOnly);
        let nvm = rt.run(&app, &PolicyKind::NvmOnly);
        // All stores land on the resident tier.
        assert_eq!(dram.wear.nvm_store_bytes, 0);
        assert_eq!(nvm.wear.dram_store_bytes, 0);
        assert_eq!(dram.write_shielding(), 1.0);
        assert_eq!(nvm.write_shielding(), 0.0);
        // Both see the same total store traffic.
        assert_eq!(dram.wear.total_store_bytes(), nvm.wear.total_store_bytes());
        // Tahoe shelters the hot (store-heavy) object: high shielding.
        let tahoe = rt.run(&app, &PolicyKind::tahoe());
        assert!(
            tahoe.write_shielding() > 0.9,
            "shielding {}",
            tahoe.write_shielding()
        );
    }

    #[test]
    fn proactive_overlaps_migrations() {
        let app = streaming_app(10);
        let rt = rt();
        let mut opts = TahoeOptions {
            initial_placement: false,
            ..TahoeOptions::default()
        };
        let pro = rt.run(&app, &PolicyKind::Tahoe(opts.clone()));
        opts.proactive = false;
        let sync = rt.run(&app, &PolicyKind::Tahoe(opts));
        if pro.migrations.count > 0 && sync.migrations.count > 0 {
            assert!(
                pro.pct_overlap() >= sync.pct_overlap(),
                "proactive {} should overlap at least as much as sync {}",
                pro.pct_overlap(),
                sync.pct_overlap()
            );
        }
        assert!(pro.makespan_ns <= sync.makespan_ns * 1.001);
    }
}
