//! Measured-mode acceptance: every supported policy runs end-to-end on
//! `mmap` arena-backed objects, and the traffic it generates is
//! bit-for-bit identical to a reference execution on plain heap buffers
//! (checked via the run checksum, which covers every byte read and
//! written).

use tahoe_core::measured::{reference_checksum, MeasuredRuntime};
use tahoe_core::prelude::*;
use tahoe_memprof::wallclock::WallClockConfig;

/// A small but non-trivial app: four objects, mixed access kinds, four
/// windows, with a DRAM budget that forces real placement decisions.
fn test_app() -> App {
    let mut b = AppBuilder::new("measured-accept");
    let hot = b.object("hot", 96 << 10);
    let warm = b.object("warm", 96 << 10);
    let cold = b.object("cold", 160 << 10);
    let idx = b.object("idx", 64 << 10);
    let c = b.class("step");
    for _ in 0..4 {
        b.task(c)
            .update_streaming(hot, 1536)
            .read_streaming(cold, 512)
            .compute_us(1.0)
            .submit();
        b.task(c)
            .read_streaming(hot, 1536)
            .write_streaming(warm, 1536)
            .submit();
        b.task(c).read_chasing(idx, 256).submit();
        b.next_window();
    }
    b.build()
}

fn platform(app: &App) -> Platform {
    // DRAM holds roughly half the footprint.
    Platform::emulated_bw(0.25, app.footprint() / 2, 4 * app.footprint()).expect("valid platform")
}

#[test]
fn all_policies_match_the_reference_bit_for_bit() {
    let app = test_app();
    let rt = MeasuredRuntime::new(platform(&app), WallClockConfig::smoke());
    let cal = rt.calibrate().expect("calibration runs unprivileged");
    assert!(cal.dram.read_bw_gbps > 0.0);
    assert!(cal.nvm.read_bw_gbps < cal.dram.read_bw_gbps);

    let expected = reference_checksum(&app);
    for policy in [
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
        PolicyKind::FirstTouch,
        PolicyKind::tahoe(),
    ] {
        let r = rt.run_policy(&app, &policy, &cal).expect("policy runs");
        assert_eq!(
            r.checksum, expected,
            "{}: measured traffic must equal the reference bit for bit",
            r.policy
        );
        assert!(r.wall_ns > 0.0, "{}: wall clock advanced", r.policy);
        assert!(r.bytes_touched > 0, "{}: traffic flowed", r.policy);
    }
}

#[test]
fn nvm_emulation_is_slower_than_dram() {
    let app = test_app();
    let rt = MeasuredRuntime::new(platform(&app), WallClockConfig::smoke());
    let cal = rt.calibrate().expect("calibration runs unprivileged");
    // Wall-clock comparisons are noisy; compare best-of-3.
    let best = |p: &PolicyKind| {
        (0..3)
            .map(|_| rt.run_policy(&app, p, &cal).expect("runs").wall_ns)
            .fold(f64::INFINITY, f64::min)
    };
    let dram = best(&PolicyKind::DramOnly);
    let nvm = best(&PolicyKind::NvmOnly);
    assert!(
        nvm > dram,
        "NVM-emulated ({nvm} ns) must be slower than DRAM-only ({dram} ns)"
    );
}

#[test]
fn tahoe_migrates_and_still_matches_reference() {
    let app = test_app();
    let rt = MeasuredRuntime::new(platform(&app), WallClockConfig::smoke());
    let cal = rt.calibrate().expect("calibration runs unprivileged");
    let r = rt
        .run_policy(&app, &PolicyKind::tahoe(), &cal)
        .expect("tahoe runs");
    assert!(
        r.migrations > 0,
        "tahoe must physically migrate its DRAM plan in"
    );
    assert!(r.migrated_bytes > 0);
    assert!(r.final_dram_objects > 0);
    assert_eq!(r.checksum, reference_checksum(&app));
}

#[test]
fn three_tier_platform_runs_every_policy_bit_for_bit() {
    let app = test_app();
    // DRAM holds one hot object, CXL adds room for one more, the rest
    // spills to emulated Optane.
    let p = Platform::optane_cxl(112 << 10, 256 << 10, 4 * app.footprint());
    let rt = MeasuredRuntime::new(p, WallClockConfig::smoke());
    let cal = rt.calibrate().expect("calibration runs unprivileged");
    let expected = reference_checksum(&app);
    for policy in [
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
        PolicyKind::FirstTouch,
        PolicyKind::tahoe(),
    ] {
        let r = rt.run_policy(&app, &policy, &cal).expect("policy runs");
        assert_eq!(
            r.checksum, expected,
            "{}: 3-tier measured traffic must equal the reference",
            r.policy
        );
        assert_eq!(r.final_tier_objects.len(), 3, "{}", r.policy);
        assert_eq!(
            r.final_tier_objects.iter().sum::<usize>(),
            app.objects.len(),
            "{}: every object sits on exactly one tier",
            r.policy
        );
        assert_eq!(
            r.final_tier_objects[0], r.final_dram_objects,
            "{}",
            r.policy
        );
    }
    let tahoe = rt
        .run_policy(&app, &PolicyKind::tahoe(), &cal)
        .expect("tahoe runs");
    assert!(tahoe.migrations > 0, "tahoe migrates its N-tier plan in");
}

#[test]
fn unsupported_policies_are_rejected() {
    let app = test_app();
    let rt = MeasuredRuntime::new(platform(&app), WallClockConfig::smoke());
    let cal = rt.calibrate().expect("calibration runs unprivileged");
    let err = rt
        .run_policy(&app, &PolicyKind::HwCache, &cal)
        .expect_err("hardware-cache is simulator-only");
    assert!(err.contains("not supported"), "got: {err}");
}

#[test]
fn run_suite_reports_every_policy_and_the_reference() {
    let app = test_app();
    let rt = MeasuredRuntime::new(platform(&app), WallClockConfig::smoke());
    let report = rt
        .run_suite(&app, &[PolicyKind::DramOnly, PolicyKind::NvmOnly])
        .expect("suite runs");
    assert_eq!(report.policies.len(), 2);
    for p in &report.policies {
        assert_eq!(p.checksum, report.reference_checksum);
    }
    // Single-node CI machines report unbound arenas (-1, -1).
    assert!(report.numa_nodes.0 >= -1 && report.numa_nodes.1 >= -1);
}
