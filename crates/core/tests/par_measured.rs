//! Stress suite for the parallel measured runtime: worker counts ×
//! seeds, every run's checksum must equal the sequential heap-buffer
//! reference bit for bit, and Tahoe at ≥2 workers must report nonzero
//! overlapped migration time whenever migrations occurred.

use tahoe_core::app::{App, AppBuilder};
use tahoe_core::config::Platform;
use tahoe_core::measured::{reference_checksum_seeded, MeasuredRuntime};
use tahoe_core::policy::PolicyKind;
use tahoe_hms::TierSpec;
use tahoe_memprof::wallclock::{MeasuredTier, WallClockCalibration, WallClockConfig};

/// Synthetic calibration (no kernel measurement): DRAM 10 GB/s / 100 ns,
/// NVM 3× slower, correction factors 1.0. Keeps the suite fast and
/// hardware-independent; only the *capacities* shape the policies.
fn synthetic_cal(dram_cap: u64, nvm_cap: u64) -> WallClockCalibration {
    WallClockCalibration {
        dram: TierSpec::symmetric("dram", 100.0, 10.0, dram_cap),
        nvm: TierSpec::symmetric("nvm", 300.0, 3.0, nvm_cap),
        cf_bw: 1.0,
        cf_lat: 1.0,
        measured: MeasuredTier {
            stream_bw_gbps: 10.0,
            chase_lat_ns: 100.0,
            stream_wall_ns: 1000.0,
            chase_wall_ns: 1000.0,
        },
    }
}

/// A blocked triad over three arrays: window w's task i reads b[i], c[i]
/// and writes a[i] — the stream workload's shape, rebuilt here because
/// the workloads crate sits above core.
fn triad_app(blocks: u32, block_bytes: u64, windows: u32) -> App {
    let mut b = AppBuilder::new("stress-triad");
    let a: Vec<_> = (0..blocks)
        .map(|i| b.object(&format!("a{i}"), block_bytes))
        .collect();
    let bv: Vec<_> = (0..blocks)
        .map(|i| b.object(&format!("b{i}"), block_bytes))
        .collect();
    let cv: Vec<_> = (0..blocks)
        .map(|i| b.object(&format!("c{i}"), block_bytes))
        .collect();
    let class = b.class("triad");
    for w in 0..windows {
        if w > 0 {
            b.next_window();
        }
        for i in 0..blocks as usize {
            b.task(class)
                .read_streaming(bv[i], 64)
                .read_streaming(cv[i], 64)
                .write_streaming(a[i], 64)
                .submit();
        }
    }
    b.build()
}

fn runtime() -> MeasuredRuntime {
    MeasuredRuntime::new(Platform::optane(1 << 22, 1 << 24), WallClockConfig::smoke())
}

#[test]
fn parallel_suite_is_deterministic_across_workers_and_seeds() {
    let app = triad_app(4, 16 << 10, 4);
    let footprint = app.footprint();
    // DRAM holds ~a quarter of the footprint: Tahoe has real pressure
    // and its plan promotes a strict subset.
    let cal = synthetic_cal(footprint / 4, 4 * footprint);
    let rt = runtime();

    for &run_seed in &[0u64, 42, 0xDEAD_BEEF] {
        let expect = reference_checksum_seeded(&app, run_seed);
        for &workers in &[1usize, 2, 4] {
            for policy in [
                PolicyKind::DramOnly,
                PolicyKind::NvmOnly,
                PolicyKind::FirstTouch,
                PolicyKind::tahoe(),
            ] {
                let r = rt
                    .run_policy_parallel(&app, &policy, &cal, workers, run_seed)
                    .expect("parallel run");
                assert_eq!(
                    r.checksum, expect,
                    "policy {} diverged at {workers} workers, seed {run_seed:#x}",
                    r.policy
                );
                assert_eq!(r.workers, workers);
                assert!(r.bytes_touched > 0);
            }
        }
    }
}

#[test]
fn tahoe_overlap_is_nonzero_with_multiple_workers() {
    let app = triad_app(4, 32 << 10, 4);
    let footprint = app.footprint();
    let cal = synthetic_cal(footprint / 4, 4 * footprint);
    let rt = runtime();

    for &workers in &[2usize, 4] {
        let r = rt
            .run_policy_parallel(&app, &PolicyKind::tahoe(), &cal, workers, 1)
            .expect("parallel tahoe");
        assert_eq!(r.checksum, reference_checksum_seeded(&app, 1));
        assert!(
            r.migration.count > 0,
            "the Tahoe plan must migrate under DRAM pressure"
        );
        assert!(
            r.migration.overlapped_ns > 0.0,
            "background copies at {workers} workers must overlap execution \
             (stats: {:?})",
            r.migration
        );
        assert!(
            r.migration.pct_overlap() > 0.0,
            "pct_overlap must be nonzero when migrations occurred"
        );
        // Overlap accounting is internally consistent.
        let total = r.migration.overlapped_ns + r.migration.exposed_ns;
        assert!(r.migration.pct_overlap() <= 100.0 + 1e-9);
        assert!(total > 0.0);
    }
}

#[test]
fn parallel_report_fields_are_consistent() {
    let app = triad_app(2, 8 << 10, 2);
    let footprint = app.footprint();
    let cal = synthetic_cal(footprint, 4 * footprint);
    let rt = runtime();
    let r = rt
        .run_policy_parallel(&app, &PolicyKind::DramOnly, &cal, 2, 0)
        .expect("dram-only parallel");
    // DRAM-only never migrates; its report must say so everywhere.
    assert_eq!(r.migrations, 0);
    assert_eq!(r.migration.count, 0);
    assert_eq!(r.migrated_bytes, 0);
    // No migrations at all reads as 100% overlapped by convention.
    assert_eq!(r.migration.pct_overlap(), 100.0);
    assert!(r.throughput_gbps > 0.0);
    assert_eq!(r.final_dram_objects, app.objects.len());
}

#[test]
fn contention_counters_stay_silent_without_migrations() {
    let app = triad_app(4, 16 << 10, 4);
    let footprint = app.footprint();
    let cal = synthetic_cal(footprint, 4 * footprint);
    let rt = runtime();
    let r = rt
        .run_policy_parallel(&app, &PolicyKind::DramOnly, &cal, 4, 0)
        .expect("dram-only parallel");
    // Without a migration there is nothing to wait for: workers never
    // park and never observe a mid-move object. (CAS retries are not
    // asserted zero — two workers pinning disjoint objects in the same
    // shard can still collide benignly.)
    assert_eq!(r.contention.move_waits, 0, "{:?}", r.contention);
    assert_eq!(r.contention.parks, 0, "{:?}", r.contention);
}

#[test]
fn results_are_deterministic_while_contention_is_not() {
    let app = triad_app(4, 32 << 10, 4);
    let footprint = app.footprint();
    let cal = synthetic_cal(footprint / 4, 4 * footprint);
    let rt = runtime();
    // Contention counters (CAS retries, parks, waits) are a property of
    // the schedule, not the results: two runs of the same (policy,
    // workers, seed) may count differently, but their checksums and
    // migration decisions must be bit-identical regardless.
    let a = rt
        .run_policy_parallel(&app, &PolicyKind::tahoe(), &cal, 4, 1)
        .expect("parallel tahoe");
    let b = rt
        .run_policy_parallel(&app, &PolicyKind::tahoe(), &cal, 4, 1)
        .expect("parallel tahoe");
    assert!(a.migration.count > 0);
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.checksum, reference_checksum_seeded(&app, 1));
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.migrated_bytes, b.migrated_bytes);
}
