//! Integration tests for the sanitized parallel measured mode.
//!
//! Correct workloads must produce *zero* violations at every worker
//! count and seed — and the sanitized run must still reproduce the
//! reference checksum bit for bit. Buggy workloads (write-under-read
//! declarations, undeclared extra accesses) must produce an *exact*,
//! schedule-independent violation set; the fuzzer in `tahoe-bench`
//! gates on the same property across its whole sweep.

use tahoe_core::app::{App, AppBuilder};
use tahoe_core::config::Platform;
use tahoe_core::measured::{reference_checksum_seeded, MeasuredRuntime};
use tahoe_core::policy::PolicyKind;
use tahoe_core::{ExtraAccess, ViolationKind};
use tahoe_hms::{AccessProfile, TierSpec};
use tahoe_memprof::wallclock::{MeasuredTier, WallClockCalibration, WallClockConfig};
use tahoe_obs::{Emitter, Metrics};
use tahoe_taskrt::AccessMode;

/// Synthetic calibration: DRAM at 10 GB/s / 100 ns, NVM 3x slower,
/// correction factors 1.0 — no kernel measurement, hardware-independent.
fn test_cal(dram_cap: u64, nvm_cap: u64) -> WallClockCalibration {
    WallClockCalibration {
        dram: TierSpec::symmetric("dram", 100.0, 10.0, dram_cap),
        nvm: TierSpec::symmetric("nvm", 300.0, 3.0, nvm_cap),
        cf_bw: 1.0,
        cf_lat: 1.0,
        measured: MeasuredTier {
            stream_bw_gbps: 10.0,
            chase_lat_ns: 100.0,
            stream_wall_ns: 1000.0,
            chase_wall_ns: 1000.0,
        },
    }
}

fn runtime() -> MeasuredRuntime {
    MeasuredRuntime::new(Platform::optane(1 << 22, 1 << 24), WallClockConfig::smoke())
}

fn stream_app(blocks: u32, block_bytes: u64, windows: u32) -> App {
    let mut b = AppBuilder::new("sanitize-test");
    let a: Vec<_> = (0..blocks)
        .map(|i| b.object(&format!("a{i}"), block_bytes))
        .collect();
    let bb: Vec<_> = (0..blocks)
        .map(|i| b.object(&format!("b{i}"), block_bytes))
        .collect();
    let c = b.class("triad");
    for w in 0..windows {
        if w > 0 {
            b.next_window();
        }
        for i in 0..blocks as usize {
            b.task(c)
                .read_streaming(bb[i], 64)
                .update_streaming(a[i], 64)
                .submit();
        }
    }
    b.build()
}

#[test]
fn correct_workload_is_clean_at_every_worker_count_and_seed() {
    let app = stream_app(4, 8 << 10, 3);
    let footprint = app.footprint();
    let cal = test_cal(footprint / 4, 4 * footprint);
    let rt = runtime();
    // 12 tasks x 2 accesses per run.
    let expect_checked = 24;
    for workers in [1usize, 2, 4] {
        for seed in [0u64, 7, 42] {
            let (report, sanitize) = rt
                .run_policy_sanitized(&app, &PolicyKind::tahoe(), &cal, workers, seed, &[])
                .expect("sanitized run");
            assert!(
                sanitize.is_clean(),
                "violations at {workers} workers seed {seed}: {:?}",
                sanitize.violations
            );
            assert_eq!(sanitize.accesses_checked, expect_checked);
            assert_eq!(
                report.checksum,
                reference_checksum_seeded(&app, seed),
                "sanitize mode changed the answer at {workers} workers seed {seed}"
            );
        }
    }
}

/// A task declares `Read` on an object its profile stores to: the
/// dependence tracker derived reader edges only, so the hidden write
/// races every other toucher with no ordering path.
fn write_under_read_app() -> App {
    let mut b = AppBuilder::new("fixture-wur");
    let x = b.object("x", 8 << 10);
    let c = b.class("reader");
    // "Reader" that sneaks 8 store lines per access.
    b.task(c)
        .access(x, AccessMode::Read, AccessProfile::streaming(64, 8))
        .submit();
    // Honest reader, unordered against the hidden writer.
    b.task(c)
        .access(x, AccessMode::Read, AccessProfile::streaming(64, 0))
        .submit();
    b.build()
}

#[test]
fn write_under_read_fixture_yields_exact_violations() {
    let app = write_under_read_app();
    let footprint = app.footprint();
    let cal = test_cal(footprint, 4 * footprint);
    let rt = runtime();
    // One worker: the hidden write must not become a *real* concurrent
    // race on live buffers; the sanitizer still reports it because the
    // scan is over declarations, not schedules.
    let (_, sanitize) = rt
        .run_policy_sanitized(&app, &PolicyKind::DramOnly, &cal, 1, 0, &[])
        .expect("sanitized run");
    assert_eq!(sanitize.count(ViolationKind::WriteUnderRead), 1);
    assert_eq!(sanitize.count(ViolationKind::UnorderedConflict), 1);
    assert_eq!(sanitize.violations.len(), 2, "{:?}", sanitize.violations);
}

#[test]
fn undeclared_extra_access_fixture_is_exact_and_schedule_independent() {
    // Two tasks on disjoint objects; task 0 claims to also write task
    // 1's object without declaring it. Extra accesses never touch real
    // memory, so this is safe at any worker count — and the report must
    // be identical at every one.
    let mut b = AppBuilder::new("fixture-undeclared");
    let x = b.object("x", 8 << 10);
    let y = b.object("y", 8 << 10);
    let c = b.class("w");
    b.task(c).write_streaming(x, 64).submit();
    b.task(c).write_streaming(y, 64).submit();
    let app = b.build();
    let footprint = app.footprint();
    let cal = test_cal(footprint, 4 * footprint);
    let rt = runtime();
    let extra = [ExtraAccess {
        task: 0,
        object: 1,
        writes: true,
    }];
    let mut reports = Vec::new();
    for workers in [1usize, 2, 4] {
        let (_, sanitize) = rt
            .run_policy_sanitized(&app, &PolicyKind::DramOnly, &cal, workers, 0, &extra)
            .expect("sanitized run");
        assert_eq!(sanitize.count(ViolationKind::UndeclaredAccess), 1);
        assert_eq!(sanitize.count(ViolationKind::UnorderedConflict), 1);
        assert_eq!(sanitize.violations.len(), 2);
        reports.push(sanitize);
    }
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[1], reports[2]);
}

#[test]
fn violations_reach_events_and_metrics() {
    let app = write_under_read_app();
    let footprint = app.footprint();
    let cal = test_cal(footprint, 4 * footprint);
    let (emitter, buffer) = Emitter::buffered();
    let metrics = Metrics::enabled();
    let rt = runtime().with_observability(emitter, metrics.clone());
    let (_, sanitize) = rt
        .run_policy_sanitized(&app, &PolicyKind::DramOnly, &cal, 1, 0, &[])
        .expect("sanitized run");
    assert_eq!(sanitize.violations.len(), 2);
    let events = buffer.drain();
    let mut kinds: Vec<String> = events
        .iter()
        .filter_map(|e| match e {
            tahoe_obs::Event::SanitizeViolation { kind, .. } => Some(kind.clone()),
            _ => None,
        })
        .collect();
    kinds.sort();
    assert_eq!(kinds, ["unordered_conflict", "write_under_read"]);
    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter("sanitize.violations.write_under_read"),
        Some(1)
    );
    assert_eq!(
        snap.counter("sanitize.violations.unordered_conflict"),
        Some(1)
    );
    assert_eq!(snap.counter("sanitize.accesses_checked"), Some(2));
}
