//! End-to-end observability: determinism of the JSONL export, shape of
//! the Chrome trace, and agreement between the event stream, the metrics
//! snapshot and the `RunReport` aggregates.

use tahoe_core::prelude::*;
use tahoe_core::TahoeOptions;
use tahoe_obs::{json, Event};
use tahoe_workloads::{stream, Scale};

/// STREAM at test scale on a platform where promotion clearly pays, with
/// all data starting in NVM so migrations must be issued.
fn observed_stream() -> (RunReport, ObsCapture) {
    let app = stream::app(Scale::Test);
    let platform = Platform::emulated_bw(
        0.125,
        (app.footprint() / 4).max(1 << 20),
        4 * app.footprint(),
    )
    .unwrap();
    let rt = Runtime::new(platform, RuntimeConfig::default());
    let policy = PolicyKind::Tahoe(TahoeOptions {
        initial_placement: false,
        ..TahoeOptions::default()
    });
    rt.run_observed(&app, &policy)
}

#[test]
fn jsonl_export_is_byte_identical_across_runs() {
    let (rep_a, cap_a) = observed_stream();
    let (rep_b, cap_b) = observed_stream();
    assert_eq!(rep_a.makespan_ns, rep_b.makespan_ns);
    let a = cap_a.to_jsonl();
    assert!(!a.is_empty());
    assert_eq!(a, cap_b.to_jsonl(), "observed runs must be deterministic");
    assert_eq!(rep_a.metrics.to_json(), rep_b.metrics.to_json());
}

#[test]
fn jsonl_lines_parse_and_are_time_ordered_per_kind() {
    let (_, cap) = observed_stream();
    let jsonl = cap.to_jsonl();
    assert_eq!(jsonl.lines().count(), cap.events.len());
    for line in jsonl.lines() {
        let v = json::parse(line).expect("every line is one JSON object");
        let ev = v.get("ev").and_then(|t| t.as_str()).expect("ev tag");
        assert!(!ev.is_empty());
        assert!(v.get("t").and_then(|t| t.as_f64()).is_some(), "t stamp");
    }
    // The stream is globally ordered by emission; timestamps of window
    // starts must be monotonically non-decreasing.
    let windows: Vec<f64> = cap
        .events
        .iter()
        .filter(|e| matches!(e, Event::WindowStart { .. }))
        .map(|e| e.timestamp())
        .collect();
    assert!(windows.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn chrome_trace_has_task_spans_and_a_migration_event() {
    let (_, cap) = observed_stream();
    assert!(
        cap.events
            .iter()
            .any(|e| matches!(e, Event::MigrationIssued { .. })),
        "test platform must force at least one migration"
    );
    let trace = json::parse(&cap.to_chrome_trace()).expect("valid JSON");
    let events = trace
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    // Every entry carries the trace_event envelope fields.
    for e in events {
        assert!(e.get("ph").and_then(|v| v.as_str()).is_some(), "ph");
        assert!(e.get("name").and_then(|v| v.as_str()).is_some(), "name");
        let ph = e.get("ph").and_then(|v| v.as_str()).unwrap();
        if ph != "M" {
            assert!(e.get("ts").and_then(|v| v.as_f64()).is_some(), "ts");
        }
    }
    let task_spans = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|v| v.as_str()) == Some("X")
                && e.get("cat").and_then(|v| v.as_str()) == Some("task")
        })
        .count();
    assert_eq!(task_spans, 16, "one complete span per executed task");
    assert!(
        events
            .iter()
            .any(|e| { e.get("cat").and_then(|v| v.as_str()) == Some("migration") }),
        "migration spans present"
    );
}

#[test]
fn events_metrics_and_report_agree() {
    let (rep, cap) = observed_stream();
    let count = |pred: fn(&Event) -> bool| cap.events.iter().filter(|e| pred(e)).count() as u64;
    let starts = count(|e| matches!(e, Event::TaskStart { .. }));
    let finishes = count(|e| matches!(e, Event::TaskFinish { .. }));
    assert_eq!(starts, rep.tasks);
    assert_eq!(finishes, rep.tasks);
    let issued = count(|e| matches!(e, Event::MigrationIssued { .. }));
    assert_eq!(
        Some(issued),
        rep.metrics.counter("driver.migrations.issued")
    );
    assert_eq!(issued, rep.migrations.count);
    // The snapshot embedded in the report matches the captured one.
    assert_eq!(rep.metrics.to_json(), cap.metrics.to_json());
    assert_eq!(rep.metrics.gauge("run.makespan_ns"), Some(rep.makespan_ns));
    // Plain runs keep the snapshot empty (observability fully off).
    let app = stream::app(Scale::Test);
    let platform = Platform::emulated_bw(0.25, 1 << 20, 4 * app.footprint()).unwrap();
    let plain = Runtime::new(platform, RuntimeConfig::default()).run(&app, &PolicyKind::tahoe());
    assert!(plain.metrics.is_empty());
}
