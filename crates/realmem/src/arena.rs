//! Per-tier `mmap` arenas.
//!
//! One [`MmapArena`] backs one tier: a single page-aligned anonymous
//! mapping sized to the tier's capacity. Address translation is trivial
//! by design — the HMS allocator hands out tier-local byte offsets in
//! `[0, capacity)`, and the arena resolves them against its base
//! pointer. Allocation policy stays in `tahoe_hms::alloc::TierAllocator`;
//! the arena only owns the bytes and the residency hints.

use tahoe_hms::{TierId, TierKind};

use crate::sys::{self, Advice, Mapping};

/// A page-aligned, capacity-tracked mapping backing one memory tier.
#[derive(Debug)]
pub struct MmapArena {
    tier: TierId,
    label: String,
    mapping: Mapping,
    capacity: u64,
    /// Bytes currently covered by live allocations (hint bookkeeping).
    live_bytes: u64,
    numa_node: i64,
}

impl MmapArena {
    /// Map an arena of at least `capacity` bytes for a classic two-tier
    /// `tier` (DRAM = tier 0, NVM = tier 1). The mapped length is
    /// `capacity` rounded up to a whole page.
    pub fn new(tier: TierKind, capacity: u64) -> Result<Self, String> {
        Self::new_at(TierId::from_kind(tier, 2), &tier.to_string(), capacity)
    }

    /// Map an arena of at least `capacity` bytes for the tier at index
    /// `tier` with a human-readable `label` (the tier spec's device
    /// name), for N-tier backends.
    pub fn new_at(tier: TierId, label: &str, capacity: u64) -> Result<Self, String> {
        if capacity == 0 {
            return Err(format!("{label} arena capacity must be nonzero"));
        }
        let ps = sys::page_size();
        let mapped = capacity.div_ceil(ps) * ps;
        let mapping =
            sys::map_anonymous(mapped as usize).map_err(|e| format!("{label} arena: {e}"))?;
        Ok(MmapArena {
            tier,
            label: label.to_string(),
            mapping,
            capacity,
            live_bytes: 0,
            numa_node: -1,
        })
    }

    /// Index of the tier this arena backs.
    pub fn tier(&self) -> TierId {
        self.tier
    }

    /// Human-readable device label of the tier this arena backs.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Usable capacity in bytes (what the allocator sees).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Mapped length in bytes (capacity rounded to pages).
    pub fn mapped_len(&self) -> u64 {
        self.mapping.len() as u64
    }

    /// Bytes currently spanned by live allocations.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// NUMA node the arena is bound to, `-1` when unbound (emulation).
    pub fn numa_node(&self) -> i64 {
        self.numa_node
    }

    /// Record the NUMA node this arena's pages were bound to.
    pub(crate) fn set_numa_node(&mut self, node: i64) {
        self.numa_node = node;
    }

    /// Base pointer of the mapping (for NUMA binding of whole arenas).
    pub(crate) fn base_ptr(&self) -> *mut u8 {
        self.mapping.as_ptr()
    }

    /// Resolve `len` bytes at tier-local offset `addr`, or `None` when
    /// the range exceeds the capacity.
    pub fn data_ptr(&self, addr: u64, len: u64) -> Option<*mut u8> {
        if addr.checked_add(len)? > self.capacity {
            return None;
        }
        // SAFETY: the range was just bounds-checked against the mapping.
        Some(unsafe { self.mapping.as_ptr().add(addr as usize) })
    }

    /// A live allocation appeared at `[addr, addr+len)`: pre-fault hint.
    pub fn on_alloc(&mut self, addr: u64, len: u64) {
        self.live_bytes = self.live_bytes.saturating_add(len);
        sys::advise(&self.mapping, addr as usize, len as usize, Advice::WillNeed);
    }

    /// The allocation at `[addr, addr+len)` was freed: let the kernel
    /// reclaim the physical pages (the mapping itself stays).
    pub fn on_free(&mut self, addr: u64, len: u64) {
        self.live_bytes = self.live_bytes.saturating_sub(len);
        sys::advise(&self.mapping, addr as usize, len as usize, Advice::DontNeed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_maps_page_rounded_capacity() {
        let a = MmapArena::new(TierKind::Dram, 10_000).unwrap();
        assert_eq!(a.capacity(), 10_000);
        assert!(a.mapped_len() >= 10_000);
        assert_eq!(a.mapped_len() % sys::page_size(), 0);
        assert_eq!(a.numa_node(), -1);
    }

    #[test]
    fn data_ptr_bounds_checks() {
        let a = MmapArena::new(TierKind::Nvm, 4096).unwrap();
        assert!(a.data_ptr(0, 4096).is_some());
        assert!(a.data_ptr(4096, 1).is_none());
        assert!(a.data_ptr(1, 4096).is_none());
        assert!(a.data_ptr(u64::MAX, 2).is_none());
    }

    #[test]
    fn bytes_are_writable_and_stable_across_hints() {
        let mut a = MmapArena::new(TierKind::Dram, 1 << 16).unwrap();
        a.on_alloc(0, 1 << 12);
        let p = a.data_ptr(100, 8).unwrap();
        // SAFETY: `data_ptr` bounds-checked 8 writable bytes at `p`.
        unsafe {
            p.write_bytes(0x5A, 8);
            assert_eq!(*p, 0x5A);
        }
        // Freeing a *different* range must not clobber live data.
        a.on_alloc(1 << 12, 1 << 12);
        a.on_free(1 << 12, 1 << 12);
        // SAFETY: same in-bounds pointer; the arena mapping is still live.
        unsafe {
            assert_eq!(*p, 0x5A);
        }
        assert_eq!(a.live_bytes(), 1 << 12);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(MmapArena::new(TierKind::Dram, 0).is_err());
        assert!(MmapArena::new_at(TierId(1), "CXL", 0).is_err());
    }

    #[test]
    fn indexed_arena_carries_tier_and_label() {
        let a = MmapArena::new_at(TierId(1), "CXL", 4096).unwrap();
        assert_eq!(a.tier(), TierId(1));
        assert_eq!(a.label(), "CXL");
        let d = MmapArena::new(TierKind::Dram, 4096).unwrap();
        assert_eq!(d.tier(), TierId(0));
        assert_eq!(d.label(), "DRAM");
        let n = MmapArena::new(TierKind::Nvm, 4096).unwrap();
        assert_eq!(n.tier(), TierId(1));
        assert_eq!(n.label(), "NVM");
    }
}
