//! [`RealBackend`]: the `mmap` implementation of `tahoe_hms::TierBackend`.
//!
//! Both tiers get an arena sized to their spec's capacity. Inter-tier
//! copies run through the throttled copy engine with a configuration
//! derived from the tier specs (copy bandwidth bounded by the slower
//! endpoint, startup latency from the NVM device). If the machine has a
//! second NUMA node the NVM arena is bound to it best-effort; otherwise
//! the software throttle alone carries the DRAM/NVM asymmetry.

use std::time::Instant;

use tahoe_hms::{BackendStats, CopyOutcome, HmsConfig, TierBackend, TierKind};
use tahoe_obs::{Emitter, Event, Metrics, Tier};

use crate::arena::MmapArena;
use crate::copy::{throttled_copy, CopyConfig, DEFAULT_CHUNK};
use crate::numa;

fn obs_tier(t: TierKind) -> Tier {
    match t {
        TierKind::Dram => Tier::Dram,
        TierKind::Nvm => Tier::Nvm,
    }
}

/// Real-memory substrate: one [`MmapArena`] per tier plus the throttled
/// copy engine.
#[derive(Debug)]
pub struct RealBackend {
    dram: MmapArena,
    nvm: MmapArena,
    copy_cfg: CopyConfig,
    epoch: Instant,
    emitter: Emitter,
    metrics: Metrics,
    stats: BackendStats,
}

impl RealBackend {
    /// Map both arenas for `config`'s tiers and derive the copy-engine
    /// throttle from the specs: bandwidth is the platform's copy-channel
    /// bandwidth, startup latency is the NVM write latency (every
    /// migration touches NVM on one end; its device latency dominates).
    pub fn new(config: &HmsConfig) -> Result<Self, String> {
        Self::with_observability(config, Emitter::disabled(), Metrics::disabled())
    }

    /// [`RealBackend::new`] with an event emitter and metrics attached.
    pub fn with_observability(
        config: &HmsConfig,
        emitter: Emitter,
        metrics: Metrics,
    ) -> Result<Self, String> {
        let epoch = Instant::now();
        let mut dram = MmapArena::new(TierKind::Dram, config.dram.capacity)?;
        let mut nvm = MmapArena::new(TierKind::Nvm, config.nvm.capacity)?;

        // Best-effort hardware asymmetry: DRAM on node 0, NVM on the
        // highest node — only when a remote node actually exists.
        let topo = numa::probe();
        if let Some(remote) = topo.nvm_node() {
            if let Some(n) = numa::bind_to_node(dram.base_ptr(), dram.mapped_len() as usize, 0) {
                dram.set_numa_node(n as i64);
            }
            if let Some(n) = numa::bind_to_node(nvm.base_ptr(), nvm.mapped_len() as usize, remote) {
                nvm.set_numa_node(n as i64);
            }
        }

        let copy_cfg = CopyConfig {
            bandwidth_gbps: config.copy_bw_gbps,
            latency_ns: config.nvm.write_lat_ns,
            chunk_bytes: DEFAULT_CHUNK,
        };

        for arena in [&dram, &nvm] {
            let t = epoch.elapsed().as_nanos() as f64;
            emitter.emit(|| Event::ArenaMapped {
                t,
                tier: obs_tier(arena.tier()),
                bytes: arena.mapped_len(),
                numa_node: arena.numa_node(),
            });
        }
        metrics.gauge_set("realmem.numa_nodes", topo.nodes as f64);
        metrics.gauge_set("realmem.dram.mapped_bytes", dram.mapped_len() as f64);
        metrics.gauge_set("realmem.nvm.mapped_bytes", nvm.mapped_len() as f64);

        Ok(RealBackend {
            dram,
            nvm,
            copy_cfg,
            epoch,
            emitter,
            metrics,
            stats: BackendStats {
                is_real: true,
                ..BackendStats::default()
            },
        })
    }

    fn arena(&self, tier: TierKind) -> &MmapArena {
        match tier {
            TierKind::Dram => &self.dram,
            TierKind::Nvm => &self.nvm,
        }
    }

    fn arena_mut(&mut self, tier: TierKind) -> &mut MmapArena {
        match tier {
            TierKind::Dram => &mut self.dram,
            TierKind::Nvm => &mut self.nvm,
        }
    }

    /// The copy-engine throttle in force.
    pub fn copy_config(&self) -> CopyConfig {
        self.copy_cfg
    }

    /// Override the copy-engine throttle (tests, calibration sweeps).
    pub fn set_copy_config(&mut self, cfg: CopyConfig) {
        self.copy_cfg = cfg;
    }

    /// NUMA node of each tier's arena (`-1` = unbound, pure emulation).
    pub fn numa_nodes(&self) -> (i64, i64) {
        (self.dram.numa_node(), self.nvm.numa_node())
    }

    /// Fold one completed copy (in-backend or external) into stats,
    /// metrics, and the event stream.
    fn account_copy(&mut self, object: u32, from: TierKind, to: TierKind, out: &CopyOutcome) {
        self.stats.copies += 1;
        self.stats.copied_bytes += out.bytes;
        self.stats.copy_wall_ns += out.wall_ns;
        self.stats.copy_throttle_ns += out.throttle_ns;
        self.metrics.inc("realmem.copies");
        self.metrics.add("realmem.copied_bytes", out.bytes);
        let t = self.epoch.elapsed().as_nanos() as f64;
        let (bytes, wall_ns, throttle_ns, chunks) =
            (out.bytes, out.wall_ns, out.throttle_ns, out.chunks);
        self.emitter.emit(|| Event::RealCopyDone {
            t,
            object,
            bytes,
            from: obs_tier(from),
            to: obs_tier(to),
            wall_ns,
            throttle_ns,
            chunks,
        });
    }
}

impl TierBackend for RealBackend {
    fn name(&self) -> &'static str {
        "mmap"
    }

    fn data_ptr(&mut self, tier: TierKind, addr: u64, len: u64) -> Option<*mut u8> {
        self.arena(tier).data_ptr(addr, len)
    }

    fn on_alloc(&mut self, tier: TierKind, addr: u64, len: u64) {
        self.arena_mut(tier).on_alloc(addr, len);
    }

    fn on_free(&mut self, tier: TierKind, addr: u64, len: u64) {
        self.arena_mut(tier).on_free(addr, len);
    }

    fn copy(
        &mut self,
        object: u32,
        from: TierKind,
        from_addr: u64,
        to: TierKind,
        to_addr: u64,
        len: u64,
    ) -> CopyOutcome {
        let (Some(src), Some(dst)) = (
            self.arena(from).data_ptr(from_addr, len),
            self.arena(to).data_ptr(to_addr, len),
        ) else {
            debug_assert!(false, "copy range out of arena bounds");
            return CopyOutcome::default();
        };
        // SAFETY: both ranges were bounds-checked against their arenas,
        // and the two tiers are distinct mappings, so they cannot
        // overlap.
        let out = unsafe { throttled_copy(src, dst, len, &self.copy_cfg) };
        self.account_copy(object, from, to, &out);
        out
    }

    fn record_external_copy(
        &mut self,
        object: u32,
        from: TierKind,
        to: TierKind,
        outcome: &CopyOutcome,
    ) {
        self.account_copy(object, from, to, outcome);
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::{presets, Hms};

    fn config() -> HmsConfig {
        HmsConfig::new(presets::dram(1 << 20), presets::optane_pmm(1 << 22), 5.0)
            .expect("valid test config")
    }

    #[test]
    fn backend_resolves_pointers_per_tier() {
        let mut b = RealBackend::new(&config()).unwrap();
        assert_eq!(b.name(), "mmap");
        let d = b.data_ptr(TierKind::Dram, 0, 64).unwrap();
        let n = b.data_ptr(TierKind::Nvm, 0, 64).unwrap();
        assert_ne!(d, n, "tiers must be distinct mappings");
        assert!(b.data_ptr(TierKind::Dram, 1 << 20, 1).is_none());
        assert!(b.stats().is_real);
    }

    #[test]
    fn copy_moves_bytes_between_tiers_and_counts() {
        let mut b = RealBackend::new(&config()).unwrap();
        b.set_copy_config(CopyConfig::unthrottled());
        let src = b.data_ptr(TierKind::Nvm, 128, 4096).unwrap();
        // SAFETY: `data_ptr` bounds-checked 4096 writable bytes at `src`.
        unsafe { src.write_bytes(0x77, 4096) };
        let out = b.copy(1, TierKind::Nvm, 128, TierKind::Dram, 256, 4096);
        assert_eq!(out.bytes, 4096);
        let dst = b.data_ptr(TierKind::Dram, 256, 4096).unwrap();
        // SAFETY: `data_ptr` bounds-checked 4096 readable bytes at `dst`.
        let got = unsafe { std::slice::from_raw_parts(dst, 4096) };
        assert!(got.iter().all(|&x| x == 0x77));
        let st = b.stats();
        assert_eq!(st.copies, 1);
        assert_eq!(st.copied_bytes, 4096);
        assert!(st.copy_wall_ns > 0.0);
    }

    #[test]
    fn hms_with_real_backend_gives_writable_object_bytes() {
        let mut hms = Hms::new(config());
        hms.set_backend(Box::new(RealBackend::new(&config()).unwrap()));
        assert_eq!(hms.backend_name(), "mmap");
        let id = hms.alloc_object("buf", 8192, TierKind::Nvm, false).unwrap();
        {
            let bytes = hms.object_bytes(id).unwrap().expect("real backend");
            assert_eq!(bytes.len(), 8192);
            bytes.fill(0xAB);
        }
        // Migration must physically carry the bytes to the other tier.
        hms.move_object(id, TierKind::Dram).unwrap();
        let bytes = hms.object_bytes(id).unwrap().expect("real backend");
        assert!(bytes.iter().all(|&x| x == 0xAB));
        assert_eq!(hms.backend_stats().copies, 1);
        assert_eq!(hms.backend_stats().copied_bytes, 8192);
    }

    #[test]
    fn copy_emits_events() {
        let (emitter, buffer) = Emitter::buffered();
        let mut b =
            RealBackend::with_observability(&config(), emitter, Metrics::enabled()).unwrap();
        b.set_copy_config(CopyConfig::unthrottled());
        b.copy(9, TierKind::Dram, 0, TierKind::Nvm, 0, 1024);
        let events = buffer.drain();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec!["arena_mapped", "arena_mapped", "real_copy_done"]
        );
        match events[2] {
            Event::RealCopyDone { object, bytes, .. } => {
                assert_eq!(object, 9);
                assert_eq!(bytes, 1024);
            }
            ref other => panic!("unexpected event {other:?}"),
        }
    }
}
