//! [`RealBackend`]: the `mmap` implementation of `tahoe_hms::TierBackend`.
//!
//! Every tier in the config's ordered list gets an arena sized to its
//! spec's capacity. Tier-to-tier copies run through the throttled copy
//! engine with a per-(src,dst)-pair configuration derived from the
//! config's copy-bandwidth matrix (startup latency from the slower
//! endpoint's write latency). If the machine has a second NUMA node the
//! spill-tier arena is bound to it best-effort; otherwise the software
//! throttle alone carries the tier asymmetry.

use std::time::Instant;

use tahoe_hms::{BackendStats, CopyOutcome, HmsConfig, TierBackend, TierId};
use tahoe_obs::{Emitter, Event, Metrics, Tier};

use crate::arena::MmapArena;
use crate::copy::{throttled_copy, CopyConfig, DEFAULT_CHUNK};
use crate::numa;

/// The observability event stream stays two-tier: tier 0 is DRAM and
/// everything slower presents as NVM (middle tiers are "not DRAM" to
/// two-tier observers).
fn obs_tier(t: TierId) -> Tier {
    if t == TierId::FASTEST {
        Tier::Dram
    } else {
        Tier::Nvm
    }
}

/// Gauge names for the first arenas (metrics keys are `&'static str`).
const MAPPED_GAUGES: [&str; 4] = [
    "realmem.dram.mapped_bytes",
    "realmem.tier1.mapped_bytes",
    "realmem.tier2.mapped_bytes",
    "realmem.tier3.mapped_bytes",
];

/// Real-memory substrate: one [`MmapArena`] per tier plus the throttled
/// copy engine with one throttle per (src, dst) tier pair.
#[derive(Debug)]
pub struct RealBackend {
    /// One arena per tier, fastest first.
    arenas: Vec<MmapArena>,
    /// Row-major n×n copy-engine configs; entry `[from][to]`.
    copy_cfgs: Vec<CopyConfig>,
    epoch: Instant,
    emitter: Emitter,
    metrics: Metrics,
    stats: BackendStats,
}

impl RealBackend {
    /// Map an arena per tier of `config` and derive each pair's
    /// copy-engine throttle from the specs: bandwidth from the config's
    /// copy matrix (the scalar copy-channel bandwidth in the two-tier
    /// case), startup latency from the slower endpoint's write latency
    /// (every migration touches its slowest device on one end).
    pub fn new(config: &HmsConfig) -> Result<Self, String> {
        Self::with_observability(config, Emitter::disabled(), Metrics::disabled())
    }

    /// [`RealBackend::new`] with an event emitter and metrics attached.
    pub fn with_observability(
        config: &HmsConfig,
        emitter: Emitter,
        metrics: Metrics,
    ) -> Result<Self, String> {
        let epoch = Instant::now();
        let specs = config.tier_specs();
        let n = specs.len();
        let mut arenas = Vec::with_capacity(n);
        for (i, spec) in specs.iter().enumerate() {
            arenas.push(MmapArena::new_at(
                TierId(i as u8),
                &spec.name,
                spec.capacity,
            )?);
        }

        // Best-effort hardware asymmetry: DRAM on node 0, the spill tier
        // on the highest node — only when a remote node actually exists.
        // Middle tiers stay unbound; their asymmetry is software-only.
        let topo = numa::probe();
        if let Some(remote) = topo.nvm_node() {
            let (first, rest) = arenas.split_first_mut().expect("n >= 2 tiers");
            if let Some(nd) = numa::bind_to_node(first.base_ptr(), first.mapped_len() as usize, 0) {
                first.set_numa_node(nd as i64);
            }
            let last = rest.last_mut().expect("n >= 2 tiers");
            if let Some(nd) =
                numa::bind_to_node(last.base_ptr(), last.mapped_len() as usize, remote)
            {
                last.set_numa_node(nd as i64);
            }
        }

        let mut copy_cfgs = Vec::with_capacity(n * n);
        for from in 0..n {
            for to in 0..n {
                copy_cfgs.push(CopyConfig {
                    bandwidth_gbps: if from == to {
                        f64::INFINITY
                    } else {
                        config.copy_bw_between(TierId(from as u8), TierId(to as u8))
                    },
                    latency_ns: specs[from].write_lat_ns.max(specs[to].write_lat_ns),
                    chunk_bytes: DEFAULT_CHUNK,
                });
            }
        }

        for arena in &arenas {
            let t = epoch.elapsed().as_nanos() as f64;
            emitter.emit(|| Event::ArenaMapped {
                t,
                tier: obs_tier(arena.tier()),
                bytes: arena.mapped_len(),
                numa_node: arena.numa_node(),
            });
        }
        metrics.gauge_set("realmem.numa_nodes", topo.nodes as f64);
        for (i, arena) in arenas.iter().enumerate() {
            if i == n - 1 {
                metrics.gauge_set("realmem.nvm.mapped_bytes", arena.mapped_len() as f64);
            } else if let Some(name) = MAPPED_GAUGES.get(i) {
                metrics.gauge_set(name, arena.mapped_len() as f64);
            }
        }

        Ok(RealBackend {
            arenas,
            copy_cfgs,
            epoch,
            emitter,
            metrics,
            stats: BackendStats {
                is_real: true,
                ..BackendStats::default()
            },
        })
    }

    fn n(&self) -> usize {
        self.arenas.len()
    }

    fn arena(&self, tier: TierId) -> &MmapArena {
        &self.arenas[tier.index()]
    }

    fn arena_mut(&mut self, tier: TierId) -> &mut MmapArena {
        &mut self.arenas[tier.index()]
    }

    /// The copy-engine throttle of the DRAM↔spill pair (what the
    /// background migrator, a two-tier consumer, runs with).
    pub fn copy_config(&self) -> CopyConfig {
        self.copy_config_between(TierId::FASTEST, TierId((self.n() - 1) as u8))
    }

    /// The copy-engine throttle of one (src, dst) tier pair.
    pub fn copy_config_between(&self, from: TierId, to: TierId) -> CopyConfig {
        self.copy_cfgs[from.index() * self.n() + to.index()]
    }

    /// Override the copy-engine throttle for *every* tier pair (tests,
    /// calibration sweeps).
    pub fn set_copy_config(&mut self, cfg: CopyConfig) {
        for c in &mut self.copy_cfgs {
            *c = cfg;
        }
    }

    /// Override one (src, dst) pair's copy-engine throttle.
    pub fn set_copy_config_between(&mut self, from: TierId, to: TierId, cfg: CopyConfig) {
        let n = self.n();
        self.copy_cfgs[from.index() * n + to.index()] = cfg;
    }

    /// NUMA node of the fastest and spill arenas (`-1` = unbound, pure
    /// emulation).
    pub fn numa_nodes(&self) -> (i64, i64) {
        (
            self.arenas[0].numa_node(),
            self.arenas[self.n() - 1].numa_node(),
        )
    }

    /// Fold one completed copy (in-backend or external) into stats,
    /// metrics, and the event stream.
    fn account_copy(&mut self, object: u32, from: TierId, to: TierId, out: &CopyOutcome) {
        self.stats.copies += 1;
        self.stats.copied_bytes += out.bytes;
        self.stats.copy_wall_ns += out.wall_ns;
        self.stats.copy_throttle_ns += out.throttle_ns;
        self.metrics.inc("realmem.copies");
        self.metrics.add("realmem.copied_bytes", out.bytes);
        let t = self.epoch.elapsed().as_nanos() as f64;
        let (bytes, wall_ns, throttle_ns, chunks) =
            (out.bytes, out.wall_ns, out.throttle_ns, out.chunks);
        self.emitter.emit(|| Event::RealCopyDone {
            t,
            object,
            bytes,
            from: obs_tier(from),
            to: obs_tier(to),
            wall_ns,
            throttle_ns,
            chunks,
        });
    }
}

impl TierBackend for RealBackend {
    fn name(&self) -> &'static str {
        "mmap"
    }

    fn data_ptr(&mut self, tier: TierId, addr: u64, len: u64) -> Option<*mut u8> {
        self.arena(tier).data_ptr(addr, len)
    }

    fn on_alloc(&mut self, tier: TierId, addr: u64, len: u64) {
        self.arena_mut(tier).on_alloc(addr, len);
    }

    fn on_free(&mut self, tier: TierId, addr: u64, len: u64) {
        self.arena_mut(tier).on_free(addr, len);
    }

    fn copy(
        &mut self,
        object: u32,
        from: TierId,
        from_addr: u64,
        to: TierId,
        to_addr: u64,
        len: u64,
    ) -> CopyOutcome {
        let (Some(src), Some(dst)) = (
            self.arena(from).data_ptr(from_addr, len),
            self.arena(to).data_ptr(to_addr, len),
        ) else {
            debug_assert!(false, "copy range out of arena bounds");
            return CopyOutcome::default();
        };
        let cfg = self.copy_config_between(from, to);
        // SAFETY: both ranges were bounds-checked against their arenas,
        // and distinct tiers are distinct mappings, so they cannot
        // overlap.
        let out = unsafe { throttled_copy(src, dst, len, &cfg) };
        self.account_copy(object, from, to, &out);
        out
    }

    fn record_external_copy(
        &mut self,
        object: u32,
        from: TierId,
        to: TierId,
        outcome: &CopyOutcome,
    ) {
        self.account_copy(object, from, to, outcome);
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::{presets, Hms, TierKind};

    fn config() -> HmsConfig {
        HmsConfig::new(presets::dram(1 << 20), presets::optane_pmm(1 << 22), 5.0)
            .expect("valid test config")
    }

    fn three_tier_config() -> HmsConfig {
        HmsConfig::with_tiers(
            vec![
                presets::dram(1 << 20),
                presets::cxl(1 << 21),
                presets::optane_pmm(1 << 22),
            ],
            5.0,
        )
        .expect("valid 3-tier config")
    }

    #[test]
    fn backend_resolves_pointers_per_tier() {
        let mut b = RealBackend::new(&config()).unwrap();
        assert_eq!(b.name(), "mmap");
        let d = b.data_ptr(TierId(0), 0, 64).unwrap();
        let n = b.data_ptr(TierId(1), 0, 64).unwrap();
        assert_ne!(d, n, "tiers must be distinct mappings");
        assert!(b.data_ptr(TierId(0), 1 << 20, 1).is_none());
        assert!(b.stats().is_real);
    }

    #[test]
    fn copy_moves_bytes_between_tiers_and_counts() {
        let mut b = RealBackend::new(&config()).unwrap();
        b.set_copy_config(CopyConfig::unthrottled());
        let src = b.data_ptr(TierId(1), 128, 4096).unwrap();
        // SAFETY: `data_ptr` bounds-checked 4096 writable bytes at `src`.
        unsafe { src.write_bytes(0x77, 4096) };
        let out = b.copy(1, TierId(1), 128, TierId(0), 256, 4096);
        assert_eq!(out.bytes, 4096);
        let dst = b.data_ptr(TierId(0), 256, 4096).unwrap();
        // SAFETY: `data_ptr` bounds-checked 4096 readable bytes at `dst`.
        let got = unsafe { std::slice::from_raw_parts(dst, 4096) };
        assert!(got.iter().all(|&x| x == 0x77));
        let st = b.stats();
        assert_eq!(st.copies, 1);
        assert_eq!(st.copied_bytes, 4096);
        assert!(st.copy_wall_ns > 0.0);
    }

    #[test]
    fn hms_with_real_backend_gives_writable_object_bytes() {
        let mut hms = Hms::new(config());
        hms.set_backend(Box::new(RealBackend::new(&config()).unwrap()));
        assert_eq!(hms.backend_name(), "mmap");
        let id = hms.alloc_object("buf", 8192, TierKind::Nvm, false).unwrap();
        {
            let bytes = hms.object_bytes(id).unwrap().expect("real backend");
            assert_eq!(bytes.len(), 8192);
            bytes.fill(0xAB);
        }
        // Migration must physically carry the bytes to the other tier.
        hms.move_object(id, TierKind::Dram).unwrap();
        let bytes = hms.object_bytes(id).unwrap().expect("real backend");
        assert!(bytes.iter().all(|&x| x == 0xAB));
        assert_eq!(hms.backend_stats().copies, 1);
        assert_eq!(hms.backend_stats().copied_bytes, 8192);
    }

    #[test]
    fn copy_emits_events() {
        let (emitter, buffer) = Emitter::buffered();
        let mut b =
            RealBackend::with_observability(&config(), emitter, Metrics::enabled()).unwrap();
        b.set_copy_config(CopyConfig::unthrottled());
        b.copy(9, TierId(0), 0, TierId(1), 0, 1024);
        let events = buffer.drain();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec!["arena_mapped", "arena_mapped", "real_copy_done"]
        );
        match events[2] {
            Event::RealCopyDone { object, bytes, .. } => {
                assert_eq!(object, 9);
                assert_eq!(bytes, 1024);
            }
            ref other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn three_tier_backend_maps_and_copies_every_pair() {
        let mut b = RealBackend::new(&three_tier_config()).unwrap();
        b.set_copy_config(CopyConfig::unthrottled());
        // Three distinct mappings.
        let p0 = b.data_ptr(TierId(0), 0, 64).unwrap();
        let p1 = b.data_ptr(TierId(1), 0, 64).unwrap();
        let p2 = b.data_ptr(TierId(2), 0, 64).unwrap();
        assert!(p0 != p1 && p1 != p2 && p0 != p2);
        // Walk bytes down the ladder: DRAM → CXL → NVM.
        // SAFETY: `data_ptr` bounds-checked 512 writable bytes at `p0`.
        unsafe { p0.write_bytes(0x42, 512) };
        b.copy(1, TierId(0), 0, TierId(1), 0, 512);
        b.copy(1, TierId(1), 0, TierId(2), 0, 512);
        // SAFETY: `data_ptr` bounds-checked 512 readable bytes at `p2`.
        let got = unsafe { std::slice::from_raw_parts(p2, 512) };
        assert!(got.iter().all(|&x| x == 0x42));
        assert_eq!(b.stats().copies, 2);
    }

    #[test]
    fn per_pair_copy_configs_derive_from_the_matrix() {
        let cfg = three_tier_config();
        let b = RealBackend::new(&cfg).unwrap();
        // DRAM↔spill keeps the scalar copy bandwidth.
        let dn = b.copy_config_between(TierId(0), TierId(2));
        assert_eq!(dn.bandwidth_gbps, 5.0);
        // Startup latency comes from the slower endpoint's write side.
        assert_eq!(dn.latency_ns, presets::optane_pmm(1).write_lat_ns);
        let dc = b.copy_config_between(TierId(0), TierId(1));
        assert_eq!(dc.bandwidth_gbps, cfg.copy_bw_between(TierId(0), TierId(1)));
        assert_eq!(dc.latency_ns, presets::cxl(1).write_lat_ns);
        // The legacy accessor is the DRAM↔spill pair.
        assert_eq!(b.copy_config(), dn);
    }

    #[test]
    fn pair_override_is_local() {
        let mut b = RealBackend::new(&three_tier_config()).unwrap();
        let before = b.copy_config_between(TierId(0), TierId(2));
        b.set_copy_config_between(TierId(1), TierId(2), CopyConfig::unthrottled());
        assert_eq!(
            b.copy_config_between(TierId(1), TierId(2)),
            CopyConfig::unthrottled()
        );
        assert_eq!(b.copy_config_between(TierId(0), TierId(2)), before);
    }
}
