//! Real-memory backend for the Tahoe reproduction.
//!
//! The rest of the workspace simulates a two-tier memory in virtual
//! time; this crate supplies the *physical* substrate the paper actually
//! ran on, scaled to what an unprivileged single-node machine can do:
//!
//! * [`MmapArena`] — per-tier, page-aligned, capacity-tracked arenas on
//!   raw `mmap`/`munmap` with `madvise` residency hints ([`arena`],
//!   [`sys`]).
//! * Software NVM emulation — a throttled inter-tier copy engine
//!   (rate-limited `memcpy` in bounded chunks with injected per-migration
//!   device latency, [`copy`]) and wall-clock access pacing
//!   ([`throttle`]).
//! * Best-effort NUMA binding via raw `mbind` when a second node exists,
//!   degrading gracefully to pure emulation when it doesn't ([`numa`]).
//! * [`RealBackend`] — the `tahoe_hms::TierBackend` implementation tying
//!   the above together, with arena/copy events on `tahoe-obs`.
//! * [`BackgroundMigrator`] — the paper's helper thread: a dedicated OS
//!   thread draining a migration queue with cancellable throttled copies
//!   over a `tahoe_hms::SharedHms`, overlapping data movement with task
//!   execution ([`migrator`]).
//! * Deterministic traffic synthesis ([`traffic`]) so measured-mode runs
//!   produce checksums comparable bit-for-bit against a reference
//!   execution on plain heap buffers.
//!
//! No external crates: the few syscalls used are declared directly in
//! [`sys`] (std already links libc).

// This crate owns the raw mmap/FFI surface; every unsafe operation must
// sit in an explicit `unsafe` block with its own SAFETY justification,
// even inside `unsafe fn` bodies.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod arena;
pub mod backend;
pub mod copy;
pub mod migrator;
pub mod numa;
pub mod sys;
pub mod throttle;
pub mod traffic;

pub use arena::MmapArena;
pub use backend::RealBackend;
pub use copy::{throttled_copy, throttled_copy_cancellable, CopyConfig};
pub use migrator::{BackgroundMigrator, MigrationObserver, MigrationRequest, MigratorReport};
pub use numa::NumaTopology;
