//! Best-effort NUMA placement for tier arenas.
//!
//! When the machine really has two memory nodes, binding the NVM arena
//! to the remote node gives *hardware* asymmetry (the paper's
//! NUMA-emulation mode) and the software throttle can be dialed down.
//! On single-node machines — like this repo's CI — every call here
//! degrades to a no-op and the software emulation carries the full
//! asymmetry. Nothing requires root; `mbind` on an anonymous private
//! mapping is an unprivileged operation.

use crate::sys;

/// What the NUMA probe found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaTopology {
    /// Memory nodes visible in sysfs (1 when the probe fails).
    pub nodes: u32,
}

impl NumaTopology {
    /// Whether a distinct remote node exists to bind the NVM tier to.
    pub fn has_remote_node(&self) -> bool {
        self.nodes >= 2
    }

    /// The node the NVM arena should bind to (the highest-numbered one),
    /// or `None` on single-node machines.
    pub fn nvm_node(&self) -> Option<u32> {
        self.has_remote_node().then_some(self.nodes - 1)
    }
}

/// Probe `/sys/devices/system/node` for memory nodes. Any read failure
/// reports a single node (pure-emulation fallback).
pub fn probe() -> NumaTopology {
    let nodes = std::fs::read_dir("/sys/devices/system/node")
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    name.strip_prefix("node")
                        .is_some_and(|n| n.chars().all(|c| c.is_ascii_digit()))
                })
                .count() as u32
        })
        .unwrap_or(0)
        .max(1);
    NumaTopology { nodes }
}

/// Bind `[ptr, ptr+len)` to `node` with `mbind(MPOL_BIND)`. Returns the
/// node on success, `None` when binding is unavailable (non-Linux,
/// unknown syscall number, kernel without NUMA, or any errno) — callers
/// treat `None` as "fall back to pure software emulation".
pub fn bind_to_node(ptr: *mut u8, len: usize, node: u32) -> Option<u32> {
    #[cfg(all(unix, target_os = "linux"))]
    {
        const MPOL_BIND: sys::c_long = 2;
        let nr = sys::nr::mbind()?;
        if node >= 64 {
            return None; // one-word nodemask covers every real machine here
        }
        let nodemask: u64 = 1u64 << node;
        // maxnode counts bits and must exceed the highest set bit.
        let ret = sys::syscall6(
            nr,
            ptr as sys::c_long,
            len as sys::c_long,
            MPOL_BIND,
            &nodemask as *const u64 as sys::c_long,
            64 + 1,
            0,
        );
        (ret == 0).then_some(node)
    }
    #[cfg(not(all(unix, target_os = "linux")))]
    {
        let _ = (ptr, len, node);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reports_at_least_one_node() {
        let t = probe();
        assert!(t.nodes >= 1);
        if t.nodes == 1 {
            assert!(!t.has_remote_node());
            assert_eq!(t.nvm_node(), None);
        } else {
            assert_eq!(t.nvm_node(), Some(t.nodes - 1));
        }
    }

    #[test]
    fn binding_to_node_zero_succeeds_or_degrades() {
        // Node 0 always exists; on a NUMA kernel the bind succeeds, on
        // anything else it returns None — both are acceptable outcomes,
        // what matters is that neither path crashes and the memory stays
        // usable.
        let m = crate::sys::map_anonymous(crate::sys::page_size() as usize).unwrap();
        let bound = bind_to_node(m.as_ptr(), m.len(), 0);
        assert!(bound == Some(0) || bound.is_none());
        // SAFETY: the mapping is at least one writable page.
        unsafe {
            *m.as_ptr() = 0x42;
            assert_eq!(*m.as_ptr(), 0x42);
        }
    }

    #[test]
    fn absurd_node_is_rejected_gracefully() {
        let m = crate::sys::map_anonymous(crate::sys::page_size() as usize).unwrap();
        assert_eq!(bind_to_node(m.as_ptr(), m.len(), 1 << 20), None);
    }
}
