//! Wall-clock pacing: the primitive behind software NVM emulation.
//!
//! Quartz-style emulation slows memory down by injecting delay; without
//! root, performance counters, or a second NUMA node the portable
//! equivalent is *pacing*: do the work at full speed, then spin-wait
//! until the elapsed wall time matches what the modelled device would
//! have taken. Spinning (rather than `sleep`) keeps the sub-microsecond
//! injections honest — OS sleep granularity is orders of magnitude too
//! coarse for per-chunk device latencies.

use std::time::Instant;

/// Spin until `deadline_ns` nanoseconds have elapsed since `start`.
/// Returns the nanoseconds actually spent spinning (0 when the deadline
/// had already passed).
pub fn pace_until(start: Instant, deadline_ns: f64) -> f64 {
    let entered = start.elapsed().as_nanos() as f64;
    if entered >= deadline_ns {
        return 0.0;
    }
    loop {
        std::hint::spin_loop();
        let now = start.elapsed().as_nanos() as f64;
        if now >= deadline_ns {
            return now - entered;
        }
    }
}

/// Pace a just-completed piece of work to a floor duration: given the
/// work's own start instant and the minimum time it should appear to
/// take, spin out the remainder. Returns ns spent spinning.
pub fn pace_to_floor(work_start: Instant, floor_ns: f64) -> f64 {
    pace_until(work_start, floor_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_reaches_the_deadline() {
        let start = Instant::now();
        let spun = pace_until(start, 200_000.0); // 200 µs
        let elapsed = start.elapsed().as_nanos() as f64;
        assert!(elapsed >= 200_000.0, "elapsed {elapsed}");
        assert!(spun > 0.0);
    }

    #[test]
    fn past_deadline_is_free() {
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert_eq!(pace_until(start, 10.0), 0.0);
    }
}
