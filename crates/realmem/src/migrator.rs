//! The background migration engine: the paper's helper thread.
//!
//! Tahoe overlaps data movement with computation by handing migration
//! decisions to a dedicated thread that copies objects between tiers
//! while workers keep executing tasks. [`BackgroundMigrator`] is that
//! thread for measured mode: it drains a queue of migration requests,
//! performs each as a two-phase move on a [`SharedHms`] (reserve →
//! throttled copy outside the lock → commit), and produces wall-clock
//! [`MigrationRecord`]s whose `needed_at` stamps come from workers that
//! actually blocked — the ground truth behind the paper's
//! overlapped-vs-exposed migration cost split.
//!
//! Shutdown is cooperative: [`BackgroundMigrator::finish`] closes the
//! queue and joins (all queued moves complete), while
//! [`BackgroundMigrator::cancel`] raises the cancel flag so the engine
//! aborts mid-copy within one chunk and skips the rest of the queue.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use tahoe_hms::{MigrationRecord, MigrationStats, ObjectId, SharedHms, TierKind};
use tahoe_obs::{Emitter, Event, FlightHandle, Tier};

use crate::copy::{throttled_copy_observed, CopyConfig};

/// Callback invoked by the engine thread for every *committed*
/// migration, with the final [`MigrationRecord`] (stamps, tiers,
/// `needed_at`). Runs on the engine thread right after commit — keep it
/// cheap (a counter fold, a board update); long work belongs in a
/// drain-time consumer. Skipped and cancelled requests do not fire it.
pub type MigrationObserver = Arc<dyn Fn(&MigrationRecord) + Send + Sync>;

/// One queued migration: move `object` to tier `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRequest {
    /// Object to migrate.
    pub object: ObjectId,
    /// Destination tier.
    pub to: TierKind,
}

/// What the migration thread did, returned by
/// [`BackgroundMigrator::finish`].
#[derive(Debug, Default, Clone)]
pub struct MigratorReport {
    /// Aggregate overlap accounting over all committed migrations.
    pub stats: MigrationStats,
    /// Every committed migration, in completion order.
    pub records: Vec<MigrationRecord>,
    /// Requests that were moot (already resident, destination full) or
    /// failed to begin.
    pub skipped: u64,
    /// Requests abandoned because the cancel flag was raised (including
    /// copies aborted mid-flight).
    pub cancelled: u64,
}

/// Handle to the background migration thread.
///
/// Created by [`BackgroundMigrator::spawn`]; requests flow in through
/// [`enqueue`](BackgroundMigrator::enqueue) and the final
/// [`MigratorReport`] comes out of [`finish`](BackgroundMigrator::finish).
#[derive(Debug)]
pub struct BackgroundMigrator {
    tx: mpsc::Sender<MigrationRequest>,
    pending: Arc<AtomicUsize>,
    cancel: Arc<AtomicBool>,
    handle: JoinHandle<MigratorReport>,
}

impl BackgroundMigrator {
    /// Start the migration thread over `shared`, copying with `copy_cfg`
    /// and reporting each committed migration on `emitter` (a
    /// `migration_issued` span plus a `migration_completed` instant, the
    /// same events the virtual-time engine emits, here on wall-clock
    /// time).
    pub fn spawn(shared: Arc<SharedHms>, copy_cfg: CopyConfig, emitter: Emitter) -> Self {
        Self::spawn_traced(shared, copy_cfg, emitter, None)
    }

    /// [`spawn`](Self::spawn) with an optional flight-recorder lane: when
    /// present, migration events go to the lock-free lane instead of the
    /// emitter (merged into the shared stream at drain time) and each
    /// copy chunk's wall time lands in the lane's `mig_chunk_ns`
    /// histogram.
    pub fn spawn_traced(
        shared: Arc<SharedHms>,
        copy_cfg: CopyConfig,
        emitter: Emitter,
        flight: Option<FlightHandle>,
    ) -> Self {
        Self::spawn_observed(shared, copy_cfg, emitter, flight, None)
    }

    /// [`spawn_traced`](Self::spawn_traced) with an optional
    /// per-commit [`MigrationObserver`] — live consumers (the server's
    /// telemetry blame board) see each committed record as it happens
    /// instead of waiting for [`finish`](Self::finish).
    pub fn spawn_observed(
        shared: Arc<SharedHms>,
        copy_cfg: CopyConfig,
        emitter: Emitter,
        flight: Option<FlightHandle>,
        observer: Option<MigrationObserver>,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<MigrationRequest>();
        let pending = Arc::new(AtomicUsize::new(0));
        let cancel = Arc::new(AtomicBool::new(false));
        let (p, c) = (Arc::clone(&pending), Arc::clone(&cancel));
        let handle = std::thread::Builder::new()
            .name("tahoe-migrator".into())
            .spawn(move || run_engine(shared, rx, copy_cfg, emitter, flight, observer, p, c))
            .expect("spawn migration thread");
        BackgroundMigrator {
            tx,
            pending,
            cancel,
            handle,
        }
    }

    /// Queue one migration. Requests are processed in order by the
    /// single engine thread (the paper's copy channel is sequential).
    pub fn enqueue(&self, object: ObjectId, to: TierKind) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        // A closed channel only happens after finish(), which consumes
        // self; unwrap communicates the invariant.
        self.tx
            .send(MigrationRequest { object, to })
            .expect("migration engine alive");
    }

    /// Number of requests enqueued but not yet resolved.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Block until every queued request has been resolved (committed,
    /// skipped, or cancelled). Workers keep running while this waits —
    /// it is for synchronization points like end-of-run.
    pub fn drain(&self) {
        while self.pending() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Raise the cancel flag: the engine aborts any in-flight copy at
    /// the next chunk boundary and skips everything still queued.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Close the queue, let the engine resolve everything still queued,
    /// and return its report. (Call [`cancel`](Self::cancel) first for a
    /// fast shutdown.)
    pub fn finish(self) -> MigratorReport {
        drop(self.tx);
        self.handle.join().expect("migration thread panicked")
    }
}

fn obs_tier(t: TierKind) -> Tier {
    match t {
        TierKind::Dram => Tier::Dram,
        TierKind::Nvm => Tier::Nvm,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_engine(
    shared: Arc<SharedHms>,
    rx: mpsc::Receiver<MigrationRequest>,
    copy_cfg: CopyConfig,
    emitter: Emitter,
    flight: Option<FlightHandle>,
    observer: Option<MigrationObserver>,
    pending: Arc<AtomicUsize>,
    cancel: Arc<AtomicBool>,
) -> MigratorReport {
    let mut report = MigratorReport::default();
    for req in rx {
        if cancel.load(Ordering::Relaxed) {
            report.cancelled += 1;
            pending.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        match shared.begin_move_blocking(req.object, req.to, &cancel) {
            Ok(Some(started)) => {
                // The long copy runs with no lock held: workers execute
                // and pin other objects concurrently; only this object
                // is fenced (mid-move) until commit.
                // SAFETY: `begin_move_blocking` resolved both ranges
                // inside their arenas and fenced the object, so the
                // source cannot be freed or written and the destination
                // reservation is exclusive until commit/abort.
                let (outcome, completed) = unsafe {
                    throttled_copy_observed(
                        started.src,
                        started.dst,
                        started.size(),
                        &copy_cfg,
                        &cancel,
                        &mut |ns| {
                            if let Some(f) = &flight {
                                f.record("mig_chunk_ns", ns);
                            }
                        },
                    )
                };
                if completed {
                    let rec = shared.commit_move(started, &outcome);
                    let issued = Event::MigrationIssued {
                        t: rec.issued_at,
                        object: rec.object.0,
                        bytes: rec.bytes,
                        from: obs_tier(rec.from),
                        to: obs_tier(rec.to),
                        start: rec.start,
                        finish: rec.finish,
                        queue_depth: pending.load(Ordering::SeqCst) as u32 - 1,
                    };
                    let done = Event::MigrationCompleted {
                        t: rec.finish,
                        object: rec.object.0,
                        bytes: rec.bytes,
                        overlap_ns: rec.overlapped_ns(),
                    };
                    match &flight {
                        Some(f) => {
                            f.emit(issued);
                            f.emit(done);
                        }
                        None => {
                            emitter.emit(|| issued);
                            emitter.emit(|| done);
                        }
                    }
                    if let Some(obs) = &observer {
                        obs(&rec);
                    }
                    report.stats.record(&rec);
                    report.records.push(rec);
                } else {
                    shared.abort_move(started);
                    report.cancelled += 1;
                }
            }
            Ok(None) => {
                if cancel.load(Ordering::Relaxed) {
                    report.cancelled += 1;
                } else {
                    report.skipped += 1;
                }
            }
            Err(_) => report.skipped += 1,
        }
        pending.fetch_sub(1, Ordering::SeqCst);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::{presets, Hms, HmsConfig};

    use crate::backend::RealBackend;

    fn shared(dram: u64, nvm: u64) -> Arc<SharedHms> {
        let config = HmsConfig::new(presets::dram(dram), presets::optane_pmm(nvm), 5.0).unwrap();
        let backend = RealBackend::new(&config).unwrap();
        let mut hms = Hms::new(config);
        hms.set_backend(Box::new(backend));
        Arc::new(SharedHms::new(hms))
    }

    #[test]
    fn queued_moves_commit_and_carry_bytes() {
        let sh = shared(1 << 20, 1 << 22);
        let a = sh.with(|h| h.alloc_object("a", 64 << 10, TierKind::Nvm, false).unwrap());
        let b = sh.with(|h| h.alloc_object("b", 32 << 10, TierKind::Nvm, false).unwrap());
        let pins = sh.pin_for_task(&[a]).unwrap();
        // SAFETY: the pin guarantees 64 KiB of exclusive writable bytes.
        unsafe { pins.objects[0].as_ptr().write_bytes(0x5A, 64 << 10) };
        drop(pins);

        let eng = BackgroundMigrator::spawn(
            Arc::clone(&sh),
            CopyConfig::unthrottled(),
            Emitter::disabled(),
        );
        eng.enqueue(a, TierKind::Dram);
        eng.enqueue(b, TierKind::Dram);
        eng.drain();
        assert_eq!(eng.pending(), 0);
        let report = eng.finish();
        assert_eq!(report.stats.count, 2);
        assert_eq!(report.stats.bytes, (64 << 10) + (32 << 10));
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.cancelled, 0);

        let sh = Arc::try_unwrap(sh).expect("engine joined");
        let mut hms = sh.into_inner();
        assert_eq!(hms.tier_of(a).unwrap(), TierKind::Dram);
        assert_eq!(hms.tier_of(b).unwrap(), TierKind::Dram);
        let bytes = hms.object_bytes(a).unwrap().expect("real backend");
        assert!(bytes.iter().all(|&x| x == 0x5A), "bytes moved intact");
        // External copies must land in backend stats like in-band ones.
        assert_eq!(hms.backend_stats().copies, 2);
    }

    #[test]
    fn moot_requests_are_skipped_not_fatal() {
        let sh = shared(1 << 16, 1 << 20);
        let d = sh.with(|h| h.alloc_object("d", 4096, TierKind::Dram, false).unwrap());
        let eng = BackgroundMigrator::spawn(
            Arc::clone(&sh),
            CopyConfig::unthrottled(),
            Emitter::disabled(),
        );
        eng.enqueue(d, TierKind::Dram); // already there
        let report = eng.finish();
        assert_eq!(report.skipped, 1);
        assert_eq!(report.stats.count, 0);
    }

    #[test]
    fn cancel_abandons_the_queue() {
        let sh = shared(1 << 20, 1 << 22);
        let a = sh.with(|h| {
            h.alloc_object("a", 256 << 10, TierKind::Nvm, false)
                .unwrap()
        });
        let eng = BackgroundMigrator::spawn(
            Arc::clone(&sh),
            // Slow enough (0.05 GB/s ⇒ ~5 ms for 256 KiB) that cancel
            // lands mid-copy; 4 KiB chunks bound the abort latency.
            CopyConfig {
                bandwidth_gbps: 0.05,
                latency_ns: 0.0,
                chunk_bytes: 4096,
            },
            Emitter::disabled(),
        );
        eng.enqueue(a, TierKind::Dram);
        std::thread::sleep(Duration::from_millis(1));
        eng.cancel();
        let report = eng.finish();
        assert_eq!(report.cancelled, 1);
        assert_eq!(report.stats.count, 0);
        sh.with(|h| {
            assert_eq!(
                h.tier_of(a).unwrap(),
                TierKind::Nvm,
                "aborted move stays put"
            );
            assert!(!h.is_moving(a).unwrap());
        });
    }

    #[test]
    fn traced_migrator_routes_events_and_chunk_times_to_the_flight_lane() {
        use std::sync::Arc as StdArc;
        let rec = StdArc::new(tahoe_obs::FlightRecorder::new(
            1,
            1 << 10,
            &["mig_chunk_ns"],
        ));
        let sh = shared(1 << 20, 1 << 22);
        let a = sh.with(|h| h.alloc_object("a", 16 << 10, TierKind::Nvm, false).unwrap());
        let (emitter, buffer) = Emitter::buffered();
        let eng = BackgroundMigrator::spawn_traced(
            Arc::clone(&sh),
            CopyConfig {
                bandwidth_gbps: f64::INFINITY,
                latency_ns: 0.0,
                chunk_bytes: 4096,
            },
            emitter,
            Some(rec.handle(0)),
        );
        eng.enqueue(a, TierKind::Dram);
        let report = eng.finish();
        assert_eq!(report.stats.count, 1);
        // Events went to the flight lane, not the emitter.
        assert!(buffer.is_empty());
        let cap = rec.drain();
        let kinds: Vec<&str> = cap.events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"migration_issued"));
        assert!(kinds.contains(&"migration_completed"));
        let (_, chunks) = cap
            .hists
            .iter()
            .find(|(k, _)| *k == "mig_chunk_ns")
            .expect("chunk histogram recorded");
        assert_eq!(chunks.count(), 4, "16 KiB / 4 KiB chunks");
    }

    #[test]
    fn observer_sees_each_committed_record_but_not_skips() {
        let sh = shared(1 << 20, 1 << 22);
        let a = sh.with(|h| h.alloc_object("a", 16 << 10, TierKind::Nvm, false).unwrap());
        let d = sh.with(|h| h.alloc_object("d", 4096, TierKind::Dram, false).unwrap());
        let seen: Arc<std::sync::Mutex<Vec<(u32, u64)>>> = Arc::default();
        let sink = Arc::clone(&seen);
        let eng = BackgroundMigrator::spawn_observed(
            Arc::clone(&sh),
            CopyConfig::unthrottled(),
            Emitter::disabled(),
            None,
            Some(Arc::new(move |rec: &MigrationRecord| {
                sink.lock().unwrap().push((rec.object.0, rec.bytes));
            })),
        );
        eng.enqueue(a, TierKind::Dram);
        eng.enqueue(d, TierKind::Dram); // moot: already resident
        let report = eng.finish();
        assert_eq!(report.stats.count, 1);
        assert_eq!(report.skipped, 1);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.as_slice(), &[(a.0, 16 << 10)]);
    }

    #[test]
    fn committed_moves_emit_migration_events() {
        let (emitter, buffer) = Emitter::buffered();
        let sh = shared(1 << 20, 1 << 22);
        let a = sh.with(|h| h.alloc_object("a", 8 << 10, TierKind::Nvm, false).unwrap());
        let eng = BackgroundMigrator::spawn(Arc::clone(&sh), CopyConfig::unthrottled(), emitter);
        eng.enqueue(a, TierKind::Dram);
        let report = eng.finish();
        assert_eq!(report.stats.count, 1);
        let kinds: Vec<&str> = buffer.drain().iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"migration_issued"));
        assert!(kinds.contains(&"migration_completed"));
    }
}
