//! Deterministic real-memory traffic synthesis.
//!
//! Measured mode must *touch* the bytes the simulator only reasons
//! about. These kernels turn a task's declared access into physical
//! traffic over any `[u8]` buffer — arena-backed or a plain `Vec` — and
//! return a checksum that depends on every byte read and deterministically
//! determines every byte written. Running the same kernel sequence over
//! two substrates therefore yields bit-for-bit identical buffers and
//! checksums, which is exactly the equality the measured-mode acceptance
//! test checks. Everything is `black_box`-protected so the traffic
//! cannot be elided under optimization.

use std::hint::black_box;

/// Word the kernels traffic in. 8 B keeps bandwidth honest without
/// SIMD-dependent behaviour.
const WORD: usize = 8;

/// Split a buffer into its aligned `u64` words (via chunks, no unsafe).
#[inline]
fn words(buf: &[u8]) -> impl Iterator<Item = u64> + '_ {
    buf.chunks_exact(WORD)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
}

/// A cheap splittable PRNG step (splitmix64): deterministic fills and
/// chase permutations without an RNG dependency.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fill `buf` deterministically from `seed` (object initialization).
/// Returns a checksum of the written contents.
pub fn init_fill(buf: &mut [u8], seed: u64) -> u64 {
    let mut sum = 0u64;
    let mut state = seed;
    for chunk in buf.chunks_exact_mut(WORD) {
        state = mix(state);
        chunk.copy_from_slice(&state.to_le_bytes());
        sum = sum.wrapping_add(state);
    }
    let tail_start = buf.len() - buf.len() % WORD;
    for (i, b) in buf[tail_start..].iter_mut().enumerate() {
        state = mix(state);
        *b = (state >> (8 * (i % 8))) as u8;
        sum = sum.wrapping_add(*b as u64);
    }
    black_box(sum)
}

/// Sequentially read the whole buffer (streaming loads). Returns the
/// word sum, so the reads cannot be dead-code-eliminated.
pub fn stream_read(buf: &[u8]) -> u64 {
    let mut sum = 0u64;
    for w in words(buf) {
        sum = sum.wrapping_add(w);
    }
    let tail_start = buf.len() - buf.len() % WORD;
    for &b in &buf[tail_start..] {
        sum = sum.wrapping_add(b as u64);
    }
    black_box(sum)
}

/// Sequentially overwrite the buffer from `seed` (streaming stores).
/// Identical to [`init_fill`] but named for its role in task execution.
pub fn stream_write(buf: &mut [u8], seed: u64) -> u64 {
    init_fill(buf, seed)
}

/// Read-modify-write pass: every word is read, mixed with `seed`, and
/// written back. The result is still a pure function of the prior
/// contents and `seed`.
pub fn stream_update(buf: &mut [u8], seed: u64) -> u64 {
    let mut sum = 0u64;
    for chunk in buf.chunks_exact_mut(WORD) {
        let w = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        let new = mix(w ^ seed);
        chunk.copy_from_slice(&new.to_le_bytes());
        sum = sum.wrapping_add(new);
    }
    let tail_start = buf.len() - buf.len() % WORD;
    for &mut ref mut b in &mut buf[tail_start..] {
        let new = mix(*b as u64 ^ seed) as u8;
        *b = new;
        sum = sum.wrapping_add(new as u64);
    }
    black_box(sum)
}

/// Dependent pointer chase over the buffer's words: each loaded value
/// selects the next index, serializing the loads (latency-bound
/// traffic). Performs `steps` dependent loads; read-only.
pub fn chase(buf: &[u8], steps: u64, seed: u64) -> u64 {
    let n = buf.len() / WORD;
    if n == 0 {
        return black_box(seed);
    }
    let view: Vec<u64> = words(buf).collect();
    let mut idx = (mix(seed) as usize) % n;
    let mut sum = 0u64;
    for _ in 0..steps {
        let w = view[idx];
        sum = sum.wrapping_add(w);
        idx = (w as usize ^ idx) % n;
        idx = black_box(idx);
    }
    black_box(sum)
}

/// Execute one declared access as physical traffic. `loads`/`stores`
/// (cache-line counts from the task's `AccessProfile`) decide the kind
/// of traffic; the byte volume is the buffer itself, walked once per
/// call. Returns the checksum.
pub fn run_access(buf: &mut [u8], loads: u64, stores: u64, seed: u64) -> u64 {
    match (loads > 0, stores > 0) {
        (true, true) => stream_update(buf, seed),
        (false, true) => stream_write(buf, seed),
        // Pure reads and the degenerate no-traffic case both leave the
        // buffer untouched; a read still sums it.
        _ => stream_read(buf),
    }
}

/// [`run_access`] through a raw pointer, for the parallel measured path.
///
/// Task-graph dependences give writers exclusive access, but concurrent
/// *readers* of the same object are legal and common; materializing a
/// `&mut [u8]` per reader (as `run_access` requires) would create
/// aliasing exclusive references. This variant only forms a `&mut` for
/// the mutating kernels and hands pure reads a shared slice.
///
/// # Safety
/// `[ptr, ptr+len)` must be valid for reads (and, when `stores > 0`, for
/// exclusive writes — the caller's dependence tracking must guarantee no
/// concurrent access of any kind to a written object).
pub unsafe fn run_access_ptr(ptr: *mut u8, len: usize, loads: u64, stores: u64, seed: u64) -> u64 {
    if stores > 0 {
        // SAFETY: the caller guarantees exclusive access for writes, so
        // the `&mut` view aliases nothing for its whole lifetime.
        run_access(
            unsafe { std::slice::from_raw_parts_mut(ptr, len) },
            loads,
            stores,
            seed,
        )
    } else {
        // SAFETY: shared view; the caller guarantees read validity and no
        // concurrent writer (writers are exclusive by dependence order).
        stream_read(unsafe { std::slice::from_raw_parts(ptr, len) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_is_deterministic_across_buffers() {
        let mut a = vec![0u8; 1000];
        let mut b = vec![0xFFu8; 1000];
        let ca = init_fill(&mut a, 42);
        let cb = init_fill(&mut b, 42);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        let cc = init_fill(&mut b, 43);
        assert_ne!(cc, ca);
    }

    #[test]
    fn read_checksum_matches_contents() {
        let mut a = vec![0u8; 4096];
        init_fill(&mut a, 7);
        assert_eq!(stream_read(&a), stream_read(&a.clone()));
        a[100] ^= 1;
        assert_ne!(stream_read(&a), {
            a[100] ^= 1;
            stream_read(&a)
        });
    }

    #[test]
    fn update_is_a_pure_function_of_state_and_seed() {
        let mut a = vec![0u8; 512];
        let mut b = vec![0u8; 512];
        init_fill(&mut a, 1);
        init_fill(&mut b, 1);
        let ca = stream_update(&mut a, 99);
        let cb = stream_update(&mut b, 99);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn chase_is_deterministic_and_readonly() {
        let mut a = vec![0u8; 2048];
        init_fill(&mut a, 5);
        let before = a.clone();
        let c1 = chase(&a, 10_000, 3);
        let c2 = chase(&a, 10_000, 3);
        assert_eq!(c1, c2);
        assert_eq!(a, before);
        assert_ne!(chase(&a, 10_000, 4), c1);
    }

    #[test]
    fn unaligned_tails_are_covered() {
        // 1003 % 8 != 0: the tail paths must still be deterministic.
        let mut a = vec![0u8; 1003];
        let mut b = vec![0u8; 1003];
        assert_eq!(init_fill(&mut a, 9), init_fill(&mut b, 9));
        assert_eq!(a, b);
        assert_eq!(stream_update(&mut a, 2), stream_update(&mut b, 2));
        assert_eq!(a, b);
        assert_eq!(stream_read(&a), stream_read(&b));
    }

    #[test]
    fn run_access_dispatches_on_profile_shape() {
        let mut a = vec![0u8; 256];
        init_fill(&mut a, 1);
        let ro = a.clone();
        assert_eq!(run_access(&mut a, 10, 0, 0), stream_read(&ro));
        assert_eq!(a, ro, "pure loads must not mutate");
        let mut w = ro.clone();
        let mut u = ro.clone();
        run_access(&mut w, 0, 10, 77);
        run_access(&mut u, 10, 10, 77);
        assert_ne!(w, ro);
        assert_ne!(u, ro);
        assert_ne!(w, u, "write and update produce different contents");
    }
}
