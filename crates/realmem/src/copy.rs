//! The throttled inter-tier copy engine.
//!
//! A migration on real NVM hardware is an ordinary `memcpy` that runs at
//! the *slower* device's bandwidth plus a device-access latency. The
//! engine reproduces that on plain DRAM: the copy proceeds in bounded
//! chunks, and after each chunk the engine spins until wall time catches
//! up with where the modelled copy would be — injected startup latency
//! plus bytes-so-far over the modelled copy bandwidth. Chunking keeps
//! the pacing error bounded regardless of object size and mirrors how
//! the paper's helper thread copies (it must yield periodically to honor
//! cancellation and pinning).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use tahoe_hms::CopyOutcome;

use crate::throttle::pace_until;

/// Copy-engine configuration, derived from the platform's tier specs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyConfig {
    /// Modelled copy bandwidth, GB/s (== bytes/ns). The migration runs
    /// no faster than this end to end.
    pub bandwidth_gbps: f64,
    /// Injected one-time startup latency per migration, ns (device
    /// access latency of the slower endpoint).
    pub latency_ns: f64,
    /// Copy chunk size, bytes.
    pub chunk_bytes: u64,
}

impl CopyConfig {
    /// An unthrottled engine (DRAM-to-DRAM speed), still chunked.
    pub fn unthrottled() -> Self {
        CopyConfig {
            bandwidth_gbps: f64::INFINITY,
            latency_ns: 0.0,
            chunk_bytes: DEFAULT_CHUNK,
        }
    }
}

/// Default chunk size: 256 KiB — small enough that pacing converges
/// quickly, large enough that `memcpy` dominates loop overhead.
pub const DEFAULT_CHUNK: u64 = 256 << 10;

/// Execute one throttled copy of `len` bytes from `src` to `dst`.
///
/// # Safety
/// `src` must be valid for reads of `len` bytes, `dst` for writes of
/// `len` bytes, and the two ranges must not overlap.
pub unsafe fn throttled_copy(
    src: *const u8,
    dst: *mut u8,
    len: u64,
    cfg: &CopyConfig,
) -> CopyOutcome {
    let never = AtomicBool::new(false);
    // SAFETY: forwards the caller's contract verbatim.
    let (out, completed) = unsafe { throttled_copy_cancellable(src, dst, len, cfg, &never) };
    debug_assert!(completed, "uncancellable copy must complete");
    out
}

/// [`throttled_copy`] with cooperative cancellation: the flag is checked
/// between chunks, so a cancel takes effect within one chunk's worth of
/// copying (the background migration engine aborts its in-flight move
/// when the runtime shuts down mid-copy).
///
/// Returns the outcome (with `bytes` = bytes actually copied) and whether
/// the copy ran to completion.
///
/// # Safety
/// Same contract as [`throttled_copy`].
pub unsafe fn throttled_copy_cancellable(
    src: *const u8,
    dst: *mut u8,
    len: u64,
    cfg: &CopyConfig,
    cancel: &AtomicBool,
) -> (CopyOutcome, bool) {
    // SAFETY: forwards the caller's contract verbatim.
    unsafe { throttled_copy_observed(src, dst, len, cfg, cancel, &mut |_| {}) }
}

/// [`throttled_copy_cancellable`] with a per-chunk observer: `on_chunk`
/// receives the wall-clock ns each chunk took (memcpy + pacing), which
/// the background migrator feeds into the flight recorder's
/// `mig_chunk_ns` histogram. The observer runs outside any lock and must
/// be cheap (two atomic adds in the recorder case).
///
/// # Safety
/// Same contract as [`throttled_copy`].
pub unsafe fn throttled_copy_observed(
    src: *const u8,
    dst: *mut u8,
    len: u64,
    cfg: &CopyConfig,
    cancel: &AtomicBool,
    on_chunk: &mut dyn FnMut(f64),
) -> (CopyOutcome, bool) {
    let start = Instant::now();
    let chunk = cfg.chunk_bytes.max(1);
    let mut copied = 0u64;
    let mut chunks = 0u32;
    let mut throttle_ns = 0.0;
    while copied < len {
        if cancel.load(Ordering::Relaxed) {
            return (
                CopyOutcome {
                    bytes: copied,
                    wall_ns: start.elapsed().as_nanos() as f64,
                    throttle_ns,
                    chunks,
                },
                false,
            );
        }
        let chunk_t0 = Instant::now();
        let n = chunk.min(len - copied);
        // SAFETY: `copied + n <= len`, so both ranges stay inside the
        // caller-guaranteed `len`-byte regions, which do not overlap.
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.add(copied as usize),
                dst.add(copied as usize),
                n as usize,
            );
        }
        copied += n;
        chunks += 1;
        // Where should the modelled copy be by now?
        if cfg.bandwidth_gbps.is_finite() || cfg.latency_ns > 0.0 {
            let modelled = cfg.latency_ns
                + if cfg.bandwidth_gbps.is_finite() {
                    copied as f64 / cfg.bandwidth_gbps
                } else {
                    0.0
                };
            throttle_ns += pace_until(start, modelled);
        }
        on_chunk(chunk_t0.elapsed().as_nanos() as f64);
    }
    (
        CopyOutcome {
            bytes: len,
            wall_ns: start.elapsed().as_nanos() as f64,
            throttle_ns,
            chunks,
        },
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(len: usize, fill: u8) -> Vec<u8> {
        vec![fill; len]
    }

    #[test]
    fn copy_moves_the_bytes_exactly() {
        let src: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut dst = buf(src.len(), 0);
        let out = unsafe {
            throttled_copy(
                src.as_ptr(),
                dst.as_mut_ptr(),
                src.len() as u64,
                &CopyConfig::unthrottled(),
            )
        };
        assert_eq!(dst, src);
        assert_eq!(out.bytes, src.len() as u64);
        assert_eq!(out.chunks, 1); // 100 kB < 256 kB chunk
    }

    #[test]
    fn chunking_covers_the_tail() {
        let src = buf(10_000, 7);
        let mut dst = buf(10_000, 0);
        let cfg = CopyConfig {
            bandwidth_gbps: f64::INFINITY,
            latency_ns: 0.0,
            chunk_bytes: 4096,
        };
        let out = unsafe { throttled_copy(src.as_ptr(), dst.as_mut_ptr(), 10_000, &cfg) };
        assert_eq!(out.chunks, 3); // 4096 + 4096 + 1808
        assert_eq!(dst, src);
    }

    #[test]
    fn throttled_copy_takes_at_least_modelled_time() {
        let len = 1u64 << 20; // 1 MiB
        let src = buf(len as usize, 3);
        let mut dst = buf(len as usize, 0);
        // 0.25 GB/s => 1 MiB should take >= ~4.2 ms; latency adds 50 µs.
        // The modelled time is deliberately huge next to a real memcpy
        // so only a multi-ms OS preemption could make throttling
        // unnecessary — and a few attempts absorb even that.
        let cfg = CopyConfig {
            bandwidth_gbps: 0.25,
            latency_ns: 50_000.0,
            chunk_bytes: 256 << 10,
        };
        let modelled = cfg.latency_ns + len as f64 / cfg.bandwidth_gbps;
        let mut throttled = false;
        for _ in 0..3 {
            let out = unsafe { throttled_copy(src.as_ptr(), dst.as_mut_ptr(), len, &cfg) };
            assert!(
                out.wall_ns >= modelled,
                "wall {} < modelled {}",
                out.wall_ns,
                modelled
            );
            assert_eq!(dst, src);
            if out.throttle_ns > 0.0 {
                throttled = true;
                break;
            }
        }
        assert!(throttled, "a slow modelled copy must throttle");
    }

    #[test]
    fn cancelled_copy_stops_at_a_chunk_boundary() {
        let src = buf(64 << 10, 5);
        let mut dst = buf(64 << 10, 0);
        let cfg = CopyConfig {
            bandwidth_gbps: f64::INFINITY,
            latency_ns: 0.0,
            chunk_bytes: 4096,
        };
        // Pre-set cancel: not a single chunk may be copied.
        let cancel = AtomicBool::new(true);
        let (out, completed) = unsafe {
            throttled_copy_cancellable(src.as_ptr(), dst.as_mut_ptr(), 64 << 10, &cfg, &cancel)
        };
        assert!(!completed);
        assert_eq!(out.bytes, 0);
        assert_eq!(out.chunks, 0);
        assert!(dst.iter().all(|&b| b == 0));
        // Unset: completes and reports every byte.
        cancel.store(false, Ordering::Relaxed);
        let (out, completed) = unsafe {
            throttled_copy_cancellable(src.as_ptr(), dst.as_mut_ptr(), 64 << 10, &cfg, &cancel)
        };
        assert!(completed);
        assert_eq!(out.bytes, 64 << 10);
        assert_eq!(dst, src);
    }

    #[test]
    fn observer_sees_one_callback_per_chunk() {
        let src = buf(10_000, 7);
        let mut dst = buf(10_000, 0);
        let cfg = CopyConfig {
            bandwidth_gbps: f64::INFINITY,
            latency_ns: 0.0,
            chunk_bytes: 4096,
        };
        let mut samples = Vec::new();
        let cancel = AtomicBool::new(false);
        let (out, completed) = unsafe {
            throttled_copy_observed(
                src.as_ptr(),
                dst.as_mut_ptr(),
                10_000,
                &cfg,
                &cancel,
                &mut |ns| samples.push(ns),
            )
        };
        assert!(completed);
        assert_eq!(samples.len() as u32, out.chunks);
        assert_eq!(samples.len(), 3);
        assert!(samples.iter().all(|&ns| ns >= 0.0));
        assert_eq!(dst, src);
    }

    #[test]
    fn faster_config_is_not_slower() {
        let len = 1u64 << 19;
        let src = buf(len as usize, 9);
        let mut dst = buf(len as usize, 0);
        let slow = CopyConfig {
            bandwidth_gbps: 1.0,
            latency_ns: 0.0,
            chunk_bytes: DEFAULT_CHUNK,
        };
        let t_slow = unsafe { throttled_copy(src.as_ptr(), dst.as_mut_ptr(), len, &slow) }.wall_ns;
        let t_fast = unsafe {
            throttled_copy(
                src.as_ptr(),
                dst.as_mut_ptr(),
                len,
                &CopyConfig::unthrottled(),
            )
        }
        .wall_ns;
        // The slow engine is paced to >= len/1.0 ns; the fast one is not.
        assert!(t_slow >= len as f64);
        assert!(t_fast < t_slow);
    }
}
