//! Minimal raw bindings to the handful of POSIX/Linux calls the real
//! backend needs.
//!
//! The build environment has no `libc` crate, so the declarations live
//! here as direct `extern "C"` items — `std` already links the C
//! library, so the symbols resolve without any extra linkage. Only what
//! the arenas and the NUMA layer use is declared; everything is gated to
//! Unix and falls back to heap allocation elsewhere.

#![allow(non_camel_case_types)]

/// Pointer-sized signed integer, the C `long` on LP64 Linux.
pub type c_long = i64;

#[cfg(unix)]
mod ffi {
    use super::c_long;

    pub const PROT_READ: i32 = 0x1;
    pub const PROT_WRITE: i32 = 0x2;
    pub const MAP_PRIVATE: i32 = 0x02;
    pub const MAP_ANONYMOUS: i32 = 0x20;
    pub const MAP_FAILED: *mut core::ffi::c_void = usize::MAX as *mut core::ffi::c_void;

    pub const MADV_WILLNEED: i32 = 3;
    pub const MADV_DONTNEED: i32 = 4;

    pub const _SC_PAGESIZE: i32 = 30;

    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, length: usize) -> i32;
        pub fn madvise(addr: *mut core::ffi::c_void, length: usize, advice: i32) -> i32;
        pub fn sysconf(name: i32) -> c_long;
        pub fn syscall(num: c_long, ...) -> c_long;
    }
}

/// `madvise` advice understood by [`advise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Pages will be needed soon (pre-fault hint).
    WillNeed,
    /// Pages can be dropped (free physical memory, keep the mapping).
    DontNeed,
}

/// The system page size in bytes (4096 when it cannot be queried).
pub fn page_size() -> u64 {
    #[cfg(unix)]
    {
        // SAFETY: sysconf takes no pointers and cannot fault.
        let ps = unsafe { ffi::sysconf(ffi::_SC_PAGESIZE) };
        if ps > 0 {
            return ps as u64;
        }
    }
    4096
}

/// An anonymous private mapping (or, off Unix, a leaked heap block that
/// the same `unmap` call releases).
#[derive(Debug)]
pub struct Mapping {
    ptr: *mut u8,
    len: usize,
    #[cfg(not(unix))]
    layout: std::alloc::Layout,
}

// SAFETY: the mapping is plain anonymous memory owned exclusively by
// this struct; ownership semantics are those of a `Vec<u8>` buffer, so
// moving it to another thread is sound.
unsafe impl Send for Mapping {}

impl Mapping {
    /// Base address of the mapping.
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a successful map).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` (and off Unix, `layout`) are exactly what
        // `map_anonymous` obtained; Drop runs once, so no double free.
        #[cfg(unix)]
        unsafe {
            ffi::munmap(self.ptr.cast(), self.len);
        }
        #[cfg(not(unix))]
        unsafe {
            std::alloc::dealloc(self.ptr, self.layout);
        }
    }
}

/// Map `len` bytes of zeroed, page-aligned anonymous memory.
pub fn map_anonymous(len: usize) -> Result<Mapping, String> {
    if len == 0 {
        return Err("cannot map zero bytes".to_string());
    }
    #[cfg(unix)]
    {
        // SAFETY: anonymous private mapping with a null hint — no file
        // descriptor, no existing memory touched; failure is checked.
        let ptr = unsafe {
            ffi::mmap(
                core::ptr::null_mut(),
                len,
                ffi::PROT_READ | ffi::PROT_WRITE,
                ffi::MAP_PRIVATE | ffi::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr == ffi::MAP_FAILED {
            return Err(format!(
                "mmap of {len} B failed: {}",
                std::io::Error::last_os_error()
            ));
        }
        Ok(Mapping {
            ptr: ptr.cast(),
            len,
        })
    }
    #[cfg(not(unix))]
    {
        let layout = std::alloc::Layout::from_size_align(len, page_size() as usize)
            .map_err(|e| e.to_string())?;
        // SAFETY: `layout` has nonzero size (len == 0 rejected above).
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        if ptr.is_null() {
            return Err(format!("allocation of {len} B failed"));
        }
        Ok(Mapping { ptr, len, layout })
    }
}

/// Best-effort `madvise` over `[offset, offset+len)` of a mapping.
/// Errors are swallowed — advice is advice.
pub fn advise(mapping: &Mapping, offset: usize, len: usize, advice: Advice) {
    if offset.saturating_add(len) > mapping.len {
        return;
    }
    #[cfg(unix)]
    {
        let adv = match advice {
            Advice::WillNeed => ffi::MADV_WILLNEED,
            Advice::DontNeed => ffi::MADV_DONTNEED,
        };
        // Page-align the start downward; advice applies to whole pages.
        let ps = page_size() as usize;
        let start = offset / ps * ps;
        let end = offset + len;
        // SAFETY: `[start, end)` was bounds-checked against the mapping
        // and rounded to whole pages inside it; madvise never writes.
        unsafe {
            ffi::madvise(mapping.ptr.add(start).cast(), end - start, adv);
        }
    }
    #[cfg(not(unix))]
    {
        let _ = (mapping, advice);
    }
}

/// Invoke a raw Linux syscall with three pointer-sized arguments.
/// Returns the raw (possibly negative) result; `None` off Unix.
#[cfg(all(unix, target_os = "linux"))]
pub fn syscall6(
    num: c_long,
    a1: c_long,
    a2: c_long,
    a3: c_long,
    a4: c_long,
    a5: c_long,
    a6: c_long,
) -> c_long {
    // SAFETY: the caller supplies a valid syscall number and arguments;
    // the kernel validates pointers and returns -EFAULT on bad ones
    // rather than faulting the process.
    unsafe { ffi::syscall(num, a1, a2, a3, a4, a5, a6) }
}

/// Syscall numbers for the NUMA memory-policy calls, per architecture.
/// `None` on architectures we have not tabulated — callers degrade to
/// pure emulation.
#[cfg(all(unix, target_os = "linux"))]
pub mod nr {
    /// `mbind(2)`.
    pub fn mbind() -> Option<super::c_long> {
        #[cfg(target_arch = "x86_64")]
        {
            Some(237)
        }
        #[cfg(target_arch = "aarch64")]
        {
            Some(235)
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            None
        }
    }

    /// `move_pages(2)`.
    pub fn move_pages() -> Option<super::c_long> {
        #[cfg(target_arch = "x86_64")]
        {
            Some(279)
        }
        #[cfg(target_arch = "aarch64")]
        {
            Some(239)
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_a_power_of_two() {
        let ps = page_size();
        assert!(ps >= 512);
        assert!(ps.is_power_of_two());
    }

    #[test]
    fn map_is_zeroed_writable_and_page_aligned() {
        let m = map_anonymous(3 * page_size() as usize).unwrap();
        assert_eq!(m.as_ptr() as usize % page_size() as usize, 0);
        // SAFETY: `m` maps exactly `len` writable bytes and outlives the view.
        let bytes = unsafe { std::slice::from_raw_parts_mut(m.as_ptr(), m.len()) };
        assert!(bytes.iter().all(|&b| b == 0));
        bytes[0] = 0xAB;
        bytes[m.len() - 1] = 0xCD;
        assert_eq!(bytes[0], 0xAB);
        // Advice must not invalidate the mapping itself.
        advise(&m, 0, m.len(), Advice::WillNeed);
        assert_eq!(bytes[m.len() - 1], 0xCD);
    }

    #[test]
    fn zero_length_map_is_rejected() {
        assert!(map_anonymous(0).is_err());
    }
}
