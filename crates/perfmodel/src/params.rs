//! Tunable parameters of the models.

/// Model thresholds and knobs, with the paper's published defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Fraction of NVM peak bandwidth above which an object's traffic is
    /// classified bandwidth-sensitive (the paper's `t1 = 80%`).
    pub t_high: f64,
    /// Fraction below which it is latency-sensitive (`t2 = 10%`).
    pub t_low: f64,
    /// Relative per-window performance drift that re-arms profiling
    /// (the paper re-profiles on >10% variation).
    pub variation_threshold: f64,
    /// Whether the benefit model distinguishes loads from stores
    /// (Eqs. 4–5) or treats all accesses as reads (Eqs. 2–3). The
    /// read/write-distinction ablation flips this off.
    pub distinguish_rw: bool,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            t_high: 0.8,
            t_low: 0.1,
            variation_threshold: 0.10,
            distinguish_rw: true,
        }
    }
}

impl ModelParams {
    /// The ablation variant that ignores read/write asymmetry.
    pub fn without_rw_distinction(self) -> Self {
        ModelParams {
            distinguish_rw: false,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = ModelParams::default();
        assert_eq!(p.t_high, 0.8);
        assert_eq!(p.t_low, 0.1);
        assert_eq!(p.variation_threshold, 0.10);
        assert!(p.distinguish_rw);
    }

    #[test]
    fn ablation_flag() {
        let p = ModelParams::default().without_rw_distinction();
        assert!(!p.distinguish_rw);
        assert_eq!(p.t_high, 0.8);
    }
}
