//! Aggregated, *estimated* memory demand of one data object over one
//! planning horizon (a window or the whole run).

use tahoe_hms::{Ns, CACHELINE};
use tahoe_memprof::ObjClassStats;

/// Estimated traffic to one object over a planning horizon, assembled
/// from profiled per-(class, object) statistics times the number of task
/// instances in the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Demand {
    /// Estimated cache-line loads.
    pub loads: f64,
    /// Estimated cache-line stores.
    pub stores: f64,
    /// Estimated time the object is actively accessed, ns.
    pub active_ns: Ns,
    /// Access-weighted estimated memory-level concurrency (≥ 1); 1.0 for
    /// fully dependent chains, ≈MLP for prefetched streams. Damps the
    /// latency-benefit model so overlapped misses are not priced as
    /// serialized ones.
    pub concurrency: f64,
}

impl Demand {
    /// No traffic.
    pub const ZERO: Demand = Demand {
        loads: 0.0,
        stores: 0.0,
        active_ns: 0.0,
        concurrency: 1.0,
    };

    /// Demand of `instances` task instances with the given per-instance
    /// profile statistics.
    pub fn from_stats(stats: &ObjClassStats, instances: u64) -> Self {
        let n = instances as f64;
        Demand {
            loads: stats.mean_loads * n,
            stores: stats.mean_stores * n,
            active_ns: stats.mean_active_ns * n,
            concurrency: stats.mean_concurrency.max(1.0),
        }
    }

    /// Total estimated accesses.
    pub fn accesses(&self) -> f64 {
        self.loads + self.stores
    }

    /// Total estimated bytes.
    pub fn bytes(&self) -> f64 {
        self.accesses() * CACHELINE as f64
    }

    /// Consumed bandwidth in GB/s (the paper's Eq. 1 numerator over its
    /// denominator).
    pub fn consumed_bw_gbps(&self) -> f64 {
        if self.active_ns <= 0.0 {
            0.0
        } else {
            self.bytes() / self.active_ns
        }
    }

    /// Element-wise sum (concurrency combines access-weighted).
    pub fn add(&self, other: &Demand) -> Demand {
        let a = self.accesses();
        let b = other.accesses();
        let concurrency = if a + b > 0.0 {
            (self.concurrency * a + other.concurrency * b) / (a + b)
        } else {
            1.0
        };
        Demand {
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            active_ns: self.active_ns + other.active_ns,
            concurrency,
        }
    }

    /// Scale all components (chunking: a 1/k chunk carries ~1/k of the
    /// object's traffic).
    pub fn scale(&self, f: f64) -> Demand {
        Demand {
            loads: self.loads * f,
            stores: self.stores * f,
            active_ns: self.active_ns * f,
            concurrency: self.concurrency,
        }
    }

    /// Whether any traffic was observed at all.
    pub fn is_zero(&self) -> bool {
        self.accesses() == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_stats_multiplies_by_instances() {
        let s = ObjClassStats {
            mean_loads: 100.0,
            mean_stores: 50.0,
            mean_active_ns: 10.0,
            mean_concurrency: 8.0,
            instances: 2,
        };
        let d = Demand::from_stats(&s, 10);
        assert_eq!(d.loads, 1000.0);
        assert_eq!(d.stores, 500.0);
        assert_eq!(d.active_ns, 100.0);
        assert_eq!(d.accesses(), 1500.0);
        assert_eq!(d.bytes(), 1500.0 * 64.0);
    }

    #[test]
    fn consumed_bw() {
        let d = Demand {
            loads: 1.0e6,
            stores: 0.0,
            active_ns: 6.4e6,
            ..Demand::ZERO
        };
        assert!((d.consumed_bw_gbps() - 10.0).abs() < 1e-9);
        assert_eq!(Demand::ZERO.consumed_bw_gbps(), 0.0);
    }

    #[test]
    fn add_and_scale() {
        let a = Demand {
            loads: 10.0,
            stores: 4.0,
            active_ns: 2.0,
            ..Demand::ZERO
        };
        let b = a.scale(0.5);
        assert_eq!(b.loads, 5.0);
        let c = a.add(&b);
        assert_eq!(c.loads, 15.0);
        assert_eq!(c.stores, 6.0);
        assert!(!c.is_zero());
        assert!(Demand::ZERO.is_zero());
    }
}
