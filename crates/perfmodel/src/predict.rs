//! Predicted memory time of estimated traffic on a tier.
//!
//! Used when comparing placement plans: the planner prices each object's
//! horizon traffic on DRAM and on NVM with the *corrected* models and
//! keeps whichever plan predicts the smaller total. The prediction is a
//! roofline over the calibrated bandwidth and latency terms — the same
//! structure as the ground-truth model, but driven by sampled counts and
//! the calibration constants instead of true counts and true MLP.

use tahoe_hms::{Ns, TierSpec, CACHELINE};
use tahoe_memprof::Calibration;

use crate::demand::Demand;
use crate::params::ModelParams;

/// Predicted time to serve `d` from `tier`.
pub fn predicted_mem_time_ns(
    d: &Demand,
    tier: &TierSpec,
    calib: &Calibration,
    params: &ModelParams,
) -> Ns {
    let cl = CACHELINE as f64;
    let conc = d.concurrency.max(1.0);
    let (bw_term, lat_term) = if params.distinguish_rw {
        (
            (d.loads * cl / tier.read_bw_gbps + d.stores * cl / tier.write_bw_gbps) * calib.cf_bw,
            (d.loads * tier.read_lat_ns + d.stores * tier.write_lat_ns) * calib.cf_lat / conc,
        )
    } else {
        (
            d.accesses() * cl / tier.read_bw_gbps * calib.cf_bw,
            d.accesses() * tier.read_lat_ns * calib.cf_lat / conc,
        )
    };
    // Roofline: the concurrency-damped latency term only binds when the
    // access stream cannot keep the pipes full.
    bw_term.max(lat_term)
}

/// Predicted *saving* of serving `d` from DRAM rather than NVM (may be
/// negative if the models disagree; the planner clamps).
pub fn predicted_saving_ns(
    d: &Demand,
    nvm: &TierSpec,
    dram: &TierSpec,
    calib: &Calibration,
    params: &ModelParams,
) -> Ns {
    predicted_mem_time_ns(d, nvm, calib, params) - predicted_mem_time_ns(d, dram, calib, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::presets;

    fn calib() -> Calibration {
        Calibration::identity(3.0, 9.5)
    }

    #[test]
    fn bandwidth_demand_prices_at_bandwidth() {
        let dram = presets::dram(1 << 30);
        let p = ModelParams::default();
        let d = Demand {
            loads: 1.0e6,
            stores: 0.0,
            active_ns: 1.0e6 * 64.0 / 3.0, // at NVM peak → bandwidth class
            concurrency: 16.0,
        };
        let t = predicted_mem_time_ns(&d, &dram, &calib(), &p);
        assert!((t - 6.4e6).abs() / 6.4e6 < 1e-9);
    }

    #[test]
    fn latency_demand_prices_at_latency() {
        let nvm = presets::optane_pmm(1 << 30);
        let p = ModelParams::default();
        let d = Demand {
            loads: 1.0e6,
            stores: 0.0,
            active_ns: 1.0e9, // 0.064 GB/s — far below peak → latency class
            concurrency: 1.0,
        };
        let t = predicted_mem_time_ns(&d, &nvm, &calib(), &p);
        assert!((t - 2.5e8).abs() / 2.5e8 < 1e-9); // 1e6 × 250 ns
    }

    #[test]
    fn saving_positive_on_slower_nvm() {
        let dram = presets::dram(1 << 30);
        let nvm = presets::emulated_bw(0.25, 1 << 30).unwrap();
        let p = ModelParams::default();
        let d = Demand {
            loads: 2.0e6,
            stores: 1.0e6,
            active_ns: 3.0e6 * 64.0 / 2.4, // at the slow peak
            concurrency: 16.0,
        };
        let c = Calibration::identity(2.4, 9.5);
        assert!(predicted_saving_ns(&d, &nvm, &dram, &c, &p) > 0.0);
    }

    #[test]
    fn blind_prediction_ignores_write_penalty() {
        let nvm = presets::optane_pmm(1 << 30);
        let d = Demand {
            loads: 0.0,
            stores: 1.0e6,
            active_ns: 1.0e6 * 64.0 / 3.0,
            concurrency: 16.0,
        };
        let seeing = predicted_mem_time_ns(&d, &nvm, &calib(), &ModelParams::default());
        let blind = predicted_mem_time_ns(
            &d,
            &nvm,
            &calib(),
            &ModelParams::default().without_rw_distinction(),
        );
        assert!(
            seeing > 2.0 * blind,
            "store traffic must look much slower to the rw-aware model"
        );
    }
}
