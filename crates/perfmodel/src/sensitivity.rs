//! Bandwidth- vs latency-sensitivity classification.

use crate::demand::Demand;
use crate::params::ModelParams;

/// Why a data object's traffic suffers on NVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sensitivity {
    /// Streaming-like: limited by NVM's lower bandwidth.
    Bandwidth,
    /// Dependent-chain-like: limited by NVM's longer latency.
    Latency,
    /// In between: benefit is the max of the two models.
    Mixed,
}

/// Classify `demand` against the NVM peak bandwidth (the paper's rule:
/// consumed BW ≥ t1·peak ⇒ bandwidth-sensitive; ≤ t2·peak ⇒
/// latency-sensitive; otherwise mixed).
pub fn classify(demand: &Demand, nvm_peak_bw_gbps: f64, params: &ModelParams) -> Sensitivity {
    let bw = demand.consumed_bw_gbps();
    if bw >= params.t_high * nvm_peak_bw_gbps {
        Sensitivity::Bandwidth
    } else if bw <= params.t_low * nvm_peak_bw_gbps {
        Sensitivity::Latency
    } else {
        Sensitivity::Mixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand_with_bw(gbps: f64) -> Demand {
        // bytes/active = gbps → choose active = 1e6 ns, bytes = gbps*1e6.
        let bytes = gbps * 1.0e6;
        Demand {
            loads: bytes / 64.0,
            stores: 0.0,
            active_ns: 1.0e6,
            ..Demand::ZERO
        }
    }

    #[test]
    fn high_consumption_is_bandwidth_sensitive() {
        let p = ModelParams::default();
        assert_eq!(
            classify(&demand_with_bw(4.0), 4.0, &p),
            Sensitivity::Bandwidth
        );
        assert_eq!(
            classify(&demand_with_bw(3.3), 4.0, &p),
            Sensitivity::Bandwidth
        );
    }

    #[test]
    fn low_consumption_is_latency_sensitive() {
        let p = ModelParams::default();
        assert_eq!(
            classify(&demand_with_bw(0.3), 4.0, &p),
            Sensitivity::Latency
        );
        assert_eq!(classify(&Demand::ZERO, 4.0, &p), Sensitivity::Latency);
    }

    #[test]
    fn middle_band_is_mixed() {
        let p = ModelParams::default();
        assert_eq!(classify(&demand_with_bw(2.0), 4.0, &p), Sensitivity::Mixed);
    }

    #[test]
    fn thresholds_are_inclusive() {
        let p = ModelParams::default();
        // exactly t1·peak → bandwidth; exactly t2·peak → latency.
        assert_eq!(
            classify(&demand_with_bw(3.2), 4.0, &p),
            Sensitivity::Bandwidth
        );
        assert_eq!(
            classify(&demand_with_bw(0.4), 4.0, &p),
            Sensitivity::Latency
        );
    }
}
