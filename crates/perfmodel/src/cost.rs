//! Migration cost: the paper's Eq. 6.

use tahoe_hms::Ns;

/// Cost charged against a migration decision: the copy time not hidden
/// behind execution, `max(bytes/copy_bw − overlap, 0)`.
pub fn migration_cost_ns(bytes: u64, copy_bw_gbps: f64, overlap_ns: Ns) -> Ns {
    assert!(copy_bw_gbps > 0.0, "copy bandwidth must be positive");
    (bytes as f64 / copy_bw_gbps - overlap_ns).max(0.0)
}

/// Cost of evicting `victim_bytes` from DRAM to make room, plus moving
/// the incoming object (the paper's `extra_COST` term). Evictions share
/// the same copy channel, so their cost adds; overlap credit applies to
/// the combined transfer.
pub fn migration_cost_with_eviction_ns(
    incoming_bytes: u64,
    victim_bytes: u64,
    copy_bw_gbps: f64,
    overlap_ns: Ns,
) -> Ns {
    migration_cost_ns(incoming_bytes + victim_bytes, copy_bw_gbps, overlap_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unoverlapped_cost_is_copy_time() {
        // 5 GB/s = 5 bytes/ns; 1000 bytes → 200 ns.
        assert!((migration_cost_ns(1000, 5.0, 0.0) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn full_overlap_makes_cost_zero() {
        assert_eq!(migration_cost_ns(1000, 5.0, 200.0), 0.0);
        assert_eq!(migration_cost_ns(1000, 5.0, 1.0e9), 0.0);
    }

    #[test]
    fn partial_overlap_subtracts() {
        assert!((migration_cost_ns(1000, 5.0, 150.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn eviction_adds_victim_bytes() {
        let plain = migration_cost_ns(1000, 5.0, 0.0);
        let with = migration_cost_with_eviction_ns(1000, 500, 5.0, 0.0);
        assert!((with - plain - 100.0).abs() < 1e-12);
    }

    #[test]
    fn zero_bytes_zero_cost() {
        assert_eq!(migration_cost_ns(0, 5.0, 0.0), 0.0);
    }
}
