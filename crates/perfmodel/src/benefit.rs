//! DRAM-placement benefit: the paper's Eqs. 2–5.

use tahoe_hms::{Ns, TierSpec, CACHELINE};
use tahoe_memprof::Calibration;

use crate::demand::Demand;
use crate::params::ModelParams;
#[cfg(test)]
use crate::sensitivity::{classify, Sensitivity};

/// Bandwidth-model benefit with separate load/store terms (Eq. 4):
/// time to stream the traffic at NVM's read/write bandwidths minus the
/// time at DRAM's, corrected by `CF_bw`.
pub fn benefit_bw_ns(d: &Demand, nvm: &TierSpec, dram: &TierSpec, calib: &Calibration) -> Ns {
    let cl = CACHELINE as f64;
    let nvm_time = d.loads * cl / nvm.read_bw_gbps + d.stores * cl / nvm.write_bw_gbps;
    let dram_time = (d.loads + d.stores) * cl / dram.read_bw_gbps;
    (nvm_time - dram_time) * calib.cf_bw
}

/// Latency-model benefit with separate load/store terms (Eq. 5),
/// divided by the demand's estimated memory-level concurrency: misses
/// that overlap in flight only pay their latency once per `concurrency`
/// accesses, so pricing them serialized would overestimate the benefit
/// of streaming traffic that lands in the latency/mixed band.
pub fn benefit_lat_ns(d: &Demand, nvm: &TierSpec, dram: &TierSpec, calib: &Calibration) -> Ns {
    let nvm_time = d.loads * nvm.read_lat_ns + d.stores * nvm.write_lat_ns;
    let dram_time = (d.loads + d.stores) * dram.read_lat_ns;
    (nvm_time - dram_time) * calib.cf_lat / d.concurrency.max(1.0)
}

/// Read/write-blind bandwidth benefit (Eq. 2): all accesses priced at the
/// read bandwidth. Used by the ablation that ignores NVM asymmetry.
pub fn benefit_bw_blind_ns(d: &Demand, nvm: &TierSpec, dram: &TierSpec, calib: &Calibration) -> Ns {
    let cl = CACHELINE as f64;
    let n = d.accesses();
    (n * cl / nvm.read_bw_gbps - n * cl / dram.read_bw_gbps) * calib.cf_bw
}

/// Read/write-blind latency benefit (Eq. 3).
pub fn benefit_lat_blind_ns(
    d: &Demand,
    nvm: &TierSpec,
    dram: &TierSpec,
    calib: &Calibration,
) -> Ns {
    let n = d.accesses();
    (n * nvm.read_lat_ns - n * dram.read_lat_ns) * calib.cf_lat / d.concurrency.max(1.0)
}

/// Full benefit of holding an object's traffic in DRAM for one horizon:
/// the roofline-time difference between serving the demand from NVM and
/// from DRAM (see [`crate::predict::predicted_mem_time_ns`]). For
/// bandwidth-classified demand this reduces to the bandwidth model
/// (Eq. 4), for dependent chains to the latency model (Eq. 5), and for
/// the mixed band it avoids the over-prediction a bare `max(Eq.4, Eq.5)`
/// gives to streams whose misses overlap. Honors `params.distinguish_rw`
/// (the read/write-blind ablation prices all traffic at read cost,
/// Eqs. 2–3).
pub fn dram_benefit_ns(
    d: &Demand,
    nvm: &TierSpec,
    dram: &TierSpec,
    calib: &Calibration,
    params: &ModelParams,
) -> Ns {
    crate::predict::predicted_mem_time_ns(d, nvm, calib, params)
        - crate::predict::predicted_mem_time_ns(d, dram, calib, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::presets;

    fn setup() -> (TierSpec, TierSpec, Calibration) {
        let dram = presets::dram(1 << 30);
        let nvm = presets::optane_pmm(1 << 30);
        let calib = Calibration::identity(3.0, 9.5);
        (dram, nvm, calib)
    }

    fn streaming(loads: f64, stores: f64) -> Demand {
        // Saturating: tiny active time → classified bandwidth-sensitive.
        Demand {
            loads,
            stores,
            active_ns: (loads + stores) * 64.0 / 3.0, // exactly NVM peak
            concurrency: 16.0,
        }
    }

    fn chasing(loads: f64) -> Demand {
        // Very long active time → far below peak → latency-sensitive.
        Demand {
            loads,
            stores: 0.0,
            active_ns: loads * 1000.0,
            concurrency: 1.0,
        }
    }

    #[test]
    fn benefit_positive_when_nvm_slower() {
        let (dram, nvm, calib) = setup();
        let p = ModelParams::default();
        let d = streaming(1.0e6, 5.0e5);
        assert!(dram_benefit_ns(&d, &nvm, &dram, &calib, &p) > 0.0);
        let d = chasing(1.0e6);
        assert!(dram_benefit_ns(&d, &nvm, &dram, &calib, &p) > 0.0);
    }

    #[test]
    fn benefit_zero_when_tiers_identical() {
        let dram = presets::dram(1 << 30);
        let calib = Calibration::identity(9.5, 9.5);
        let p = ModelParams::default();
        // Write traffic prices differently (9 vs 10 GB/s) even on "DRAM
        // as NVM", so use pure loads for an exact zero.
        let d = Demand {
            loads: 1.0e6,
            stores: 0.0,
            active_ns: 6.4e6,
            ..Demand::ZERO
        };
        let b = dram_benefit_ns(&d, &dram, &dram, &calib, &p);
        assert!(b.abs() < 1e-6, "b = {b}");
    }

    #[test]
    fn store_heavy_traffic_benefits_more_on_asymmetric_nvm() {
        let (dram, nvm, calib) = setup();
        // Same access count; one all-loads, one all-stores. Optane writes
        // at 1.3 GB/s vs reads at 3.9 GB/s ⇒ store benefit must be larger.
        let loads = benefit_bw_ns(&streaming(1.0e6, 0.0), &nvm, &dram, &calib);
        let stores = benefit_bw_ns(&streaming(0.0, 1.0e6), &nvm, &dram, &calib);
        assert!(stores > 2.0 * loads, "stores {stores} vs loads {loads}");
    }

    #[test]
    fn blind_model_misprices_stores() {
        let (dram, nvm, calib) = setup();
        let d = streaming(0.0, 1.0e6);
        let seeing = benefit_bw_ns(&d, &nvm, &dram, &calib);
        let blind = benefit_bw_blind_ns(&d, &nvm, &dram, &calib);
        // The blind model prices stores at the (faster) read bandwidth and
        // therefore underestimates the benefit on Optane.
        assert!(blind < seeing);
    }

    #[test]
    fn mixed_takes_max_of_models() {
        let (dram, nvm, calib) = setup();
        let p = ModelParams::default();
        // Mid-band demand: consumed bw = 50% of peak.
        let d = Demand {
            loads: 1.0e6,
            stores: 0.0,
            active_ns: 1.0e6 * 64.0 / 1.5,
            concurrency: 4.0,
        };
        assert_eq!(classify(&d, calib.nvm_peak_bw_gbps, &p), Sensitivity::Mixed);
        // The roofline benefit is bounded by both single-effect models'
        // NVM terms and is positive here.
        let got = dram_benefit_ns(&d, &nvm, &dram, &calib, &p);
        assert!(got > 0.0);
        let bw = benefit_bw_ns(&d, &nvm, &dram, &calib);
        let lat = benefit_lat_ns(&d, &nvm, &dram, &calib);
        assert!(got <= bw.max(lat) + 1e-9, "got {got}, bw {bw}, lat {lat}");
    }

    #[test]
    fn cf_scales_benefit_linearly() {
        let (dram, nvm, mut calib) = setup();
        let d = streaming(1.0e6, 0.0);
        let b1 = benefit_bw_ns(&d, &nvm, &dram, &calib);
        calib.cf_bw = 2.0;
        let b2 = benefit_bw_ns(&d, &nvm, &dram, &calib);
        assert!((b2 / b1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_demand_zero_benefit() {
        let (dram, nvm, calib) = setup();
        let p = ModelParams::default();
        assert_eq!(dram_benefit_ns(&Demand::ZERO, &nvm, &dram, &calib, &p), 0.0);
    }
}
