//! Analytic performance models of the Tahoe reproduction.
//!
//! These are the paper's lightweight equations, evaluated on *profiled
//! estimates* (not ground truth):
//!
//! 1. **Bandwidth consumption** (Eq. 1) — bytes accessed over active time,
//!    computed by the profiler; reproduced here as the input to
//!    sensitivity classification.
//! 2. **Sensitivity classification** — consumed bandwidth ≥ `t1`·peak(NVM)
//!    ⇒ bandwidth-sensitive; ≤ `t2`·peak ⇒ latency-sensitive; otherwise
//!    mixed (the benefit is the max of both models).
//! 3. **DRAM benefit** (Eqs. 4–5) — predicted time saved by serving the
//!    traffic from DRAM instead of NVM, with **separate load and store
//!    terms** because NVM is read/write-asymmetric, each corrected by the
//!    calibrated constant factor. The read/write-blind variants (Eqs. 2–3)
//!    are also provided for the ablation experiment.
//! 4. **Migration cost** (Eq. 6) — copy time minus the part that overlaps
//!    with execution, floored at zero.
//! 5. **Task-time prediction** — roofline combination of the corrected
//!    bandwidth and latency terms, used to compare placement plans.

// Pure arithmetic over profiled estimates: safe by construction.
#![forbid(unsafe_code)]

pub mod benefit;
pub mod cost;
pub mod demand;
pub mod params;
pub mod predict;
pub mod sensitivity;

pub use benefit::dram_benefit_ns;
pub use cost::migration_cost_ns;
pub use demand::Demand;
pub use params::ModelParams;
pub use predict::predicted_mem_time_ns;
pub use sensitivity::{classify, Sensitivity};
