//! Property tests for the performance models.

use proptest::prelude::*;

use tahoe_hms::presets;
use tahoe_memprof::Calibration;
use tahoe_perfmodel::{
    classify, dram_benefit_ns, migration_cost_ns, predicted_mem_time_ns, Demand, ModelParams,
    Sensitivity,
};

fn demand_strategy() -> impl Strategy<Value = Demand> {
    (0.0f64..1e7, 0.0f64..1e7, 1.0f64..1e8, 1.0f64..32.0).prop_map(
        |(loads, stores, active_ns, concurrency)| Demand {
            loads,
            stores,
            active_ns,
            concurrency,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn benefit_nonnegative_when_nvm_uniformly_slower(
        d in demand_strategy(),
        bw_frac in 0.05f64..1.0,
        lat_mult in 1.0f64..20.0,
    ) {
        let dram = presets::dram(1 << 30);
        let nvm = dram
            .scale_bandwidth(bw_frac)
            .unwrap()
            .scale_latency(lat_mult)
            .unwrap();
        let calib = Calibration::identity(2.0, 9.5);
        let params = ModelParams::default();
        let b = dram_benefit_ns(&d, &nvm, &dram, &calib, &params);
        prop_assert!(b >= -1e-6, "negative benefit {b} on uniformly slower NVM");
    }

    #[test]
    fn predicted_time_monotone_in_demand(
        d in demand_strategy(),
        extra in 1.0f64..1e6,
    ) {
        let nvm = presets::optane_pmm(1 << 30);
        let calib = Calibration::identity(2.3, 9.5);
        let params = ModelParams::default();
        let mut bigger = d;
        bigger.loads += extra;
        prop_assert!(
            predicted_mem_time_ns(&bigger, &nvm, &calib, &params)
                >= predicted_mem_time_ns(&d, &nvm, &calib, &params) - 1e-9
        );
        let mut more_stores = d;
        more_stores.stores += extra;
        prop_assert!(
            predicted_mem_time_ns(&more_stores, &nvm, &calib, &params)
                >= predicted_mem_time_ns(&d, &nvm, &calib, &params) - 1e-9
        );
    }

    #[test]
    fn higher_concurrency_never_predicts_slower(
        d in demand_strategy(),
        boost in 1.0f64..8.0,
    ) {
        let nvm = presets::pcram(1 << 30);
        let calib = Calibration::identity(0.4, 9.5);
        let params = ModelParams::default();
        let mut faster = d;
        faster.concurrency = d.concurrency * boost;
        prop_assert!(
            predicted_mem_time_ns(&faster, &nvm, &calib, &params)
                <= predicted_mem_time_ns(&d, &nvm, &calib, &params) + 1e-9
        );
    }

    #[test]
    fn classification_is_total_and_threshold_consistent(
        d in demand_strategy(),
        peak in 0.1f64..20.0,
    ) {
        let params = ModelParams::default();
        let class = classify(&d, peak, &params);
        let bw = d.consumed_bw_gbps();
        match class {
            Sensitivity::Bandwidth => prop_assert!(bw >= params.t_high * peak - 1e-9),
            Sensitivity::Latency => prop_assert!(bw <= params.t_low * peak + 1e-9),
            Sensitivity::Mixed => {
                prop_assert!(bw > params.t_low * peak - 1e-9);
                prop_assert!(bw < params.t_high * peak + 1e-9);
            }
        }
    }

    #[test]
    fn migration_cost_laws(
        bytes in 0u64..100_000_000,
        copy_bw in 0.1f64..20.0,
        overlap in 0.0f64..1e9,
    ) {
        let c = migration_cost_ns(bytes, copy_bw, overlap);
        prop_assert!(c >= 0.0);
        prop_assert!(c <= bytes as f64 / copy_bw + 1e-9);
        // More overlap can only reduce cost.
        let c2 = migration_cost_ns(bytes, copy_bw, overlap + 1000.0);
        prop_assert!(c2 <= c + 1e-9);
    }

    #[test]
    fn demand_add_preserves_totals_and_mean_concurrency_bounds(
        a in demand_strategy(),
        b in demand_strategy(),
    ) {
        let c = a.add(&b);
        prop_assert!((c.loads - a.loads - b.loads).abs() < 1e-6);
        prop_assert!((c.stores - a.stores - b.stores).abs() < 1e-6);
        let lo = a.concurrency.min(b.concurrency);
        let hi = a.concurrency.max(b.concurrency);
        prop_assert!(c.concurrency >= lo - 1e-9 && c.concurrency <= hi + 1e-9);
    }

    #[test]
    fn scaling_demand_scales_prediction(
        d in demand_strategy(),
        f in 0.1f64..1.0,
    ) {
        let nvm = presets::optane_pmm(1 << 30);
        let calib = Calibration::identity(2.3, 9.5);
        let params = ModelParams::default();
        let whole = predicted_mem_time_ns(&d, &nvm, &calib, &params);
        let part = predicted_mem_time_ns(&d.scale(f), &nvm, &calib, &params);
        prop_assert!((part - whole * f).abs() <= 1e-6 * whole.max(1.0));
    }
}
