//! Golden-file guard for the JSONL wire format.
//!
//! A fixed event sequence covering every variant must serialize to
//! exactly `tests/golden/events.jsonl`. Any change to field names, field
//! order or number formatting shows up as a diff here — downstream
//! consumers (the CI artifact diff, external tooling) parse these lines,
//! so format changes must be deliberate. To re-bless after an intended
//! change, update the golden file to the `got` output the failure prints.

use tahoe_obs::{to_chrome_trace, to_jsonl, Event, OverheadKind, ReplanReason, Tier};

/// One event of every kind, with values exercising the number formatter
/// (integral floats, fractional floats, zero).
fn golden_events() -> Vec<Event> {
    vec![
        Event::WindowStart { t: 0.0, window: 0 },
        Event::TierSample {
            t: 0.0,
            window: 0,
            dram_used: 0,
            dram_capacity: 1048576,
            nvm_used: 786432,
            nvm_capacity: 3145728,
            inflight: 0,
        },
        Event::ProfilingArmed {
            t: 0.0,
            window: 0,
            until_window: 2,
        },
        Event::TaskStart {
            t: 0.0,
            task: 0,
            class: 0,
            window: 0,
        },
        Event::OverheadCharged {
            t: 125.5,
            kind: OverheadKind::Planning,
            ns: 125.5,
        },
        Event::DispatchStall {
            t: 125.5,
            task: 1,
            stall_ns: 74.5,
        },
        Event::TaskFinish {
            t: 1800.25,
            task: 0,
            class: 0,
            window: 0,
        },
        Event::ProfilingClosed {
            t: 3600.0,
            window: 2,
        },
        Event::PlanComputed {
            t: 3600.0,
            window: 2,
            kind: "global",
            candidates: 24,
            migrations: 8,
            predicted_gain_ns: 41250.75,
            baseline_ns: 98304.0,
            accepted: true,
        },
        Event::MigrationIssued {
            t: 3600.0,
            object: 7,
            bytes: 65536,
            from: Tier::Nvm,
            to: Tier::Dram,
            start: 3600.0,
            finish: 68136.0,
            queue_depth: 0,
        },
        Event::MigrationDeferred {
            t: 68136.0,
            object: 7,
        },
        Event::MigrationCompleted {
            t: 70000.0,
            object: 7,
            bytes: 65536,
            overlap_ns: 64536.0,
        },
        Event::ReplanTriggered {
            t: 90000.0,
            window: 5,
            reason: ReplanReason::Drift,
        },
        Event::ReplanTriggered {
            t: 95000.0,
            window: 6,
            reason: ReplanReason::UnseenClass,
        },
        Event::ArenaMapped {
            t: 0.0,
            tier: Tier::Nvm,
            bytes: 3145728,
            numa_node: -1,
        },
        Event::TierFitted {
            t: 100000.0,
            tier: Tier::Dram,
            read_bw_gbps: 12.5,
            write_bw_gbps: 9.75,
            read_lat_ns: 87.0,
        },
        Event::RealCopyDone {
            t: 110000.0,
            object: 7,
            bytes: 65536,
            from: Tier::Nvm,
            to: Tier::Dram,
            wall_ns: 1940.5,
            throttle_ns: 320.25,
            chunks: 16,
        },
        Event::WorkerTask {
            t: 120000.0,
            tenant: 1,
            worker: 2,
            task: 42,
            window: 6,
            wall_ns: 1525.25,
            gate_wait_ns: 0.0,
        },
        Event::PlacementDecision {
            t: 130000.0,
            object: 7,
            bytes: 65536,
            predicted_benefit_ns: 41250.75,
            chosen: true,
        },
        Event::SanitizeViolation {
            t: 140000.0,
            kind: "write_under_read".to_string(),
            task: 42,
            object: 7,
            detail: "t42 access #0 stores 8 lines to object 7 declared read-only".to_string(),
        },
        Event::GraphAdmitted {
            t: 150000.0,
            tenant: 1,
            graph: 3,
            queue_wait_ns: 2200.5,
            quota_bytes: 131072,
        },
        Event::TenantQuota {
            t: 150000.0,
            tenant: 1,
            quota_bytes: 131072,
            demand_bytes: 262144,
        },
        Event::TenantPreempt {
            t: 151000.0,
            tenant: 0,
            object: 9,
            bytes: 65536,
        },
        Event::GraphShed {
            t: 152000.0,
            tenant: 2,
            graph: 4,
            queued: 2,
        },
        Event::GraphDone {
            t: 160000.0,
            tenant: 1,
            graph: 3,
            latency_ns: 12000.75,
            wall_ns: 9800.0,
        },
    ]
}

#[test]
fn jsonl_matches_golden_file() {
    let got = to_jsonl(&golden_events());
    // `BLESS=1 cargo test -p tahoe-obs --test golden` rewrites the file.
    if std::env::var_os("BLESS").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/events.jsonl");
        std::fs::write(path, &got).expect("bless golden file");
        return;
    }
    let want = include_str!("golden/events.jsonl");
    assert_eq!(
        got, want,
        "JSONL wire format drifted from tests/golden/events.jsonl; \
         if the change is intended, re-bless the golden file"
    );
}

/// A tiny fixed scenario for the Chrome-trace golden: two workers, one
/// migration whose finish unblocks worker 1's gate wait — so the golden
/// pins the `"X"` span layout, the instants, the metadata records *and*
/// the `"s"`/`"f"` flow pair linking the copy channel to the stall.
fn trace_events() -> Vec<Event> {
    vec![
        Event::WindowStart { t: 0.0, window: 0 },
        Event::MigrationIssued {
            t: 100.0,
            object: 3,
            bytes: 4096,
            from: Tier::Nvm,
            to: Tier::Dram,
            start: 100.0,
            finish: 1600.0,
            queue_depth: 1,
        },
        Event::WorkerTask {
            t: 2000.0,
            tenant: 0,
            worker: 0,
            task: 1,
            window: 0,
            wall_ns: 1800.0,
            gate_wait_ns: 0.0,
        },
        Event::WorkerTask {
            t: 4000.0,
            tenant: 0,
            worker: 1,
            task: 2,
            window: 0,
            wall_ns: 3000.0,
            gate_wait_ns: 750.0,
        },
        Event::MigrationCompleted {
            t: 1600.0,
            object: 3,
            bytes: 4096,
            overlap_ns: 1200.0,
        },
    ]
}

#[test]
fn chrome_trace_matches_golden_file() {
    let got = to_chrome_trace(&trace_events());
    // `BLESS=1 cargo test -p tahoe-obs --test golden` rewrites the file.
    if std::env::var_os("BLESS").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace.json");
        std::fs::write(path, &got).expect("bless golden file");
        return;
    }
    let want = include_str!("golden/trace.json");
    assert_eq!(
        got, want,
        "Chrome trace format drifted from tests/golden/trace.json; \
         if the change is intended, re-bless the golden file"
    );
}

#[test]
fn golden_covers_every_event_kind() {
    let mut kinds: Vec<&str> = golden_events().iter().map(|e| e.kind()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(kinds.len(), 24, "one golden line per Event variant");
}
