//! Determinism guarantee of the flight recorder's drain: for a fixed
//! seeded event set, the merged stream and the histogram summaries are
//! byte-identical regardless of how many worker lanes the events were
//! spread across (1, 2 or 4) and regardless of the order in which the
//! producing threads happen to finish. This is the property the JSONL
//! byte-determinism story for parallel runs rests on.

use std::sync::{Arc, Barrier};

use tahoe_obs::{Event, FlightRecorder, HistSummary};

const KEYS: &[&str] = &["task_ns", "gate_wait_ns"];

/// Seeded event set with strictly increasing, distinct timestamps so the
/// merged order is a pure function of the set, not the lane partition.
fn seeded_events(seed: u64, n: u32) -> Vec<(f64, Event, f64)> {
    let mut state = seed | 1;
    let mut t = 0.0f64;
    (0..n)
        .map(|i| {
            // xorshift64*: deterministic, no external RNG needed.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            t += 1.0 + (r % 1000) as f64; // strictly increasing
            let wall = 10.0 + (r % 100_000) as f64;
            let ev = Event::WorkerTask {
                t,
                tenant: 0,
                worker: 0, // rewritten per lane below
                task: i,
                window: 0,
                wall_ns: wall,
                gate_wait_ns: 0.0,
            };
            (t, ev, wall)
        })
        .collect()
}

/// Fill a recorder with the seeded set partitioned round-robin over
/// `lanes` producer threads, each started behind a barrier and given a
/// per-thread busy delay so completion order varies, then drain.
fn run(seed: u64, lanes: usize, delay_rounds: &[u32]) -> (Vec<Event>, Vec<(String, HistSummary)>) {
    let events = seeded_events(seed, 512);
    let rec = Arc::new(FlightRecorder::new(lanes, 1 << 12, KEYS));
    let barrier = Arc::new(Barrier::new(lanes));
    std::thread::scope(|s| {
        for lane in 0..lanes {
            let rec = Arc::clone(&rec);
            let barrier = Arc::clone(&barrier);
            let mine: Vec<(f64, Event, f64)> = events
                .iter()
                .enumerate()
                .filter(|(i, _)| i % lanes == lane)
                .map(|(_, e)| e.clone())
                .collect();
            let spin = delay_rounds[lane % delay_rounds.len()];
            s.spawn(move || {
                barrier.wait();
                // Vary completion order across configurations.
                let mut acc = 0u64;
                for i in 0..spin {
                    acc = acc.wrapping_add(i as u64).rotate_left(7);
                }
                std::hint::black_box(acc);
                let h = rec.handle(lane);
                for (_, ev, wall) in mine {
                    h.record("task_ns", wall);
                    assert!(h.emit(ev), "ring must not overflow in this test");
                }
            });
        }
    });
    let cap = rec.drain();
    assert_eq!(cap.total_dropped, 0);
    let hists = cap
        .hists
        .iter()
        .map(|(k, d)| (k.to_string(), d.summary()))
        .collect();
    (cap.events, hists)
}

#[test]
fn merged_stream_identical_across_lane_counts_and_finish_orders() {
    let seed = 0x5EED_CAFE;
    // Reference: single lane, no contention.
    let (ref_events, ref_hists) = run(seed, 1, &[0]);
    assert_eq!(ref_events.len(), 512);
    // Timestamps must come out sorted.
    for w in ref_events.windows(2) {
        assert!(w[0].timestamp() <= w[1].timestamp());
    }
    for lanes in [2usize, 4] {
        // Two delay profiles per lane count: fast-first and slow-first
        // thread completion.
        for delays in [
            &[0u32, 200_000, 50_000, 400_000][..],
            &[400_000, 0, 200_000, 50_000][..],
        ] {
            let (events, hists) = run(seed, lanes, delays);
            assert_eq!(
                events, ref_events,
                "merged stream must not depend on lane count ({lanes}) or finish order"
            );
            assert_eq!(
                hists, ref_hists,
                "histogram summaries must not depend on lane count ({lanes}) or finish order"
            );
        }
    }
}

#[test]
fn repeated_drains_of_identical_fills_are_identical() {
    let a = run(0xABCD_EF01, 4, &[0, 100_000, 0, 100_000]);
    let b = run(0xABCD_EF01, 4, &[100_000, 0, 100_000, 0]);
    assert_eq!(a, b);
}
