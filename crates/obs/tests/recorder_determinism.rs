//! Determinism guarantee of the flight recorder's drain: for a fixed
//! seeded event set, the merged stream and the histogram summaries are
//! byte-identical regardless of how many worker lanes the events were
//! spread across (1, 2 or 4) and regardless of the order in which the
//! producing threads happen to finish. This is the property the JSONL
//! byte-determinism story for parallel runs rests on.

use std::sync::{Arc, Barrier};

use tahoe_obs::{Event, FlightRecorder, HistSummary};

const KEYS: &[&str] = &["task_ns", "gate_wait_ns"];

/// Seeded event set with strictly increasing, distinct timestamps so the
/// merged order is a pure function of the set, not the lane partition.
fn seeded_events(seed: u64, n: u32) -> Vec<(f64, Event, f64)> {
    let mut state = seed | 1;
    let mut t = 0.0f64;
    (0..n)
        .map(|i| {
            // xorshift64*: deterministic, no external RNG needed.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            t += 1.0 + (r % 1000) as f64; // strictly increasing
            let wall = 10.0 + (r % 100_000) as f64;
            let ev = Event::WorkerTask {
                t,
                tenant: 0,
                worker: 0, // rewritten per lane below
                task: i,
                window: 0,
                wall_ns: wall,
                gate_wait_ns: 0.0,
            };
            (t, ev, wall)
        })
        .collect()
}

/// Fill a recorder with the seeded set partitioned round-robin over
/// `lanes` producer threads, each started behind a barrier and given a
/// per-thread busy delay so completion order varies, then drain.
fn run(seed: u64, lanes: usize, delay_rounds: &[u32]) -> (Vec<Event>, Vec<(String, HistSummary)>) {
    let events = seeded_events(seed, 512);
    let rec = Arc::new(FlightRecorder::new(lanes, 1 << 12, KEYS));
    let barrier = Arc::new(Barrier::new(lanes));
    std::thread::scope(|s| {
        for lane in 0..lanes {
            let rec = Arc::clone(&rec);
            let barrier = Arc::clone(&barrier);
            let mine: Vec<(f64, Event, f64)> = events
                .iter()
                .enumerate()
                .filter(|(i, _)| i % lanes == lane)
                .map(|(_, e)| e.clone())
                .collect();
            let spin = delay_rounds[lane % delay_rounds.len()];
            s.spawn(move || {
                barrier.wait();
                // Vary completion order across configurations.
                let mut acc = 0u64;
                for i in 0..spin {
                    acc = acc.wrapping_add(i as u64).rotate_left(7);
                }
                std::hint::black_box(acc);
                let h = rec.handle(lane);
                for (_, ev, wall) in mine {
                    h.record("task_ns", wall);
                    assert!(h.emit(ev), "ring must not overflow in this test");
                }
            });
        }
    });
    let cap = rec.drain();
    assert_eq!(cap.total_dropped, 0);
    let hists = cap
        .hists
        .iter()
        .map(|(k, d)| (k.to_string(), d.summary()))
        .collect();
    (cap.events, hists)
}

#[test]
fn merged_stream_identical_across_lane_counts_and_finish_orders() {
    let seed = 0x5EED_CAFE;
    // Reference: single lane, no contention.
    let (ref_events, ref_hists) = run(seed, 1, &[0]);
    assert_eq!(ref_events.len(), 512);
    // Timestamps must come out sorted.
    for w in ref_events.windows(2) {
        assert!(w[0].timestamp() <= w[1].timestamp());
    }
    for lanes in [2usize, 4] {
        // Two delay profiles per lane count: fast-first and slow-first
        // thread completion.
        for delays in [
            &[0u32, 200_000, 50_000, 400_000][..],
            &[400_000, 0, 200_000, 50_000][..],
        ] {
            let (events, hists) = run(seed, lanes, delays);
            assert_eq!(
                events, ref_events,
                "merged stream must not depend on lane count ({lanes}) or finish order"
            );
            assert_eq!(
                hists, ref_hists,
                "histogram summaries must not depend on lane count ({lanes}) or finish order"
            );
        }
    }
}

#[test]
fn repeated_drains_of_identical_fills_are_identical() {
    let a = run(0xABCD_EF01, 4, &[0, 100_000, 0, 100_000]);
    let b = run(0xABCD_EF01, 4, &[100_000, 0, 100_000, 0]);
    assert_eq!(a, b);
}

/// Like [`run`] but with a deliberately tiny ring, so every lane
/// overflows. Returns the capture so callers can inspect the drop
/// accounting alongside the surviving stream.
fn run_overflowing(seed: u64, lanes: usize, capacity: usize) -> tahoe_obs::FlightCapture {
    let events = seeded_events(seed, 512);
    let rec = Arc::new(FlightRecorder::new(lanes, capacity, KEYS));
    let barrier = Arc::new(Barrier::new(lanes));
    std::thread::scope(|s| {
        for lane in 0..lanes {
            let rec = Arc::clone(&rec);
            let barrier = Arc::clone(&barrier);
            let mine: Vec<(f64, Event, f64)> = events
                .iter()
                .enumerate()
                .filter(|(i, _)| i % lanes == lane)
                .map(|(_, e)| e.clone())
                .collect();
            s.spawn(move || {
                barrier.wait();
                let h = rec.handle(lane);
                for (_, ev, wall) in mine {
                    // Histograms are bounded state, not ring slots: they
                    // must keep recording even when the ring is full.
                    h.record("task_ns", wall);
                    h.emit(ev);
                }
            });
        }
    });
    rec.drain()
}

#[test]
fn overflow_counts_drops_and_keeps_the_surviving_prefix_deterministic() {
    let seed = 0x0F10_57A7;
    let cap_a = run_overflowing(seed, 4, 16);
    let cap_b = run_overflowing(seed, 4, 16);

    // 512 events round-robin over 4 lanes = 128 per lane; 16 survive in
    // each ring, the 112 rejected arrivals are counted, none lost
    // silently.
    assert_eq!(cap_a.lane_dropped, vec![112, 112, 112, 112]);
    assert_eq!(cap_a.total_dropped, 448);
    assert_eq!(cap_a.events.len(), 512 - 448);

    // Drops reject *new* arrivals, so each lane keeps its earliest
    // events; the merged survivor stream is still (t, lane, seq)-sorted
    // and identical run-to-run.
    for w in cap_a.events.windows(2) {
        assert!(w[0].timestamp() <= w[1].timestamp());
    }
    assert_eq!(cap_a.events, cap_b.events);
    assert_eq!(cap_a.lane_dropped, cap_b.lane_dropped);

    // The survivors are exactly the seeded set's first 16 per lane.
    let all = seeded_events(seed, 512);
    let mut expect: Vec<Event> = Vec::new();
    for lane in 0..4usize {
        expect.extend(
            all.iter()
                .enumerate()
                .filter(|(i, _)| i % 4 == lane)
                .take(16)
                .map(|(_, (_, e, _))| e.clone()),
        );
    }
    expect.sort_by(|a, b| a.timestamp().total_cmp(&b.timestamp()));
    // Seeded timestamps are distinct, so timestamp order is total here.
    assert_eq!(cap_a.events, expect);

    // Histogram recording is independent of ring occupancy: all 512
    // samples landed even though 448 events were dropped.
    let task = cap_a
        .hists
        .iter()
        .find(|(k, _)| *k == "task_ns")
        .expect("registered key");
    assert_eq!(task.1.count(), 512);
}

#[test]
fn histogram_merge_handles_empty_and_saturated_lanes() {
    // Lane 0 records nothing; lane 1 records into a saturated ring
    // (capacity 1); lane 2 records normally with room to spare. The
    // merged per-key histograms must equal a single-lane reference fill
    // of the same samples.
    let rec = FlightRecorder::new(3, 1, KEYS);
    let samples: Vec<f64> = (0..200).map(|i| 1.0 + (i * 37 % 9973) as f64).collect();
    let h1 = rec.handle(1);
    let h2 = rec.handle(2);
    for (i, &s) in samples.iter().enumerate() {
        let h = if i % 2 == 0 { &h1 } else { &h2 };
        h.record("task_ns", s);
        h.emit(Event::WindowStart {
            t: i as f64,
            window: i as u32,
        });
    }
    // Unregistered keys stay ignored even on saturated lanes.
    h1.record("no_such_key", 1.0);
    let cap = rec.drain();
    assert!(cap.total_dropped > 0, "capacity 1 must saturate");

    let reference = {
        let r = FlightRecorder::new(1, 1, KEYS);
        let h = r.handle(0);
        for &s in &samples {
            h.record("task_ns", s);
        }
        r.drain()
    };
    let merged = cap.hists.iter().find(|(k, _)| *k == "task_ns").unwrap();
    let want = reference
        .hists
        .iter()
        .find(|(k, _)| *k == "task_ns")
        .unwrap();
    assert_eq!(merged.1, want.1, "merge(empty, a, b) == fill(a ++ b)");
    assert_eq!(merged.1.count(), 200);
    // "gate_wait_ns" was registered but never recorded: empty per-key
    // histograms are omitted from the capture entirely.
    assert!(cap.hists.iter().all(|(k, _)| *k != "gate_wait_ns"));
}
