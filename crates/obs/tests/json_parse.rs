//! Integration tests for the zero-dependency JSON parser — the piece
//! every self-validated bench artifact and CI check leans on. Beyond the
//! unit tests in `json.rs`, this exercises the parser against the JSONL
//! exporter's actual output (round-trip property test) and the rejection
//! paths a hand-built artifact writer could realistically hit.

use proptest::prelude::*;

use tahoe_obs::json::{parse, Value};
use tahoe_obs::{to_jsonl, Event};

#[test]
fn escape_sequences_unescape() {
    let v = parse(r#""a\"b\\c\/d\bx\fy\nz\rw\tv""#).unwrap();
    assert_eq!(v.as_str().unwrap(), "a\"b\\c/d\u{8}x\u{c}y\nz\rw\tv");
    // BMP \u escapes, raw UTF-8 passthrough, and a lone surrogate half
    // degrading to U+FFFD rather than an error.
    assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    assert_eq!(parse("\"héllo→\"").unwrap().as_str(), Some("héllo→"));
    assert_eq!(parse(r#""\ud83d""#).unwrap().as_str(), Some("\u{fffd}"));
    assert!(parse(r#""\q""#).is_err(), "unknown escape must be rejected");
    assert!(parse(r#""\u12"#).is_err(), "truncated \\u must be rejected");
}

#[test]
fn nested_arrays_and_objects() {
    let v = parse(r#"{"a":[1,[2,{"b":[true,null,{"c":{}}]}],[]],"d":{"e":[-0.5]}}"#).unwrap();
    let a = v.get("a").and_then(Value::as_array).unwrap();
    assert_eq!(a[0].as_f64(), Some(1.0));
    let inner = a[1].as_array().unwrap();
    assert_eq!(inner[0].as_f64(), Some(2.0));
    let b = inner[1].get("b").and_then(Value::as_array).unwrap();
    assert_eq!(b[0].as_bool(), Some(true));
    assert_eq!(b[1], Value::Null);
    assert!(matches!(b[2].get("c"), Some(Value::Object(m)) if m.is_empty()));
    assert_eq!(a[2].as_array(), Some(&[][..]));
    let e = v.get("d").and_then(|d| d.get("e")).unwrap();
    assert_eq!(e.as_array().unwrap()[0].as_f64(), Some(-0.5));
}

#[test]
fn non_finite_numbers_are_rejected() {
    // JSON has no NaN/Infinity literals; a formatter that lets one
    // through must fail validation, not silently parse.
    for bad in ["NaN", "-NaN", "Infinity", "-Infinity", "inf", "-inf", "nan"] {
        assert!(parse(bad).is_err(), "{bad} must not parse");
        assert!(
            parse(&format!("{{\"x\":{bad}}}")).is_err(),
            "{{\"x\":{bad}}} must not parse"
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    for bad in [
        "{} {}",
        "1 2",
        "[1],",
        "{\"a\":1}x",
        "null null",
        "\"s\"\"t\"",
    ] {
        assert!(parse(bad).is_err(), "{bad:?} must not parse");
    }
    // Trailing whitespace (including newlines) is fine.
    assert!(parse("{\"a\":1}  \n\t").is_ok());
}

/// Escape a string the way a JSON *writer* would, to feed the parser
/// arbitrary content through the wire format.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn char_palette() -> Vec<char> {
    // Quotes, backslashes, control chars, ASCII, and multi-byte UTF-8.
    vec![
        '"', '\\', '/', '\n', '\r', '\t', '\u{1}', ' ', 'a', 'Z', '0', '{', '}', '[', ']', ':',
        ',', 'é', '→', '𝕊', '\u{fffd}',
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any string, escaped by the book, parses back to itself.
    #[test]
    fn string_escaping_round_trips(picks in proptest::collection::vec(0usize..21, 0..40)) {
        let palette = char_palette();
        let s: String = picks.iter().map(|&i| palette[i]).collect();
        let parsed = parse(&escape_json(&s)).unwrap();
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }

    /// Every line the JSONL exporter writes parses, and the numeric and
    /// enum fields round-trip exactly (Rust's shortest-float formatting
    /// is lossless through the parser's `f64` path).
    #[test]
    fn exporter_output_round_trips(
        t in 0.0f64..1e12,
        tenant in 0u32..64,
        worker in 0u32..256,
        task in 0u32..100_000,
        window in 0u32..1000,
        wall in 0.0f64..1e9,
        gate in 0.0f64..1e9,
        object in 0u32..4096,
        bytes in 1u64..(1 << 40),
        benefit in 0.0f64..1e12,
        chosen in prop_oneof![Just(true), Just(false)],
    ) {
        let events = vec![
            Event::WorkerTask {
                t,
                tenant,
                worker,
                task,
                window,
                wall_ns: wall,
                gate_wait_ns: gate,
            },
            Event::PlacementDecision {
                t,
                object,
                bytes,
                predicted_benefit_ns: benefit,
                chosen,
            },
        ];
        let jsonl = to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        prop_assert_eq!(lines.len(), events.len());

        let wt = parse(lines[0]).unwrap();
        prop_assert_eq!(wt.get("ev").and_then(Value::as_str), Some("worker_task"));
        prop_assert_eq!(wt.get("t").and_then(Value::as_f64), Some(t));
        prop_assert_eq!(wt.get("tenant").and_then(Value::as_f64), Some(tenant as f64));
        prop_assert_eq!(wt.get("worker").and_then(Value::as_f64), Some(worker as f64));
        prop_assert_eq!(wt.get("task").and_then(Value::as_f64), Some(task as f64));
        prop_assert_eq!(wt.get("wall_ns").and_then(Value::as_f64), Some(wall));
        prop_assert_eq!(wt.get("gate_wait_ns").and_then(Value::as_f64), Some(gate));

        let pd = parse(lines[1]).unwrap();
        prop_assert_eq!(pd.get("ev").and_then(Value::as_str), Some("placement_decision"));
        prop_assert_eq!(pd.get("object").and_then(Value::as_f64), Some(object as f64));
        prop_assert_eq!(pd.get("bytes").and_then(Value::as_f64), Some(bytes as f64));
        prop_assert_eq!(
            pd.get("predicted_benefit_ns").and_then(Value::as_f64),
            Some(benefit)
        );
        prop_assert_eq!(pd.get("chosen").and_then(Value::as_bool), Some(chosen));
    }
}
