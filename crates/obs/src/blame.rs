//! Exposed-stall blame attribution over the merged flight-recorder
//! stream.
//!
//! The migration engine emits an ([`Event::MigrationIssued`],
//! [`Event::MigrationCompleted`]) pair per committed copy: the issue
//! event carries the copy interval `[start, finish]` and the tiers, the
//! completion carries the overlapped portion. The planner stamps one
//! [`Event::PlacementDecision`] per object it scored. Workers stamp
//! gate-wait time at the head of each [`Event::WorkerTask`] span. This
//! module joins the three into a per-(object, destination-tier) blame
//! table:
//!
//! * `overlapped_ns` / `exposed_ns` — the copy time hidden behind
//!   compute vs paid as stalls, summed per object. Aggregated across
//!   the table these reproduce `MigrationStats::pct_overlap` exactly
//!   (same records, same arithmetic) — the reconciliation the blame
//!   bench gates to within 1%.
//! * `gate_wait_ns` — every worker gate-wait nanosecond, attributed to
//!   whichever copy was in flight during the wait (walked
//!   chronologically so overlapping copies split the interval rather
//!   than double-count it). Wait time no copy overlaps lands in
//!   [`BlameTable::unattributed_wait_ns`] — nothing is dropped.
//! * `chosen` / `predicted_benefit_ns` — the placement decision the
//!   knapsack made for the object, for the what-if sign check.

use std::collections::BTreeMap;

use crate::event::{Event, Ns, Tier};

/// Blame accumulated against one (object, destination tier) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameEntry {
    /// Object id (HMS id; identical to the app index in per-run heaps).
    pub object: u32,
    /// Destination tier of the blamed copies.
    pub tier: Tier,
    /// Committed migrations of this object into this tier.
    pub migrations: u64,
    /// Bytes those migrations moved.
    pub bytes: u64,
    /// Copy time hidden behind compute.
    pub overlapped_ns: Ns,
    /// Copy time paid as exposed stalls.
    pub exposed_ns: Ns,
    /// Worker gate-wait ns attributed to this object's in-flight copies.
    pub gate_wait_ns: Ns,
    /// Whether the knapsack chose the object for DRAM.
    pub chosen: bool,
    /// The knapsack's predicted benefit for the object.
    pub predicted_benefit_ns: Ns,
}

/// Whole-run blame table: entries sorted by exposed time (worst first).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BlameTable {
    /// Entries, highest `exposed_ns` first (object id breaks ties).
    pub entries: Vec<BlameEntry>,
    /// Total overlapped copy ns across all entries.
    pub overlapped_ns: Ns,
    /// Total exposed copy ns across all entries.
    pub exposed_ns: Ns,
    /// Gate-wait ns attributed to some in-flight copy.
    pub attributed_wait_ns: Ns,
    /// Gate-wait ns no copy overlapped.
    pub unattributed_wait_ns: Ns,
}

impl BlameTable {
    /// Aggregate percent of copy time hidden behind compute — the same
    /// quantity as `MigrationStats::pct_overlap` (100 when no copies).
    pub fn pct_overlap(&self) -> f64 {
        let total = self.overlapped_ns + self.exposed_ns;
        if total <= 0.0 {
            100.0
        } else {
            100.0 * self.overlapped_ns / total
        }
    }

    /// The `k` worst entries by exposed stall time.
    pub fn top_k(&self, k: usize) -> &[BlameEntry] {
        &self.entries[..k.min(self.entries.len())]
    }

    /// Build the table from a merged event stream.
    pub fn from_events(events: &[Event]) -> BlameTable {
        // Pass 1: per-object FIFO of issued copies, and the placement
        // decision per object. Completions pair with issues in emission
        // order (the engine commits one copy at a time per object).
        struct Issue {
            bytes: u64,
            to: Tier,
            start: Ns,
            finish: Ns,
        }
        let mut issued: BTreeMap<u32, std::collections::VecDeque<Issue>> = BTreeMap::new();
        let mut decisions: BTreeMap<u32, (bool, Ns)> = BTreeMap::new();
        for e in events {
            match *e {
                Event::MigrationIssued {
                    object,
                    bytes,
                    to,
                    start,
                    finish,
                    ..
                } => issued.entry(object).or_default().push_back(Issue {
                    bytes,
                    to,
                    start,
                    finish,
                }),
                Event::PlacementDecision {
                    object,
                    predicted_benefit_ns,
                    chosen,
                    ..
                } => {
                    decisions.insert(object, (chosen, predicted_benefit_ns));
                }
                _ => {}
            }
        }

        // Pass 2: fold completions into per-(object, tier) entries and
        // collect the copy intervals for gate-wait attribution.
        let mut table: BTreeMap<(u32, u8), BlameEntry> = BTreeMap::new();
        let mut intervals: Vec<(Ns, Ns, u32, u8)> = Vec::new(); // (start, finish, object, tier)
        fn tier_u8(t: Tier) -> u8 {
            match t {
                Tier::Dram => 0,
                Tier::Nvm => 1,
            }
        }
        fn entry_for<'a>(
            table: &'a mut BTreeMap<(u32, u8), BlameEntry>,
            decisions: &BTreeMap<u32, (bool, Ns)>,
            object: u32,
            to: Tier,
        ) -> &'a mut BlameEntry {
            let (chosen, predicted) = decisions.get(&object).copied().unwrap_or((false, 0.0));
            table
                .entry((object, tier_u8(to)))
                .or_insert_with(|| BlameEntry {
                    object,
                    tier: to,
                    migrations: 0,
                    bytes: 0,
                    overlapped_ns: 0.0,
                    exposed_ns: 0.0,
                    gate_wait_ns: 0.0,
                    chosen,
                    predicted_benefit_ns: predicted,
                })
        }
        let mut overlapped_total = 0.0;
        let mut exposed_total = 0.0;
        for e in events {
            if let Event::MigrationCompleted {
                object, overlap_ns, ..
            } = *e
            {
                let Some(issue) = issued.get_mut(&object).and_then(|q| q.pop_front()) else {
                    continue; // truncated stream: completion without its issue
                };
                let dur = (issue.finish - issue.start).max(0.0);
                let overlapped = overlap_ns.clamp(0.0, dur);
                let exposed = dur - overlapped;
                intervals.push((issue.start, issue.finish, object, tier_u8(issue.to)));
                let entry = entry_for(&mut table, &decisions, object, issue.to);
                entry.migrations += 1;
                entry.bytes += issue.bytes;
                entry.overlapped_ns += overlapped;
                entry.exposed_ns += exposed;
                overlapped_total += overlapped;
                exposed_total += exposed;
            }
        }
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));

        // Pass 3: split every gate-wait interval across the copies in
        // flight during it; the remainder is unattributed.
        let mut attributed = 0.0;
        let mut unattributed = 0.0;
        for e in events {
            let Event::WorkerTask {
                t,
                wall_ns,
                gate_wait_ns,
                ..
            } = *e
            else {
                continue;
            };
            let wall = wall_ns.max(0.0);
            let w_start = t - wall;
            let w_end = w_start + gate_wait_ns.clamp(0.0, wall);
            let mut cursor = w_start;
            for &(m_start, m_finish, object, tier) in &intervals {
                if cursor >= w_end {
                    break;
                }
                if m_finish <= cursor || m_start >= w_end {
                    continue;
                }
                if m_start > cursor {
                    unattributed += m_start - cursor;
                    cursor = m_start;
                }
                let piece = m_finish.min(w_end) - cursor;
                if piece > 0.0 {
                    let to = if tier == 0 { Tier::Dram } else { Tier::Nvm };
                    entry_for(&mut table, &decisions, object, to).gate_wait_ns += piece;
                    attributed += piece;
                    cursor += piece;
                }
            }
            if w_end > cursor {
                unattributed += w_end - cursor;
            }
        }

        let mut entries: Vec<BlameEntry> = table.into_values().collect();
        entries.sort_by(|a, b| {
            b.exposed_ns
                .total_cmp(&a.exposed_ns)
                .then(a.object.cmp(&b.object))
        });
        BlameTable {
            entries,
            overlapped_ns: overlapped_total,
            exposed_ns: exposed_total,
            attributed_wait_ns: attributed,
            unattributed_wait_ns: unattributed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issued(object: u32, bytes: u64, start: f64, finish: f64) -> Event {
        Event::MigrationIssued {
            t: start,
            object,
            bytes,
            from: Tier::Nvm,
            to: Tier::Dram,
            start,
            finish,
            queue_depth: 0,
        }
    }

    fn completed(object: u32, bytes: u64, finish: f64, overlap: f64) -> Event {
        Event::MigrationCompleted {
            t: finish,
            object,
            bytes,
            overlap_ns: overlap,
        }
    }

    fn task(t_finish: f64, wall: f64, gate: f64) -> Event {
        Event::WorkerTask {
            t: t_finish,
            tenant: 0,
            worker: 0,
            task: 0,
            window: 0,
            wall_ns: wall,
            gate_wait_ns: gate,
        }
    }

    #[test]
    fn empty_stream_reports_full_overlap() {
        let t = BlameTable::from_events(&[]);
        assert!(t.entries.is_empty());
        assert_eq!(t.pct_overlap(), 100.0);
    }

    #[test]
    fn completion_splits_into_overlapped_and_exposed() {
        let events = vec![
            issued(3, 4096, 100.0, 200.0),
            completed(3, 4096, 200.0, 60.0),
        ];
        let t = BlameTable::from_events(&events);
        assert_eq!(t.entries.len(), 1);
        let e = &t.entries[0];
        assert_eq!(e.object, 3);
        assert_eq!(e.tier, Tier::Dram);
        assert_eq!(e.migrations, 1);
        assert_eq!(e.bytes, 4096);
        assert!((e.overlapped_ns - 60.0).abs() < 1e-9);
        assert!((e.exposed_ns - 40.0).abs() < 1e-9);
        assert!((t.pct_overlap() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn every_gate_wait_ns_lands_somewhere() {
        // Wait [100, 180]; object 5's copy covers [120, 150]: 30ns
        // attributed, 50ns (the gap before 120 plus the tail after 150)
        // unattributed.
        let events = vec![
            issued(5, 1024, 120.0, 150.0),
            completed(5, 1024, 150.0, 30.0),
            task(300.0, 200.0, 80.0),
        ];
        let t = BlameTable::from_events(&events);
        assert!((t.attributed_wait_ns - 30.0).abs() < 1e-9);
        assert!((t.unattributed_wait_ns - 50.0).abs() < 1e-9);
        assert!((t.entries[0].gate_wait_ns - 30.0).abs() < 1e-9);
        assert!(
            (t.attributed_wait_ns + t.unattributed_wait_ns - 80.0).abs() < 1e-9,
            "wait time is conserved"
        );
    }

    #[test]
    fn overlapping_copies_split_the_wait_without_double_counting() {
        // Wait [0, 100]; object 1 covers [0, 60], object 2 covers
        // [40, 100]. The chronological walk gives object 1 the first
        // 60ns and object 2 the remaining 40ns.
        let events = vec![
            issued(1, 10, 0.0, 60.0),
            issued(2, 10, 40.0, 100.0),
            completed(1, 10, 60.0, 0.0),
            completed(2, 10, 100.0, 0.0),
            task(200.0, 200.0, 100.0),
        ];
        let t = BlameTable::from_events(&events);
        assert!((t.attributed_wait_ns - 100.0).abs() < 1e-9);
        assert_eq!(t.unattributed_wait_ns, 0.0);
        let by_obj: BTreeMap<u32, f64> = t
            .entries
            .iter()
            .map(|e| (e.object, e.gate_wait_ns))
            .collect();
        assert!((by_obj[&1] - 60.0).abs() < 1e-9);
        assert!((by_obj[&2] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn placement_decisions_annotate_entries() {
        let events = vec![
            Event::PlacementDecision {
                t: 0.0,
                object: 9,
                bytes: 64,
                predicted_benefit_ns: 123.0,
                chosen: true,
            },
            issued(9, 64, 10.0, 20.0),
            completed(9, 64, 20.0, 10.0),
        ];
        let t = BlameTable::from_events(&events);
        assert!(t.entries[0].chosen);
        assert_eq!(t.entries[0].predicted_benefit_ns, 123.0);
    }

    #[test]
    fn entries_sort_worst_exposed_first() {
        let events = vec![
            issued(1, 10, 0.0, 10.0),
            issued(2, 10, 0.0, 100.0),
            completed(1, 10, 10.0, 10.0),
            completed(2, 10, 100.0, 0.0),
        ];
        let t = BlameTable::from_events(&events);
        assert_eq!(t.entries[0].object, 2);
        assert_eq!(t.top_k(1).len(), 1);
        assert_eq!(t.top_k(5).len(), 2);
    }
}
