//! Metrics registry: monotonic counters, gauges, and per-window series,
//! keyed by `&'static str` names.
//!
//! Same enable/disable shape as [`crate::emit::Emitter`]: a disabled
//! registry is a `None` and every call is one branch. Keys are static
//! strings agreed on by the instrumented crates (see the README's metric
//! table — e.g. the lock-free `SharedHms` contention family
//! `hms.pin_cas_retries` / `hms.parks` / `hms.unparks` /
//! `hms.move_waits` added by the parallel measured runtime); storage is
//! `BTreeMap` so snapshots iterate in a deterministic order without a
//! sort pass.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::hist::{HistData, HistSummary};

#[derive(Debug, Default)]
struct MetricsShared {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    series: Mutex<BTreeMap<&'static str, Vec<(u32, f64)>>>,
    hists: Mutex<BTreeMap<&'static str, HistData>>,
}

/// Clonable metrics handle shared across the instrumented crates.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    shared: Option<Arc<MetricsShared>>,
}

impl Metrics {
    /// A registry that records nothing (one branch per call site).
    pub fn disabled() -> Self {
        Metrics { shared: None }
    }

    /// A live registry.
    pub fn enabled() -> Self {
        Metrics {
            shared: Some(Arc::new(MetricsShared::default())),
        }
    }

    /// Whether values are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Increment a monotonic counter by one.
    #[inline]
    pub fn inc(&self, key: &'static str) {
        self.add(key, 1);
    }

    /// Increment a monotonic counter by `n`.
    #[inline]
    pub fn add(&self, key: &'static str, n: u64) {
        if let Some(shared) = &self.shared {
            *shared
                .counters
                .lock()
                .expect("metrics counters poisoned")
                .entry(key)
                .or_insert(0) += n;
        }
    }

    /// Set a gauge to an absolute value.
    #[inline]
    pub fn gauge_set(&self, key: &'static str, value: f64) {
        if let Some(shared) = &self.shared {
            shared
                .gauges
                .lock()
                .expect("metrics gauges poisoned")
                .insert(key, value);
        }
    }

    /// Add a delta to a gauge (missing gauges start at zero).
    #[inline]
    pub fn gauge_add(&self, key: &'static str, delta: f64) {
        if let Some(shared) = &self.shared {
            *shared
                .gauges
                .lock()
                .expect("metrics gauges poisoned")
                .entry(key)
                .or_insert(0.0) += delta;
        }
    }

    /// Append one `(window, value)` point to a named series.
    #[inline]
    pub fn series_push(&self, key: &'static str, window: u32, value: f64) {
        if let Some(shared) = &self.shared {
            shared
                .series
                .lock()
                .expect("metrics series poisoned")
                .entry(key)
                .or_default()
                .push((window, value));
        }
    }

    /// Record one nanosecond value into a named latency histogram.
    #[inline]
    pub fn hist_record(&self, key: &'static str, ns: f64) {
        if let Some(shared) = &self.shared {
            shared
                .hists
                .lock()
                .expect("metrics hists poisoned")
                .entry(key)
                .or_default()
                .record(ns);
        }
    }

    /// Fold a pre-merged histogram snapshot (e.g. a flight-recorder
    /// drain) into a named histogram. Bucket-wise addition, so fold order
    /// never changes the result.
    pub fn hist_fold(&self, key: &'static str, data: &HistData) {
        if let Some(shared) = &self.shared {
            shared
                .hists
                .lock()
                .expect("metrics hists poisoned")
                .entry(key)
                .or_default()
                .merge(data);
        }
    }

    /// Snapshot every recorded value. A disabled registry snapshots empty.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.shared {
            None => MetricsSnapshot::default(),
            Some(shared) => MetricsSnapshot {
                counters: shared
                    .counters
                    .lock()
                    .expect("metrics counters poisoned")
                    .iter()
                    .map(|(k, v)| (k.to_string(), *v))
                    .collect(),
                gauges: shared
                    .gauges
                    .lock()
                    .expect("metrics gauges poisoned")
                    .iter()
                    .map(|(k, v)| (k.to_string(), *v))
                    .collect(),
                series: shared
                    .series
                    .lock()
                    .expect("metrics series poisoned")
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                histograms: shared
                    .hists
                    .lock()
                    .expect("metrics hists poisoned")
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.summary()))
                    .collect(),
            },
        }
    }
}

/// A point-in-time copy of a [`Metrics`] registry, sorted by key.
///
/// Embedded in run reports; `Default` (all empty) is what unobserved runs
/// carry, so reports stay cheap when nothing was recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Per-window series, sorted by name; points in push order.
    pub series: Vec<(String, Vec<(u32, f64)>)>,
    /// Latency-histogram digests (p50/p90/p99/max), sorted by name.
    pub histograms: Vec<(String, HistSummary)>,
}

impl MetricsSnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.series.is_empty()
            && self.histograms.is_empty()
    }

    /// Look up a counter by name.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Look up a series by name.
    pub fn series(&self, key: &str) -> Option<&[(u32, f64)]> {
        self.series
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_slice())
    }

    /// Look up a histogram digest by name.
    pub fn histogram(&self, key: &str) -> Option<&HistSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Deterministic JSON rendering (keys already sorted, fields in fixed
    /// order) — this is the machine-diffable artifact CI archives.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"series\":{");
        for (i, (k, points)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":[");
            for (j, (w, v)) in points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{w},{v}]");
            }
            out.push(']');
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, s)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{k}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                s.count, s.p50, s.p90, s.p99, s.max
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let m = Metrics::disabled();
        m.inc("a");
        m.gauge_set("b", 1.0);
        m.series_push("c", 0, 1.0);
        assert!(!m.is_enabled());
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let m = Metrics::enabled();
        m.inc("migrations");
        m.add("migrations", 2);
        m.add("bytes", 4096);
        let snap = m.snapshot();
        assert_eq!(snap.counter("migrations"), Some(3));
        assert_eq!(snap.counter("bytes"), Some(4096));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn gauges_set_and_add() {
        let m = Metrics::enabled();
        m.gauge_set("occ", 0.5);
        m.gauge_set("occ", 0.75);
        m.gauge_add("delta", 1.0);
        m.gauge_add("delta", 0.5);
        let snap = m.snapshot();
        assert_eq!(snap.gauge("occ"), Some(0.75));
        assert_eq!(snap.gauge("delta"), Some(1.5));
    }

    #[test]
    fn series_preserve_push_order() {
        let m = Metrics::enabled();
        m.series_push("occ", 0, 0.1);
        m.series_push("occ", 1, 0.2);
        let snap = m.snapshot();
        assert_eq!(snap.series("occ"), Some(&[(0, 0.1), (1, 0.2)][..]));
    }

    #[test]
    fn clones_share_storage() {
        let m = Metrics::enabled();
        let m2 = m.clone();
        m.inc("x");
        m2.inc("x");
        assert_eq!(m.snapshot().counter("x"), Some(2));
    }

    #[test]
    fn snapshot_keys_sorted_and_json_deterministic() {
        let m = Metrics::enabled();
        m.inc("zeta");
        m.inc("alpha");
        m.gauge_set("g", 2.5);
        m.series_push("s", 0, 1.0);
        let snap = m.snapshot();
        assert_eq!(snap.counters[0].0, "alpha");
        assert_eq!(snap.counters[1].0, "zeta");
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{\"alpha\":1,\"zeta\":1},\"gauges\":{\"g\":2.5},\"series\":{\"s\":[[0,1]]},\"histograms\":{}}"
        );
        assert_eq!(snap.to_json(), m.snapshot().to_json());
    }

    #[test]
    fn empty_snapshot_json() {
        assert_eq!(
            MetricsSnapshot::default().to_json(),
            "{\"counters\":{},\"gauges\":{},\"series\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn histograms_record_fold_and_export() {
        let m = Metrics::enabled();
        m.hist_record("task_ns", 100.0);
        m.hist_record("task_ns", 100.0);
        let mut extra = HistData::default();
        extra.record(10_000.0);
        m.hist_fold("task_ns", &extra);
        let snap = m.snapshot();
        let s = snap.histogram("task_ns").expect("histogram recorded");
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 10_000.0);
        assert_eq!(snap.histogram("missing"), None);
        assert!(!snap.is_empty());
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{},\"gauges\":{},\"series\":{},\"histograms\":{\
             \"task_ns\":{\"count\":3,\"p50\":96,\"p90\":10000,\"p99\":10000,\"max\":10000}}}"
        );
        // Disabled registries ignore histogram calls too.
        let d = Metrics::disabled();
        d.hist_record("task_ns", 1.0);
        d.hist_fold("task_ns", &extra);
        assert!(d.snapshot().is_empty());
    }
}
