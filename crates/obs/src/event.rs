//! The typed runtime event stream.
//!
//! Every event carries a virtual-time timestamp `t` in nanoseconds (the
//! simulator's clock, not wall time), so identical seeded runs produce
//! identical streams — the determinism tests and the CI artifact diff
//! depend on that.

/// Virtual nanoseconds (mirrors `tahoe_hms::Ns` without the dependency).
pub type Ns = f64;

/// Which memory tier an event refers to.
///
/// A local mirror of `tahoe_hms::TierKind`: this crate sits below every
/// other workspace crate, so it cannot name their types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Fast, small tier.
    Dram,
    /// Slow, large tier.
    Nvm,
}

impl Tier {
    /// Stable lowercase tag used by the exporters.
    pub fn tag(self) -> &'static str {
        match self {
            Tier::Dram => "dram",
            Tier::Nvm => "nvm",
        }
    }
}

/// Why the driver re-armed profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanReason {
    /// Window durations drifted beyond the variation threshold.
    Drift,
    /// A window introduced a task class the plan had never seen.
    UnseenClass,
}

impl ReplanReason {
    /// Stable lowercase tag used by the exporters.
    pub fn tag(self) -> &'static str {
        match self {
            ReplanReason::Drift => "drift",
            ReplanReason::UnseenClass => "unseen_class",
        }
    }
}

/// Which overhead bucket a charge went to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadKind {
    /// Sampling-counter collection inflation.
    Profiling,
    /// Helper-thread queue synchronization.
    Sync,
    /// Model evaluation + knapsack planning.
    Planning,
}

impl OverheadKind {
    /// Stable lowercase tag used by the exporters.
    pub fn tag(self) -> &'static str {
        match self {
            OverheadKind::Profiling => "profiling",
            OverheadKind::Sync => "sync",
            OverheadKind::Planning => "planning",
        }
    }
}

/// One structured runtime event.
///
/// Integer ids are the runtime's own (task id, task class id, app object
/// or memory-unit id); the exporters carry them through unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A task began executing.
    TaskStart {
        /// Virtual time.
        t: Ns,
        /// Task id.
        task: u32,
        /// Task class id.
        class: u32,
        /// Execution window.
        window: u32,
    },
    /// A task finished executing.
    TaskFinish {
        /// Virtual time.
        t: Ns,
        /// Task id.
        task: u32,
        /// Task class id.
        class: u32,
        /// Execution window.
        window: u32,
    },
    /// A ready task waited on the policy layer before starting (exposed
    /// migration cost, planning charge, or synchronous-migration block).
    DispatchStall {
        /// Virtual time the task could otherwise have started.
        t: Ns,
        /// Task id.
        task: u32,
        /// How long it waited, ns.
        stall_ns: Ns,
    },
    /// First task of an execution window started.
    WindowStart {
        /// Virtual time.
        t: Ns,
        /// Window index.
        window: u32,
    },
    /// Per-tier occupancy sampled at a window boundary.
    TierSample {
        /// Virtual time.
        t: Ns,
        /// Window index.
        window: u32,
        /// Bytes used in DRAM.
        dram_used: u64,
        /// DRAM capacity in bytes.
        dram_capacity: u64,
        /// Bytes used in NVM.
        nvm_used: u64,
        /// NVM capacity in bytes.
        nvm_capacity: u64,
        /// Promotions currently in flight on the copy channel.
        inflight: u32,
    },
    /// The driver put a migration on the copy channel.
    MigrationIssued {
        /// Virtual time of the request.
        t: Ns,
        /// Memory unit that moves.
        object: u32,
        /// Bytes to copy.
        bytes: u64,
        /// Source tier.
        from: Tier,
        /// Destination tier.
        to: Tier,
        /// When the copy starts on the (FIFO) channel.
        start: Ns,
        /// When the copy finishes.
        finish: Ns,
        /// Promotions already in flight when this one was issued.
        queue_depth: u32,
    },
    /// A promotion's copy finished and its residency flip was applied.
    MigrationCompleted {
        /// Virtual time the flip applied.
        t: Ns,
        /// Memory unit that moved.
        object: u32,
        /// Bytes copied.
        bytes: u64,
        /// Channel time hidden behind execution, ns.
        overlap_ns: Ns,
    },
    /// A matured promotion could not be applied (destination still full);
    /// it stays queued and retries.
    MigrationDeferred {
        /// Virtual time of the failed apply.
        t: Ns,
        /// Memory unit whose flip was deferred.
        object: u32,
    },
    /// Profiling was armed: windows `< until_window` will be profiled.
    ProfilingArmed {
        /// Virtual time.
        t: Ns,
        /// Window at which profiling was armed.
        window: u32,
        /// First window that will not be profiled.
        until_window: u32,
    },
    /// Profiling closed and planning ran on the learned profile.
    ProfilingClosed {
        /// Virtual time.
        t: Ns,
        /// Window at which the profile was consumed.
        window: u32,
    },
    /// The planner computed (or declined) a placement plan.
    PlanComputed {
        /// Virtual time.
        t: Ns,
        /// Window the plan starts at.
        window: u32,
        /// `"global"` or `"local"` — which search produced the winner.
        kind: &'static str,
        /// Candidate (object × window) pairs weighed.
        candidates: u32,
        /// Transitions the accepted plan schedules.
        migrations: u32,
        /// The winner's predicted knapsack gain, ns.
        predicted_gain_ns: Ns,
        /// Do-nothing baseline value the plan had to beat, ns.
        baseline_ns: Ns,
        /// Whether the plan beat the hysteresis margin (false = placement
        /// frozen instead).
        accepted: bool,
    },
    /// Workload variation (or an unseen class) re-armed profiling.
    ReplanTriggered {
        /// Virtual time.
        t: Ns,
        /// Window at which the trigger fired.
        window: u32,
        /// What tripped it.
        reason: ReplanReason,
    },
    /// A one-shot overhead charge was applied to the timeline.
    OverheadCharged {
        /// Virtual time of the charge.
        t: Ns,
        /// Which bucket.
        kind: OverheadKind,
        /// Nanoseconds charged.
        ns: Ns,
    },
    /// A real (`mmap`) tier arena was mapped. `t` is wall-clock ns since
    /// the measured run's epoch; real-substrate events use wall time on
    /// the same axis the virtual events use virtual time.
    ArenaMapped {
        /// Wall-clock ns since the run's epoch.
        t: Ns,
        /// Tier the arena backs.
        tier: Tier,
        /// Mapped bytes (page-rounded capacity).
        bytes: u64,
        /// NUMA node the arena was bound to, or -1 when binding was
        /// unavailable and the system fell back to pure emulation.
        numa_node: i64,
    },
    /// A physical inter-tier copy completed on the real substrate.
    RealCopyDone {
        /// Wall-clock ns since the run's epoch (at completion).
        t: Ns,
        /// Memory unit that moved.
        object: u32,
        /// Bytes physically copied.
        bytes: u64,
        /// Source tier.
        from: Tier,
        /// Destination tier.
        to: Tier,
        /// Wall-clock ns the copy took, including throttling.
        wall_ns: Ns,
        /// Of that, ns spent in the rate limiter and injected latency.
        throttle_ns: Ns,
        /// Bounded-size chunks the copy was split into.
        chunks: u32,
    },
    /// A worker thread completed one task in the parallel measured
    /// runtime. One complete span per task (emitted at finish; start is
    /// `t - wall_ns`), tagged with the worker that ran it so the trace
    /// exporter can lay tasks out one track per worker, and with the
    /// tenant the task ran for so multi-tenant server traces show which
    /// client occupied each worker lane (single-tenant runs use 0).
    WorkerTask {
        /// Wall-clock ns since the run's epoch, at task finish.
        t: Ns,
        /// Tenant the task belongs to (0 for single-tenant runs).
        tenant: u32,
        /// Worker thread index (0-based).
        worker: u32,
        /// Task id.
        task: u32,
        /// Execution window.
        window: u32,
        /// Wall-clock ns the task ran (kernels + injected pacing).
        wall_ns: Ns,
        /// Of that, wall-clock ns spent blocked on in-flight migrations
        /// before the task could pin its objects (exposed latency).
        gate_wait_ns: Ns,
    },
    /// The Tahoe planner's verdict on one object, stamped with the
    /// model-predicted benefit of DRAM residence — the prediction side
    /// of the model-accuracy audit (`exp audit` pairs it with measured
    /// per-access wall-clock deltas).
    PlacementDecision {
        /// Wall-clock ns since the run's epoch (plan hand-off time).
        t: Ns,
        /// App object the decision is about.
        object: u32,
        /// Object size in bytes (the knapsack weight).
        bytes: u64,
        /// Model-predicted total saving of DRAM residence over the run,
        /// ns (the knapsack value; ≥ 0 by construction).
        predicted_benefit_ns: Ns,
        /// Whether the plan promotes the object to DRAM.
        chosen: bool,
    },
    /// The access sanitizer flagged a violation of the declared-footprint
    /// discipline (race, undeclared access, mid-move access, pinned
    /// copy, …). `kind` is the stable `ViolationKind` tag from
    /// `tahoe-sanitize`; this crate sits below it, so the tag travels as
    /// a string.
    SanitizeViolation {
        /// Wall-clock ns since the run's epoch (at detection).
        t: Ns,
        /// Stable snake_case violation-kind tag (e.g.
        /// `"unordered_conflict"`).
        kind: String,
        /// Offending task id, or `u32::MAX` when not task-attributable.
        task: u32,
        /// Offending app object, or `u32::MAX` when not
        /// object-attributable.
        object: u32,
        /// Human-readable description of the finding.
        detail: String,
    },
    /// Calibration fitted a tier spec from measured kernel numbers.
    TierFitted {
        /// Wall-clock ns since the run's epoch.
        t: Ns,
        /// Tier the fitted spec describes.
        tier: Tier,
        /// Fitted sustained read bandwidth, GB/s.
        read_bw_gbps: f64,
        /// Fitted sustained write bandwidth, GB/s.
        write_bw_gbps: f64,
        /// Fitted dependent-read latency, ns.
        read_lat_ns: f64,
    },
    /// The multi-tenant server admitted one graph submission past
    /// admission control and handed it to the shared worker pool.
    GraphAdmitted {
        /// Wall-clock ns since the server's epoch.
        t: Ns,
        /// Tenant that submitted the graph.
        tenant: u32,
        /// Per-tenant graph sequence number.
        graph: u64,
        /// Wall-clock ns the submission waited in the tenant's queue
        /// before admission (0 when admitted immediately).
        queue_wait_ns: Ns,
        /// DRAM quota granted to the tenant at admission time, bytes.
        quota_bytes: u64,
    },
    /// A tenant's admitted graph ran to completion on the shared pool.
    GraphDone {
        /// Wall-clock ns since the server's epoch, at completion.
        t: Ns,
        /// Tenant the graph belongs to.
        tenant: u32,
        /// Per-tenant graph sequence number.
        graph: u64,
        /// Submission-to-completion wall latency, ns (includes queueing).
        latency_ns: Ns,
        /// Admission-to-completion execution wall time, ns.
        wall_ns: Ns,
    },
    /// Admission control shed a submission instead of queueing it (the
    /// tenant's pending queue was already at its configured depth).
    GraphShed {
        /// Wall-clock ns since the server's epoch.
        t: Ns,
        /// Tenant whose submission was shed.
        tenant: u32,
        /// Per-tenant graph sequence number of the shed submission.
        graph: u64,
        /// Submissions already queued for the tenant when it was shed.
        queued: u32,
    },
    /// The cross-tenant arbiter recomputed one tenant's DRAM quota.
    TenantQuota {
        /// Wall-clock ns since the server's epoch.
        t: Ns,
        /// Tenant the quota applies to.
        tenant: u32,
        /// Granted DRAM quota, bytes.
        quota_bytes: u64,
        /// The tenant's declared DRAM demand (bytes of positive-value
        /// objects) the demand-proportional split saw.
        demand_bytes: u64,
    },
    /// The arbiter preempted one DRAM-resident object of a tenant,
    /// demoting it back to NVM to make room under the new quotas.
    TenantPreempt {
        /// Wall-clock ns since the server's epoch (at enqueue of the
        /// demotion; the background migrator performs the copy).
        t: Ns,
        /// Tenant that lost DRAM residency (the preemption victim).
        tenant: u32,
        /// Global HMS object id that was demoted.
        object: u32,
        /// Size of the demoted object, bytes.
        bytes: u64,
    },
}

impl Event {
    /// The event's virtual timestamp.
    pub fn timestamp(&self) -> Ns {
        match *self {
            Event::TaskStart { t, .. }
            | Event::TaskFinish { t, .. }
            | Event::DispatchStall { t, .. }
            | Event::WindowStart { t, .. }
            | Event::TierSample { t, .. }
            | Event::MigrationIssued { t, .. }
            | Event::MigrationCompleted { t, .. }
            | Event::MigrationDeferred { t, .. }
            | Event::ProfilingArmed { t, .. }
            | Event::ProfilingClosed { t, .. }
            | Event::PlanComputed { t, .. }
            | Event::ReplanTriggered { t, .. }
            | Event::OverheadCharged { t, .. }
            | Event::ArenaMapped { t, .. }
            | Event::RealCopyDone { t, .. }
            | Event::WorkerTask { t, .. }
            | Event::PlacementDecision { t, .. }
            | Event::SanitizeViolation { t, .. }
            | Event::TierFitted { t, .. }
            | Event::GraphAdmitted { t, .. }
            | Event::GraphDone { t, .. }
            | Event::GraphShed { t, .. }
            | Event::TenantQuota { t, .. }
            | Event::TenantPreempt { t, .. } => t,
        }
    }

    /// Stable snake_case tag naming the event kind (the JSONL `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::TaskStart { .. } => "task_start",
            Event::TaskFinish { .. } => "task_finish",
            Event::DispatchStall { .. } => "dispatch_stall",
            Event::WindowStart { .. } => "window_start",
            Event::TierSample { .. } => "tier_sample",
            Event::MigrationIssued { .. } => "migration_issued",
            Event::MigrationCompleted { .. } => "migration_completed",
            Event::MigrationDeferred { .. } => "migration_deferred",
            Event::ProfilingArmed { .. } => "profiling_armed",
            Event::ProfilingClosed { .. } => "profiling_closed",
            Event::PlanComputed { .. } => "plan_computed",
            Event::ReplanTriggered { .. } => "replan_triggered",
            Event::OverheadCharged { .. } => "overhead_charged",
            Event::ArenaMapped { .. } => "arena_mapped",
            Event::RealCopyDone { .. } => "real_copy_done",
            Event::WorkerTask { .. } => "worker_task",
            Event::PlacementDecision { .. } => "placement_decision",
            Event::SanitizeViolation { .. } => "sanitize_violation",
            Event::TierFitted { .. } => "tier_fitted",
            Event::GraphAdmitted { .. } => "graph_admitted",
            Event::GraphDone { .. } => "graph_done",
            Event::GraphShed { .. } => "graph_shed",
            Event::TenantQuota { .. } => "tenant_quota",
            Event::TenantPreempt { .. } => "tenant_preempt",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_and_kinds_are_consistent() {
        let e = Event::WindowStart { t: 42.0, window: 3 };
        assert_eq!(e.timestamp(), 42.0);
        assert_eq!(e.kind(), "window_start");
        let e = Event::MigrationDeferred { t: 7.0, object: 1 };
        assert_eq!(e.timestamp(), 7.0);
        assert_eq!(e.kind(), "migration_deferred");
        let e = Event::ArenaMapped {
            t: 1.0,
            tier: Tier::Dram,
            bytes: 4096,
            numa_node: -1,
        };
        assert_eq!(e.timestamp(), 1.0);
        assert_eq!(e.kind(), "arena_mapped");
        let e = Event::TierFitted {
            t: 2.0,
            tier: Tier::Nvm,
            read_bw_gbps: 4.0,
            write_bw_gbps: 3.0,
            read_lat_ns: 90.0,
        };
        assert_eq!(e.kind(), "tier_fitted");
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(Tier::Dram.tag(), "dram");
        assert_eq!(Tier::Nvm.tag(), "nvm");
        assert_eq!(ReplanReason::Drift.tag(), "drift");
        assert_eq!(ReplanReason::UnseenClass.tag(), "unseen_class");
        assert_eq!(OverheadKind::Planning.tag(), "planning");
    }
}
