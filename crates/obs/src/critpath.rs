//! Critical-path reconstruction over the merged flight-recorder stream.
//!
//! The parallel measured runtime emits one [`Event::WorkerTask`] span per
//! executed task (finish-stamped, with its wall time and the gate wait at
//! the span's head) and one [`Event::MigrationIssued`] span per committed
//! background copy. From that deterministic merged stream this module
//! rebuilds the run's **critical path**: the longest chain of
//! mutually-ordered task spans, walked backward from the last finish,
//! with each chain link classified as *compute* (the task's kernels),
//! *stall* (the gate wait at its head, blamed on the in-flight migration
//! that unblocked it) or *idle* (a gap between one link's start and its
//! predecessor's finish — dependency or scheduler latency the chain
//! exposes).
//!
//! The invariant the smoke bench gates on: the chain's segments tile the
//! interval they cover exactly (`compute + stall + idle == last − first`
//! by construction), and that total is within a few percent of the
//! observed execution span (first task start → last task finish) — i.e.
//! the chain reaches all the way back to the start of execution instead
//! of bottoming out early.

use crate::blame::{BlameEntry, BlameTable};
use crate::event::{Event, Ns};

/// What a critical-path segment spent its time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// A task's kernels were running on the chain.
    Compute,
    /// The chain's task sat in the data gate waiting for a migration.
    Stall,
    /// Gap between a chain task's start and its predecessor's finish.
    Idle,
}

/// One segment of the reconstructed critical path (chronological).
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Classification of the time.
    pub kind: SegmentKind,
    /// Segment start, wall ns since the run's epoch.
    pub start: Ns,
    /// Segment end, wall ns since the run's epoch.
    pub end: Ns,
    /// Worker that ran the task (`u32::MAX` for idle segments).
    pub worker: u32,
    /// Task on the chain (`u32::MAX` for idle segments).
    pub task: u32,
    /// For stall segments: the migrating object blamed for the wait
    /// (the in-flight copy overlapping the stall, preferring the one
    /// whose finish unblocked it). `None` when no copy overlapped.
    pub object: Option<u32>,
}

impl Segment {
    /// Segment length in ns.
    pub fn len_ns(&self) -> Ns {
        (self.end - self.start).max(0.0)
    }
}

/// The reconstructed critical path of one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CritPath {
    /// Chain segments in chronological order; they tile
    /// `[first_ns, last_ns]` without gaps or overlap.
    pub segments: Vec<Segment>,
    /// Start of the chain (first chain task's start).
    pub first_ns: Ns,
    /// End of the chain (last task finish in the stream).
    pub last_ns: Ns,
    /// Earliest task start observed anywhere (`<= first_ns`).
    pub span_start_ns: Ns,
    /// Total compute ns on the chain.
    pub compute_ns: Ns,
    /// Total gate-wait ns on the chain.
    pub stall_ns: Ns,
    /// Total gap ns on the chain.
    pub idle_ns: Ns,
    /// Task spans on the chain.
    pub tasks_on_path: usize,
}

impl CritPath {
    /// Chain length: `last_ns - first_ns`, which equals
    /// `compute_ns + stall_ns + idle_ns` by construction.
    pub fn total_ns(&self) -> Ns {
        (self.last_ns - self.first_ns).max(0.0)
    }

    /// Observed execution span: earliest task start to last task finish.
    pub fn span_ns(&self) -> Ns {
        (self.last_ns - self.span_start_ns).max(0.0)
    }

    /// Reconstruct the critical path from a merged event stream.
    ///
    /// Only `worker_task` and `migration_issued` events participate;
    /// everything else is ignored, so the same stream that feeds the
    /// exporters feeds this. An empty stream yields a zeroed path.
    pub fn from_events(events: &[Event]) -> CritPath {
        struct Span {
            start: Ns,
            end: Ns,
            gate: Ns,
            worker: u32,
            task: u32,
        }
        let mut spans: Vec<Span> = Vec::new();
        let mut migs: Vec<(u32, Ns, Ns)> = Vec::new(); // (object, start, finish)
        for e in events {
            match *e {
                Event::WorkerTask {
                    t,
                    worker,
                    task,
                    wall_ns,
                    gate_wait_ns,
                    ..
                } => {
                    let wall = wall_ns.max(0.0);
                    spans.push(Span {
                        start: t - wall,
                        end: t,
                        gate: gate_wait_ns.clamp(0.0, wall),
                        worker,
                        task,
                    });
                }
                Event::MigrationIssued {
                    object,
                    start,
                    finish,
                    ..
                } => migs.push((object, start, finish)),
                _ => {}
            }
        }
        if spans.is_empty() {
            return CritPath::default();
        }
        migs.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

        let span_start_ns = spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
        let last_ns = spans
            .iter()
            .map(|s| s.end)
            .fold(f64::NEG_INFINITY, f64::max);

        // Backward greedy chain: repeatedly pick the latest-finishing
        // span that ends at or before the cursor (the predecessor that
        // kept the chain busy longest). Sorting by end descending makes
        // this a single forward scan — a span skipped because it ends
        // after the cursor can never qualify later (the cursor only
        // moves earlier).
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by(|&a, &b| {
            spans[b]
                .end
                .total_cmp(&spans[a].end)
                .then(spans[b].start.total_cmp(&spans[a].start))
                .then(spans[a].task.cmp(&spans[b].task))
        });

        let mut path = CritPath {
            segments: Vec::new(),
            first_ns: last_ns,
            last_ns,
            span_start_ns,
            ..CritPath::default()
        };
        let mut cursor = last_ns;
        for &i in &order {
            let s = &spans[i];
            if s.end > cursor {
                continue;
            }
            if s.end < cursor {
                path.idle_ns += cursor - s.end;
                path.segments.push(Segment {
                    kind: SegmentKind::Idle,
                    start: s.end,
                    end: cursor,
                    worker: u32::MAX,
                    task: u32::MAX,
                    object: None,
                });
            }
            let gate_end = s.start + s.gate;
            if s.end > gate_end {
                path.compute_ns += s.end - gate_end;
                path.segments.push(Segment {
                    kind: SegmentKind::Compute,
                    start: gate_end,
                    end: s.end,
                    worker: s.worker,
                    task: s.task,
                    object: None,
                });
            }
            if s.gate > 0.0 {
                path.stall_ns += s.gate;
                path.segments.push(Segment {
                    kind: SegmentKind::Stall,
                    start: s.start,
                    end: gate_end,
                    worker: s.worker,
                    task: s.task,
                    object: blame_object(&migs, s.start, gate_end),
                });
            }
            cursor = s.start;
            path.first_ns = s.start;
            path.tasks_on_path += 1;
        }
        path.segments.reverse();
        path
    }
}

/// The migrating object a stall interval `[s, e]` is blamed on: prefer
/// the copy whose *finish* falls inside the stall (that finish is what
/// unblocked the gate; latest such finish wins), otherwise the
/// overlapping copy with the largest overlap. Ties break toward the
/// smallest object id so attribution is deterministic.
pub fn blame_object(migs: &[(u32, Ns, Ns)], s: Ns, e: Ns) -> Option<u32> {
    let mut unblocker: Option<(Ns, u32)> = None;
    let mut widest: Option<(Ns, u32)> = None;
    for &(object, m_start, m_finish) in migs {
        let overlap = m_finish.min(e) - m_start.max(s);
        if overlap <= 0.0 {
            continue;
        }
        if m_finish > s && m_finish <= e {
            let better = match unblocker {
                None => true,
                Some((t, o)) => m_finish > t || (m_finish == t && object < o),
            };
            if better {
                unblocker = Some((m_finish, object));
            }
        }
        let better = match widest {
            None => true,
            Some((w, o)) => overlap > w || (overlap == w && object < o),
        };
        if better {
            widest = Some((overlap, object));
        }
    }
    unblocker.or(widest).map(|(_, o)| o)
}

/// A COZ-style what-if estimate for one blamed object: what the run
/// would have looked like had the object been DRAM-resident (or its
/// migration fully overlapped). Model pricing is filled in by the
/// runtime, which owns the app model and the fitted tier specs.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIf {
    /// Blamed object.
    pub object: u32,
    /// Exposed stall ns attributed to it.
    pub exposed_ns: Ns,
    /// Estimated wall clock had the migration been fully overlapped:
    /// `exec_wall_ns - exposed_ns`.
    pub whatif_wall_ns: Ns,
    /// CF-free modelled ns saved by whole-run DRAM residence of this
    /// object (`modelled_total_ns` with the object pinned to DRAM vs
    /// the all-NVM baseline).
    pub modelled_saving_ns: Ns,
    /// The knapsack's predicted benefit for the object (the placement
    /// decision's value).
    pub predicted_benefit_ns: Ns,
    /// Whether the model-side saving and the knapsack prediction agree
    /// in sign — the cheap consistency check the blame bench gates on.
    pub sign_agrees: bool,
}

/// Per-run causal-profile digest embedded in run reports: critical-path
/// totals, the exposed-stall blame table and the what-if estimates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CritPathDigest {
    /// Chain length (`compute + stall + idle`).
    pub crit_total_ns: Ns,
    /// Observed execution span (first task start → last task finish).
    pub span_ns: Ns,
    /// Execution-phase wall clock stamped by the runtime (epoch →
    /// windows joined); 0 when the runtime did not fill it.
    pub exec_wall_ns: Ns,
    /// Compute ns on the chain.
    pub compute_ns: Ns,
    /// Gate-wait ns on the chain.
    pub stall_ns: Ns,
    /// Gap ns on the chain.
    pub idle_ns: Ns,
    /// Number of chain segments.
    pub segments: usize,
    /// Task spans on the chain.
    pub tasks_on_path: usize,
    /// `100 * |crit_total - span| / span` (0 when the span is empty).
    pub crit_vs_span_pct: f64,
    /// Exposed-stall blame entries, highest exposed time first.
    pub blame: Vec<BlameEntry>,
    /// Blame-side aggregate `%overlap` — must reconcile with
    /// `MigrationStats::pct_overlap` (same records, same arithmetic).
    pub blame_pct_overlap: f64,
    /// Gate-wait ns no in-flight copy overlapped (planning charges,
    /// scheduler latency).
    pub unattributed_wait_ns: Ns,
    /// What-if estimates per blamed object (runtime-priced).
    pub whatif: Vec<WhatIf>,
}

impl CritPathDigest {
    /// Fold a reconstructed path and blame table into a digest. The
    /// runtime fills `exec_wall_ns` and `whatif` afterwards.
    pub fn new(path: &CritPath, blame: &BlameTable) -> Self {
        let span = path.span_ns();
        let crit = path.total_ns();
        CritPathDigest {
            crit_total_ns: crit,
            span_ns: span,
            exec_wall_ns: 0.0,
            compute_ns: path.compute_ns,
            stall_ns: path.stall_ns,
            idle_ns: path.idle_ns,
            segments: path.segments.len(),
            tasks_on_path: path.tasks_on_path,
            crit_vs_span_pct: if span > 0.0 {
                100.0 * (crit - span).abs() / span
            } else {
                0.0
            },
            blame: blame.entries.clone(),
            blame_pct_overlap: blame.pct_overlap(),
            unattributed_wait_ns: blame.unattributed_wait_ns,
            whatif: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Tier;

    fn task(t_finish: f64, wall: f64, gate: f64, worker: u32, task: u32) -> Event {
        Event::WorkerTask {
            t: t_finish,
            tenant: 0,
            worker,
            task,
            window: 0,
            wall_ns: wall,
            gate_wait_ns: gate,
        }
    }

    fn mig(object: u32, start: f64, finish: f64) -> Event {
        Event::MigrationIssued {
            t: start,
            object,
            bytes: 4096,
            from: Tier::Nvm,
            to: Tier::Dram,
            start,
            finish,
            queue_depth: 0,
        }
    }

    #[test]
    fn empty_stream_yields_zeroed_path() {
        let p = CritPath::from_events(&[]);
        assert_eq!(p.segments.len(), 0);
        assert_eq!(p.total_ns(), 0.0);
        assert_eq!(p.span_ns(), 0.0);
    }

    #[test]
    fn single_task_is_one_compute_segment() {
        let p = CritPath::from_events(&[task(100.0, 80.0, 0.0, 0, 1)]);
        assert_eq!(p.segments.len(), 1);
        assert_eq!(p.segments[0].kind, SegmentKind::Compute);
        assert_eq!(p.total_ns(), 80.0);
        assert_eq!(p.compute_ns, 80.0);
        assert_eq!(p.tasks_on_path, 1);
    }

    #[test]
    fn chain_tiles_the_interval_exactly() {
        // Two workers: w0 runs [0,100]; w1 runs [10,60]; then the chain
        // tail [110,200] with a 10ns gap after w0's task.
        let events = vec![
            task(100.0, 100.0, 0.0, 0, 1),
            task(60.0, 50.0, 0.0, 1, 2),
            task(200.0, 90.0, 0.0, 0, 3),
        ];
        let p = CritPath::from_events(&events);
        // Chain: task 3 [110,200], idle [100,110], task 1 [0,100].
        assert_eq!(p.tasks_on_path, 2);
        assert_eq!(p.first_ns, 0.0);
        assert_eq!(p.last_ns, 200.0);
        assert!((p.compute_ns - 190.0).abs() < 1e-9);
        assert!((p.idle_ns - 10.0).abs() < 1e-9);
        assert!((p.compute_ns + p.stall_ns + p.idle_ns - p.total_ns()).abs() < 1e-9);
        // Segments are chronological and gap-free.
        for w in p.segments.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-9);
        }
    }

    #[test]
    fn stall_segments_blame_the_unblocking_migration() {
        // Task finishes at 300 after 200ns wall, first 50 of which is a
        // gate wait [100,150]; object 7's copy finishes at 140 (inside
        // the stall), object 9's runs past it.
        let events = vec![
            mig(9, 90.0, 400.0),
            mig(7, 80.0, 140.0),
            task(300.0, 200.0, 50.0, 0, 1),
        ];
        let p = CritPath::from_events(&events);
        let stall = p
            .segments
            .iter()
            .find(|s| s.kind == SegmentKind::Stall)
            .expect("one stall segment");
        assert_eq!(stall.object, Some(7), "unblocking finish wins");
        assert!((p.stall_ns - 50.0).abs() < 1e-9);
    }

    #[test]
    fn stall_without_overlapping_copy_is_unattributed() {
        let events = vec![task(300.0, 200.0, 50.0, 0, 1), mig(3, 400.0, 500.0)];
        let p = CritPath::from_events(&events);
        let stall = p
            .segments
            .iter()
            .find(|s| s.kind == SegmentKind::Stall)
            .expect("stall segment");
        assert_eq!(stall.object, None);
    }

    #[test]
    fn digest_reconciles_totals_and_band() {
        let events = vec![
            task(100.0, 100.0, 0.0, 0, 1),
            task(220.0, 110.0, 20.0, 1, 2),
            mig(4, 95.0, 125.0),
        ];
        let path = CritPath::from_events(&events);
        let blame = crate::blame::BlameTable::from_events(&events);
        let d = CritPathDigest::new(&path, &blame);
        assert!((d.crit_total_ns - (d.compute_ns + d.stall_ns + d.idle_ns)).abs() < 1e-9);
        assert!(d.crit_vs_span_pct < 1e-9, "chain covers the whole span");
        assert_eq!(d.tasks_on_path, 2);
    }
}
