//! Log2-bucketed latency histograms.
//!
//! The flight recorder and the metrics registry both need a fixed-size,
//! allocation-free way to summarize latency distributions (task wall
//! time, gate waits, steal searches, migration copy chunks). A
//! [`Histogram`] is 64 power-of-two buckets of `AtomicU64` counters plus
//! an exact maximum: recording is two relaxed atomic ops, and per-lane
//! instances are uncontended by construction. [`HistData`] is the plain
//! (non-atomic) snapshot used for merging across lanes — bucket-wise
//! addition, so merge order never changes the result — and
//! [`HistSummary`] is the p50/p90/p99/max digest exported in reports.
//!
//! Percentiles are read off the cumulative bucket counts using a
//! geometric representative per bucket (`1.5·2^i`, capped at the exact
//! observed maximum), which is the standard trade: ≤ ±50% value error
//! per bucket in exchange for constant memory and merge commutativity.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: values up to `2^63` ns (≈ 292 years) land in
/// a bucket, so no clamping path is ever taken in practice.
pub const BUCKETS: usize = 64;

/// Bucket index of a nanosecond value: `floor(log2(v))`, with 0 and 1
/// sharing bucket 0.
#[inline]
fn bucket_index(v: u64) -> usize {
    63 - (v | 1).leading_zeros() as usize
}

/// Representative value reported for bucket `i` (geometric midpoint of
/// `[2^i, 2^(i+1))`; bucket 0 holds {0, 1} and reports 1).
#[inline]
fn representative(i: usize) -> f64 {
    if i == 0 {
        1.0
    } else {
        1.5 * (i as f64).exp2()
    }
}

/// A concurrent log2 histogram of nanosecond values.
///
/// Recording is wait-free (two relaxed atomic RMWs); snapshots are taken
/// with [`Histogram::data`]. Negative and non-finite inputs count as 0.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value (nanoseconds).
    #[inline]
    pub fn record(&self, ns: f64) {
        // NaN.max(0.0) == 0.0 and `as u64` saturates, so any input lands
        // in a bucket.
        let v = ns.max(0.0) as u64;
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Snapshot the current counts.
    pub fn data(&self) -> HistData {
        let mut d = HistData::default();
        for (i, b) in self.buckets.iter().enumerate() {
            d.buckets[i] = b.load(Ordering::Relaxed);
        }
        d.max = self.max.load(Ordering::Relaxed);
        d
    }
}

/// Plain (non-atomic) histogram counts: the mergeable snapshot form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistData {
    /// Count per log2 bucket.
    pub buckets: [u64; BUCKETS],
    /// Exact maximum recorded value (ns, truncated to whole ns).
    pub max: u64,
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            buckets: [0; BUCKETS],
            max: 0,
        }
    }
}

impl HistData {
    /// Record one value (same semantics as [`Histogram::record`]).
    pub fn record(&mut self, ns: f64) {
        let v = ns.max(0.0) as u64;
        self.buckets[bucket_index(v)] += 1;
        self.max = self.max.max(v);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Fold `other` into `self`. Bucket-wise addition: merging lanes in
    /// any order yields identical results.
    pub fn merge(&mut self, other: &HistData) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` (0 < q ≤ 1): the representative of the
    /// bucket holding the `ceil(q·count)`-th smallest sample, capped at
    /// the exact maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return representative(i).min(self.max as f64).max(0.0);
            }
        }
        self.max as f64
    }

    /// The p50/p90/p99/max digest.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max as f64,
        }
    }
}

/// Percentile digest of a histogram, embedded in metrics snapshots and
/// bench artifacts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Median (bucket representative), ns.
    pub p50: f64,
    /// 90th percentile, ns.
    pub p90: f64,
    /// 99th percentile, ns.
    pub p99: f64,
    /// Exact maximum, ns.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn record_and_summarize() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100.0);
        }
        for _ in 0..10 {
            h.record(10_000.0);
        }
        let s = h.data().summary();
        assert_eq!(s.count, 100);
        // p50 lands in bucket 6 ([64,128)): representative 96.
        assert_eq!(s.p50, 96.0);
        assert_eq!(s.p90, 96.0);
        // p99 lands in the 10k bucket ([8192,16384)): rep 12288, capped
        // by the exact max 10000.
        assert_eq!(s.p99, 10_000.0);
        assert_eq!(s.max, 10_000.0);
    }

    #[test]
    fn degenerate_inputs_count_as_zero() {
        let h = Histogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(0.0);
        let d = h.data();
        assert_eq!(d.count(), 3);
        assert_eq!(d.buckets[0], 3);
        assert_eq!(d.max, 0);
        assert_eq!(d.summary().p99, 0.0);
    }

    #[test]
    fn merge_is_commutative_and_matches_union() {
        let mut a = HistData::default();
        let mut b = HistData::default();
        let mut union = HistData::default();
        for i in 0..1000u64 {
            let v = (i * 37 % 5000) as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            union.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, union);
        assert_eq!(ab.summary(), union.summary());
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = HistData::default().summary();
        assert_eq!(s, HistSummary::default());
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut d = HistData::default();
        for i in 0..10_000u64 {
            d.record((i % 997) as f64 * 17.0);
        }
        let s = d.summary();
        assert!(s.p50 <= s.p90);
        assert!(s.p90 <= s.p99);
        assert!(s.p99 <= s.max);
    }
}
