//! The flight recorder: lock-free per-lane event rings + latency
//! histograms, drained into one deterministic merged stream.
//!
//! The buffered [`Emitter`](crate::emit::Emitter) is a single
//! mutex-protected vector — fine for the single-threaded simulator,
//! contended by every worker and the background migrator in the parallel
//! measured runtime. The [`FlightRecorder`] removes that lock from the
//! hot path: each producer thread owns a *lane* holding a fixed-capacity
//! SPSC ring buffer (allocation-free push, explicit drop counter when
//! full) and a set of pre-registered log2 [`Histogram`]s. After the
//! producers quiesce, [`FlightRecorder::drain`] merges every lane into a
//! single event stream ordered by `(timestamp, lane, ring sequence)` —
//! a total order independent of which lane drained first, so two runs
//! that recorded the same events render byte-identical JSONL whatever
//! the drain schedule was.
//!
//! # Producer contract
//!
//! Lanes are single-producer: at most one thread pushes to a given lane
//! at a time. The parallel runtime maps worker *i* to lane *i* (the
//! executor pins worker indices to OS threads for a run), the background
//! migrator to its own lane (via a [`FlightHandle`] moved into the
//! thread), and the driver to a final lane. [`FlightRecorder::drain`] is
//! single-consumer and must run after the producers stopped (workers
//! joined, migrator finished).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::event::Event;
use crate::hist::{HistData, Histogram};

/// One producer lane: an SPSC ring of events plus per-key histograms.
struct Lane {
    slots: Box<[UnsafeCell<MaybeUninit<Event>>]>,
    /// Next write position (producer-owned; consumer reads with Acquire).
    head: AtomicUsize,
    /// Next read position (consumer-owned; producer reads with Acquire).
    tail: AtomicUsize,
    /// Events rejected because the ring was full.
    dropped: AtomicU64,
    /// One histogram per registered key, same order as the key slice.
    hists: Box<[Histogram]>,
}

// SAFETY: the ring is safe to share across threads under the module's
// SPSC contract — one producer thread per lane, one consumer, each slot
// written (head Release) strictly before it is read (head Acquire) and
// read strictly before it is overwritten (tail Release/Acquire). `Event`
// holds no heap data, so slots abandoned in the ring at drop are
// trivially forgotten.
#[allow(unsafe_code)]
unsafe impl Send for Lane {}
#[allow(unsafe_code)]
unsafe impl Sync for Lane {}

impl Lane {
    fn new(capacity: usize, n_hists: usize) -> Lane {
        let cap = capacity.max(1);
        Lane {
            slots: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            hists: (0..n_hists).map(|_| Histogram::new()).collect(),
        }
    }

    /// Producer side. Returns false (and counts a drop) when full.
    fn push(&self, ev: Event) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // SAFETY: single producer per lane (module contract); the slot at
        // `head` is not readable until the Release store below, and the
        // capacity check above proves the consumer is done with it.
        #[allow(unsafe_code)]
        unsafe {
            (*self.slots[head % self.slots.len()].get()).write(ev);
        }
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side.
    fn pop(&self) -> Option<Event> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        // SAFETY: single consumer (module contract); the Acquire load of
        // `head` above synchronizes with the producer's Release store, so
        // the slot at `tail` is fully written.
        #[allow(unsafe_code)]
        let ev = unsafe { (*self.slots[tail % self.slots.len()].get()).assume_init_read() };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Some(ev)
    }
}

/// Central registry of per-producer lanes. See the module docs for the
/// producer contract.
pub struct FlightRecorder {
    lanes: Vec<Arc<Lane>>,
    keys: &'static [&'static str],
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("lanes", &self.lanes.len())
            .field("keys", &self.keys)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder with `lanes` producer lanes, each holding an event
    /// ring of `capacity` slots and one histogram per key in
    /// `hist_keys`.
    pub fn new(lanes: usize, capacity: usize, hist_keys: &'static [&'static str]) -> Self {
        FlightRecorder {
            lanes: (0..lanes.max(1))
                .map(|_| Arc::new(Lane::new(capacity, hist_keys.len())))
                .collect(),
            keys: hist_keys,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Push one event onto `lane`'s ring. Returns false (and counts the
    /// drop) when the ring is full. Caller must be `lane`'s sole
    /// producer.
    #[inline]
    pub fn emit(&self, lane: usize, ev: Event) -> bool {
        self.lanes[lane].push(ev)
    }

    /// Record `ns` into `lane`'s histogram for `key`. Unregistered keys
    /// are ignored (the key set is fixed at construction).
    #[inline]
    pub fn record(&self, lane: usize, key: &'static str, ns: f64) {
        if let Some(i) = self.keys.iter().position(|&k| k == key) {
            self.lanes[lane].hists[i].record(ns);
        }
    }

    /// A detachable producer handle for `lane` (for threads that outlive
    /// borrows of the recorder, e.g. the background migrator). The
    /// single-producer contract transfers to the handle holder.
    pub fn handle(&self, lane: usize) -> FlightHandle {
        FlightHandle {
            lane: Arc::clone(&self.lanes[lane]),
            keys: self.keys,
        }
    }

    /// Total events dropped across all lanes so far.
    pub fn dropped(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Drain every lane and merge into one deterministic stream.
    ///
    /// Must run single-threaded after all producers quiesced. Events are
    /// ordered by `(timestamp, lane, ring sequence)` — NaN-free total
    /// order via `f64::total_cmp` — so the merged stream is a pure
    /// function of what was recorded, not of drain scheduling.
    /// Histograms are merged bucket-wise per key; empty keys are
    /// omitted.
    pub fn drain(&self) -> FlightCapture {
        let mut entries: Vec<(f64, usize, usize, Event)> = Vec::new();
        let mut lane_dropped = Vec::with_capacity(self.lanes.len());
        for (li, lane) in self.lanes.iter().enumerate() {
            let mut seq = 0usize;
            while let Some(ev) = lane.pop() {
                entries.push((ev.timestamp(), li, seq, ev));
                seq += 1;
            }
            lane_dropped.push(lane.dropped.load(Ordering::Relaxed));
        }
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let events = entries.into_iter().map(|(_, _, _, ev)| ev).collect();

        let mut hists: Vec<(&'static str, HistData)> = Vec::new();
        for (ki, &key) in self.keys.iter().enumerate() {
            let mut merged = HistData::default();
            for lane in &self.lanes {
                merged.merge(&lane.hists[ki].data());
            }
            if !merged.is_empty() {
                hists.push((key, merged));
            }
        }

        let total_dropped = lane_dropped.iter().sum();
        FlightCapture {
            events,
            hists,
            lane_dropped,
            total_dropped,
        }
    }
}

/// Producer handle bound to one lane, usable from a thread the recorder
/// itself cannot be borrowed into.
pub struct FlightHandle {
    lane: Arc<Lane>,
    keys: &'static [&'static str],
}

impl std::fmt::Debug for FlightHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightHandle").finish()
    }
}

impl FlightHandle {
    /// Push one event onto the lane's ring (see [`FlightRecorder::emit`]).
    #[inline]
    pub fn emit(&self, ev: Event) -> bool {
        self.lane.push(ev)
    }

    /// Record into the lane's histogram for `key` (see
    /// [`FlightRecorder::record`]).
    #[inline]
    pub fn record(&self, key: &'static str, ns: f64) {
        if let Some(i) = self.keys.iter().position(|&k| k == key) {
            self.lane.hists[i].record(ns);
        }
    }
}

/// Everything a [`FlightRecorder::drain`] produced.
#[derive(Debug)]
pub struct FlightCapture {
    /// All lanes' events, merged in `(timestamp, lane, sequence)` order.
    pub events: Vec<Event>,
    /// Merged histogram data per registered key (empty keys omitted).
    pub hists: Vec<(&'static str, HistData)>,
    /// Events dropped per lane (ring full).
    pub lane_dropped: Vec<u64>,
    /// Sum of `lane_dropped`.
    pub total_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(t: f64, window: u32) -> Event {
        Event::WindowStart { t, window }
    }

    #[test]
    fn push_pop_roundtrip_in_order() {
        let rec = FlightRecorder::new(1, 8, &[]);
        for i in 0..5 {
            assert!(rec.emit(0, ws(i as f64, i)));
        }
        let cap = rec.drain();
        assert_eq!(cap.events.len(), 5);
        for (i, e) in cap.events.iter().enumerate() {
            assert_eq!(*e, ws(i as f64, i as u32));
        }
        assert_eq!(cap.total_dropped, 0);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let rec = FlightRecorder::new(1, 4, &[]);
        for i in 0..10 {
            rec.emit(0, ws(i as f64, i));
        }
        assert_eq!(rec.dropped(), 6);
        let cap = rec.drain();
        // The first 4 events survive (drops are new arrivals, not
        // overwrites: the surviving prefix stays intact).
        assert_eq!(cap.events.len(), 4);
        assert_eq!(cap.events[0], ws(0.0, 0));
        assert_eq!(cap.lane_dropped, vec![6]);
        assert_eq!(cap.total_dropped, 6);
    }

    #[test]
    fn ring_wraps_after_partial_drain() {
        let rec = FlightRecorder::new(1, 4, &[]);
        for round in 0..5u32 {
            for i in 0..4u32 {
                assert!(rec.emit(0, ws((round * 4 + i) as f64, i)));
            }
            let cap = rec.drain();
            assert_eq!(cap.events.len(), 4);
        }
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn merge_orders_by_timestamp_then_lane() {
        let rec = FlightRecorder::new(3, 8, &[]);
        rec.emit(2, ws(1.0, 20));
        rec.emit(0, ws(3.0, 0));
        rec.emit(1, ws(1.0, 10));
        rec.emit(1, ws(2.0, 11));
        let cap = rec.drain();
        let windows: Vec<u32> = cap
            .events
            .iter()
            .map(|e| match e {
                Event::WindowStart { window, .. } => *window,
                _ => unreachable!(),
            })
            .collect();
        // t=1.0: lane 1 before lane 2; then t=2.0, t=3.0.
        assert_eq!(windows, vec![10, 20, 11, 0]);
    }

    #[test]
    fn histograms_register_and_merge_across_lanes() {
        let rec = FlightRecorder::new(2, 8, &["task_ns", "gate_wait_ns"]);
        rec.record(0, "task_ns", 100.0);
        rec.record(1, "task_ns", 200.0);
        rec.record(0, "unregistered", 5.0); // silently ignored
        let cap = rec.drain();
        assert_eq!(cap.hists.len(), 1, "empty keys are omitted");
        let (key, data) = &cap.hists[0];
        assert_eq!(*key, "task_ns");
        assert_eq!(data.count(), 2);
        assert_eq!(data.max, 200);
    }

    #[test]
    fn concurrent_producers_one_lane_each() {
        let rec = FlightRecorder::new(4, 1024, &["task_ns"]);
        std::thread::scope(|s| {
            for lane in 0..4usize {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..500u32 {
                        rec.emit(lane, ws((lane * 1000 + i as usize) as f64, i));
                        rec.record(lane, "task_ns", i as f64);
                    }
                });
            }
        });
        let cap = rec.drain();
        assert_eq!(cap.events.len(), 2000);
        assert_eq!(cap.total_dropped, 0);
        assert_eq!(cap.hists[0].1.count(), 2000);
        // Timestamps are globally sorted.
        let ts: Vec<f64> = cap.events.iter().map(|e| e.timestamp()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn handle_feeds_the_same_lane() {
        let rec = FlightRecorder::new(2, 8, &["mig_chunk_ns"]);
        let h = rec.handle(1);
        let joined = std::thread::spawn(move || {
            h.emit(ws(9.0, 1));
            h.record("mig_chunk_ns", 50.0);
        });
        joined.join().unwrap();
        let cap = rec.drain();
        assert_eq!(cap.events, vec![ws(9.0, 1)]);
        assert_eq!(cap.hists[0].1.count(), 1);
    }
}
