//! Exporters: deterministic JSONL and Chrome `trace_event` JSON.
//!
//! **JSONL** is the machine-diffable artifact: one event per line,
//! hand-serialized with a fixed field order (`ev` first, `t` second, then
//! the variant's fields in declaration order). Floats go through Rust's
//! shortest-roundtrip `Display`, so two identical seeded runs produce
//! byte-identical streams — CI diffs them directly.
//!
//! **Chrome trace** targets `chrome://tracing` / [Perfetto]. Task spans
//! become `"X"` complete events laid out on greedily-assigned lanes
//! (reconstructing virtual workers from span overlap), migrations become
//! `"X"` spans on a dedicated copy-channel track, and window / planning /
//! profiling / replan markers become `"i"` instants. When a worker-task
//! span opens with a gate wait that a migration's finish unblocked, the
//! exporter adds an `"s"`/`"f"` flow pair from the copy channel to the
//! stalled worker lane so exposed stalls are visually traceable to the
//! copy that caused them. Timestamps convert from virtual ns to the
//! format's µs.
//!
//! [Perfetto]: https://ui.perfetto.dev

use std::fmt::Write as _;

use crate::emit::Sink;
use crate::event::Event;

/// Format a float the way both exporters do: Rust `Display`, which is the
/// shortest string that round-trips — deterministic and JSON-compatible
/// for the finite values virtual time produces.
fn fnum(x: f64) -> String {
    format!("{x}")
}

/// Escape a free-form string for embedding in a JSON string literal.
/// Violation details are ASCII prose, but quotes/backslashes/control
/// characters must not break the line format.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize one event as a single JSON object with fixed field order.
pub fn event_to_json(e: &Event) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"ev\":\"{}\",\"t\":{}", e.kind(), fnum(e.timestamp()));
    match *e {
        Event::TaskStart {
            task,
            class,
            window,
            ..
        }
        | Event::TaskFinish {
            task,
            class,
            window,
            ..
        } => {
            let _ = write!(s, ",\"task\":{task},\"class\":{class},\"window\":{window}");
        }
        Event::DispatchStall { task, stall_ns, .. } => {
            let _ = write!(s, ",\"task\":{task},\"stall_ns\":{}", fnum(stall_ns));
        }
        Event::WindowStart { window, .. } => {
            let _ = write!(s, ",\"window\":{window}");
        }
        Event::TierSample {
            window,
            dram_used,
            dram_capacity,
            nvm_used,
            nvm_capacity,
            inflight,
            ..
        } => {
            let _ = write!(
                s,
                ",\"window\":{window},\"dram_used\":{dram_used},\"dram_capacity\":{dram_capacity},\"nvm_used\":{nvm_used},\"nvm_capacity\":{nvm_capacity},\"inflight\":{inflight}"
            );
        }
        Event::MigrationIssued {
            object,
            bytes,
            from,
            to,
            start,
            finish,
            queue_depth,
            ..
        } => {
            let _ = write!(
                s,
                ",\"object\":{object},\"bytes\":{bytes},\"from\":\"{}\",\"to\":\"{}\",\"start\":{},\"finish\":{},\"queue_depth\":{queue_depth}",
                from.tag(),
                to.tag(),
                fnum(start),
                fnum(finish)
            );
        }
        Event::MigrationCompleted {
            object,
            bytes,
            overlap_ns,
            ..
        } => {
            let _ = write!(
                s,
                ",\"object\":{object},\"bytes\":{bytes},\"overlap_ns\":{}",
                fnum(overlap_ns)
            );
        }
        Event::MigrationDeferred { object, .. } => {
            let _ = write!(s, ",\"object\":{object}");
        }
        Event::ProfilingArmed {
            window,
            until_window,
            ..
        } => {
            let _ = write!(s, ",\"window\":{window},\"until_window\":{until_window}");
        }
        Event::ProfilingClosed { window, .. } => {
            let _ = write!(s, ",\"window\":{window}");
        }
        Event::PlanComputed {
            window,
            kind,
            candidates,
            migrations,
            predicted_gain_ns,
            baseline_ns,
            accepted,
            ..
        } => {
            let _ = write!(
                s,
                ",\"window\":{window},\"kind\":\"{kind}\",\"candidates\":{candidates},\"migrations\":{migrations},\"predicted_gain_ns\":{},\"baseline_ns\":{},\"accepted\":{accepted}",
                fnum(predicted_gain_ns),
                fnum(baseline_ns)
            );
        }
        Event::ReplanTriggered { window, reason, .. } => {
            let _ = write!(s, ",\"window\":{window},\"reason\":\"{}\"", reason.tag());
        }
        Event::OverheadCharged { kind, ns, .. } => {
            let _ = write!(s, ",\"kind\":\"{}\",\"ns\":{}", kind.tag(), fnum(ns));
        }
        Event::ArenaMapped {
            tier,
            bytes,
            numa_node,
            ..
        } => {
            let _ = write!(
                s,
                ",\"tier\":\"{}\",\"bytes\":{bytes},\"numa_node\":{numa_node}",
                tier.tag()
            );
        }
        Event::RealCopyDone {
            object,
            bytes,
            from,
            to,
            wall_ns,
            throttle_ns,
            chunks,
            ..
        } => {
            let _ = write!(
                s,
                ",\"object\":{object},\"bytes\":{bytes},\"from\":\"{}\",\"to\":\"{}\",\"wall_ns\":{},\"throttle_ns\":{},\"chunks\":{chunks}",
                from.tag(),
                to.tag(),
                fnum(wall_ns),
                fnum(throttle_ns)
            );
        }
        Event::WorkerTask {
            tenant,
            worker,
            task,
            window,
            wall_ns,
            gate_wait_ns,
            ..
        } => {
            let _ = write!(
                s,
                ",\"tenant\":{tenant},\"worker\":{worker},\"task\":{task},\"window\":{window},\"wall_ns\":{},\"gate_wait_ns\":{}",
                fnum(wall_ns),
                fnum(gate_wait_ns)
            );
        }
        Event::PlacementDecision {
            object,
            bytes,
            predicted_benefit_ns,
            chosen,
            ..
        } => {
            let _ = write!(
                s,
                ",\"object\":{object},\"bytes\":{bytes},\"predicted_benefit_ns\":{},\"chosen\":{chosen}",
                fnum(predicted_benefit_ns)
            );
        }
        Event::SanitizeViolation {
            ref kind,
            task,
            object,
            ref detail,
            ..
        } => {
            let _ = write!(
                s,
                ",\"kind\":\"{}\",\"task\":{task},\"object\":{object},\"detail\":\"{}\"",
                jstr(kind),
                jstr(detail)
            );
        }
        Event::TierFitted {
            tier,
            read_bw_gbps,
            write_bw_gbps,
            read_lat_ns,
            ..
        } => {
            let _ = write!(
                s,
                ",\"tier\":\"{}\",\"read_bw_gbps\":{},\"write_bw_gbps\":{},\"read_lat_ns\":{}",
                tier.tag(),
                fnum(read_bw_gbps),
                fnum(write_bw_gbps),
                fnum(read_lat_ns)
            );
        }
        Event::GraphAdmitted {
            tenant,
            graph,
            queue_wait_ns,
            quota_bytes,
            ..
        } => {
            let _ = write!(
                s,
                ",\"tenant\":{tenant},\"graph\":{graph},\"queue_wait_ns\":{},\"quota_bytes\":{quota_bytes}",
                fnum(queue_wait_ns)
            );
        }
        Event::GraphDone {
            tenant,
            graph,
            latency_ns,
            wall_ns,
            ..
        } => {
            let _ = write!(
                s,
                ",\"tenant\":{tenant},\"graph\":{graph},\"latency_ns\":{},\"wall_ns\":{}",
                fnum(latency_ns),
                fnum(wall_ns)
            );
        }
        Event::GraphShed {
            tenant,
            graph,
            queued,
            ..
        } => {
            let _ = write!(
                s,
                ",\"tenant\":{tenant},\"graph\":{graph},\"queued\":{queued}"
            );
        }
        Event::TenantQuota {
            tenant,
            quota_bytes,
            demand_bytes,
            ..
        } => {
            let _ = write!(
                s,
                ",\"tenant\":{tenant},\"quota_bytes\":{quota_bytes},\"demand_bytes\":{demand_bytes}"
            );
        }
        Event::TenantPreempt {
            tenant,
            object,
            bytes,
            ..
        } => {
            let _ = write!(
                s,
                ",\"tenant\":{tenant},\"object\":{object},\"bytes\":{bytes}"
            );
        }
    }
    s.push('}');
    s
}

/// Render an event stream as JSONL: one event per line, trailing newline
/// after every line, empty string for an empty stream.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        out.push_str(&event_to_json(e));
        out.push('\n');
    }
    out
}

/// A [`Sink`] that appends JSONL lines to any `io::Write` target.
pub struct JsonlSink<W: std::io::Write> {
    writer: W,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Unwrap the writer (after flushing yourself if needed).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write> Sink for JsonlSink<W> {
    fn accept(&mut self, event: &Event) {
        let _ = writeln!(self.writer, "{}", event_to_json(event));
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

const NS_PER_US: f64 = 1_000.0;

/// Greedy lane assignment: give each span the lowest-numbered lane that is
/// free at its start time. Reconstructs "virtual worker" rows from the
/// flat span list, since the list scheduler does not name its processors
/// in the event stream.
fn assign_lanes(spans: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        spans[a]
            .0
            .partial_cmp(&spans[b].0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut lane_free_at: Vec<f64> = Vec::new();
    let mut lanes = vec![0usize; spans.len()];
    for &i in &order {
        let (start, end) = spans[i];
        let lane = lane_free_at
            .iter()
            .position(|&free| free <= start)
            .unwrap_or_else(|| {
                lane_free_at.push(0.0);
                lane_free_at.len() - 1
            });
        lane_free_at[lane] = end;
        lanes[i] = lane;
    }
    lanes
}

fn push_meta(out: &mut String, tid: usize, name: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
    );
}

/// Render an event stream as Chrome `trace_event` JSON
/// (`{"traceEvents":[...]}`), loadable in `chrome://tracing` or Perfetto.
///
/// Track layout: tid 0..N-1 are reconstructed worker lanes carrying task
/// spans; the copy channel's migration spans and the instant markers
/// (windows, plans, profiling, replans, deferrals) go on two tids after
/// the last lane.
pub fn to_chrome_trace(events: &[Event]) -> String {
    // Pair TaskStart/TaskFinish by task id into spans.
    struct TaskSpan {
        task: u32,
        class: u32,
        window: u32,
        start: f64,
        end: f64,
    }
    let mut open: Vec<(u32, usize)> = Vec::new(); // (task, index into spans)
    let mut spans: Vec<TaskSpan> = Vec::new();
    for e in events {
        match *e {
            Event::TaskStart {
                t,
                task,
                class,
                window,
            } => {
                open.push((task, spans.len()));
                spans.push(TaskSpan {
                    task,
                    class,
                    window,
                    start: t,
                    end: t,
                });
            }
            Event::TaskFinish { t, task, .. } => {
                if let Some(pos) = open.iter().rposition(|&(id, _)| id == task) {
                    let (_, idx) = open.swap_remove(pos);
                    spans[idx].end = t;
                }
            }
            _ => {}
        }
    }
    let lanes = assign_lanes(&spans.iter().map(|s| (s.start, s.end)).collect::<Vec<_>>());
    let mut n_lanes = lanes.iter().map(|&l| l + 1).max().unwrap_or(0);
    // Parallel measured runs name their workers directly (WorkerTask
    // spans carry a worker index); those tids share the lane namespace
    // with the reconstructed virtual lanes.
    for e in events {
        if let Event::WorkerTask { worker, .. } = *e {
            n_lanes = n_lanes.max(worker as usize + 1);
        }
    }
    let migration_tid = n_lanes;
    let marker_tid = n_lanes + 1;

    // Copy intervals for flow-arrow pairing: a gate wait is linked to
    // the migration whose finish fell inside it (that finish is what
    // opened the gate).
    let mut migs: Vec<(u32, f64)> = Vec::new(); // (object, finish)
    for e in events {
        if let Event::MigrationIssued { object, finish, .. } = *e {
            migs.push((object, finish));
        }
    }
    let mut flow_id = 0usize;

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    for lane in 0..n_lanes {
        sep(&mut out);
        push_meta(&mut out, lane, &format!("worker {lane}"));
    }
    sep(&mut out);
    push_meta(&mut out, migration_tid, "copy channel");
    sep(&mut out);
    push_meta(&mut out, marker_tid, "runtime markers");

    for (span, &lane) in spans.iter().zip(&lanes) {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"task {task} (class {class})\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":1,\"tid\":{lane},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"task\":{task},\"class\":{class},\"window\":{window}}}}}",
            task = span.task,
            class = span.class,
            window = span.window,
            ts = fnum(span.start / NS_PER_US),
            dur = fnum((span.end - span.start) / NS_PER_US)
        );
    }

    for e in events {
        match *e {
            Event::WorkerTask {
                t,
                tenant,
                worker,
                task,
                window,
                wall_ns,
                gate_wait_ns,
            } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"T{tenant} task {task} w{window}\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":1,\"tid\":{worker},\"ts\":{},\"dur\":{},\"args\":{{\"tenant\":{tenant},\"task\":{task},\"window\":{window},\"gate_wait_ns\":{}}}}}",
                    fnum((t - wall_ns) / NS_PER_US),
                    fnum(wall_ns / NS_PER_US),
                    fnum(gate_wait_ns)
                );
                // Flow arrow: copy-channel finish -> gate-wait end on
                // the stalled worker lane. Latest finish inside the
                // stall wins; smallest object id breaks ties.
                let gate = gate_wait_ns.clamp(0.0, wall_ns.max(0.0));
                let stall_start = t - wall_ns.max(0.0);
                let stall_end = stall_start + gate;
                if gate > 0.0 {
                    let mut unblocker: Option<(f64, u32)> = None;
                    for &(object, m_finish) in &migs {
                        if m_finish > stall_start && m_finish <= stall_end {
                            let better = match unblocker {
                                None => true,
                                Some((f, o)) => m_finish > f || (m_finish == f && object < o),
                            };
                            if better {
                                unblocker = Some((m_finish, object));
                            }
                        }
                    }
                    if let Some((m_finish, object)) = unblocker {
                        flow_id += 1;
                        sep(&mut out);
                        let _ = write!(
                            out,
                            "{{\"name\":\"unblock obj {object}\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{flow_id},\"pid\":1,\"tid\":{migration_tid},\"ts\":{}}}",
                            fnum(m_finish / NS_PER_US)
                        );
                        sep(&mut out);
                        let _ = write!(
                            out,
                            "{{\"name\":\"unblock obj {object}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{flow_id},\"pid\":1,\"tid\":{worker},\"ts\":{}}}",
                            fnum(stall_end / NS_PER_US)
                        );
                    }
                }
            }
            Event::MigrationIssued {
                object,
                bytes,
                from,
                to,
                start,
                finish,
                ..
            } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"migrate obj {object} ({}->{})\",\"cat\":\"migration\",\"ph\":\"X\",\"pid\":1,\"tid\":{migration_tid},\"ts\":{},\"dur\":{},\"args\":{{\"object\":{object},\"bytes\":{bytes}}}}}",
                    from.tag(),
                    to.tag(),
                    fnum(start / NS_PER_US),
                    fnum((finish - start) / NS_PER_US)
                );
            }
            Event::WindowStart { t, window } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"window {window}\",\"cat\":\"window\",\"ph\":\"i\",\"pid\":1,\"tid\":{marker_tid},\"ts\":{},\"s\":\"t\"}}",
                    fnum(t / NS_PER_US)
                );
            }
            Event::PlanComputed {
                t,
                window,
                kind,
                migrations,
                accepted,
                ..
            } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"plan {kind} w{window} ({migrations} moves, {})\",\"cat\":\"plan\",\"ph\":\"i\",\"pid\":1,\"tid\":{marker_tid},\"ts\":{},\"s\":\"t\"}}",
                    if accepted { "accepted" } else { "frozen" },
                    fnum(t / NS_PER_US)
                );
            }
            Event::ProfilingArmed { t, window, .. } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"profiling armed w{window}\",\"cat\":\"profiling\",\"ph\":\"i\",\"pid\":1,\"tid\":{marker_tid},\"ts\":{},\"s\":\"t\"}}",
                    fnum(t / NS_PER_US)
                );
            }
            Event::ProfilingClosed { t, window } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"profiling closed w{window}\",\"cat\":\"profiling\",\"ph\":\"i\",\"pid\":1,\"tid\":{marker_tid},\"ts\":{},\"s\":\"t\"}}",
                    fnum(t / NS_PER_US)
                );
            }
            Event::ReplanTriggered { t, window, reason } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"replan w{window} ({})\",\"cat\":\"plan\",\"ph\":\"i\",\"pid\":1,\"tid\":{marker_tid},\"ts\":{},\"s\":\"t\"}}",
                    reason.tag(),
                    fnum(t / NS_PER_US)
                );
            }
            Event::MigrationDeferred { t, object } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"deferred obj {object}\",\"cat\":\"migration\",\"ph\":\"i\",\"pid\":1,\"tid\":{migration_tid},\"ts\":{},\"s\":\"t\"}}",
                    fnum(t / NS_PER_US)
                );
            }
            _ => {}
        }
    }

    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Tier;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::WindowStart { t: 0.0, window: 0 },
            Event::TaskStart {
                t: 0.0,
                task: 1,
                class: 0,
                window: 0,
            },
            Event::TaskStart {
                t: 0.0,
                task: 2,
                class: 1,
                window: 0,
            },
            Event::MigrationIssued {
                t: 50.0,
                object: 7,
                bytes: 4096,
                from: Tier::Nvm,
                to: Tier::Dram,
                start: 50.0,
                finish: 150.0,
                queue_depth: 0,
            },
            Event::TaskFinish {
                t: 100.0,
                task: 1,
                class: 0,
                window: 0,
            },
            Event::TaskFinish {
                t: 120.0,
                task: 2,
                class: 1,
                window: 0,
            },
            Event::MigrationCompleted {
                t: 150.0,
                object: 7,
                bytes: 4096,
                overlap_ns: 100.0,
            },
        ]
    }

    #[test]
    fn jsonl_is_one_line_per_event_with_fixed_fields() {
        let jsonl = to_jsonl(&sample_events());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 7);
        assert_eq!(lines[0], "{\"ev\":\"window_start\",\"t\":0,\"window\":0}");
        assert_eq!(
            lines[1],
            "{\"ev\":\"task_start\",\"t\":0,\"task\":1,\"class\":0,\"window\":0}"
        );
        assert_eq!(
            lines[3],
            "{\"ev\":\"migration_issued\",\"t\":50,\"object\":7,\"bytes\":4096,\"from\":\"nvm\",\"to\":\"dram\",\"start\":50,\"finish\":150,\"queue_depth\":0}"
        );
    }

    #[test]
    fn real_substrate_events_serialize() {
        let line = event_to_json(&Event::RealCopyDone {
            t: 10.0,
            object: 3,
            bytes: 1 << 16,
            from: Tier::Nvm,
            to: Tier::Dram,
            wall_ns: 2000.0,
            throttle_ns: 1500.0,
            chunks: 4,
        });
        assert_eq!(
            line,
            "{\"ev\":\"real_copy_done\",\"t\":10,\"object\":3,\"bytes\":65536,\"from\":\"nvm\",\"to\":\"dram\",\"wall_ns\":2000,\"throttle_ns\":1500,\"chunks\":4}"
        );
        let line = event_to_json(&Event::ArenaMapped {
            t: 0.0,
            tier: Tier::Dram,
            bytes: 4096,
            numa_node: -1,
        });
        assert!(line.contains("\"numa_node\":-1"), "{line}");
        crate::json::parse(&line).expect("valid JSON");
    }

    #[test]
    fn worker_task_serializes_and_gets_its_own_trace_lane() {
        let e = Event::WorkerTask {
            t: 5000.0,
            tenant: 7,
            worker: 3,
            task: 9,
            window: 2,
            wall_ns: 4000.0,
            gate_wait_ns: 250.0,
        };
        assert_eq!(
            event_to_json(&e),
            "{\"ev\":\"worker_task\",\"t\":5000,\"tenant\":7,\"worker\":3,\"task\":9,\"window\":2,\"wall_ns\":4000,\"gate_wait_ns\":250}"
        );
        let trace = to_chrome_trace(&[e]);
        let parsed = crate::json::parse(&trace).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap();
        // Worker 3 forces lanes 0..=3 plus the migration + marker tracks.
        let metas = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
            .count();
        assert_eq!(metas, 6);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .expect("one task span");
        assert_eq!(span.get("tid").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(span.get("ts").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(span.get("dur").and_then(|v| v.as_f64()), Some(4.0));
        // The worker lane span names and tags the tenant the task ran
        // for, so multi-tenant server traces are readable per client.
        assert_eq!(
            span.get("name").and_then(|v| v.as_str()),
            Some("T7 task 9 w2")
        );
        let args = span.get("args").expect("span args");
        assert_eq!(args.get("tenant").and_then(|v| v.as_f64()), Some(7.0));
    }

    #[test]
    fn tenant_events_serialize() {
        let line = event_to_json(&Event::GraphAdmitted {
            t: 10.0,
            tenant: 2,
            graph: 5,
            queue_wait_ns: 1500.0,
            quota_bytes: 65536,
        });
        assert_eq!(
            line,
            "{\"ev\":\"graph_admitted\",\"t\":10,\"tenant\":2,\"graph\":5,\"queue_wait_ns\":1500,\"quota_bytes\":65536}"
        );
        let line = event_to_json(&Event::GraphDone {
            t: 20.0,
            tenant: 2,
            graph: 5,
            latency_ns: 9000.5,
            wall_ns: 7500.0,
        });
        assert_eq!(
            line,
            "{\"ev\":\"graph_done\",\"t\":20,\"tenant\":2,\"graph\":5,\"latency_ns\":9000.5,\"wall_ns\":7500}"
        );
        let line = event_to_json(&Event::GraphShed {
            t: 30.0,
            tenant: 1,
            graph: 6,
            queued: 2,
        });
        assert_eq!(
            line,
            "{\"ev\":\"graph_shed\",\"t\":30,\"tenant\":1,\"graph\":6,\"queued\":2}"
        );
        let line = event_to_json(&Event::TenantQuota {
            t: 40.0,
            tenant: 0,
            quota_bytes: 131072,
            demand_bytes: 262144,
        });
        assert_eq!(
            line,
            "{\"ev\":\"tenant_quota\",\"t\":40,\"tenant\":0,\"quota_bytes\":131072,\"demand_bytes\":262144}"
        );
        let line = event_to_json(&Event::TenantPreempt {
            t: 50.0,
            tenant: 3,
            object: 12,
            bytes: 65536,
        });
        assert_eq!(
            line,
            "{\"ev\":\"tenant_preempt\",\"t\":50,\"tenant\":3,\"object\":12,\"bytes\":65536}"
        );
        crate::json::parse(&line).expect("valid JSON");
    }

    #[test]
    fn sanitize_violation_serializes_with_escaped_detail() {
        let line = event_to_json(&Event::SanitizeViolation {
            t: 7.0,
            kind: "write_under_read".to_string(),
            task: 3,
            object: 1,
            detail: "t3 stores to \"obj\"".to_string(),
        });
        assert_eq!(
            line,
            "{\"ev\":\"sanitize_violation\",\"t\":7,\"kind\":\"write_under_read\",\"task\":3,\"object\":1,\"detail\":\"t3 stores to \\\"obj\\\"\"}"
        );
        crate::json::parse(&line).expect("valid JSON");
    }

    #[test]
    fn jsonl_is_deterministic() {
        let events = sample_events();
        assert_eq!(to_jsonl(&events), to_jsonl(&events));
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        for e in sample_events() {
            sink.accept(&e);
        }
        sink.flush();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text, to_jsonl(&sample_events()));
    }

    #[test]
    fn lane_assignment_packs_concurrent_spans() {
        // Two overlapping spans need two lanes; a later span reuses lane 0.
        let lanes = assign_lanes(&[(0.0, 10.0), (0.0, 5.0), (12.0, 20.0)]);
        assert_eq!(lanes[0], 0);
        assert_eq!(lanes[1], 1);
        assert_eq!(lanes[2], 0);
    }

    #[test]
    fn chrome_trace_has_spans_and_instants() {
        let trace = to_chrome_trace(&sample_events());
        let parsed = crate::json::parse(&trace).expect("trace must be valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        let mut task_spans = 0;
        let mut migration_spans = 0;
        let mut instants = 0;
        for ev in events {
            let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph field");
            match ph {
                "X" => {
                    assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some());
                    assert!(ev.get("dur").and_then(|v| v.as_f64()).is_some());
                    match ev.get("cat").and_then(|v| v.as_str()) {
                        Some("task") => task_spans += 1,
                        Some("migration") => migration_spans += 1,
                        other => panic!("unexpected X category {other:?}"),
                    }
                }
                "i" => instants += 1,
                "M" | "s" | "f" => {}
                other => panic!("unexpected ph {other:?}"),
            }
            assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        }
        assert_eq!(task_spans, 2);
        assert_eq!(migration_spans, 1);
        assert!(instants >= 1);
    }

    #[test]
    fn flow_pair_links_migration_finish_to_the_stall_it_unblocks() {
        // Worker 0 runs [1000, 3000] and spends its first 500ns in the
        // gate; object 7's copy finishes at 1400, inside that stall.
        let events = vec![
            Event::MigrationIssued {
                t: 200.0,
                object: 7,
                bytes: 4096,
                from: Tier::Nvm,
                to: Tier::Dram,
                start: 200.0,
                finish: 1400.0,
                queue_depth: 0,
            },
            Event::WorkerTask {
                t: 3000.0,
                tenant: 0,
                worker: 0,
                task: 4,
                window: 1,
                wall_ns: 2000.0,
                gate_wait_ns: 500.0,
            },
        ];
        let trace = to_chrome_trace(&events);
        let parsed = crate::json::parse(&trace).expect("valid JSON");
        let tev = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap();
        let start = tev
            .iter()
            .find(|e| e.get("ph").and_then(|v| v.as_str()) == Some("s"))
            .expect("flow start");
        let finish = tev
            .iter()
            .find(|e| e.get("ph").and_then(|v| v.as_str()) == Some("f"))
            .expect("flow finish");
        // Same id, copy channel -> stalled worker lane, ns -> µs.
        assert_eq!(
            start.get("id").and_then(|v| v.as_f64()),
            finish.get("id").and_then(|v| v.as_f64())
        );
        assert_eq!(start.get("tid").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(start.get("ts").and_then(|v| v.as_f64()), Some(1.4));
        assert_eq!(finish.get("tid").and_then(|v| v.as_f64()), Some(0.0));
        assert_eq!(finish.get("ts").and_then(|v| v.as_f64()), Some(1.5));
        assert_eq!(finish.get("bp").and_then(|v| v.as_str()), Some("e"));
        assert_eq!(
            start.get("name").and_then(|v| v.as_str()),
            Some("unblock obj 7")
        );

        // A stall no copy finish falls inside gets no arrow.
        let no_match = to_chrome_trace(&[Event::WorkerTask {
            t: 3000.0,
            tenant: 0,
            worker: 0,
            task: 4,
            window: 1,
            wall_ns: 2000.0,
            gate_wait_ns: 500.0,
        }]);
        let parsed = crate::json::parse(&no_match).expect("valid JSON");
        assert!(parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .all(|e| {
                let ph = e.get("ph").and_then(|v| v.as_str()).unwrap();
                ph != "s" && ph != "f"
            }));
    }

    #[test]
    fn chrome_trace_of_empty_stream_is_valid() {
        let trace = to_chrome_trace(&[]);
        let parsed = crate::json::parse(&trace).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap();
        // Only the two fixed track-name metadata records.
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M")));
    }
}
