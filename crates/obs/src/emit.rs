//! Event emission: the [`Emitter`] handle instrumented code holds, the
//! shared buffered sink behind it, and the [`Sink`] consumer interface.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled must be free.** Most runs are not observed; an emitter
//!    built with [`Emitter::disabled`] is a `None` — every `emit` call is
//!    one branch, and the closure that would build the event is never
//!    invoked. The scheduler hot path stays unchanged.
//! 2. **Enabled must be cheap and thread-safe.** The work-stealing
//!    executor emits from multiple OS threads; the buffer is a single
//!    mutex-protected `Vec` (push under lock, no allocation churn beyond
//!    the vector's own growth). The virtual-time scheduler is
//!    single-threaded, so the lock is uncontended where volume is high.
//! 3. **Deterministic order.** Events are appended in emission order;
//!    for the single-threaded simulator that order is a pure function of
//!    the inputs, which the JSONL determinism guarantee builds on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::Event;

/// Consumer of a drained event stream; exporters implement this.
pub trait Sink {
    /// Accept one event.
    fn accept(&mut self, event: &Event);

    /// Called once after the last event of a drain.
    fn flush(&mut self) {}
}

/// The simplest sink: collect events into a vector.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The collected events.
    pub events: Vec<Event>,
}

impl Sink for VecSink {
    fn accept(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

#[derive(Debug, Default)]
struct Shared {
    buf: Mutex<Vec<Event>>,
    /// Events dropped because the buffer mutex was poisoned (a worker
    /// panicked mid-emit). Observability must never turn one panic into
    /// an abort of the whole run, so emission degrades to counting.
    poisoned: AtomicU64,
}

/// Clonable emission handle. See the module docs for the cost model.
#[derive(Debug, Clone, Default)]
pub struct Emitter {
    shared: Option<Arc<Shared>>,
}

impl Emitter {
    /// An emitter that drops everything (one branch per call site).
    pub fn disabled() -> Self {
        Emitter { shared: None }
    }

    /// An enabled emitter and the buffer handle to drain it from.
    pub fn buffered() -> (Emitter, EventBuffer) {
        let shared = Arc::new(Shared::default());
        (
            Emitter {
                shared: Some(Arc::clone(&shared)),
            },
            EventBuffer { shared },
        )
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Emit one event. The closure runs only when enabled, so call sites
    /// pay nothing to *construct* events on unobserved runs.
    ///
    /// If the shared buffer's mutex is poisoned (another thread panicked
    /// while emitting), the event is dropped and the
    /// [`EventBuffer::poisoned`] counter incremented — emission never
    /// propagates someone else's panic.
    #[inline]
    pub fn emit<F: FnOnce() -> Event>(&self, build: F) {
        if let Some(shared) = &self.shared {
            let event = build();
            match shared.buf.lock() {
                Ok(mut buf) => buf.push(event),
                Err(_) => {
                    shared.poisoned.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Append a batch of already-built events under one lock acquisition
    /// (the flight recorder drains its merged stream through this). Same
    /// poisoning degradation as [`emit`](Self::emit): on a poisoned
    /// buffer the whole batch is dropped and counted.
    pub fn emit_many(&self, events: Vec<Event>) {
        if events.is_empty() {
            return;
        }
        if let Some(shared) = &self.shared {
            match shared.buf.lock() {
                Ok(mut buf) => buf.extend(events),
                Err(_) => {
                    shared
                        .poisoned
                        .fetch_add(events.len() as u64, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Drain handle for an [`Emitter::buffered`] pair.
#[derive(Debug)]
pub struct EventBuffer {
    shared: Arc<Shared>,
}

impl EventBuffer {
    /// Number of buffered events.
    pub fn len(&self) -> usize {
        // The buffer data (a Vec of plain events) is always consistent,
        // so a poisoned lock is recovered rather than propagated.
        self.shared
            .buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because a panic poisoned the buffer mutex (the
    /// `obs_poisoned` count).
    pub fn poisoned(&self) -> u64 {
        self.shared.poisoned.load(Ordering::Relaxed)
    }

    /// Take every buffered event, leaving the buffer empty. Events
    /// emitted before a poisoning panic survive and are returned.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(
            &mut *self
                .shared
                .buf
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Drain into a [`Sink`], flushing it at the end.
    pub fn drain_into(&self, sink: &mut dyn Sink) {
        for event in self.drain() {
            sink.accept(&event);
        }
        sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(t: f64, window: u32) -> Event {
        Event::WindowStart { t, window }
    }

    #[test]
    fn disabled_emitter_never_builds() {
        let e = Emitter::disabled();
        assert!(!e.enabled());
        e.emit(|| unreachable!("disabled emitter must not build events"));
    }

    #[test]
    fn buffered_emitter_records_in_order() {
        let (e, buf) = Emitter::buffered();
        assert!(e.enabled());
        e.emit(|| ws(1.0, 0));
        e.emit(|| ws(2.0, 1));
        let events = buf.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], ws(1.0, 0));
        assert_eq!(events[1], ws(2.0, 1));
        assert!(buf.is_empty());
    }

    #[test]
    fn clones_share_one_buffer() {
        let (e, buf) = Emitter::buffered();
        let e2 = e.clone();
        e.emit(|| ws(1.0, 0));
        e2.emit(|| ws(2.0, 1));
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn emission_from_threads_lands_in_one_buffer() {
        let (e, buf) = Emitter::buffered();
        std::thread::scope(|s| {
            for i in 0..4 {
                let e = e.clone();
                s.spawn(move || {
                    for k in 0..100 {
                        e.emit(|| ws(k as f64, i));
                    }
                });
            }
        });
        assert_eq!(buf.len(), 400);
    }

    #[test]
    fn drain_into_sink_flushes() {
        struct CountSink {
            n: usize,
            flushed: bool,
        }
        impl Sink for CountSink {
            fn accept(&mut self, _e: &Event) {
                self.n += 1;
            }
            fn flush(&mut self) {
                self.flushed = true;
            }
        }
        let (e, buf) = Emitter::buffered();
        e.emit(|| ws(0.0, 0));
        let mut sink = CountSink {
            n: 0,
            flushed: false,
        };
        buf.drain_into(&mut sink);
        assert_eq!(sink.n, 1);
        assert!(sink.flushed);
    }

    #[test]
    fn vec_sink_collects() {
        let mut sink = VecSink::default();
        sink.accept(&ws(0.0, 0));
        assert_eq!(sink.events.len(), 1);
    }

    #[test]
    fn emit_many_appends_in_order() {
        let (e, buf) = Emitter::buffered();
        e.emit(|| ws(0.0, 0));
        e.emit_many(vec![ws(1.0, 1), ws(2.0, 2)]);
        Emitter::disabled().emit_many(vec![ws(9.0, 9)]); // no-op, no panic
        let events = buf.drain();
        assert_eq!(events, vec![ws(0.0, 0), ws(1.0, 1), ws(2.0, 2)]);
    }

    #[test]
    fn poisoned_buffer_degrades_to_counted_drops() {
        let (e, buf) = Emitter::buffered();
        e.emit(|| ws(1.0, 0));
        // Poison the mutex: a thread panics while holding the guard.
        let shared = Arc::clone(e.shared.as_ref().expect("enabled"));
        let _ = std::thread::spawn(move || {
            let _guard = shared.buf.lock().unwrap();
            panic!("simulated worker panic mid-emit");
        })
        .join();
        // Emission after poisoning must not panic; it drops + counts.
        e.emit(|| ws(2.0, 0));
        e.emit_many(vec![ws(3.0, 0), ws(4.0, 0)]);
        assert_eq!(buf.poisoned(), 3);
        // Pre-poison events survive the drain; len/drain recover.
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.drain(), vec![ws(1.0, 0)]);
        assert!(buf.is_empty());
    }
}
