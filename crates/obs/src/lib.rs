//! # Structured observability for the Tahoe runtime
//!
//! The runtime's value is in its *decisions* — profile, classify,
//! knapsack-place, proactively migrate, replan on drift. This crate makes
//! every one of those decisions visible as data rather than end-of-run
//! aggregates:
//!
//! * [`event::Event`] — a typed, virtual-time-stamped event stream
//!   covering task execution, window boundaries, migrations, planning,
//!   profiling and overhead charges.
//! * [`emit::Emitter`] — the cheap, clonable handle instrumented code
//!   emits through. A disabled emitter costs one branch per call site and
//!   never constructs the event; an enabled one appends to a lock-cheap
//!   shared buffer (usable from the work-stealing executor's threads).
//! * [`emit::Sink`] — consumer interface for drained events; exporters
//!   implement it.
//! * [`metrics::Metrics`] — a registry of monotonic counters, gauges,
//!   per-window series and latency histograms keyed by static names,
//!   snapshot into [`metrics::MetricsSnapshot`] (embedded in run reports).
//! * [`hist::Histogram`] — fixed-size log2-bucketed latency histograms
//!   with commutative merge and p50/p90/p99/max digests.
//! * [`recorder::FlightRecorder`] — per-worker lock-free SPSC event rings
//!   plus per-lane histograms for the parallel measured runtime's hot
//!   path; drained into a deterministic timestamp-merged stream that
//!   feeds the same exporters.
//! * [`export`] — two exporters: deterministic JSONL (one event per line,
//!   fixed field order — byte-identical across identical seeded runs) and
//!   Chrome `trace_event` JSON loadable in `chrome://tracing` / Perfetto,
//!   with flow arrows linking each migration span to the stall it
//!   unblocks.
//! * [`critpath`] / [`blame`] — the causal profiler: critical-path
//!   reconstruction, exposed-stall blame attribution and COZ-style
//!   what-if digests, all computed from the same merged stream.
//! * [`json`] — a minimal JSON parser used by tests and tools to validate
//!   exporter output without external dependencies.
//!
//! The crate has zero dependencies so every layer of the workspace
//! (memory substrate, task runtime, profiler, policy driver) can depend
//! on it without cycles.

// Unsafe is confined to the flight recorder's SPSC ring (`recorder`);
// every site carries a scoped `#[allow(unsafe_code)]` + SAFETY comment.
#![deny(unsafe_code)]

pub mod blame;
pub mod critpath;
pub mod emit;
pub mod event;
pub mod export;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod recorder;

pub use blame::{BlameEntry, BlameTable};
pub use critpath::{CritPath, CritPathDigest, Segment, SegmentKind, WhatIf};
pub use emit::{Emitter, EventBuffer, Sink, VecSink};
pub use event::{Event, OverheadKind, ReplanReason, Tier};
pub use export::{to_chrome_trace, to_jsonl, JsonlSink};
pub use hist::{HistData, HistSummary, Histogram};
pub use metrics::{Metrics, MetricsSnapshot};
pub use recorder::{FlightCapture, FlightHandle, FlightRecorder};
