//! A minimal JSON parser — just enough to validate the exporters' output
//! in tests and tooling without pulling an external dependency into the
//! zero-dep crate.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null) but keeps numbers as `f64` and makes no
//! attempt at performance; it exists to *check* JSON, not to be a serde.

use std::collections::BTreeMap;

/// A parsed JSON value.
///
/// # Example: reading a `BENCH_par.json` artifact
///
/// The bench harness's artifacts are plain JSON; this parser is enough
/// to pull numbers back out of them in tests and tooling:
///
/// ```
/// use tahoe_obs::json;
///
/// let artifact = r#"{
///   "schema": "tahoe-bench-par/v1",
///   "runs": [
///     {"policy": "tahoe", "workers": 4, "migrations": 12, "pct_overlap": 91.2}
///   ]
/// }"#;
/// let v = json::parse(artifact).unwrap();
/// assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some("tahoe-bench-par/v1"));
/// let runs = v.get("runs").and_then(|r| r.as_array()).unwrap();
/// let tahoe = runs
///     .iter()
///     .find(|r| r.get("policy").and_then(|p| p.as_str()) == Some("tahoe"))
///     .unwrap();
/// assert!(tahoe.get("pct_overlap").and_then(|n| n.as_f64()).unwrap() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as `f64`).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys sorted by `BTreeMap`.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse error: a message plus the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -1.5e2 ").unwrap(), Value::Number(-150.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            Value::String("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\":[1,2,{\"b\":false}],\"c\":\"x\"}").unwrap();
        let arr = v.get("a").and_then(|v| v.as_array()).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(v.get("c").and_then(|v| v.as_str()), Some("x"));
    }

    #[test]
    fn parses_unicode_escape_and_utf8() {
        assert_eq!(
            parse("\"\\u00e9\"").unwrap(),
            Value::String("é".to_string())
        );
        assert_eq!(parse("\"é\"").unwrap(), Value::String("é".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn roundtrips_exporter_style_lines() {
        let line = "{\"ev\":\"task_start\",\"t\":0,\"task\":1,\"class\":0,\"window\":0}";
        let v = parse(line).unwrap();
        assert_eq!(v.get("ev").and_then(|v| v.as_str()), Some("task_start"));
        assert_eq!(v.get("t").and_then(|v| v.as_f64()), Some(0.0));
    }
}
