//! Violation taxonomy and the deterministic sanitize report.

/// Classification of a sanitizer finding.
///
/// The first five kinds are produced by the static graph verifier
/// ([`crate::verify`]); the next four by the dynamic access sanitizer
/// ([`crate::dynamic`]); the final six by the static plan auditor
/// ([`crate::plan`]). Tags are stable snake_case strings used in obs
/// events, `BENCH_sanitize.json`, `BENCH_verify.json` and the benchgate
/// schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationKind {
    /// The graph's dependence edges form a cycle: execution would
    /// deadlock with every task waiting on the others.
    DependencyCycle,
    /// Two tasks access the same object, at least one writes, and no
    /// happens-before path orders them: a declared race.
    UnorderedConflict,
    /// A task accesses an object that was never allocated or was freed
    /// before the task's window.
    UseAfterFree,
    /// The live footprint exceeds the combined capacity of both tiers:
    /// no placement can run this plan.
    InfeasibleFootprint,
    /// An access was declared but carries no memory traffic: it orders
    /// the graph without ever executing (stale annotation).
    DeadDeclaration,
    /// A task touched an object it never declared, so the dependence
    /// tracker derived no ordering for it.
    UndeclaredAccess,
    /// A task stores to an object it declared `Read`: the tracker
    /// derived reader edges only, so the writes are unordered.
    WriteUnderRead,
    /// A task accessed an object while a background migration of it was
    /// in flight (`begin_move` without `commit_move`).
    MidMoveAccess,
    /// The migrator started copying an object that still had live pins.
    PinnedCopy,
    /// A plan step (or the initial placement) overflows a paid tier's
    /// capacity at some point of the plan schedule, counting the
    /// transient double-residency of the two-phase copy.
    PlanOverCapacity,
    /// A planned move is not happens-before-ordered against an
    /// undeclared access of the same object: under some legal
    /// interleaving the copy races the access.
    PlanMoveRace,
    /// A plan step targets a tier index outside the configured tier
    /// list.
    PlanUnknownTier,
    /// A plan step moves an object that was never allocated or is freed
    /// before the step's window.
    PlanDeadObject,
    /// A plan moves the same object more than once within one window:
    /// the second move races the first's two-phase copy.
    PlanDoubleMove,
    /// The plan's modelled (contention-free) runtime exceeds the
    /// no-plan baseline: the plan is feasible but counterproductive.
    PlanCostRegression,
}

impl ViolationKind {
    /// Every kind, in canonical (report/JSON) order.
    pub const ALL: [ViolationKind; 15] = [
        ViolationKind::DependencyCycle,
        ViolationKind::UnorderedConflict,
        ViolationKind::UseAfterFree,
        ViolationKind::InfeasibleFootprint,
        ViolationKind::DeadDeclaration,
        ViolationKind::UndeclaredAccess,
        ViolationKind::WriteUnderRead,
        ViolationKind::MidMoveAccess,
        ViolationKind::PinnedCopy,
        ViolationKind::PlanOverCapacity,
        ViolationKind::PlanMoveRace,
        ViolationKind::PlanUnknownTier,
        ViolationKind::PlanDeadObject,
        ViolationKind::PlanDoubleMove,
        ViolationKind::PlanCostRegression,
    ];

    /// Stable snake_case tag.
    pub fn tag(&self) -> &'static str {
        match self {
            ViolationKind::DependencyCycle => "dependency_cycle",
            ViolationKind::UnorderedConflict => "unordered_conflict",
            ViolationKind::UseAfterFree => "use_after_free",
            ViolationKind::InfeasibleFootprint => "infeasible_footprint",
            ViolationKind::DeadDeclaration => "dead_declaration",
            ViolationKind::UndeclaredAccess => "undeclared_access",
            ViolationKind::WriteUnderRead => "write_under_read",
            ViolationKind::MidMoveAccess => "mid_move_access",
            ViolationKind::PinnedCopy => "pinned_copy",
            ViolationKind::PlanOverCapacity => "plan_over_capacity",
            ViolationKind::PlanMoveRace => "plan_move_race",
            ViolationKind::PlanUnknownTier => "plan_unknown_tier",
            ViolationKind::PlanDeadObject => "plan_dead_object",
            ViolationKind::PlanDoubleMove => "plan_double_move",
            ViolationKind::PlanCostRegression => "plan_cost_regression",
        }
    }
}

/// One sanitizer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What class of defect this is.
    pub kind: ViolationKind,
    /// Offending task id, when the defect is attributable to one task
    /// (for pair defects: the later task in submission order, so the
    /// attribution is schedule-independent).
    pub task: Option<u32>,
    /// Offending object (app index), when object-attributable.
    pub object: Option<u32>,
    /// Human-readable description.
    pub detail: String,
}

impl Violation {
    fn sort_key(&self) -> (ViolationKind, u32, u32, &str) {
        (
            self.kind,
            self.task.unwrap_or(u32::MAX),
            self.object.unwrap_or(u32::MAX),
            &self.detail,
        )
    }
}

/// Deterministic summary of a sanitize pass.
///
/// Violations are kept in canonical order (kind, task, object, detail),
/// so two runs of the same workload — at any worker count, under any
/// schedule — produce identical reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// All findings, canonically ordered.
    pub violations: Vec<Violation>,
    /// Accesses the dynamic sanitizer shadowed (0 for static-only runs).
    pub accesses_checked: u64,
}

impl SanitizeReport {
    /// A report with the given findings, canonically sorted.
    pub fn new(mut violations: Vec<Violation>) -> Self {
        violations.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        SanitizeReport {
            violations,
            accesses_checked: 0,
        }
    }

    /// Whether the pass found nothing.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of findings of one kind.
    pub fn count(&self, kind: ViolationKind) -> u64 {
        self.violations.iter().filter(|v| v.kind == kind).count() as u64
    }

    /// `(tag, count)` for every kind in canonical order, zeros included
    /// (fixed keys make exact-equality gating trivial).
    pub fn by_kind(&self) -> Vec<(&'static str, u64)> {
        ViolationKind::ALL
            .iter()
            .map(|k| (k.tag(), self.count(*k)))
            .collect()
    }

    /// Fold another report into this one, restoring canonical order.
    pub fn merge(&mut self, other: SanitizeReport) {
        self.violations.extend(other.violations);
        self.violations
            .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        self.accesses_checked += other.accesses_checked;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(kind: ViolationKind, task: u32, object: u32) -> Violation {
        Violation {
            kind,
            task: Some(task),
            object: Some(object),
            detail: format!("{} t{task} o{object}", kind.tag()),
        }
    }

    #[test]
    fn tags_are_unique_and_snake_case() {
        let tags: Vec<_> = ViolationKind::ALL.iter().map(|k| k.tag()).collect();
        let mut dedup = tags.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ViolationKind::ALL.len());
        for t in tags {
            assert!(t.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn report_orders_canonically_regardless_of_insertion() {
        let a = SanitizeReport::new(vec![
            v(ViolationKind::WriteUnderRead, 3, 0),
            v(ViolationKind::UnorderedConflict, 1, 2),
            v(ViolationKind::UnorderedConflict, 1, 0),
        ]);
        let b = SanitizeReport::new(vec![
            v(ViolationKind::UnorderedConflict, 1, 0),
            v(ViolationKind::WriteUnderRead, 3, 0),
            v(ViolationKind::UnorderedConflict, 1, 2),
        ]);
        assert_eq!(a, b);
        assert_eq!(a.violations[0].kind, ViolationKind::UnorderedConflict);
        assert_eq!(a.count(ViolationKind::UnorderedConflict), 2);
        assert!(!a.is_clean());
    }

    #[test]
    fn by_kind_has_fixed_keys_with_zeros() {
        let r = SanitizeReport::default();
        let counts = r.by_kind();
        assert_eq!(counts.len(), 15);
        assert!(counts.iter().all(|(_, n)| *n == 0));
        assert_eq!(counts[0].0, "dependency_cycle");
        assert_eq!(counts[9].0, "plan_over_capacity");
        assert_eq!(counts[14].0, "plan_cost_regression");
    }

    #[test]
    fn merge_preserves_order_and_counts() {
        let mut a = SanitizeReport::new(vec![v(ViolationKind::PinnedCopy, 9, 9)]);
        a.accesses_checked = 5;
        let mut b = SanitizeReport::new(vec![v(ViolationKind::DependencyCycle, 0, 0)]);
        b.accesses_checked = 7;
        a.merge(b);
        assert_eq!(a.violations[0].kind, ViolationKind::DependencyCycle);
        assert_eq!(a.accesses_checked, 12);
    }
}
