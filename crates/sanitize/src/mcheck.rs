//! Bounded exhaustive model checker for the lock-free pin/move protocol.
//!
//! [`tahoe_hms::lockfree::word`] expresses every state transition of the
//! per-object word as a pure function, and `SharedHms` CAS-loops those
//! functions. Hammer tests and proptests sample schedules; this module
//! *enumerates* them: a vendored mini-loom that walks every reachable
//! interleaving of N pinner threads and one migrator over a single
//! object word, asserting the protocol invariants in each.
//!
//! # The model
//!
//! Each modeled atomic step corresponds to one linearization point of
//! the real protocol in `hms/src/sync.rs`:
//!
//! * a successful `pin`/`unpin`/`begin_move`/`end_move` CAS is one
//!   atomic read-modify-write (the CAS retry loop collapses — a failed
//!   CAS re-reads and re-decides, which the explorer covers by
//!   scheduling the same step later);
//! * the event-count parker's "re-check the predicate under the lock,
//!   then sleep" is one atomic predicate check (`park_while` holds the
//!   sequence lock across exactly that pair, and `notify` bumps the
//!   sequence under the same lock, so the pair really is atomic
//!   w.r.t. wake-ups);
//! * a woken thread re-enters the top of its outer retry loop, exactly
//!   as `park_while` returning re-enters `wait_not_moving` /
//!   `begin_move_blocking`;
//! * `notify` wakes every sleeper on the shard (the parker is
//!   `notify_all`).
//!
//! One deliberate tightening: the worker's `WAITERS` announcement is
//! folded into its atomic predicate-check-and-sleep step. The real
//! code announces *before* entering the parker, which leaves a window
//! where a completing move consumes the announcement and a second move
//! begins before the worker sleeps; that window is closed in practice
//! by the timed-park backstop (every park has a timeout), which a
//! no-timeout model cannot represent without forfeiting deadlock
//! detection. The model therefore certifies the un-timed protocol with
//! the announcement at its linearization point. The migrator's
//! `PARKED` announcement needs no such fold — nothing consumes it
//! while the move is still unclaimed — so it stays where the real code
//! puts it, before the predicate check.
//!
//! The model covers one object (one word, one shard parker) — the
//! protocol invariants are per-word; the multi-object all-or-nothing
//! rollback of `pin_for_task` composes per-word transitions and is
//! exercised by the hammer suite instead.
//!
//! **Pinner program** (× `pin_cycles`): try to pin (on `MOVING`:
//! announce `WAITERS`, park while moving), hold, unpin (an
//! unpin-to-zero with `PARKED` set wakes the shard).
//! **Migrator program** (× `moves`): begin the move (on live pins:
//! announce `PARKED`, park while pinned), copy, end the move (waking
//! the shard when `WAITERS` is set).
//!
//! # Invariants asserted in every explored state
//!
//! * pins never exceed the pinner count, and never coexist with
//!   `MOVING` (a pin that survived into a move would be copied from
//!   under the task);
//! * the move epoch is monotonic, advancing exactly once per
//!   `end_move`;
//! * no transition returns an unexpected [`word::WordError`] (illegal
//!   transitions are unreachable);
//! * every schedule drains: all threads finish with a zero-pin,
//!   flag-free word and `epoch == moves` (pins drain to zero);
//! * no deadlock: a non-final state always has an enabled transition —
//!   a parked thread whose wake-up was lost fails this loudly.
//!
//! # Reductions
//!
//! Exploration is a DFS over canonical states with two sound
//! reductions: *symmetry* (pinners run identical programs, so states
//! are canonicalized by sorting pinner-local states — the word cannot
//! distinguish which pinner holds a pin) and a singleton *ample set*
//! for invisible steps (a thread whose next step is purely local —
//! holding a pin, copying — neither reads nor writes the shared word,
//! so it is explored alone: a textbook stubborn/persistent-set
//! argument). The resulting distinct-state count is deterministic and
//! pinned in CI: any drift in the word algebra *or* in the checker
//! itself fails loudly.
//!
//! # Bug injection
//!
//! [`BugInjection`] re-introduces the classic mistakes the protocol
//! exists to prevent (skipping the unpin-to-zero wake, skipping the
//! release wake, parking without announcing `PARKED`, pinning through
//! `MOVING`); the tests assert each is caught, so the checker's teeth
//! are themselves regression-tested.

use std::collections::HashSet;

use tahoe_hms::lockfree::word;

/// Which protocol mistakes to inject (all `false` = the real protocol).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BugInjection {
    /// Unpin-to-zero does not wake a parked migrator (lost wake-up).
    pub skip_unpin_wake: bool,
    /// `end_move` does not wake parked workers (lost wake-up).
    pub skip_release_wake: bool,
    /// The migrator parks without announcing `PARKED`, so the
    /// unpin-to-zero wake condition never fires (lost wake-up).
    pub skip_parked_bit: bool,
    /// `pin` ignores `MOVING` and pins through an in-flight move.
    pub pin_ignores_moving: bool,
}

/// Bounds and variant of one model-checking run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McheckConfig {
    /// Number of pinner threads (the paper's workers), 1..=3 useful.
    pub pinners: usize,
    /// Pin/unpin cycles each pinner performs.
    pub pin_cycles: u8,
    /// Two-phase moves the migrator performs.
    pub moves: u8,
    /// Injected protocol mistakes (none for certification runs).
    pub bugs: BugInjection,
}

impl McheckConfig {
    /// The real protocol with the given bounds.
    pub fn new(pinners: usize, pin_cycles: u8, moves: u8) -> Self {
        McheckConfig {
            pinners,
            pin_cycles,
            moves,
            bugs: BugInjection::default(),
        }
    }
}

/// Outcome of a bounded exhaustive exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct McheckReport {
    /// The bounds explored.
    pub config: McheckConfig,
    /// Distinct canonical states visited — the deterministic number CI
    /// pins.
    pub states: u64,
    /// Transitions executed (≥ states − 1).
    pub transitions: u64,
    /// Schedules that drained completely (reached the all-done state).
    pub terminals: u64,
    /// Non-final states with no enabled transition (lost wake-ups).
    pub deadlocks: u64,
    /// Distinct invariant violations, canonically sorted (empty =
    /// certified within the bounds).
    pub violations: Vec<String>,
}

impl McheckReport {
    /// Whether the bounded state space is certified clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.deadlocks == 0 && self.terminals > 0
    }
}

/// Pinner-local program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Pc {
    /// About to attempt the pin CAS.
    TryPin,
    /// Holding the seq lock: re-check "still moving?" then sleep.
    ParkCheck,
    /// Parked; only a shard wake re-enables.
    Sleeping,
    /// Pin held; the task's access runs here (invisible step).
    Hold,
    /// About to attempt the unpin CAS.
    Unpin,
    /// All cycles finished.
    Done,
}

/// Migrator-local program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum MigPc {
    /// About to attempt the begin-move CAS.
    TryBegin,
    /// Holding the seq lock: re-check "pins still live?" then sleep.
    ParkCheck,
    /// Parked; only a shard wake re-enables.
    Sleeping,
    /// Move claimed; the copy runs here (invisible step).
    Copying,
    /// About to attempt the end-move CAS.
    Release,
    /// All moves finished.
    Done,
}

/// One canonical global state: the word plus every thread's local
/// state. Pinners are kept sorted (symmetry reduction).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    word: u64,
    pinners: Vec<(Pc, u8)>,
    mig: (MigPc, u8),
}

impl State {
    fn canonical(mut self) -> State {
        self.pinners.sort_unstable();
        self
    }

    fn all_done(&self) -> bool {
        self.mig.0 == MigPc::Done && self.pinners.iter().all(|&(pc, _)| pc == Pc::Done)
    }
}

/// Wake every sleeper on the shard (the parker is `notify_all`); woken
/// threads re-enter the top of their retry loops.
fn notify_all(s: &mut State) {
    for p in &mut s.pinners {
        if p.0 == Pc::Sleeping {
            p.0 = Pc::TryPin;
        }
    }
    if s.mig.0 == MigPc::Sleeping {
        s.mig.0 = MigPc::TryBegin;
    }
}

/// The explorer: DFS over canonical states with invariant checks on
/// every transition.
struct Explorer {
    cfg: McheckConfig,
    visited: HashSet<State>,
    transitions: u64,
    terminals: u64,
    deadlocks: u64,
    violations: HashSet<String>,
}

impl Explorer {
    /// Check word invariants across one transition; record violations.
    fn check_word(&mut self, old: u64, new: u64) {
        let (np, nm) = (word::pins(new), word::is_moving(new));
        if np as usize > self.cfg.pinners {
            self.violations
                .insert(format!("pin count {np} exceeds pinner count"));
        }
        if nm && np > 0 {
            self.violations.insert(format!(
                "{np} pin(s) coexist with MOVING: copy races access"
            ));
        }
        let (oe, ne) = (word::epoch(old), word::epoch(new));
        if ne < oe || ne > oe + 1 {
            self.violations
                .insert(format!("epoch not monotonic: {oe} -> {ne}"));
        }
        if ne == oe + 1 && !word::is_moving(old) {
            self.violations
                .insert("epoch advanced outside end_move".to_string());
        }
    }

    /// Successor states of one pinner step; `None` when the thread has
    /// no enabled transition (sleeping or done).
    fn step_pinner(&mut self, s: &State, i: usize) -> Option<State> {
        let (pc, left) = s.pinners[i];
        let w = s.word;
        let mut n = s.clone();
        match pc {
            Pc::Done | Pc::Sleeping => return None,
            Pc::TryPin => {
                match word::pin(w) {
                    Ok(nw) => {
                        n.word = nw;
                        n.pinners[i].0 = Pc::Hold;
                    }
                    Err(word::WordError::Moving) if self.cfg.bugs.pin_ignores_moving => {
                        // The injected bug pins straight through.
                        n.word = w + 1;
                        n.pinners[i].0 = Pc::Hold;
                    }
                    Err(word::WordError::Moving) => {
                        // `try_pin` failed; fall into `wait_not_moving`'s
                        // park check.
                        n.pinners[i].0 = Pc::ParkCheck;
                    }
                    Err(e) => {
                        self.violations.insert(format!("pin failed: {e:?}"));
                        n.pinners[i].0 = Pc::Done;
                    }
                }
            }
            Pc::ParkCheck => {
                // Atomic under the parker's sequence lock; the WAITERS
                // announcement rides the same linearization point (see
                // module docs).
                if word::is_moving(w) {
                    n.word = word::set_waiters(w);
                    n.pinners[i].0 = Pc::Sleeping;
                } else {
                    n.pinners[i].0 = Pc::TryPin;
                }
            }
            Pc::Hold => {
                n.pinners[i].0 = Pc::Unpin;
            }
            Pc::Unpin => match word::unpin(w) {
                Ok(nw) => {
                    n.word = nw;
                    if word::pins(nw) == 0 && word::is_parked(nw) && !self.cfg.bugs.skip_unpin_wake
                    {
                        notify_all(&mut n);
                    }
                    let left = left - 1;
                    n.pinners[i] = if left == 0 {
                        (Pc::Done, 0)
                    } else {
                        (Pc::TryPin, left)
                    };
                }
                Err(e) => {
                    self.violations.insert(format!("unpin failed: {e:?}"));
                    n.pinners[i].0 = Pc::Done;
                }
            },
        }
        self.check_word(s.word, n.word);
        Some(n.canonical())
    }

    /// Successor of the migrator's step, if enabled.
    fn step_migrator(&mut self, s: &State) -> Option<State> {
        let (pc, left) = s.mig;
        let w = s.word;
        let mut n = s.clone();
        match pc {
            MigPc::Done | MigPc::Sleeping => return None,
            MigPc::TryBegin => match word::begin_move(w) {
                Ok(nw) => {
                    n.word = nw;
                    n.mig.0 = MigPc::Copying;
                }
                Err(word::WordError::Pinned(_)) => {
                    // One iteration of `begin_move_blocking`: announce
                    // PARKED (CAS) and fall into the park check.
                    if !self.cfg.bugs.skip_parked_bit {
                        n.word = word::set_parked(w);
                    }
                    n.mig.0 = MigPc::ParkCheck;
                }
                Err(e) => {
                    self.violations.insert(format!("begin_move failed: {e:?}"));
                    n.mig.0 = MigPc::Done;
                }
            },
            MigPc::ParkCheck => {
                n.mig.0 = if word::pins(w) > 0 {
                    MigPc::Sleeping
                } else {
                    MigPc::TryBegin
                };
            }
            MigPc::Copying => {
                n.mig.0 = MigPc::Release;
            }
            MigPc::Release => match word::end_move(w) {
                Ok(nw) => {
                    n.word = nw;
                    if word::has_waiters(w) && !self.cfg.bugs.skip_release_wake {
                        notify_all(&mut n);
                    }
                    let left = left - 1;
                    n.mig = if left == 0 {
                        (MigPc::Done, 0)
                    } else {
                        (MigPc::TryBegin, left)
                    };
                }
                Err(word::WordError::Pinned(p)) => {
                    self.violations
                        .insert(format!("{p} pin(s) survived into a committed move"));
                    n.mig.0 = MigPc::Done;
                }
                Err(e) => {
                    self.violations.insert(format!("end_move failed: {e:?}"));
                    n.mig.0 = MigPc::Done;
                }
            },
        }
        self.check_word(s.word, n.word);
        Some(n.canonical())
    }

    /// All successors of `s`, applying the ample-set reduction: a
    /// thread whose next step is invisible (Hold, Copying — touches
    /// neither word nor parker) is explored alone.
    fn successors(&mut self, s: &State) -> Vec<State> {
        if let Some(i) = s.pinners.iter().position(|&(pc, _)| pc == Pc::Hold) {
            return self.step_pinner(s, i).into_iter().collect();
        }
        if s.mig.0 == MigPc::Copying {
            return self.step_migrator(s).into_iter().collect();
        }
        let mut out = Vec::new();
        // Symmetric pinners in identical local states yield identical
        // successors; step one representative of each distinct state.
        let mut seen_local: Vec<(Pc, u8)> = Vec::new();
        for i in 0..s.pinners.len() {
            if seen_local.contains(&s.pinners[i]) {
                continue;
            }
            seen_local.push(s.pinners[i]);
            if let Some(n) = self.step_pinner(s, i) {
                out.push(n);
            }
        }
        if let Some(n) = self.step_migrator(s) {
            out.push(n);
        }
        out
    }
}

/// Exhaustively explore the protocol within `cfg`'s bounds.
pub fn check(cfg: McheckConfig) -> McheckReport {
    let pinner0 = if cfg.pin_cycles == 0 {
        (Pc::Done, 0)
    } else {
        (Pc::TryPin, cfg.pin_cycles)
    };
    let mig0 = if cfg.moves == 0 {
        (MigPc::Done, 0)
    } else {
        (MigPc::TryBegin, cfg.moves)
    };
    let init = State {
        word: 0,
        pinners: vec![pinner0; cfg.pinners],
        mig: mig0,
    }
    .canonical();
    let mut ex = Explorer {
        cfg,
        visited: HashSet::new(),
        transitions: 0,
        terminals: 0,
        deadlocks: 0,
        violations: HashSet::new(),
    };
    let mut stack = vec![init.clone()];
    ex.visited.insert(init);
    while let Some(s) = stack.pop() {
        if s.all_done() {
            ex.terminals += 1;
            // Pins drained, flags clear, epoch counts every move.
            let expect = word::pack(0, false, false, false, u32::from(cfg.moves));
            if s.word != expect {
                ex.violations.insert(format!(
                    "final word {:#x} != drained word {expect:#x}",
                    s.word
                ));
            }
            continue;
        }
        let succs = ex.successors(&s);
        ex.transitions += succs.len() as u64;
        if succs.is_empty() {
            // Someone is parked forever: a lost wake-up.
            ex.deadlocks += 1;
            ex.violations.insert(format!(
                "deadlock: no enabled transition with word {:#x} (lost wake-up)",
                s.word
            ));
            continue;
        }
        for n in succs {
            if ex.visited.insert(n.clone()) {
                stack.push(n);
            }
        }
    }
    let mut violations: Vec<String> = ex.violations.into_iter().collect();
    violations.sort();
    McheckReport {
        config: cfg,
        states: ex.visited.len() as u64,
        transitions: ex.transitions,
        terminals: ex.terminals,
        deadlocks: ex.deadlocks,
        violations,
    }
}

/// The certification sweep `exp verify` runs and CI pins: 2 and 3
/// pinners, two pin cycles each, against a two-move migrator.
pub fn certify() -> Vec<McheckReport> {
    vec![
        check(McheckConfig::new(2, 2, 2)),
        check(McheckConfig::new(3, 2, 2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_certifies_clean_at_all_bounds() {
        for pinners in 1..=3 {
            for moves in 1..=2 {
                let r = check(McheckConfig::new(pinners, 2, moves));
                assert!(
                    r.ok(),
                    "pinners={pinners} moves={moves}: {:?} deadlocks={}",
                    r.violations,
                    r.deadlocks
                );
                assert!(r.terminals > 0);
            }
        }
    }

    #[test]
    fn state_count_is_deterministic() {
        let a = check(McheckConfig::new(3, 2, 2));
        let b = check(McheckConfig::new(3, 2, 2));
        assert_eq!(a, b);
        assert!(a.states > 100, "bounded space should be non-trivial");
    }

    /// The certification sweep's explored-state counts, pinned. A
    /// change here means the word algebra, the protocol model, or the
    /// checker itself changed — re-bless deliberately, together with
    /// `baselines/BENCH_verify.smoke.json` (CI pins the same numbers).
    #[test]
    fn certification_sweep_state_counts_are_pinned() {
        let sweep = certify();
        let got: Vec<(usize, u64, u64)> = sweep
            .iter()
            .map(|r| (r.config.pinners, r.states, r.transitions))
            .collect();
        assert_eq!(got, vec![(2, 320, 560), (3, 1031, 2040)]);
        assert!(sweep.iter().all(McheckReport::ok));
    }

    #[test]
    fn skipped_unpin_wake_is_a_lost_wakeup() {
        let mut cfg = McheckConfig::new(2, 1, 1);
        cfg.bugs.skip_unpin_wake = true;
        let r = check(cfg);
        assert!(r.deadlocks > 0, "migrator parks forever: {r:?}");
    }

    #[test]
    fn skipped_release_wake_is_a_lost_wakeup() {
        let mut cfg = McheckConfig::new(2, 1, 1);
        cfg.bugs.skip_release_wake = true;
        let r = check(cfg);
        assert!(r.deadlocks > 0, "workers park forever: {r:?}");
    }

    #[test]
    fn unannounced_park_is_a_lost_wakeup() {
        let mut cfg = McheckConfig::new(2, 1, 1);
        cfg.bugs.skip_parked_bit = true;
        let r = check(cfg);
        assert!(r.deadlocks > 0, "unpin-to-zero never notifies: {r:?}");
    }

    #[test]
    fn pin_through_moving_is_caught() {
        let mut cfg = McheckConfig::new(2, 1, 1);
        cfg.bugs.pin_ignores_moving = true;
        let r = check(cfg);
        assert!(
            r.violations
                .iter()
                .any(|v| v.contains("MOVING") || v.contains("survived")),
            "pin racing the copy must be flagged: {r:?}"
        );
    }

    #[test]
    fn no_migrator_reduces_to_pure_counting() {
        let r = check(McheckConfig::new(3, 2, 0));
        assert!(r.ok(), "{r:?}");
        assert_eq!(r.deadlocks, 0);
    }
}
