//! Static migration-plan auditor: a symbolic executor that proves (or
//! refutes) the soundness of a placement plan before a single byte
//! moves.
//!
//! The MCK solver emits a *plan* — an initial placement plus timed
//! tier-to-tier moves — and until now the runtime trusted it blindly.
//! This pass replays the plan symbolically against the task graph and
//! the ordered tier list and reports, through the same
//! [`SanitizeReport`] machinery as the graph verifier:
//!
//! * **Capacity feasibility** ([`ViolationKind::PlanOverCapacity`]):
//!   every paid tier stays within capacity at every prefix of the plan
//!   schedule, *including the transient double-residency of the
//!   two-phase copy* (an object occupies both source and destination
//!   until the move commits). The last tier is the unbounded spill
//!   tier, matching the knapsack convention.
//! * **Schedule-universal migration safety**
//!   ([`ViolationKind::PlanMoveRace`]): a move issued at window `w` is
//!   safe against an access iff the access is barrier-ordered before it
//!   (its task's window precedes `w` in the happens-before relation) or
//!   the access is *declared* — the lock-free pin/move protocol
//!   serializes declared accesses against moves under every legal
//!   interleaving, the exact invariant [`crate::mcheck`] certifies
//!   exhaustively. Undeclared accesses carry no pin, so a move
//!   unordered against one races it under *some* schedule.
//! * **Target validity** ([`ViolationKind::PlanUnknownTier`]): initial
//!   tiers and step targets index into the configured tier list.
//! * **Liveness** ([`ViolationKind::PlanDeadObject`],
//!   [`ViolationKind::PlanDoubleMove`]): no step moves an object that
//!   was never allocated or is freed before the step's window, and no
//!   object moves twice within one window (the second copy would race
//!   the first).
//! * **Cost non-regression** ([`ViolationKind::PlanCostRegression`]):
//!   the contention-free modelled memory time under the plan's final
//!   placement must not exceed the no-plan baseline (the initial
//!   placement). This is the same pure `mem_time_ns` pricing the MCK
//!   items are built from, so a solver-produced plan always passes and
//!   a hand-edited plan that demotes hot objects is rejected.

use std::collections::HashMap;

use tahoe_hms::TierSpec;
use tahoe_taskrt::TaskGraph;

use crate::dynamic::ExtraAccess;
use crate::hb::HappensBefore;
use crate::report::{SanitizeReport, Violation, ViolationKind};

/// One planned migration: move `object` to `to_tier` at the barrier
/// that opens `window`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStep {
    /// App index of the object to move.
    pub object: u32,
    /// Destination tier (index into the ordered tier list).
    pub to_tier: u8,
    /// The move is issued when this window opens; every task of earlier
    /// windows is barrier-ordered before the copy.
    pub window: u32,
}

/// A full migration plan: where every object starts and every move the
/// runtime will issue. This is the unit the auditor certifies and the
/// shape replanning (ROADMAP item 5) will mutate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Initial tier of object `i` (index into the ordered tier list).
    pub initial_tiers: Vec<u8>,
    /// Timed moves; within one window, vector order is issue order.
    pub steps: Vec<PlanStep>,
}

impl MigrationPlan {
    /// A no-move plan with every object on `tier`.
    pub fn resident(n_objects: usize, tier: u8) -> Self {
        MigrationPlan {
            initial_tiers: vec![tier; n_objects],
            steps: Vec::new(),
        }
    }
}

/// Allocation- and execution-side facts the plan alone cannot know.
#[derive(Debug, Clone, Default)]
pub struct PlanContext {
    /// Size of object `i` in bytes; a step on an index past the end
    /// moves an object that was never allocated.
    pub object_sizes: Vec<u64>,
    /// `object index → window`: the object is freed before this window
    /// starts, so a move issued at that window or later copies dead
    /// memory.
    pub freed_before_window: HashMap<u32, u32>,
    /// Undeclared accesses known statically (sanitizer feedback or
    /// fixture injection). Declared accesses are pinned and therefore
    /// move-safe; these are not.
    pub extra: Vec<ExtraAccess>,
}

impl PlanContext {
    /// Context for an app whose objects all live for the whole run and
    /// whose tasks touch only what they declare.
    pub fn new(object_sizes: Vec<u64>) -> Self {
        PlanContext {
            object_sizes,
            ..Default::default()
        }
    }

    /// Mark object `object` as freed before window `window`.
    pub fn free_before_window(mut self, object: u32, window: u32) -> Self {
        self.freed_before_window.insert(object, window);
        self
    }

    /// Add undeclared accesses the dynamic layer knows about.
    pub fn with_extra(mut self, extra: Vec<ExtraAccess>) -> Self {
        self.extra = extra;
        self
    }
}

/// Audit `plan` for `g` over the ordered tier list `specs` (fastest
/// first, last = unbounded spill tier) and return the canonical report.
pub fn audit_plan(
    g: &TaskGraph,
    plan: &MigrationPlan,
    specs: &[TierSpec],
    ctx: &PlanContext,
) -> SanitizeReport {
    let n_tiers = specs.len();
    let n_objects = ctx.object_sizes.len();
    let mut violations = Vec::new();

    // ---- target-tier validity ----------------------------------------
    for (obj, &t) in plan.initial_tiers.iter().enumerate() {
        if (t as usize) >= n_tiers {
            violations.push(Violation {
                kind: ViolationKind::PlanUnknownTier,
                task: None,
                object: Some(obj as u32),
                detail: format!(
                    "initial placement puts object {obj} on tier {t}, but only {n_tiers} tiers are configured"
                ),
            });
        }
    }
    for s in &plan.steps {
        if (s.to_tier as usize) >= n_tiers {
            violations.push(Violation {
                kind: ViolationKind::PlanUnknownTier,
                task: None,
                object: Some(s.object),
                detail: format!(
                    "step moves object {} to tier {}, but only {n_tiers} tiers are configured",
                    s.object, s.to_tier
                ),
            });
        }
    }

    // ---- dead objects ------------------------------------------------
    for s in &plan.steps {
        if (s.object as usize) >= n_objects {
            violations.push(Violation {
                kind: ViolationKind::PlanDeadObject,
                task: None,
                object: Some(s.object),
                detail: format!(
                    "step moves object {}, which was never allocated (only {n_objects} objects exist)",
                    s.object
                ),
            });
        } else if let Some(&freed) = ctx.freed_before_window.get(&s.object) {
            if s.window >= freed {
                violations.push(Violation {
                    kind: ViolationKind::PlanDeadObject,
                    task: None,
                    object: Some(s.object),
                    detail: format!(
                        "step at window {} moves object {}, freed before window {freed}",
                        s.window, s.object
                    ),
                });
            }
        }
    }

    // ---- double moves within one window ------------------------------
    {
        let mut seen: HashMap<(u32, u32), u8> = HashMap::new();
        for s in &plan.steps {
            if let Some(&first_to) = seen.get(&(s.object, s.window)) {
                violations.push(Violation {
                    kind: ViolationKind::PlanDoubleMove,
                    task: None,
                    object: Some(s.object),
                    detail: format!(
                        "object {} moved twice in window {} (to tier {first_to}, then tier {}): the second copy races the first",
                        s.object, s.window, s.to_tier
                    ),
                });
            } else {
                seen.insert((s.object, s.window), s.to_tier);
            }
        }
    }

    // ---- per-prefix capacity feasibility -----------------------------
    // Symbolically replay the schedule: steps execute in (window, issue
    // order). An object occupies its destination *and* its source while
    // the two-phase copy is in flight, so the destination is charged
    // before the source is released. The spill tier (last) is never
    // capacity-constrained.
    if n_tiers > 0 {
        let spill = (n_tiers - 1) as u8;
        let tier_of = |obj: usize, tiers: &[u8]| -> u8 {
            let t = tiers.get(obj).copied().unwrap_or(spill);
            if (t as usize) < n_tiers {
                t
            } else {
                spill
            }
        };
        let mut cur: Vec<u8> = (0..n_objects)
            .map(|o| tier_of(o, &plan.initial_tiers))
            .collect();
        let mut usage = vec![0u64; n_tiers];
        for (o, &t) in cur.iter().enumerate() {
            usage[t as usize] += ctx.object_sizes[o];
        }
        let flag_over = |tier: usize, used: u64, when: String, violations: &mut Vec<Violation>| {
            violations.push(Violation {
                kind: ViolationKind::PlanOverCapacity,
                task: None,
                object: None,
                detail: format!(
                    "tier {tier} ({}) holds {used} B but caps at {} B {when}",
                    specs[tier].name, specs[tier].capacity
                ),
            });
        };
        for (t, spec) in specs.iter().enumerate().take(n_tiers - 1) {
            if usage[t] > spec.capacity {
                flag_over(
                    t,
                    usage[t],
                    "in the initial placement".to_string(),
                    &mut violations,
                );
            }
        }
        let mut order: Vec<usize> = (0..plan.steps.len()).collect();
        order.sort_by_key(|&i| plan.steps[i].window);
        for i in order {
            let s = &plan.steps[i];
            if (s.object as usize) >= n_objects || (s.to_tier as usize) >= n_tiers {
                continue; // already reported as dead/unknown
            }
            let from = cur[s.object as usize];
            if from == s.to_tier {
                continue; // no-op move: nothing is copied
            }
            let size = ctx.object_sizes[s.object as usize];
            usage[s.to_tier as usize] += size;
            if s.to_tier != spill && usage[s.to_tier as usize] > specs[s.to_tier as usize].capacity
            {
                flag_over(
                    s.to_tier as usize,
                    usage[s.to_tier as usize],
                    format!(
                        "while copying object {} from tier {from} (window {})",
                        s.object, s.window
                    ),
                    &mut violations,
                );
            }
            usage[from as usize] -= size;
            cur[s.object as usize] = s.to_tier;
        }
    }

    // ---- schedule-universal migration safety -------------------------
    // A move at window w is barrier-ordered after every task of windows
    // < w. Declared accesses of any window are pinned, so the word
    // protocol serializes them against the copy (certified exhaustively
    // by the mcheck pass). Undeclared accesses in windows >= w have
    // neither ordering nor pin: the copy races them under some legal
    // schedule.
    if !ctx.extra.is_empty() {
        let hb = HappensBefore::from_graph(g);
        for s in &plan.steps {
            for e in &ctx.extra {
                if e.object != s.object || (e.task as usize) >= hb.len() {
                    continue;
                }
                if hb.window(tahoe_taskrt::TaskId(e.task)) >= s.window {
                    violations.push(Violation {
                        kind: ViolationKind::PlanMoveRace,
                        task: Some(e.task),
                        object: Some(s.object),
                        detail: format!(
                            "move of object {} at window {} races t{}'s undeclared {} (no pin, no ordering path)",
                            s.object,
                            s.window,
                            e.task,
                            if e.writes { "write" } else { "read" },
                        ),
                    });
                }
            }
        }
    }

    // ---- modelled-cost non-regression --------------------------------
    // Price the final placement against the initial one with the same
    // pure per-access memory-time model the MCK items use. A plan that
    // makes the modelled run *slower* is feasible but counterproductive
    // — almost always a mutated or stale plan.
    if n_tiers > 0 {
        let spill = (n_tiers - 1) as u8;
        let clamp = |t: u8| -> usize {
            if (t as usize) < n_tiers {
                t as usize
            } else {
                spill as usize
            }
        };
        let mut final_tiers: Vec<u8> = (0..n_objects)
            .map(|o| plan.initial_tiers.get(o).copied().unwrap_or(spill))
            .collect();
        let mut order: Vec<usize> = (0..plan.steps.len()).collect();
        order.sort_by_key(|&i| plan.steps[i].window);
        for i in order {
            let s = &plan.steps[i];
            if (s.object as usize) < n_objects && (s.to_tier as usize) < n_tiers {
                final_tiers[s.object as usize] = s.to_tier;
            }
        }
        let price = |tiers: &[u8]| -> f64 {
            let mut total = 0.0;
            for t in g.tasks() {
                for a in &t.accesses {
                    let obj = a.object.index();
                    let tier = clamp(tiers.get(obj).copied().unwrap_or(spill));
                    total += a.profile.mem_time_ns(&specs[tier]);
                }
            }
            total
        };
        let before = price(
            &(0..n_objects)
                .map(|o| plan.initial_tiers.get(o).copied().unwrap_or(spill))
                .collect::<Vec<_>>(),
        );
        let after = price(&final_tiers);
        if after > before * (1.0 + 1e-9) {
            violations.push(Violation {
                kind: ViolationKind::PlanCostRegression,
                task: None,
                object: None,
                detail: format!(
                    "plan regresses modelled memory time: {after:.1} ns with the plan vs {before:.1} ns without"
                ),
            });
        }
    }

    SanitizeReport::new(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::{AccessProfile, ObjectId};
    use tahoe_taskrt::{AccessMode, TaskAccess};

    fn specs2(dram_cap: u64) -> Vec<TierSpec> {
        vec![
            TierSpec::symmetric("DRAM", 80.0, 30.0, dram_cap),
            TierSpec::symmetric("NVM", 300.0, 5.0, 1 << 40),
        ]
    }

    fn acc(o: u32) -> TaskAccess {
        TaskAccess::new(
            ObjectId(o),
            AccessMode::ReadWrite,
            AccessProfile::streaming(1 << 16, 1 << 10),
        )
    }

    /// Two windows, two objects, every access declared.
    fn two_window_app() -> TaskGraph {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![acc(0), acc(1)], 1.0);
        g.mark_window();
        g.add_task(c, vec![acc(0)], 1.0);
        g.add_task(c, vec![acc(1)], 1.0);
        g
    }

    #[test]
    fn solver_shaped_plan_is_clean() {
        let g = two_window_app();
        let ctx = PlanContext::new(vec![4096, 4096]);
        let plan = MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![
                PlanStep {
                    object: 0,
                    to_tier: 0,
                    window: 1,
                },
                PlanStep {
                    object: 1,
                    to_tier: 0,
                    window: 1,
                },
            ],
        };
        let r = audit_plan(&g, &plan, &specs2(1 << 20), &ctx);
        assert!(r.is_clean(), "unexpected: {:?}", r.violations);
    }

    #[test]
    fn no_move_plan_is_clean() {
        let g = two_window_app();
        let ctx = PlanContext::new(vec![4096, 4096]);
        let r = audit_plan(&g, &MigrationPlan::resident(2, 1), &specs2(1 << 20), &ctx);
        assert!(r.is_clean());
    }

    #[test]
    fn flags_over_capacity_step_and_initial() {
        let g = two_window_app();
        let ctx = PlanContext::new(vec![60 << 10, 60 << 10]);
        // DRAM holds 80 KiB; each object is 60 KiB. Moving both in
        // overflows on the second step.
        let plan = MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![
                PlanStep {
                    object: 0,
                    to_tier: 0,
                    window: 1,
                },
                PlanStep {
                    object: 1,
                    to_tier: 0,
                    window: 1,
                },
            ],
        };
        let r = audit_plan(&g, &plan, &specs2(80 << 10), &ctx);
        assert_eq!(r.count(ViolationKind::PlanOverCapacity), 1);
        // An initial placement that already overflows is flagged too.
        let r2 = audit_plan(&g, &MigrationPlan::resident(2, 0), &specs2(80 << 10), &ctx);
        assert_eq!(r2.count(ViolationKind::PlanOverCapacity), 1);
        assert!(r2.violations[0].detail.contains("initial placement"));
    }

    #[test]
    fn transient_double_residency_is_charged() {
        // A swap whose *final* state fits but whose copies transiently
        // overflow: each paid slot fits exactly one object.
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![acc(0), acc(1)], 1.0);
        g.mark_window();
        g.add_task(c, vec![acc(0), acc(1)], 1.0);
        let specs = vec![
            TierSpec::symmetric("DRAM", 80.0, 30.0, 4096),
            TierSpec::symmetric("CXL", 150.0, 15.0, 8192),
            TierSpec::symmetric("NVM", 300.0, 5.0, 1 << 40),
        ];
        let ctx = PlanContext::new(vec![4096, 4096]);
        let plan = MigrationPlan {
            initial_tiers: vec![0, 1],
            // Move o1 CXL->DRAM while o0 still resides in DRAM: the
            // copy holds both in DRAM at once.
            steps: vec![
                PlanStep {
                    object: 1,
                    to_tier: 0,
                    window: 1,
                },
                PlanStep {
                    object: 0,
                    to_tier: 1,
                    window: 1,
                },
            ],
        };
        let r = audit_plan(&g, &plan, &specs, &ctx);
        assert_eq!(r.count(ViolationKind::PlanOverCapacity), 1);
        assert!(r.violations[0].detail.contains("while copying"));
        // The reverse issue order evicts before promoting: clean.
        let mut rev = plan.clone();
        rev.steps.reverse();
        assert!(audit_plan(&g, &rev, &specs, &ctx).is_clean());
    }

    #[test]
    fn flags_unknown_tier() {
        let g = two_window_app();
        let ctx = PlanContext::new(vec![4096, 4096]);
        let plan = MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![PlanStep {
                object: 0,
                to_tier: 7,
                window: 1,
            }],
        };
        let r = audit_plan(&g, &plan, &specs2(1 << 20), &ctx);
        assert_eq!(r.count(ViolationKind::PlanUnknownTier), 1);
        assert_eq!(r.violations[0].object, Some(0));
    }

    #[test]
    fn flags_dead_object_moves() {
        let g = two_window_app();
        // Never-allocated object.
        let ctx = PlanContext::new(vec![4096, 4096]);
        let plan = MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![PlanStep {
                object: 9,
                to_tier: 0,
                window: 1,
            }],
        };
        let r = audit_plan(&g, &plan, &specs2(1 << 20), &ctx);
        assert_eq!(r.count(ViolationKind::PlanDeadObject), 1);
        // Freed-before-window object.
        let ctx2 = PlanContext::new(vec![4096, 4096]).free_before_window(0, 1);
        let plan2 = MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![PlanStep {
                object: 0,
                to_tier: 0,
                window: 1,
            }],
        };
        let r2 = audit_plan(&g, &plan2, &specs2(1 << 20), &ctx2);
        assert_eq!(r2.count(ViolationKind::PlanDeadObject), 1);
        // A move strictly before the free is legal.
        let plan3 = MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![PlanStep {
                object: 0,
                to_tier: 0,
                window: 0,
            }],
        };
        let r3 = audit_plan(&g, &plan3, &specs2(1 << 20), &ctx2);
        assert_eq!(r3.count(ViolationKind::PlanDeadObject), 0);
    }

    #[test]
    fn flags_double_move_in_one_window() {
        let g = two_window_app();
        let ctx = PlanContext::new(vec![4096, 4096]);
        let step = |to: u8, w: u32| PlanStep {
            object: 0,
            to_tier: to,
            window: w,
        };
        let plan = MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![step(0, 1), step(1, 1)],
        };
        let r = audit_plan(&g, &plan, &specs2(1 << 20), &ctx);
        assert_eq!(r.count(ViolationKind::PlanDoubleMove), 1);
        // Same object, different windows: legal replanning.
        let plan2 = MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![step(0, 0), step(1, 1)],
        };
        let r2 = audit_plan(&g, &plan2, &specs2(1 << 20), &ctx);
        assert_eq!(r2.count(ViolationKind::PlanDoubleMove), 0);
    }

    #[test]
    fn flags_move_racing_undeclared_access() {
        let g = two_window_app();
        // t1 (window 1) also touches object 1 without declaring it.
        let ctx = PlanContext::new(vec![4096, 4096]).with_extra(vec![ExtraAccess {
            task: 1,
            object: 1,
            writes: false,
        }]);
        let plan = MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![PlanStep {
                object: 1,
                to_tier: 0,
                window: 1,
            }],
        };
        let r = audit_plan(&g, &plan, &specs2(1 << 20), &ctx);
        assert_eq!(r.count(ViolationKind::PlanMoveRace), 1);
        assert_eq!(r.violations[0].task, Some(1));
        // The same undeclared access in window 0 is barrier-ordered
        // before a window-1 move: clean.
        let ctx2 = PlanContext::new(vec![4096, 4096]).with_extra(vec![ExtraAccess {
            task: 0,
            object: 1,
            writes: true,
        }]);
        let r2 = audit_plan(&g, &plan, &specs2(1 << 20), &ctx2);
        assert_eq!(r2.count(ViolationKind::PlanMoveRace), 0);
        // Declared accesses never race: t1/t2 read objects 0 and 1 in
        // window 1 while the plan moves both there, and the pin
        // protocol covers them (the clean-plan test above).
    }

    #[test]
    fn flags_cost_regression() {
        let g = two_window_app();
        let ctx = PlanContext::new(vec![4096, 4096]);
        // Demote a hot object from DRAM to NVM: feasible, but slower.
        let plan = MigrationPlan {
            initial_tiers: vec![0, 0],
            steps: vec![PlanStep {
                object: 0,
                to_tier: 1,
                window: 1,
            }],
        };
        let r = audit_plan(&g, &plan, &specs2(1 << 20), &ctx);
        assert_eq!(r.count(ViolationKind::PlanCostRegression), 1);
        assert!(r.violations[0].detail.contains("regresses"));
    }

    #[test]
    fn report_is_deterministic() {
        let g = two_window_app();
        let ctx = PlanContext::new(vec![4096, 4096]);
        let plan = MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![
                PlanStep {
                    object: 9,
                    to_tier: 7,
                    window: 1,
                },
                PlanStep {
                    object: 0,
                    to_tier: 0,
                    window: 1,
                },
            ],
        };
        let a = audit_plan(&g, &plan, &specs2(1 << 20), &ctx);
        let b = audit_plan(&g, &plan, &specs2(1 << 20), &ctx);
        assert_eq!(a, b);
        assert_eq!(a.count(ViolationKind::PlanUnknownTier), 1);
        assert_eq!(a.count(ViolationKind::PlanDeadObject), 1);
    }
}
