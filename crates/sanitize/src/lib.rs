//! Task-graph race detector and dynamic access sanitizer.
//!
//! The measured runtime's correctness rests on *declared* footprints: the
//! dependence tracker derives the task DAG from in/out/inout annotations,
//! the pin/mid-move discipline in [`tahoe_hms::SharedHms`] assumes tasks
//! touch only what they pinned, and the background migrator assumes it
//! never copies bytes a task is using. Nothing enforced those invariants
//! — a workload that under-declares its footprint or a migrator bug that
//! moves a pinned object would silently corrupt results.
//!
//! This crate verifies them with two passes:
//!
//! * **Static graph verifier** ([`verify`]): consumes a task graph before
//!   execution and reports structural defects — dependency cycles
//!   (deadlock), conflicting same-object accesses with no ordering path
//!   (declared race), accesses to objects never allocated or already
//!   freed (use-after-free), footprints exceeding total tier capacity
//!   (infeasible plan), and declared-but-never-executed accesses (dead
//!   declarations).
//!
//! * **Dynamic access sanitizer** ([`dynamic`]): shadows every object
//!   access of a run with a happens-before check derived from the
//!   declared DAG ([`hb::HappensBefore`] — per-task ancestor bitsets, the
//!   dense-DAG equivalent of a vector clock), flagging undeclared
//!   accesses, writes under `Read` declarations, accesses to mid-move
//!   objects, and migrator copies of pinned objects.
//!
//! * **Plan auditor** ([`plan`]): symbolically executes a migration
//!   plan against the task graph and the ordered tier list, proving
//!   per-prefix capacity feasibility (with transient double-residency),
//!   schedule-universal migration safety, target-tier validity,
//!   liveness of moved objects, and modelled-cost non-regression —
//!   rejecting an unsound plan in microseconds, before a byte moves.
//!
//! * **Protocol model checker** ([`mcheck`]): exhaustively explores
//!   every bounded interleaving of the lock-free pin/move word protocol
//!   (`tahoe_hms::lockfree::word`) with N pinners and a migrator,
//!   certifying that pins drain, epochs are monotonic, no pin survives
//!   a committed move, and no wake-up is lost — the invariant the plan
//!   auditor's move-safety rule leans on.
//!
//! Violations are typed ([`ViolationKind`]) and summarized in a
//! [`SanitizeReport`] whose ordering and counts are deterministic across
//! schedules, worker counts and seeds — the property the schedule fuzzer
//! (`exp sanitize`) and the plan-audit gate (`exp verify`) gate on.

#![forbid(unsafe_code)]

pub mod dynamic;
pub mod hb;
pub mod mcheck;
pub mod plan;
pub mod report;
pub mod verify;

pub use dynamic::{AccessSanitizer, ExtraAccess, NoSanitize, SanitizeHook};
pub use hb::HappensBefore;
pub use mcheck::{BugInjection, McheckConfig, McheckReport};
pub use plan::{audit_plan, MigrationPlan, PlanContext, PlanStep};
pub use report::{SanitizeReport, Violation, ViolationKind};
pub use verify::{find_cycle, verify_graph, StaticContext};
