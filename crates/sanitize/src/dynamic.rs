//! Dynamic access sanitizer: shadow every object access of a measured
//! run with checks derived from the declared DAG.
//!
//! The runtime threads a [`SanitizeHook`] through its per-access hot
//! path. [`NoSanitize`] is the production hook: `ENABLED == false` and
//! empty inline bodies, so the monomorphized run carries *no* shadow
//! work — the off-mode is zero-cost by construction, not by branch.
//! [`AccessSanitizer`] is the real hook, used by sanitize mode.
//!
//! **Determinism.** Violation counts must be identical across schedules,
//! worker counts and seeds — otherwise the fuzzer could not gate on
//! exact expected sets. Schedule-dependent evidence (which racing write
//! a reader happened to observe) is therefore never used: races are
//! derived from the *actual-behavior access index* (declared traffic
//! plus registered extra accesses) against the happens-before relation,
//! and flagged once per conflicting pair at the later task. The
//! runtime-observed checks (mid-move access, pinned copy, undeclared
//! access) are violations the correct runtime can never produce at all
//! — pins wait out moves, moves wait out pins, and the executor only
//! issues declared accesses — so they are deterministically zero on
//! correct runs and only fire when the discipline itself is broken.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use tahoe_hms::{MoveObserver, ObjectId};
use tahoe_taskrt::{TaskGraph, TaskId};

use crate::hb::HappensBefore;
use crate::report::{SanitizeReport, Violation, ViolationKind};
use crate::verify::{unordered_conflicts, ObjectAccess};

/// An access a workload performs *beyond* its declarations — the way
/// buggy fixture workloads express under-declared footprints without
/// performing genuinely racy memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtraAccess {
    /// The task performing the access.
    pub task: u32,
    /// The object touched (app index).
    pub object: u32,
    /// Whether the access writes (else it reads).
    pub writes: bool,
}

/// Per-access shadow hook the parallel measured runtime is generic
/// over.
///
/// `ENABLED` gates every call site: with [`NoSanitize`] the checks
/// monomorphize away entirely (no pin-table queries, no atomics, no
/// branches in the access loop).
pub trait SanitizeHook: Sync {
    /// Whether this hook observes accesses at all.
    const ENABLED: bool;

    /// One object access is about to run on a worker. `mid_move` is the
    /// runtime's own answer to "is a background migration of this
    /// object in flight right now?".
    fn on_access(&self, task: u32, access_index: usize, object: u32, mid_move: bool);

    /// Observer to install on the shared HMS so migration starts are
    /// reported (object, pin count at start).
    fn move_observer(&self) -> Option<MoveObserver> {
        None
    }
}

/// The production no-op hook: compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSanitize;

impl SanitizeHook for NoSanitize {
    const ENABLED: bool = false;

    #[inline(always)]
    fn on_access(&self, _task: u32, _access_index: usize, _object: u32, _mid_move: bool) {}
}

/// The sanitize-mode hook: checks every access against the declared
/// DAG and collects violations for a deterministic [`SanitizeReport`].
#[derive(Debug)]
pub struct AccessSanitizer {
    hb: HappensBefore,
    /// `(task, object)` pairs with any declaration.
    declared: HashSet<(u32, u32)>,
    /// Violations derivable before the run (write-under-read, fixture
    /// undeclared accesses).
    pre: Vec<Violation>,
    /// Actual-behavior access index: declared traffic plus registered
    /// extra accesses; the race scan runs over this.
    behavior: Vec<ObjectAccess>,
    /// Violations observed during execution (mid-move access, pinned
    /// copy, runtime undeclared access) — zero on correct runs.
    observed: Mutex<Vec<Violation>>,
    checked: AtomicU64,
}

impl AccessSanitizer {
    /// Build the shadow state for one app's graph.
    ///
    /// Declared accesses whose profile stores under a `Read` declaration
    /// are flagged immediately ([`ViolationKind::WriteUnderRead`]), and
    /// their write enters the behavior index — so the races such hidden
    /// writes create are found by the same pair scan as everything else.
    pub fn from_graph(g: &TaskGraph) -> Self {
        let hb = HappensBefore::from_graph(g);
        let mut declared = HashSet::new();
        let mut pre = Vec::new();
        let mut behavior = Vec::new();
        for t in g.tasks() {
            for (ai, a) in t.accesses.iter().enumerate() {
                declared.insert((t.id.0, a.object.0));
                let reads = a.profile.loads > 0;
                let writes = a.profile.stores > 0;
                if writes && !a.mode.writes() {
                    pre.push(Violation {
                        kind: ViolationKind::WriteUnderRead,
                        task: Some(t.id.0),
                        object: Some(a.object.0),
                        detail: format!(
                            "t{} access #{ai} stores {} lines to object {} declared read-only",
                            t.id.0, a.profile.stores, a.object.0
                        ),
                    });
                }
                if reads || writes {
                    behavior.push(ObjectAccess {
                        task: t.id,
                        object: a.object.0,
                        reads,
                        writes,
                    });
                }
            }
        }
        AccessSanitizer {
            hb,
            declared,
            pre,
            behavior,
            observed: Mutex::new(Vec::new()),
            checked: AtomicU64::new(0),
        }
    }

    /// Register an access the workload performs beyond its declarations
    /// (fixture bug injection). Undeclared `(task, object)` pairs are
    /// flagged; either way the access enters the behavior index so its
    /// races are detected.
    pub fn note_extra_access(&mut self, e: &ExtraAccess) {
        if !self.declared.contains(&(e.task, e.object)) {
            self.pre.push(Violation {
                kind: ViolationKind::UndeclaredAccess,
                task: Some(e.task),
                object: Some(e.object),
                detail: format!(
                    "t{} {} object {} without declaring it",
                    e.task,
                    if e.writes { "writes" } else { "reads" },
                    e.object
                ),
            });
        }
        self.behavior.push(ObjectAccess {
            task: TaskId(e.task),
            object: e.object,
            reads: !e.writes,
            writes: e.writes,
        });
    }

    fn push_observed(&self, v: Violation) {
        self.observed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(v);
    }

    /// Shadow one access (runtime hot path in sanitize mode).
    pub fn check_access(&self, task: u32, access_index: usize, object: u32, mid_move: bool) {
        self.checked.fetch_add(1, Ordering::Relaxed);
        if !self.declared.contains(&(task, object)) {
            self.push_observed(Violation {
                kind: ViolationKind::UndeclaredAccess,
                task: Some(task),
                object: Some(object),
                detail: format!(
                    "t{task} executed undeclared access #{access_index} to object {object}"
                ),
            });
        }
        if mid_move {
            self.push_observed(Violation {
                kind: ViolationKind::MidMoveAccess,
                task: Some(task),
                object: Some(object),
                detail: format!(
                    "t{task} accessed object {object} while a background migration of it was in flight"
                ),
            });
        }
    }

    /// The migrator started moving `object` with `pins` live pins —
    /// anything nonzero means it is copying bytes a task is using.
    pub fn note_move_started(&self, object: u32, pins: u64) {
        if pins > 0 {
            self.push_observed(Violation {
                kind: ViolationKind::PinnedCopy,
                task: None,
                object: Some(object),
                detail: format!("migrator began copying object {object} with {pins} live pins"),
            });
        }
    }

    /// Consume the shadow state into the canonical report: pre-run
    /// findings, the race scan over the behavior index, and everything
    /// observed during execution.
    pub fn finish(self) -> SanitizeReport {
        let mut violations = self.pre;
        violations.extend(unordered_conflicts(&self.behavior, &self.hb));
        violations.extend(
            self.observed
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner),
        );
        let mut report = SanitizeReport::new(violations);
        report.accesses_checked = self.checked.load(Ordering::Relaxed);
        report
    }
}

impl SanitizeHook for Arc<AccessSanitizer> {
    const ENABLED: bool = true;

    fn on_access(&self, task: u32, access_index: usize, object: u32, mid_move: bool) {
        self.check_access(task, access_index, object, mid_move);
    }

    fn move_observer(&self) -> Option<MoveObserver> {
        let me = Arc::clone(self);
        Some(Box::new(move |id: ObjectId, pins: u64| {
            me.note_move_started(id.0, pins)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::{AccessProfile, ObjectId};
    use tahoe_taskrt::{AccessMode, TaskAccess};

    fn acc(o: u32, mode: AccessMode, loads: u64, stores: u64) -> TaskAccess {
        TaskAccess::new(ObjectId(o), mode, AccessProfile::streaming(loads, stores))
    }

    /// A well-formed two-window pipeline.
    fn clean_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let c = g.class("step");
        g.add_task(c, vec![acc(0, AccessMode::Write, 0, 64)], 1.0);
        g.add_task(
            c,
            vec![
                acc(0, AccessMode::Read, 64, 0),
                acc(1, AccessMode::Write, 0, 64),
            ],
            1.0,
        );
        g.mark_window();
        g.add_task(c, vec![acc(1, AccessMode::ReadWrite, 64, 64)], 1.0);
        g
    }

    /// Replay every declared access of `g` through the hook, the way
    /// the runtime does, with no mid-move conditions.
    fn replay(g: &TaskGraph, s: &AccessSanitizer) {
        for t in g.tasks() {
            for (ai, a) in t.accesses.iter().enumerate() {
                s.check_access(t.id.0, ai, a.object.0, false);
            }
        }
    }

    #[test]
    fn clean_run_is_clean_and_counts_accesses() {
        let g = clean_graph();
        let s = AccessSanitizer::from_graph(&g);
        replay(&g, &s);
        let r = s.finish();
        assert!(r.is_clean(), "unexpected: {:?}", r.violations);
        assert_eq!(r.accesses_checked, 4);
    }

    #[test]
    fn write_under_read_is_flagged_and_races() {
        // t0 declares Read but stores; t1 honestly reads. The tracker
        // saw Read/Read and derived no edge, so the hidden write races
        // the read.
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![acc(0, AccessMode::Read, 64, 8)], 1.0);
        g.add_task(c, vec![acc(0, AccessMode::Read, 64, 0)], 1.0);
        let s = AccessSanitizer::from_graph(&g);
        replay(&g, &s);
        let r = s.finish();
        assert_eq!(r.count(ViolationKind::WriteUnderRead), 1);
        assert_eq!(r.count(ViolationKind::UnorderedConflict), 1);
        assert_eq!(r.violations.len(), 2);
    }

    #[test]
    fn undeclared_extra_access_is_flagged_with_its_races() {
        let g = clean_graph();
        let mut s = AccessSanitizer::from_graph(&g);
        // Task 2 (window 1) also writes object 0 — never declared. Task
        // 1 reads object 0 in window 0, ordered by the barrier; task 0
        // writes it in window 0: also ordered. So: undeclared, no race.
        s.note_extra_access(&ExtraAccess {
            task: 2,
            object: 0,
            writes: true,
        });
        replay(&g, &s);
        let r = s.finish();
        assert_eq!(r.count(ViolationKind::UndeclaredAccess), 1);
        assert_eq!(r.count(ViolationKind::UnorderedConflict), 0);

        // Same-window undeclared write does race: task 1 writes object
        // 0 while task 0's writer is its only order — but t0 -> t1 edge
        // exists via object 0... use a disjoint victim: task 0 writes
        // object 1 undeclared while task 1 declares a write of it with
        // no edge from t0 (their declared objects 0 are chained t0->t1;
        // edge exists, so they're ordered). Use clean_graph's t1/t2
        // cross-window? Barrier orders. Build a dedicated graph: two
        // tasks on disjoint declared objects, one sneaks a write into
        // the other's.
        let mut g2 = TaskGraph::new();
        let c2 = g2.class("x");
        g2.add_task(c2, vec![acc(0, AccessMode::Write, 0, 64)], 1.0);
        g2.add_task(c2, vec![acc(1, AccessMode::Write, 0, 64)], 1.0);
        let mut s2 = AccessSanitizer::from_graph(&g2);
        s2.note_extra_access(&ExtraAccess {
            task: 0,
            object: 1,
            writes: true,
        });
        let r2 = s2.finish();
        assert_eq!(r2.count(ViolationKind::UndeclaredAccess), 1);
        assert_eq!(
            r2.count(ViolationKind::UnorderedConflict),
            1,
            "the sneaked write races t1's declared write"
        );
    }

    #[test]
    fn runtime_undeclared_access_is_flagged() {
        let g = clean_graph();
        let s = AccessSanitizer::from_graph(&g);
        s.check_access(0, 1, 1, false);
        let r = s.finish();
        assert_eq!(r.count(ViolationKind::UndeclaredAccess), 1);
    }

    #[test]
    fn mid_move_access_is_flagged() {
        let g = clean_graph();
        let s = AccessSanitizer::from_graph(&g);
        s.check_access(0, 0, 0, true);
        let r = s.finish();
        assert_eq!(r.count(ViolationKind::MidMoveAccess), 1);
        assert_eq!(r.violations[0].task, Some(0));
    }

    #[test]
    fn pinned_copy_is_flagged_only_with_live_pins() {
        let g = clean_graph();
        let s = AccessSanitizer::from_graph(&g);
        s.note_move_started(1, 0);
        s.note_move_started(1, 2);
        let r = s.finish();
        assert_eq!(r.count(ViolationKind::PinnedCopy), 1);
        assert!(r.violations[0].detail.contains("2 live pins"));
    }

    #[test]
    fn reports_are_schedule_independent() {
        // Replaying accesses in reversed order yields the identical
        // report — the property the fuzzer's exact-equality gate needs.
        let g = clean_graph();
        let forward = {
            let s = AccessSanitizer::from_graph(&g);
            replay(&g, &s);
            s.finish()
        };
        let backward = {
            let s = AccessSanitizer::from_graph(&g);
            for t in g.tasks().iter().rev() {
                for (ai, a) in t.accesses.iter().enumerate().rev() {
                    s.check_access(t.id.0, ai, a.object.0, false);
                }
            }
            s.finish()
        };
        assert_eq!(forward, backward);
    }

    #[test]
    fn arc_hook_reports_through_move_observer() {
        let g = clean_graph();
        let s = Arc::new(AccessSanitizer::from_graph(&g));
        let obs = s.move_observer().expect("sanitizer provides an observer");
        obs(ObjectId(0), 3);
        s.on_access(0, 0, 0, false);
        drop(obs);
        let s = Arc::try_unwrap(s).expect("observer dropped");
        let r = s.finish();
        assert_eq!(r.count(ViolationKind::PinnedCopy), 1);
        assert_eq!(r.accesses_checked, 1);
    }
}
