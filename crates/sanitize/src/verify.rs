//! Static graph verifier: structural defects a task graph can carry
//! before a single task runs.

use std::collections::HashMap;

use tahoe_taskrt::{TaskGraph, TaskId};

use crate::hb::HappensBefore;
use crate::report::{SanitizeReport, Violation, ViolationKind};

/// Allocation-side facts the graph alone cannot know: which objects
/// exist, how large they are, what the tiers can hold, and when objects
/// are freed.
#[derive(Debug, Clone, Default)]
pub struct StaticContext {
    /// Size of object `i` in bytes; accesses to indices past the end are
    /// accesses to objects that were never allocated.
    pub object_sizes: Vec<u64>,
    /// DRAM tier capacity, bytes.
    pub dram_capacity: u64,
    /// NVM tier capacity, bytes.
    pub nvm_capacity: u64,
    /// `object index → window`: the object is freed before this window
    /// starts, so any access from that window on is use-after-free.
    pub freed_before_window: HashMap<u32, u32>,
}

impl StaticContext {
    /// Context for an app whose objects all live for the whole run.
    pub fn new(object_sizes: Vec<u64>, dram_capacity: u64, nvm_capacity: u64) -> Self {
        StaticContext {
            object_sizes,
            dram_capacity,
            nvm_capacity,
            freed_before_window: HashMap::new(),
        }
    }

    /// Mark object `object` as freed before window `window`.
    pub fn free_before_window(mut self, object: u32, window: u32) -> Self {
        self.freed_before_window.insert(object, window);
        self
    }
}

/// One task's merged access behavior on one object — the unit both the
/// static verifier (declared modes) and the dynamic sanitizer (actual
/// traffic) feed to the conflict scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectAccess {
    /// The accessing task.
    pub task: TaskId,
    /// The accessed object (app index).
    pub object: u32,
    /// Whether the task reads the object.
    pub reads: bool,
    /// Whether the task writes the object.
    pub writes: bool,
}

/// Scan `accesses` for same-object conflicting pairs (at least one side
/// writes) that `hb` leaves unordered. Each pair is reported once,
/// attributed to the later task — deterministic whatever schedule the
/// accesses were observed under.
pub fn unordered_conflicts(accesses: &[ObjectAccess], hb: &HappensBefore) -> Vec<Violation> {
    // Merge per (task, object) first so multiple declared accesses of
    // one object by one task cannot double-report a pair.
    let mut by_object: HashMap<u32, Vec<(TaskId, bool, bool)>> = HashMap::new();
    for a in accesses {
        let entry = by_object.entry(a.object).or_default();
        match entry.iter_mut().find(|(id, _, _)| *id == a.task) {
            Some((_, r, w)) => {
                *r |= a.reads;
                *w |= a.writes;
            }
            None => entry.push((a.task, a.reads, a.writes)),
        }
    }
    let mut objects: Vec<u32> = by_object.keys().copied().collect();
    objects.sort_unstable();
    let mut violations = Vec::new();
    for obj in objects {
        let tasks = &by_object[&obj];
        for (i, &(a, _, aw)) in tasks.iter().enumerate() {
            for &(b, _, bw) in &tasks[i + 1..] {
                if (aw || bw) && !hb.ordered(a, b) {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    violations.push(Violation {
                        kind: ViolationKind::UnorderedConflict,
                        task: Some(hi.0),
                        object: Some(obj),
                        detail: format!(
                            "t{} and t{} conflict on object {obj} with no ordering path",
                            lo.0, hi.0
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Find a dependency cycle in a raw edge list, if one exists; returns
/// the cycle as a task-id path (first == last).
///
/// [`TaskGraph`] cannot represent a cycle (its edges point forward by
/// construction), but the verifier still runs this pass so graph sources
/// that bypass the tracker — imported traces, hand-built fixtures — get
/// the deadlock diagnosis rather than a hung executor.
pub fn find_cycle(n: usize, edges: &[(u32, u32)]) -> Option<Vec<u32>> {
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        succs[a as usize].push(b);
    }
    // Iterative three-color DFS; the gray stack is kept so the cycle can
    // be reported as an actual task sequence.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        // (node, next successor index) stack.
        let mut stack: Vec<(u32, usize)> = vec![(root as u32, 0)];
        color[root] = GRAY;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if let Some(&succ) = succs[node as usize].get(*next) {
                *next += 1;
                match color[succ as usize] {
                    WHITE => {
                        color[succ as usize] = GRAY;
                        stack.push((succ, 0));
                    }
                    GRAY => {
                        // Back edge: the gray stack from `succ` down to
                        // `node`, plus the edge back, is the cycle.
                        let start = stack.iter().position(|&(v, _)| v == succ).expect("gray");
                        let mut cycle: Vec<u32> = stack[start..].iter().map(|&(v, _)| v).collect();
                        cycle.push(succ);
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[node as usize] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

/// Run every static check on `g` under `ctx` and return the canonical
/// report.
pub fn verify_graph(g: &TaskGraph, ctx: &StaticContext) -> SanitizeReport {
    let mut violations = Vec::new();

    // ---- dependency cycles (deadlock) --------------------------------
    let edges: Vec<(u32, u32)> = g
        .tasks()
        .iter()
        .flat_map(|t| g.preds(t.id).iter().map(move |p| (p.0, t.id.0)))
        .collect();
    if let Some(cycle) = find_cycle(g.len(), &edges) {
        violations.push(Violation {
            kind: ViolationKind::DependencyCycle,
            task: cycle.iter().copied().max(),
            object: None,
            detail: format!(
                "dependency cycle would deadlock execution: {}",
                cycle
                    .iter()
                    .map(|t| format!("t{t}"))
                    .collect::<Vec<_>>()
                    .join(" -> ")
            ),
        });
    }

    // ---- unordered conflicting accesses (declared races) -------------
    let hb = HappensBefore::from_graph(g);
    let declared: Vec<ObjectAccess> = g
        .tasks()
        .iter()
        .flat_map(|t| {
            t.accesses.iter().map(move |a| ObjectAccess {
                task: t.id,
                object: a.object.0,
                reads: a.mode.reads(),
                writes: a.mode.writes(),
            })
        })
        .collect();
    violations.extend(unordered_conflicts(&declared, &hb));

    // ---- use-after-free / never-allocated ----------------------------
    for t in g.tasks() {
        for a in &t.accesses {
            let obj = a.object.0;
            if a.object.index() >= ctx.object_sizes.len() {
                violations.push(Violation {
                    kind: ViolationKind::UseAfterFree,
                    task: Some(t.id.0),
                    object: Some(obj),
                    detail: format!(
                        "t{} accesses object {obj}, which was never allocated",
                        t.id.0
                    ),
                });
            } else if let Some(&freed) = ctx.freed_before_window.get(&obj) {
                if t.window >= freed {
                    violations.push(Violation {
                        kind: ViolationKind::UseAfterFree,
                        task: Some(t.id.0),
                        object: Some(obj),
                        detail: format!(
                            "t{} (window {}) accesses object {obj}, freed before window {freed}",
                            t.id.0, t.window
                        ),
                    });
                }
            }
        }
    }

    // ---- infeasible footprint ----------------------------------------
    let footprint: u64 = ctx.object_sizes.iter().sum();
    let total = ctx.dram_capacity + ctx.nvm_capacity;
    if footprint > total && total > 0 {
        violations.push(Violation {
            kind: ViolationKind::InfeasibleFootprint,
            task: None,
            object: None,
            detail: format!(
                "footprint {footprint} B exceeds total tier capacity {total} B: no placement fits"
            ),
        });
    }

    // ---- dead declarations -------------------------------------------
    for t in g.tasks() {
        for (ai, a) in t.accesses.iter().enumerate() {
            if a.profile.accesses() == 0 {
                violations.push(Violation {
                    kind: ViolationKind::DeadDeclaration,
                    task: Some(t.id.0),
                    object: Some(a.object.0),
                    detail: format!(
                        "t{} access #{ai} declares object {} but carries no traffic",
                        t.id.0, a.object.0
                    ),
                });
            }
        }
    }

    SanitizeReport::new(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::{AccessProfile, ObjectId};
    use tahoe_taskrt::{AccessMode, TaskAccess};

    fn acc(o: u32, mode: AccessMode) -> TaskAccess {
        TaskAccess::new(ObjectId(o), mode, AccessProfile::streaming(16, 8))
    }

    fn ctx_for(g: &TaskGraph) -> StaticContext {
        let n = g
            .referenced_objects()
            .iter()
            .map(|o| o.index() + 1)
            .max()
            .unwrap_or(0);
        StaticContext::new(vec![4096; n], 1 << 20, 1 << 22)
    }

    #[test]
    fn detects_dependency_cycle() {
        // TaskGraph cannot hold a cycle, so exercise the raw-edge entry
        // the verifier shares: 0 -> 1 -> 2 -> 0.
        let cycle = find_cycle(3, &[(0, 1), (1, 2), (2, 0)]).expect("cycle");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 4, "path must walk the whole loop");
        assert!(find_cycle(3, &[(0, 1), (1, 2), (0, 2)]).is_none());
        // A graph built through the tracker reports none.
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![acc(0, AccessMode::Write)], 1.0);
        g.add_task(c, vec![acc(0, AccessMode::ReadWrite)], 1.0);
        let r = verify_graph(&g, &ctx_for(&g));
        assert_eq!(r.count(ViolationKind::DependencyCycle), 0);
        assert!(r.is_clean());
    }

    #[test]
    fn detects_unordered_conflict() {
        let oa = |task: u32, object: u32, reads: bool, writes: bool| ObjectAccess {
            task: TaskId(task),
            object,
            reads,
            writes,
        };
        // Two writers of one object, no edge between them: race.
        let unordered = HappensBefore::from_edges(2, &[]);
        let v = unordered_conflicts(&[oa(0, 0, false, true), oa(1, 0, false, true)], &unordered);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::UnorderedConflict);
        assert_eq!(v[0].task, Some(1), "attributed to the later task");
        assert_eq!(v[0].object, Some(0));
        // Same pair with the ordering edge restored: clean.
        let ordered = HappensBefore::from_edges(2, &[(0, 1)]);
        assert!(
            unordered_conflicts(&[oa(0, 0, false, true), oa(1, 0, false, true)], &ordered)
                .is_empty()
        );
        // Unordered readers never conflict.
        assert!(
            unordered_conflicts(&[oa(0, 0, true, false), oa(1, 0, true, false)], &unordered)
                .is_empty()
        );
        // Disjoint objects never conflict.
        assert!(
            unordered_conflicts(&[oa(0, 0, false, true), oa(1, 1, false, true)], &unordered)
                .is_empty()
        );
        // Negative control: a tracker-built graph orders every declared
        // conflict, so verify_graph finds none.
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![acc(0, AccessMode::Write)], 1.0);
        g.add_task(c, vec![acc(0, AccessMode::Write)], 1.0);
        let r = verify_graph(&g, &ctx_for(&g));
        assert_eq!(r.count(ViolationKind::UnorderedConflict), 0);
    }

    #[test]
    fn detects_use_after_free() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![acc(0, AccessMode::Write)], 1.0);
        g.mark_window();
        g.add_task(c, vec![acc(0, AccessMode::ReadWrite)], 1.0);
        let ctx = StaticContext::new(vec![4096], 1 << 20, 1 << 22).free_before_window(0, 1);
        let r = verify_graph(&g, &ctx);
        assert_eq!(r.count(ViolationKind::UseAfterFree), 1);
        assert_eq!(r.violations[0].task, Some(1));

        // Never-allocated object: the context knows fewer objects than
        // the graph references.
        let ctx2 = StaticContext::new(vec![], 1 << 20, 1 << 22);
        let r2 = verify_graph(&g, &ctx2);
        assert_eq!(
            r2.count(ViolationKind::UseAfterFree),
            2,
            "both tasks flagged"
        );
    }

    #[test]
    fn detects_infeasible_footprint() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![acc(0, AccessMode::Write)], 1.0);
        let ctx = StaticContext::new(vec![1 << 30], 1 << 10, 1 << 12);
        let r = verify_graph(&g, &ctx);
        assert_eq!(r.count(ViolationKind::InfeasibleFootprint), 1);
        assert!(r.violations[0].detail.contains("exceeds"));
    }

    #[test]
    fn detects_dead_declaration() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(
            c,
            vec![TaskAccess::new(
                ObjectId(0),
                AccessMode::Read,
                AccessProfile::new(0, 0, 1.0),
            )],
            1.0,
        );
        let r = verify_graph(&g, &ctx_for(&g));
        assert_eq!(r.count(ViolationKind::DeadDeclaration), 1);
    }

    #[test]
    fn clean_graph_is_clean() {
        let mut g = TaskGraph::new();
        let c = g.class("step");
        g.add_task(c, vec![acc(0, AccessMode::Write)], 1.0);
        g.add_task(
            c,
            vec![acc(0, AccessMode::Read), acc(1, AccessMode::Write)],
            1.0,
        );
        g.mark_window();
        g.add_task(c, vec![acc(1, AccessMode::ReadWrite)], 1.0);
        let r = verify_graph(&g, &ctx_for(&g));
        assert!(r.is_clean(), "unexpected: {:?}", r.violations);
    }
}
